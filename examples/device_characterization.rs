//! FeFET device characterization: programming, I-V extraction, variation
//! and lifetime — the device-engineering workflow under the TD-AM.
//!
//! Run with: `cargo run --release --example device_characterization`

use fetdam::fefet::iv::sweep_fefet;
use fetdam::fefet::programming::{program_state, program_vth_with_report, ProgramConfig};
use fetdam::fefet::retention::Lifetime;
use fetdam::fefet::{Fefet, FefetParams, PreisachParams, PAPER_VTH};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = FefetParams {
        preisach: PreisachParams {
            domains: 512,
            ..PreisachParams::default()
        },
        ..FefetParams::default()
    };
    let cfg = ProgramConfig::default();

    println!("Programming the four 2-bit states with erase + write-verify:\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "state", "target (V)", "achieved", "pulses", "energy (pJ)", "SS (mV/dec)"
    );
    for (state, &target) in PAPER_VTH.iter().enumerate() {
        let mut dev = Fefet::new(params);
        let report = program_vth_with_report(&mut dev, target, &cfg)?;
        let curve = sweep_fefet(&dev, 1.1, (-0.2, 1.8), 400);
        let ss = curve
            .subthreshold_swing(1e-7)
            .map(|s| format!("{s:.1}"))
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "{state:>6} {target:>12.2} {:>12.3} {:>12} {:>14.3} {:>12}",
            report.achieved_vth,
            report.pulse_pairs,
            report.energy * 1e12,
            ss
        );
    }

    println!("\nDevice figure of merit (state 0, fully programmed):");
    let mut dev = Fefet::new(params);
    program_state(&mut dev, 0, &cfg)?;
    let curve = sweep_fefet(&dev, 1.1, (-0.2, 1.8), 600);
    println!(
        "  on/off ratio : {:.2e}",
        curve.on_off_ratio().unwrap_or(f64::NAN)
    );
    println!(
        "  peak gm      : {:.2e} S",
        curve.peak_transconductance().unwrap_or(f64::NAN)
    );

    println!("\nThreshold ladder over lifetime (retention + endurance):");
    println!(
        "{:>14} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "condition", "window", "V_TH0", "V_TH1", "V_TH2", "V_TH3"
    );
    for (label, cycles, seconds) in [
        ("fresh", 0.0, 0.0),
        ("1e6 cycles", 1e6, 0.0),
        ("10 years", 1e6, 3.15e8),
        ("1e10 cycles", 1e10, 3.15e8),
    ] {
        let mut life = Lifetime::fresh();
        life.cycles = cycles;
        life.seconds = seconds;
        print!("{label:>14} {:>9.1}%", life.window_fraction() * 100.0);
        for &v in &PAPER_VTH {
            print!(" {:>8.3}", life.age_vth(v));
        }
        println!();
    }
    println!("\nAdjacent states stay separated through 10-year retention;\nfatigue past 1e10 cycles squeezes them into the variation floor.");
    Ok(())
}
