//! Fault injection: how stuck cells bias quantitative search.
//!
//! Injects stuck-match and stuck-mismatch cells into an array and shows
//! the decoded-distance bias, plus how many random faults the best-match
//! decision survives.
//!
//! Run with: `cargo run --release --example fault_injection`

use fetdam::tdam::array::TdamArray;
use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::faults::{build_faulty_array, FaultKind, FaultMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ArrayConfig::paper_default().with_stages(32).with_rows(4);
    let stored: Vec<Vec<u8>> = vec![
        vec![1; 32],
        vec![2; 32],
        (0..32).map(|i| (i % 4) as u8).collect(),
        vec![0; 32],
    ];
    let query = vec![1u8; 32]; // exact content of row 0

    println!("clean array:");
    let clean = build_faulty_array(&cfg, &stored, &FaultMap::new())?;
    let outcome = TdamArray::search(&clean, &query)?;
    println!("  decoded distances: {:?}", outcome.decoded());

    println!("\nstuck-mismatch at (row 0, stage 5) — the match row gains a phantom mismatch:");
    let mut faults = FaultMap::new();
    faults.inject(0, 5, FaultKind::StuckMismatch);
    let faulty = build_faulty_array(&cfg, &stored, &faults)?;
    let outcome = TdamArray::search(&faulty, &query)?;
    println!("  decoded distances: {:?}", outcome.decoded());
    println!(
        "  best match still row {}",
        outcome.best_row().expect("rows")
    );

    println!("\nrandom fault sweep: how many faults until the best match flips?");
    let mut rng = StdRng::seed_from_u64(99);
    for n_faults in [1usize, 4, 8, 16] {
        let mut correct = 0;
        let trials = 25;
        for _ in 0..trials {
            let mut faults = FaultMap::new();
            for _ in 0..n_faults {
                let kind = if rng.gen_bool(0.5) {
                    FaultKind::StuckMismatch
                } else {
                    FaultKind::StuckMatch
                };
                faults.inject(rng.gen_range(0..4), rng.gen_range(0..32), kind);
            }
            let faulty = build_faulty_array(&cfg, &stored, &faults)?;
            if TdamArray::search(&faulty, &query)?.best_row() == Some(0) {
                correct += 1;
            }
        }
        println!("  {n_faults:>2} random faults: best-match correct in {correct}/{trials} trials");
    }
    println!(
        "\nQuantitative search degrades gracefully: each fault biases one\n\
         row's distance by at most ±1, so sparse defects rarely flip the\n\
         winner — unlike exact-match CAMs, where one stuck cell kills a row."
    );
    Ok(())
}
