//! Circuit-level simulation of delay stages and chains — the SPICE-style
//! view of the TD-AM (Fig. 4 as a library workflow).
//!
//! Run with: `cargo run --release --example circuit_waveforms`

use fetdam::tdam::chain_circuit::CircuitChain;
use fetdam::tdam::config::{ArrayConfig, TechParams};
use fetdam::tdam::stage::{measure_stage, MnDrive};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechParams::nominal_40nm();

    println!("Single delay stage (transient circuit simulation):");
    let m = measure_stage(&tech, 6e-15, &MnDrive::ForcedMatch, 6e-9)?;
    let x = measure_stage(&tech, 6e-15, &MnDrive::ForcedMismatch, 6e-9)?;
    println!(
        "  match    : delay {:.2} ps, cycle energy {:.2} fJ",
        m.delay * 1e12,
        m.supply_energy * 1e15
    );
    println!(
        "  mismatch : delay {:.2} ps, cycle energy {:.2} fJ",
        x.delay * 1e12,
        x.supply_energy * 1e15
    );
    println!(
        "  -> d_C = {:.2} ps, E_C = {:.2} fJ",
        (x.delay - m.delay) * 1e12,
        (x.supply_energy - m.supply_energy) * 1e15
    );

    println!("\n8-stage chain, 2-step operation, increasing mismatch count:");
    let cfg = ArrayConfig::paper_default().with_stages(8);
    let chain = CircuitChain::new(&[1; 8], &cfg)?;
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "mismatches", "rising (ps)", "falling (ps)", "total (ps)"
    );
    for n_mis in [0usize, 2, 4, 6, 8] {
        let mut q = vec![1u8; 8];
        for item in q.iter_mut().take(n_mis) {
            *item = 2;
        }
        let r = chain.evaluate(&q, false)?;
        println!(
            "{n_mis:>12} {:>14.1} {:>14.1} {:>14.1}",
            r.rising.delay * 1e12,
            r.falling.delay * 1e12,
            r.total_delay() * 1e12
        );
    }
    println!("\nThe total delay climbs by one d_C per mismatch — time *is* the result.");
    Ok(())
}
