//! Unsupervised HDC clustering, with centroids deployable to the TD-AM.
//!
//! Clusters unlabeled activity-recognition data in hyperdimensional
//! space, reports purity against the hidden labels, and shows the fitted
//! centroids being quantized for associative-memory deployment.
//!
//! Run with: `cargo run --release --example hdc_clustering`

use fetdam::hdc::cluster::{purity, HdcClusters};
use fetdam::hdc::datasets::{Dataset, DatasetKind};
use fetdam::hdc::encoder::IdLevelEncoder;
use fetdam::hdc::quantize::equal_area_quantize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = Dataset::generate(DatasetKind::Ucihar, 30, 8, 7);
    let enc = IdLevelEncoder::new(2048, ds.features(), 32, (0.0, 1.0), 11)?;
    let samples: Vec<Vec<f64>> = ds.train.iter().map(|(x, _)| x.clone()).collect();
    let labels: Vec<usize> = ds.train.iter().map(|(_, l)| *l).collect();

    println!(
        "Clustering {} unlabeled samples ({} hidden activity classes) in 2048-dim HD space...",
        samples.len(),
        ds.classes()
    );
    let model = HdcClusters::fit(&enc, &samples, ds.classes(), 25, 3)?;
    println!("converged after {} iterations", model.iterations());

    let p = purity(model.assignments(), &labels, ds.classes(), ds.classes());
    println!(
        "cluster purity vs hidden labels: {:.1}% (chance: {:.1}%)",
        p * 100.0,
        100.0 / ds.classes() as f64
    );

    // Cluster sizes.
    let mut sizes = vec![0usize; ds.classes()];
    for &a in model.assignments() {
        sizes[a] += 1;
    }
    println!("cluster sizes: {sizes:?}");

    // The centroids quantize exactly like class hypervectors, so cluster
    // assignment can run on TD-AM tiles as a nearest-centroid search.
    println!("\nbinarizing centroids for TD-AM deployment:");
    for (i, c) in model.centroids().iter().enumerate() {
        let q = equal_area_quantize(c, 1)?;
        let ones = q.levels().iter().filter(|&&l| l == 1).count();
        println!(
            "  centroid {i}: {} elements, balanced binarization ({} high)",
            q.dims(),
            ones
        );
    }
    Ok(())
}
