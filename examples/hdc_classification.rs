//! End-to-end hyperdimensional classification on TD-AM hardware.
//!
//! Trains a full-precision HDC model on a synthetic voice-recognition
//! dataset (ISOLET stand-in), quantizes it to 2-bit packed elements,
//! deploys it on 128-stage TD-AM tiles at 0.6 V, and reports accuracy,
//! latency and energy per inference.
//!
//! Run with: `cargo run --release --example hdc_classification`

use fetdam::hdc::datasets::{Dataset, DatasetKind};
use fetdam::hdc::encoder::IdLevelEncoder;
use fetdam::hdc::mapping::TdamHdcInference;
use fetdam::hdc::quantize::QuantizedModel;
use fetdam::hdc::train::HdcModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = 2048;
    let bits = 2;
    println!("Generating synthetic ISOLET-like dataset (26 classes, 617 features)...");
    let ds = Dataset::generate(DatasetKind::Isolet, 30, 10, 42);

    println!("Training {dims}-dimensional full-precision HDC model...");
    let enc = IdLevelEncoder::new(dims, ds.features(), 32, (0.0, 1.0), 7)?;
    let model = HdcModel::train(&enc, &ds.train, ds.classes(), 3)?;
    let full_acc = model.accuracy(&enc, &ds.test)?;
    println!("full-precision accuracy: {:.1}%", full_acc * 100.0);

    println!("\nQuantizing to {bits}-bit packed elements and deploying on TD-AM tiles...");
    let quant = QuantizedModel::from_model(&model, bits)?;
    let hw = TdamHdcInference::new(&quant, 128, 0.6)?;
    println!(
        "deployment: {} classes x {} elements -> {} tiles of 128 stages @ 0.6 V",
        quant.classes(),
        quant.dims(),
        hw.chunks()
    );

    let mut correct = 0usize;
    let mut latency = 0.0;
    let mut energy = 0.0;
    for (x, label) in &ds.test {
        let h = enc.encode(x)?;
        let q = quant.quantize_query(&h)?;
        let result = hw.classify(&q)?;
        if result.class == *label {
            correct += 1;
        }
        latency += result.latency;
        energy += result.energy.total();
    }
    let n = ds.test.len() as f64;
    println!(
        "\nTD-AM hardware inference over {} test samples:",
        ds.test.len()
    );
    println!("  accuracy      : {:.1}%", correct as f64 / n * 100.0);
    println!("  mean latency  : {:.2} ns", latency / n * 1e9);
    println!("  mean energy   : {:.2} pJ", energy / n * 1e12);
    println!(
        "  energy per bit: {:.3} fJ",
        energy / n / (quant.classes() * quant.dims() * bits as usize) as f64 * 1e15
    );
    Ok(())
}
