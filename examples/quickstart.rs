//! Quickstart: store multi-bit vectors in a TD-AM array and search.
//!
//! Run with: `cargo run --release --example quickstart`

use fetdam::tdam::array::TdamArray;
use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::engine::SimilarityEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A TD-AM with 4 rows of 16 two-bit elements, paper-default process
    // parameters (40 nm class, 6 fF load capacitors, 1.1 V).
    let cfg = ArrayConfig::paper_default().with_stages(16).with_rows(4);
    let mut am = TdamArray::new(cfg)?;

    // Store four reference vectors (elements are 2-bit values, 0..=3).
    am.store(0, &[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3])?;
    am.store(1, &[3, 3, 3, 3, 3, 3, 3, 3, 0, 0, 0, 0, 0, 0, 0, 0])?;
    am.store(2, &[1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1])?;
    am.store(3, &[0, 1, 2, 3, 3, 2, 1, 0, 0, 1, 2, 3, 3, 2, 1, 0])?;

    // Search a query that is two elements away from row 0.
    let query = [0, 1, 2, 3, 0, 1, 2, 2, 0, 1, 2, 3, 0, 1, 2, 2];
    let outcome = TdamArray::search(&am, &query)?;

    println!("query: {query:?}\n");
    println!(
        "{:>4} {:>12} {:>14} {:>10}",
        "row", "mismatches", "delay (ps)", "TDC count"
    );
    for (i, row) in outcome.rows.iter().enumerate() {
        println!(
            "{i:>4} {:>12} {:>14.1} {:>10}",
            row.decoded_mismatches,
            row.chain.total_delay * 1e12,
            row.count
        );
    }
    println!(
        "\nbest match: row {} (search latency {:.2} ns, energy {:.1} fJ)",
        outcome.best_row().expect("array has rows"),
        outcome.latency * 1e9,
        outcome.energy.total() * 1e15
    );

    // The delay is linear in the mismatch count: the TD-AM is a
    // *quantitative* associative memory, unlike match-only CAMs.
    let timing = am.timing();
    println!(
        "stage timing: d_INV = {:.2} ps, d_C = {:.2} ps (delay = 2·N·d_INV + N_mis·d_C)",
        timing.d_inv * 1e12,
        timing.d_c * 1e12
    );
    Ok(())
}
