//! Genomic read mapping on the TD-AM — the HDGIM workload.
//!
//! Encodes reference-genome windows as hypervectors, stores their packed
//! 2-bit forms in TD-AM tiles, and maps noisy reads (with point
//! mutations) back to their source windows via parallel Hamming search.
//!
//! Run with: `cargo run --release --example genomic_matching`

use fetdam::hdc::hypervector::Hypervector;
use fetdam::hdc::quantize::equal_area_quantize;
use fetdam::hdc::sequence::{Base, SequenceEncoder};
use fetdam::tdam::array::TdamArray;
use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::encoding::Encoding;
use fetdam::tdam::engine::SimilarityEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_seq(len: usize, rng: &mut StdRng) -> Vec<Base> {
    (0..len)
        .map(|_| match rng.gen_range(0..4) {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(0xD9A);
    let dims = 2048;
    let bits = 2u8;
    let window = 250;
    let windows_count = 16;
    let enc = SequenceEncoder::new(dims, 6, 0x6E0)?;

    println!("Building a synthetic reference genome: {windows_count} windows x {window} bases");
    let genome = random_seq(window * windows_count, &mut rng);
    let windows: Vec<&[Base]> = genome.chunks(window).collect();

    // Encode + binarize-and-pack each window; store in a TD-AM.
    let packed_dims = dims / bits as usize;
    let stages = 128;
    let rows = windows_count;
    let cfg = ArrayConfig::paper_default()
        .with_stages(stages)
        .with_rows(rows)
        .with_encoding(Encoding::new(bits)?)
        .with_vdd(0.6);
    let chunks = packed_dims.div_ceil(stages);
    let mut tiles: Vec<TdamArray> = (0..chunks)
        .map(|_| TdamArray::new(cfg))
        .collect::<Result<_, _>>()?;
    let pack = |h: &Hypervector| {
        equal_area_quantize(h, 1).and_then(|b| {
            fetdam::hdc::hypervector::QuantizedHypervector::new(
                b.levels()
                    .chunks(bits as usize)
                    .map(|c| c.iter().enumerate().fold(0u8, |a, (k, &v)| a | (v << k)))
                    .collect(),
                bits,
            )
        })
    };
    for (row, w) in windows.iter().enumerate() {
        let packed = pack(&enc.encode_sequence(w)?)?;
        for (chunk, tile) in tiles.iter_mut().enumerate() {
            let mut slice = vec![0u8; stages];
            let start = chunk * stages;
            let end = (start + stages).min(packed_dims);
            slice[..end - start].copy_from_slice(&packed.levels()[start..end]);
            tile.store(row, &slice)?;
        }
    }

    println!("Mapping 20 mutated reads (120 bases, 3% mutation rate) back to windows...\n");
    let mut correct = 0;
    let mut total_energy = 0.0;
    let mut total_latency = 0.0;
    for _ in 0..20 {
        let src = rng.gen_range(0..windows_count);
        let offset = rng.gen_range(0..window - 120);
        let mut read: Vec<Base> = windows[src][offset..offset + 120].to_vec();
        for _ in 0..4 {
            let i = rng.gen_range(0..read.len());
            read[i] = random_seq(1, &mut rng)[0];
        }
        let packed = pack(&enc.encode_sequence(&read)?)?;
        let mut distances = vec![0usize; rows];
        for (chunk, tile) in tiles.iter().enumerate() {
            let mut slice = vec![0u8; stages];
            let start = chunk * stages;
            let end = (start + stages).min(packed_dims);
            slice[..end - start].copy_from_slice(&packed.levels()[start..end]);
            let outcome = TdamArray::search(tile, &slice)?;
            total_energy += outcome.energy.total();
            total_latency += outcome.latency;
            for (r, row) in outcome.rows.iter().enumerate() {
                distances[r] += row.decoded_mismatches;
            }
        }
        let best = distances
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| d)
            .map(|(i, _)| i)
            .expect("rows");
        if best == src {
            correct += 1;
        }
    }
    println!("mapped {correct}/20 reads to their true windows");
    println!(
        "mean per-read search: {:.2} ns, {:.2} pJ",
        total_latency / 20.0 * 1e9,
        total_energy / 20.0 * 1e12
    );
    Ok(())
}
