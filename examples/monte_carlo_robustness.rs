//! Monte Carlo robustness analysis under FeFET threshold-voltage
//! variation (the paper's Fig. 6 experiment as a library workflow).
//!
//! Run with: `cargo run --release --example monte_carlo_robustness`

use fetdam::fefet::VthVariation;
use fetdam::tdam::config::ArrayConfig;
use fetdam::tdam::monte_carlo::{run, McConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let array = ArrayConfig::paper_default().with_stages(64);
    println!("64-stage chain, worst case (every stage mismatched by one level), 500 runs\n");

    for (label, variation) in [
        ("no variation", VthVariation::none()),
        ("uniform sigma = 40 mV", VthVariation::uniform(40e-3)),
        ("uniform sigma = 60 mV", VthVariation::uniform(60e-3)),
        (
            "experimental (7.1/35/45/40 mV)",
            VthVariation::experimental(),
        ),
    ] {
        let result = run(&McConfig::worst_case(array, variation, 500, 0xCAFE))?;
        println!("{label}:");
        println!(
            "  delay {:.4} ns ± {:.1} ps  (nominal {:.4} ns, margin ±{:.1} ps)",
            result.summary.mean * 1e9,
            result.summary.std_dev * 1e12,
            result.nominal_delay * 1e9,
            result.sensing_margin * 1e12
        );
        println!(
            "  within sensing margin: {:.1}%   correct decode: {:.1}%\n",
            result.within_margin * 100.0,
            result.decode_accuracy * 100.0
        );
    }

    let result = run(&McConfig::worst_case(
        array,
        VthVariation::uniform(60e-3),
        500,
        0xCAFE,
    ))?;
    println!("delay histogram at sigma = 60 mV:");
    println!("{}", result.histogram(12).render_ascii(40));
    Ok(())
}
