//! Supply-voltage scaling: the energy/latency trade-off of Fig. 5(c)(d).
//!
//! Run with: `cargo run --release --example voltage_scaling`

use fetdam::tdam::chain::DelayChain;
use fetdam::tdam::config::ArrayConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("64-stage chain, 6 fF load capacitors, quarter-mismatch workload\n");
    println!(
        "{:>8} {:>14} {:>14} {:>16}",
        "V_DD", "energy (fJ)", "delay (ns)", "E/bit (fJ/bit)"
    );
    let stages = 64;
    let n_mis = stages / 4;
    for vdd in [1.1, 1.0, 0.9, 0.8, 0.7, 0.6] {
        let cfg = ArrayConfig::paper_default()
            .with_stages(stages)
            .with_vdd(vdd);
        let chain = DelayChain::new(&vec![1u8; stages], &cfg)?;
        let mut query = vec![1u8; stages];
        for q in query.iter_mut().take(n_mis) {
            *q = 2;
        }
        let r = chain.evaluate(&query)?;
        println!(
            "{vdd:>8.2} {:>14.2} {:>14.3} {:>16.3}",
            r.energy.total() * 1e15,
            r.total_delay * 1e9,
            r.energy.total() * 1e15 / cfg.bits_per_row() as f64
        );
    }
    println!(
        "\nScaling V_DD from 1.1 V to 0.6 V cuts energy ~3.4x for a ~9x latency cost —\n\
         the trade the paper exploits for its 0.159 fJ/bit best case."
    );
    Ok(())
}
