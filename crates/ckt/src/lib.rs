//! A small MNA-based transient circuit simulator.
//!
//! The paper evaluates its TD-AM exclusively through SPICE (Cadence Spectre
//! with a 40 nm PDK). The Rust ecosystem has no circuit simulator, so this
//! crate implements the minimal-but-real subset needed to reproduce the
//! paper's circuit-level experiments:
//!
//! - [`netlist`] — circuit description: nodes, R/C, independent sources,
//!   MOSFETs (using the smooth EKV-style model from [`tdam_fefet::mosfet`])
//!   and FeFETs (a MOSFET whose `V_TH` comes from stored polarization),
//! - [`waveform`] — input stimuli (DC / pulse / PWL) and sampled output
//!   [`waveform::Trace`]s with crossing detection and delay measurement,
//! - [`linear`] / [`sparse`] — dense LU for stage-sized systems, sparse
//!   row-elimination LU for monolithic chain netlists (the analyses pick
//!   automatically by system size),
//! - [`analysis`] — DC operating point (Newton with g_min stepping) and
//!   adaptive-step transient analysis (trapezoidal companion models with a
//!   backward-Euler first step), including supply-energy integration,
//! - [`export`] — CSV and VCD (GTKWave) waveform writers.
//!
//! Delay *chains* are feed-forward (each stage's output drives only the
//! next stage's gate), so the TD-AM crate simulates stage-sized circuits
//! sequentially, converting each stage's output [`waveform::Trace`] into the
//! next stage's PWL source. That keeps 128-stage transients and Monte Carlo
//! sweeps tractable without a sparse solver.
//!
//! # Examples
//!
//! An RC low-pass step response:
//!
//! ```
//! use tdam_ckt::netlist::Netlist;
//! use tdam_ckt::waveform::Waveform;
//! use tdam_ckt::analysis::{Transient, TranConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new();
//! let inp = nl.node("in");
//! let out = nl.node("out");
//! nl.vsource("VIN", inp, Netlist::GND, Waveform::step(0.0, 1.0, 1e-9));
//! nl.resistor("R1", inp, out, 1_000.0)?;
//! nl.capacitor("C1", out, Netlist::GND, 1e-12)?;
//!
//! let result = Transient::new(&nl, TranConfig::until(10e-9)).run()?;
//! let v_end = result.trace("out")?.last_value();
//! assert!((v_end - 1.0).abs() < 0.01, "settles to the step level");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod export;
pub mod linear;
pub mod netlist;
pub mod sparse;
pub mod waveform;

pub use analysis::{DcOp, TranConfig, TranResult, Transient};
pub use netlist::{Netlist, NodeId};
pub use waveform::{Trace, Waveform};

/// Errors produced by circuit construction or analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CktError {
    /// An element parameter was invalid (negative resistance, NaN, …).
    InvalidElement {
        /// Element name as given to the netlist builder.
        name: String,
        /// What was wrong.
        reason: &'static str,
    },
    /// Newton iteration failed to converge.
    NoConvergence {
        /// The analysis phase that failed ("dc", "transient").
        phase: &'static str,
        /// Simulation time at failure (seconds; 0 for DC).
        time: f64,
    },
    /// A requested node or trace name does not exist.
    UnknownNode {
        /// The name that failed to resolve.
        name: String,
    },
    /// The linear solver hit a singular matrix (floating node, shorted
    /// source loop, …).
    SingularMatrix,
}

impl core::fmt::Display for CktError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidElement { name, reason } => {
                write!(f, "invalid element {name}: {reason}")
            }
            Self::NoConvergence { phase, time } => {
                write!(f, "{phase} analysis failed to converge at t={time:.4e} s")
            }
            Self::UnknownNode { name } => write!(f, "unknown node or trace {name}"),
            Self::SingularMatrix => write!(f, "singular MNA matrix (floating node?)"),
        }
    }
}

impl std::error::Error for CktError {}

/// Coarse failure classification consumed by serving-layer retry logic.
///
/// The split is operational, not taxonomic: *transient* failures are worth
/// retrying (possibly with escalated solver settings — see the g_min
/// stepping in [`analysis`]), *permanent* ones are circuit-description
/// bugs that no retry will fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Retrying (same or escalated solver settings) may succeed:
    /// convergence failures depend on operating point and step history.
    Transient,
    /// Deterministic: malformed netlists, unknown nodes, and structurally
    /// singular matrices fail identically on every attempt.
    Permanent,
}

impl CktError {
    /// Classifies this error for retry decisions.
    pub fn class(&self) -> FailureClass {
        match self {
            Self::NoConvergence { .. } => FailureClass::Transient,
            Self::InvalidElement { .. } | Self::UnknownNode { .. } | Self::SingularMatrix => {
                FailureClass::Permanent
            }
        }
    }

    /// Whether a retry can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        self.class() == FailureClass::Transient
    }
}
