//! Dense linear algebra: LU factorization with partial pivoting.
//!
//! Stage-sized MNA systems have at most a few dozen unknowns, so a dense
//! solver is both simpler and faster than a sparse one here.

use crate::CktError;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.n && c < self.n, "index out of bounds");
        self.data[r * self.n + c]
    }

    /// Adds `v` to entry `(r, c)` (the natural MNA "stamp" operation).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.n && c < self.n, "index out of bounds");
        self.data[r * self.n + c] += v;
    }

    /// Zeroes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Solves `A·x = b` in place: factorizes a copy of `A` with partial
    /// pivoting and overwrites `b` with the solution.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::SingularMatrix`] when a pivot underflows.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &mut [f64]) -> Result<(), CktError> {
        assert_eq!(b.len(), self.n, "rhs length must match dimension");
        let n = self.n;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivot: find the largest magnitude in column k.
            let mut p = k;
            let mut max = lu[perm[k] * n + k].abs();
            for (i, &pi) in perm.iter().enumerate().skip(k + 1) {
                let v = lu[pi * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-30 {
                return Err(CktError::SingularMatrix);
            }
            perm.swap(k, p);
            let pk = perm[k];
            let pivot = lu[pk * n + k];
            for &pi in perm.iter().skip(k + 1) {
                let factor = lu[pi * n + k] / pivot;
                lu[pi * n + k] = factor;
                for j in (k + 1)..n {
                    lu[pi * n + j] -= factor * lu[pk * n + j];
                }
            }
        }

        // Forward substitution (L has unit diagonal).
        let mut y = vec![0.0; n];
        for k in 0..n {
            let pk = perm[k];
            let mut acc = b[pk];
            for (j, &yj) in y.iter().enumerate().take(k) {
                acc -= lu[pk * n + j] * yj;
            }
            y[k] = acc;
        }

        // Back substitution.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let pk = perm[k];
            let mut acc = y[k];
            for (j, &xj) in x.iter().enumerate().skip(k + 1) {
                acc -= lu[pk * n + j] * xj;
            }
            x[k] = acc / lu[pk * n + k];
        }
        b.copy_from_slice(&x);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_identity() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m.add(i, i, 1.0);
        }
        let mut b = vec![1.0, 2.0, 3.0];
        m.solve(&mut b).unwrap();
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_2x2() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 2.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 3.0);
        let mut b = vec![5.0, 10.0];
        m.solve(&mut b).unwrap();
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        let mut b = vec![3.0, 4.0];
        m.solve(&mut b).unwrap();
        assert_eq!(b, vec![4.0, 3.0]);
    }

    #[test]
    fn singular_detected() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        assert_eq!(m.solve(&mut b), Err(CktError::SingularMatrix));
    }

    #[test]
    fn clear_resets() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 5.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }

    proptest! {
        #[test]
        fn random_diagonally_dominant(seed_vals in prop::collection::vec(-1.0f64..1.0, 16),
                                      rhs in prop::collection::vec(-10.0f64..10.0, 4)) {
            let n = 4;
            let mut m = DenseMatrix::zeros(n);
            for r in 0..n {
                let mut row_sum = 0.0;
                for c in 0..n {
                    if r != c {
                        let v = seed_vals[r * n + c];
                        m.add(r, c, v);
                        row_sum += v.abs();
                    }
                }
                m.add(r, r, row_sum + 1.0);
            }
            let mut x = rhs.clone();
            m.solve(&mut x).unwrap();
            // Verify residual A·x ≈ b.
            for r in 0..n {
                let mut acc = 0.0;
                for (c, &xc) in x.iter().enumerate() {
                    acc += m.get(r, c) * xc;
                }
                prop_assert!((acc - rhs[r]).abs() < 1e-8);
            }
        }
    }
}
