//! Input stimuli and sampled output traces.

use serde::{Deserialize, Serialize};

/// An independent-source stimulus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE-style pulse.
    Pulse {
        /// Initial level (volts or amperes).
        v0: f64,
        /// Pulsed level.
        v1: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Pulse width at `v1`, seconds.
        width: f64,
        /// Repetition period; `None` for a single pulse.
        period: Option<f64>,
    },
    /// Piecewise-linear waveform: `(time, value)` points with strictly
    /// increasing times; holds the last value afterwards and the first value
    /// before the first point.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// A constant waveform.
    pub fn dc(v: f64) -> Self {
        Self::Dc(v)
    }

    /// A step from `v0` to `v1` at time `t_step`, with a 1 ps edge.
    pub fn step(v0: f64, v1: f64, t_step: f64) -> Self {
        Self::Pwl(vec![(0.0, v0), (t_step, v0), (t_step + 1e-12, v1)])
    }

    /// A single rectangular pulse with symmetric `edge` rise/fall times.
    pub fn pulse_once(v0: f64, v1: f64, delay: f64, edge: f64, width: f64) -> Self {
        Self::Pulse {
            v0,
            v1,
            delay,
            rise: edge,
            fall: edge,
            width,
            period: None,
        }
    }

    /// Evaluates the stimulus at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Self::Dc(v) => *v,
            Self::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                let mut tl = t - delay;
                if tl < 0.0 {
                    return *v0;
                }
                if let Some(p) = period {
                    if *p > 0.0 {
                        tl %= p;
                    }
                }
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                if tl < rise {
                    v0 + (v1 - v0) * tl / rise
                } else if tl < rise + width {
                    *v1
                } else if tl < rise + width + fall {
                    v1 + (v0 - v1) * (tl - rise - width) / fall
                } else {
                    *v0
                }
            }
            Self::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty").1
            }
        }
    }

    /// Times at which the stimulus has corners the integrator should step
    /// on exactly (breakpoints), within `[0, t_stop]`.
    pub fn breakpoints(&self, t_stop: f64) -> Vec<f64> {
        let mut bps = Vec::new();
        match self {
            Self::Dc(_) => {}
            Self::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let corners = [0.0, *rise, rise + width, rise + width + fall];
                let mut base = *delay;
                loop {
                    for c in corners {
                        let t = base + c;
                        if t <= t_stop {
                            bps.push(t);
                        }
                    }
                    match period {
                        Some(p) if *p > 0.0 && base + p <= t_stop => base += p,
                        _ => break,
                    }
                }
            }
            Self::Pwl(points) => {
                bps.extend(points.iter().map(|&(t, _)| t).filter(|&t| t <= t_stop));
            }
        }
        bps
    }
}

/// Edge direction for crossing searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Edge {
    /// Value increasing through the threshold.
    Rising,
    /// Value decreasing through the threshold.
    Falling,
    /// Either direction.
    Any,
}

/// A sampled signal: monotone time points with values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Sample times, seconds, strictly increasing.
    pub time: Vec<f64>,
    /// Sample values.
    pub value: Vec<f64>,
}

impl Trace {
    /// Creates a trace from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn new(time: Vec<f64>, value: Vec<f64>) -> Self {
        assert_eq!(time.len(), value.len(), "trace vectors must pair up");
        Self { time, value }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// The last sampled value (0.0 for an empty trace).
    pub fn last_value(&self) -> f64 {
        self.value.last().copied().unwrap_or(0.0)
    }

    /// Linear interpolation at time `t` (clamped to the trace span).
    pub fn sample(&self, t: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        if t <= self.time[0] {
            return self.value[0];
        }
        if t >= *self.time.last().expect("non-empty") {
            return self.last_value();
        }
        let idx = match self
            .time
            .binary_search_by(|p| p.partial_cmp(&t).expect("finite times"))
        {
            Ok(i) => return self.value[i],
            Err(i) => i,
        };
        let (t0, t1) = (self.time[idx - 1], self.time[idx]);
        let (v0, v1) = (self.value[idx - 1], self.value[idx]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Finds the `n`-th time (0-based) the trace crosses `threshold` with
    /// the requested [`Edge`], linearly interpolated. Returns `None` if the
    /// crossing does not occur.
    pub fn crossing(&self, threshold: f64, edge: Edge, n: usize) -> Option<f64> {
        let mut seen = 0;
        for i in 1..self.len() {
            let (v0, v1) = (self.value[i - 1], self.value[i]);
            let rising = v0 < threshold && v1 >= threshold;
            let falling = v0 > threshold && v1 <= threshold;
            let hit = match edge {
                Edge::Rising => rising,
                Edge::Falling => falling,
                Edge::Any => rising || falling,
            };
            if hit {
                if seen == n {
                    let (t0, t1) = (self.time[i - 1], self.time[i]);
                    let frac = (threshold - v0) / (v1 - v0);
                    return Some(t0 + frac * (t1 - t0));
                }
                seen += 1;
            }
        }
        None
    }

    /// First crossing convenience wrapper.
    pub fn first_crossing(&self, threshold: f64, edge: Edge) -> Option<f64> {
        self.crossing(threshold, edge, 0)
    }

    /// Converts the trace into a PWL stimulus, optionally decimating to at
    /// most `max_points` samples (keeping endpoints).
    pub fn to_waveform(&self, max_points: usize) -> Waveform {
        let n = self.len();
        if n == 0 {
            return Waveform::Dc(0.0);
        }
        let stride = n.div_ceil(max_points.max(2)).max(1);
        let mut pts: Vec<(f64, f64)> = self
            .time
            .iter()
            .zip(&self.value)
            .step_by(stride)
            .map(|(&t, &v)| (t, v))
            .collect();
        let last = (self.time[n - 1], self.value[n - 1]);
        if pts.last() != Some(&last) {
            pts.push(last);
        }
        Waveform::Pwl(pts)
    }

    /// Trapezoidal integral of the trace over its full span.
    pub fn integral(&self) -> f64 {
        let mut acc = 0.0;
        for i in 1..self.len() {
            let dt = self.time[i] - self.time[i - 1];
            acc += 0.5 * (self.value[i] + self.value[i - 1]) * dt;
        }
        acc
    }

    /// Trapezoidal integral of `self(t) * other(t)` over this trace's time
    /// base (e.g. supply energy `∫ v·i dt`).
    pub fn integral_product(&self, other: &Trace) -> f64 {
        let mut acc = 0.0;
        for i in 1..self.len() {
            let dt = self.time[i] - self.time[i - 1];
            let p0 = self.value[i - 1] * other.sample(self.time[i - 1]);
            let p1 = self.value[i] * other.sample(self.time[i]);
            acc += 0.5 * (p0 + p1) * dt;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dc_constant() {
        let w = Waveform::dc(1.1);
        assert_eq!(w.value_at(0.0), 1.1);
        assert_eq!(w.value_at(1.0), 1.1);
        assert!(w.breakpoints(1.0).is_empty());
    }

    #[test]
    fn pulse_shape() {
        let w = Waveform::pulse_once(0.0, 1.0, 1e-9, 0.1e-9, 2e-9);
        assert_eq!(w.value_at(0.5e-9), 0.0);
        assert!((w.value_at(1.05e-9) - 0.5).abs() < 1e-9);
        assert_eq!(w.value_at(2.0e-9), 1.0);
        assert_eq!(w.value_at(5.0e-9), 0.0);
    }

    #[test]
    fn periodic_pulse_repeats() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 0.3e-9,
            period: Some(1e-9),
        };
        assert_eq!(w.value_at(0.2e-9), 1.0);
        assert_eq!(w.value_at(1.2e-9), 1.0);
        assert_eq!(w.value_at(0.8e-9), 0.0);
        assert_eq!(w.value_at(1.8e-9), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_holds() {
        let w = Waveform::Pwl(vec![(1.0, 0.0), (2.0, 10.0)]);
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(1.5), 5.0);
        assert_eq!(w.value_at(3.0), 10.0);
    }

    #[test]
    fn empty_pwl_is_zero() {
        assert_eq!(Waveform::Pwl(vec![]).value_at(1.0), 0.0);
    }

    #[test]
    fn pulse_breakpoints() {
        let w = Waveform::pulse_once(0.0, 1.0, 1e-9, 0.1e-9, 2e-9);
        let bps = w.breakpoints(10e-9);
        assert_eq!(bps.len(), 4);
        assert!((bps[0] - 1e-9).abs() < 1e-18);
        assert!((bps[3] - 3.2e-9).abs() < 1e-18);
    }

    #[test]
    fn trace_sampling() {
        let t = Trace::new(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 0.0]);
        assert_eq!(t.sample(0.5), 1.0);
        assert_eq!(t.sample(1.0), 2.0);
        assert_eq!(t.sample(-1.0), 0.0);
        assert_eq!(t.sample(9.0), 0.0);
    }

    #[test]
    fn crossings_by_index_and_edge() {
        let t = Trace::new(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(t.first_crossing(0.5, Edge::Rising), Some(0.5));
        assert_eq!(t.crossing(0.5, Edge::Rising, 1), Some(2.5));
        assert_eq!(t.first_crossing(0.5, Edge::Falling), Some(1.5));
        assert_eq!(t.crossing(0.5, Edge::Any, 3), Some(3.5));
        assert_eq!(t.crossing(0.5, Edge::Rising, 2), None);
        assert_eq!(t.first_crossing(2.0, Edge::Rising), None);
    }

    #[test]
    fn integral_of_triangle() {
        let t = Trace::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]);
        assert!((t.integral() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn integral_product_constant() {
        let v = Trace::new(vec![0.0, 1.0], vec![2.0, 2.0]);
        let i = Trace::new(vec![0.0, 1.0], vec![3.0, 3.0]);
        assert!((v.integral_product(&i) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn to_waveform_roundtrip() {
        let t = Trace::new(
            (0..100).map(|i| i as f64 * 1e-12).collect(),
            (0..100).map(|i| (i as f64 * 0.01).sin()).collect(),
        );
        let w = t.to_waveform(1000);
        for i in (0..100).step_by(7) {
            let ti = i as f64 * 1e-12;
            assert!((w.value_at(ti) - t.sample(ti)).abs() < 1e-9);
        }
    }

    #[test]
    fn to_waveform_decimation_keeps_endpoints() {
        let t = Trace::new(
            (0..1000).map(|i| i as f64).collect(),
            (0..1000).map(|i| i as f64 * 2.0).collect(),
        );
        let w = t.to_waveform(50);
        if let Waveform::Pwl(pts) = &w {
            assert!(pts.len() <= 52);
            assert_eq!(pts[0], (0.0, 0.0));
            assert_eq!(*pts.last().unwrap(), (999.0, 1998.0));
        } else {
            panic!("expected PWL");
        }
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_trace_panics() {
        let _ = Trace::new(vec![0.0], vec![]);
    }

    proptest! {
        #[test]
        fn pulse_bounded(t in 0.0f64..20e-9) {
            let w = Waveform::pulse_once(0.2, 1.3, 1e-9, 0.2e-9, 3e-9);
            let v = w.value_at(t);
            prop_assert!((0.2..=1.3).contains(&v));
        }

        #[test]
        fn trace_sample_within_bounds(t in -1.0f64..5.0) {
            let tr = Trace::new(vec![0.0, 1.0, 2.0, 3.0], vec![1.0, -2.0, 5.0, 0.0]);
            let v = tr.sample(t);
            prop_assert!((-2.0..=5.0).contains(&v));
        }
    }
}
