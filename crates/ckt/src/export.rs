//! Waveform export: CSV and VCD writers for simulation traces.
//!
//! Transient results are most useful when they can leave the program —
//! CSV for plotting (gnuplot, matplotlib, spreadsheets) and VCD for
//! waveform viewers (GTKWave). Both writers take any [`std::io::Write`]
//! sink (pass `&mut file` to keep ownership, per C-RW-VALUE).

use crate::analysis::TranResult;
use crate::waveform::Trace;
use crate::CktError;
use std::io::Write;

/// Error from an export operation: either an unknown signal or an I/O
/// failure.
#[derive(Debug)]
pub enum ExportError {
    /// A requested signal does not exist in the result.
    Circuit(CktError),
    /// The sink failed.
    Io(std::io::Error),
}

impl core::fmt::Display for ExportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Circuit(e) => write!(f, "export failed: {e}"),
            Self::Io(e) => write!(f, "export I/O failed: {e}"),
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Circuit(e) => Some(e),
            Self::Io(e) => Some(e),
        }
    }
}

impl From<CktError> for ExportError {
    fn from(e: CktError) -> Self {
        Self::Circuit(e)
    }
}

impl From<std::io::Error> for ExportError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes the named node voltages of a transient result as CSV: a `time`
/// column followed by one column per node, full `f64` precision.
///
/// # Errors
///
/// Returns [`ExportError`] for unknown nodes or sink failures.
pub fn write_csv<W: Write>(
    result: &TranResult,
    nodes: &[&str],
    mut sink: W,
) -> Result<(), ExportError> {
    let traces: Vec<Trace> = nodes
        .iter()
        .map(|n| result.trace(n))
        .collect::<Result<_, _>>()?;
    write!(sink, "time")?;
    for n in nodes {
        write!(sink, ",{n}")?;
    }
    writeln!(sink)?;
    for (i, &t) in result.time().iter().enumerate() {
        write!(sink, "{t:e}")?;
        for tr in &traces {
            write!(sink, ",{:e}", tr.value[i])?;
        }
        writeln!(sink)?;
    }
    Ok(())
}

/// Writes the named node voltages as a VCD (value-change dump) with
/// `real` variables, 1 fs timescale — loadable in GTKWave.
///
/// # Errors
///
/// Returns [`ExportError`] for unknown nodes or sink failures.
pub fn write_vcd<W: Write>(
    result: &TranResult,
    nodes: &[&str],
    mut sink: W,
) -> Result<(), ExportError> {
    let traces: Vec<Trace> = nodes
        .iter()
        .map(|n| result.trace(n))
        .collect::<Result<_, _>>()?;
    writeln!(sink, "$timescale 1fs $end")?;
    writeln!(sink, "$scope module tdam $end")?;
    // VCD id codes: printable characters starting at '!'.
    let ids: Vec<char> = (0..nodes.len())
        .map(|i| char::from(b'!' + i as u8))
        .collect();
    for (n, id) in nodes.iter().zip(&ids) {
        writeln!(sink, "$var real 64 {id} {n} $end")?;
    }
    writeln!(sink, "$upscope $end")?;
    writeln!(sink, "$enddefinitions $end")?;
    let mut last: Vec<Option<f64>> = vec![None; nodes.len()];
    for (i, &t) in result.time().iter().enumerate() {
        let fs = (t * 1e15).round() as u64;
        let mut stamped = false;
        for (k, tr) in traces.iter().enumerate() {
            let v = tr.value[i];
            if last[k] != Some(v) {
                if !stamped {
                    writeln!(sink, "#{fs}")?;
                    stamped = true;
                }
                writeln!(sink, "r{v:e} {}", ids[k])?;
                last[k] = Some(v);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{TranConfig, Transient};
    use crate::netlist::Netlist;
    use crate::waveform::Waveform;

    fn rc_result() -> TranResult {
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VIN", inp, Netlist::GND, Waveform::step(0.0, 1.0, 1e-9));
        nl.resistor("R1", inp, out, 1000.0).expect("resistor");
        nl.capacitor("C1", out, Netlist::GND, 1e-12)
            .expect("capacitor");
        Transient::new(&nl, TranConfig::until(5e-9))
            .run()
            .expect("transient")
    }

    #[test]
    fn csv_has_header_and_rows() {
        let result = rc_result();
        let mut buf = Vec::new();
        write_csv(&result, &["in", "out"], &mut buf).expect("csv");
        let text = String::from_utf8(buf).expect("utf8");
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("time,in,out"));
        let rows = lines.count();
        assert_eq!(rows, result.time().len());
        // Every row has exactly 3 comma-separated fields.
        for line in text.lines().skip(1).take(5) {
            assert_eq!(line.split(',').count(), 3, "{line}");
        }
    }

    #[test]
    fn csv_rejects_unknown_node() {
        let result = rc_result();
        let mut buf = Vec::new();
        assert!(matches!(
            write_csv(&result, &["nope"], &mut buf),
            Err(ExportError::Circuit(_))
        ));
    }

    #[test]
    fn vcd_structure() {
        let result = rc_result();
        let mut buf = Vec::new();
        write_vcd(&result, &["in", "out"], &mut buf).expect("vcd");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.starts_with("$timescale 1fs $end"));
        assert!(text.contains("$var real 64 ! in $end"));
        assert!(text.contains("$var real 64 \" out $end"));
        assert!(text.contains("$enddefinitions $end"));
        // Timestamps strictly increase.
        let stamps: Vec<u64> = text
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|s| s.parse().expect("fs stamp"))
            .collect();
        assert!(stamps.len() > 10);
        for w in stamps.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn vcd_deduplicates_unchanged_values() {
        let result = rc_result();
        let mut buf = Vec::new();
        write_vcd(&result, &["in"], &mut buf).expect("vcd");
        let text = String::from_utf8(buf).expect("utf8");
        // The input holds 0 then 1; value-change lines must be far fewer
        // than timepoints.
        let changes = text.lines().filter(|l| l.starts_with('r')).count();
        assert!(
            changes < result.time().len() / 2,
            "{changes} changes for {} samples",
            result.time().len()
        );
    }
}
