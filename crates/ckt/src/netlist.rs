//! Circuit description: nodes and elements.

use crate::waveform::Waveform;
use crate::CktError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tdam_fefet::mosfet::MosParams;

/// A circuit node handle. [`Netlist::GND`] is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Whether this is the ground/reference node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// MNA unknown index for a non-ground node.
    pub(crate) fn unknown(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

/// One circuit element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// A linear resistor between two nodes.
    Resistor {
        /// Element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (> 0).
        ohms: f64,
    },
    /// A linear capacitor between two nodes.
    Capacitor {
        /// Element name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (≥ 0).
        farads: f64,
    },
    /// An independent voltage source (adds one MNA branch unknown).
    VSource {
        /// Element name.
        name: String,
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Stimulus.
        wave: Waveform,
    },
    /// An independent current source (current flows p → n externally).
    ISource {
        /// Element name.
        name: String,
        /// Terminal the current is pulled from.
        p: NodeId,
        /// Terminal the current is pushed into.
        n: NodeId,
        /// Stimulus (amperes).
        wave: Waveform,
    },
    /// A MOSFET (drain, gate, source; bulk tied to source). FeFETs are
    /// expressed as MOSFETs whose `vth` reflects their programmed
    /// polarization, plus an explicit gate capacitor.
    Mosfet {
        /// Element name.
        name: String,
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Device model parameters.
        params: MosParams,
    },
}

impl Element {
    /// The element's name.
    pub fn name(&self) -> &str {
        match self {
            Self::Resistor { name, .. }
            | Self::Capacitor { name, .. }
            | Self::VSource { name, .. }
            | Self::ISource { name, .. }
            | Self::Mosfet { name, .. } => name,
        }
    }
}

/// A circuit under construction.
///
/// # Examples
///
/// ```
/// use tdam_ckt::netlist::Netlist;
/// use tdam_ckt::waveform::Waveform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new();
/// let a = nl.node("a");
/// nl.vsource("V1", a, Netlist::GND, Waveform::dc(1.0));
/// nl.resistor("R1", a, Netlist::GND, 50.0)?;
/// assert_eq!(nl.node_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    names: HashMap<String, NodeId>,
    next: usize,
    elements: Vec<Element>,
}

impl Netlist {
    /// The ground / reference node.
    pub const GND: NodeId = NodeId(0);

    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self {
            names: HashMap::new(),
            next: 1,
            elements: Vec::new(),
        }
    }

    /// Returns the node with the given name, creating it if needed.
    /// The names `"0"` and `"gnd"` resolve to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Self::GND;
        }
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = NodeId(self.next);
        self.next += 1;
        self.names.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::UnknownNode`] when no node has that name.
    pub fn find_node(&self, name: &str) -> Result<NodeId, CktError> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Ok(Self::GND);
        }
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| CktError::UnknownNode {
                name: name.to_owned(),
            })
    }

    /// The number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.next - 1
    }

    /// The elements added so far.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Node names, in insertion order by id.
    pub fn node_names(&self) -> Vec<(String, NodeId)> {
        let mut v: Vec<(String, NodeId)> =
            self.names.iter().map(|(k, &id)| (k.clone(), id)).collect();
        v.sort_by_key(|&(_, id)| id.0);
        v
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::InvalidElement`] for non-positive or non-finite
    /// resistance.
    pub fn resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<(), CktError> {
        if !ohms.is_finite() || ohms <= 0.0 {
            return Err(CktError::InvalidElement {
                name: name.to_owned(),
                reason: "resistance must be positive and finite",
            });
        }
        self.elements.push(Element::Resistor {
            name: name.to_owned(),
            a,
            b,
            ohms,
        });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::InvalidElement`] for negative or non-finite
    /// capacitance.
    pub fn capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<(), CktError> {
        if !farads.is_finite() || farads < 0.0 {
            return Err(CktError::InvalidElement {
                name: name.to_owned(),
                reason: "capacitance must be nonnegative and finite",
            });
        }
        self.elements.push(Element::Capacitor {
            name: name.to_owned(),
            a,
            b,
            farads,
        });
        Ok(())
    }

    /// Adds an independent voltage source.
    pub fn vsource(&mut self, name: &str, p: NodeId, n: NodeId, wave: Waveform) {
        self.elements.push(Element::VSource {
            name: name.to_owned(),
            p,
            n,
            wave,
        });
    }

    /// Adds an independent current source (positive current is pulled from
    /// `p` and pushed into `n`).
    pub fn isource(&mut self, name: &str, p: NodeId, n: NodeId, wave: Waveform) {
        self.elements.push(Element::ISource {
            name: name.to_owned(),
            p,
            n,
            wave,
        });
    }

    /// Adds a MOSFET (drain, gate, source).
    pub fn mosfet(&mut self, name: &str, d: NodeId, g: NodeId, s: NodeId, params: MosParams) {
        self.elements.push(Element::Mosfet {
            name: name.to_owned(),
            d,
            g,
            s,
            params,
        });
    }

    /// Number of voltage sources (MNA branch unknowns).
    pub fn vsource_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut nl = Netlist::new();
        assert!(nl.node("0").is_ground());
        assert!(nl.node("gnd").is_ground());
        assert!(nl.node("GND").is_ground());
        assert_eq!(nl.node_count(), 0);
    }

    #[test]
    fn node_identity_by_name() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let a2 = nl.node("a");
        let b = nl.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(nl.node_count(), 2);
    }

    #[test]
    fn find_unknown_node_errors() {
        let nl = Netlist::new();
        assert!(matches!(
            nl.find_node("missing"),
            Err(CktError::UnknownNode { .. })
        ));
    }

    #[test]
    fn invalid_resistor_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        assert!(nl.resistor("R1", a, Netlist::GND, 0.0).is_err());
        assert!(nl.resistor("R1", a, Netlist::GND, -5.0).is_err());
        assert!(nl.resistor("R1", a, Netlist::GND, f64::NAN).is_err());
        assert!(nl.resistor("R1", a, Netlist::GND, 1.0).is_ok());
    }

    #[test]
    fn invalid_capacitor_rejected() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        assert!(nl.capacitor("C1", a, Netlist::GND, -1e-15).is_err());
        assert!(nl.capacitor("C1", a, Netlist::GND, 0.0).is_ok());
    }

    #[test]
    fn vsource_count() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GND, Waveform::dc(1.0));
        nl.vsource("V2", a, Netlist::GND, Waveform::dc(2.0));
        nl.isource("I1", a, Netlist::GND, Waveform::dc(1e-6));
        assert_eq!(nl.vsource_count(), 2);
    }

    #[test]
    fn unknown_indices() {
        assert_eq!(Netlist::GND.unknown(), None);
        assert_eq!(NodeId(3).unknown(), Some(2));
    }
}
