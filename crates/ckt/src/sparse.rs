//! Sparse LU solver for larger MNA systems.
//!
//! Stage-sized circuits use the dense solver in [`crate::linear`]; a
//! *monolithic* chain netlist (every stage in one matrix, used to validate
//! the stage-handoff method) reaches hundreds of unknowns where dense LU's
//! O(n³) hurts. MNA matrices are extremely sparse (a handful of entries
//! per row, nearly banded for a chain), so row-wise Gaussian elimination
//! over hash-sparse rows with diagonal-preference pivoting handles them in
//! near-linear time.

use crate::CktError;
use std::collections::HashMap;

/// A sparse square matrix assembled from stamps, with an LU-style solve.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    n: usize,
    rows: Vec<HashMap<usize, f64>>,
}

impl SparseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            rows: vec![HashMap::new(); n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Adds `v` to entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.n && c < self.n, "index out of bounds");
        if v != 0.0 {
            *self.rows[r].entry(c).or_insert(0.0) += v;
        }
    }

    /// Reads entry `(r, c)` (zero when absent).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.n && c < self.n, "index out of bounds");
        self.rows[r].get(&c).copied().unwrap_or(0.0)
    }

    /// Zeroes all entries, keeping row allocations.
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
    }

    /// Solves `A·x = b` by sparse Gaussian elimination with
    /// diagonal-preference partial pivoting, overwriting `b` with `x`.
    ///
    /// Pivoting prefers the diagonal when it is within 10⁻³ of the
    /// column's largest magnitude (keeps fill-in low on MNA structure) and
    /// falls back to full partial pivoting otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::SingularMatrix`] when no usable pivot remains.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &mut [f64]) -> Result<(), CktError> {
        assert_eq!(b.len(), self.n, "rhs length must match dimension");
        let n = self.n;
        let mut rows = self.rows.clone();
        // perm[k] = original row index used as the k-th pivot row.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut rhs = b.to_vec();

        for k in 0..n {
            // Find the pivot among remaining rows (positions k..) in
            // column k.
            let mut best: Option<(usize, f64)> = None;
            for (pos, &ri) in perm.iter().enumerate().skip(k) {
                let v = rows[ri].get(&k).copied().unwrap_or(0.0).abs();
                if v > best.map(|(_, bv)| bv).unwrap_or(0.0) {
                    best = Some((pos, v));
                }
            }
            let Some((mut pivot_pos, max_v)) = best else {
                return Err(CktError::SingularMatrix);
            };
            if max_v < 1e-30 {
                return Err(CktError::SingularMatrix);
            }
            // Prefer the natural diagonal row when competitive.
            let diag_pos = perm.iter().position(|&ri| ri == k);
            if let Some(dp) = diag_pos {
                if dp >= k {
                    let dv = rows[perm[dp]].get(&k).copied().unwrap_or(0.0).abs();
                    if dv >= 1e-3 * max_v && dv > 1e-30 {
                        pivot_pos = dp;
                    }
                }
            }
            perm.swap(k, pivot_pos);
            let pr = perm[k];
            let pivot = rows[pr][&k];

            // Eliminate column k from all later rows.
            let pivot_row: Vec<(usize, f64)> = rows[pr]
                .iter()
                .filter(|&(&c, _)| c > k)
                .map(|(&c, &v)| (c, v))
                .collect();
            let pivot_rhs = rhs[pr];
            for &ri in perm.iter().skip(k + 1) {
                let Some(&factor_num) = rows[ri].get(&k) else {
                    continue;
                };
                let factor = factor_num / pivot;
                rows[ri].remove(&k);
                for &(c, v) in &pivot_row {
                    let e = rows[ri].entry(c).or_insert(0.0);
                    *e -= factor * v;
                    if e.abs() < 1e-300 {
                        rows[ri].remove(&c);
                    }
                }
                rhs[ri] -= factor * pivot_rhs;
            }
        }

        // Back substitution.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let pr = perm[k];
            let mut acc = rhs[pr];
            for (&c, &v) in &rows[pr] {
                if c > k {
                    acc -= v * x[c];
                }
            }
            x[k] = acc / rows[pr][&k];
        }
        b.copy_from_slice(&x);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::DenseMatrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn solves_identity() {
        let mut m = SparseMatrix::zeros(3);
        for i in 0..3 {
            m.add(i, i, 2.0);
        }
        let mut b = vec![2.0, 4.0, 6.0];
        m.solve(&mut b).unwrap();
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn needs_pivoting_off_diagonal() {
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        let mut b = vec![3.0, 4.0];
        m.solve(&mut b).unwrap();
        assert_eq!(b, vec![4.0, 3.0]);
    }

    #[test]
    fn singular_detected() {
        let mut m = SparseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 2.0);
        m.add(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        assert_eq!(m.solve(&mut b), Err(CktError::SingularMatrix));
    }

    #[test]
    fn empty_row_is_singular() {
        let mut m = SparseMatrix::zeros(3);
        m.add(0, 0, 1.0);
        m.add(2, 2, 1.0);
        let mut b = vec![1.0, 1.0, 1.0];
        assert_eq!(m.solve(&mut b), Err(CktError::SingularMatrix));
    }

    #[test]
    fn matches_dense_on_random_mna_like_systems() {
        // Tridiagonal-plus-coupling systems shaped like chain MNA.
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            let n = 5 + (trial % 30);
            let mut sparse = SparseMatrix::zeros(n);
            let mut dense = DenseMatrix::zeros(n);
            for i in 0..n {
                let d = 1.0 + rng.gen::<f64>() * 10.0;
                sparse.add(i, i, d);
                dense.add(i, i, d);
                if i + 1 < n {
                    let c = rng.gen::<f64>() - 0.5;
                    sparse.add(i, i + 1, c);
                    dense.add(i, i + 1, c);
                    sparse.add(i + 1, i, c);
                    dense.add(i + 1, i, c);
                }
                // Occasional long-range coupling (source rows).
                if i > 3 && rng.gen_bool(0.2) {
                    let c = rng.gen::<f64>() - 0.5;
                    sparse.add(i, i - 3, c);
                    dense.add(i, i - 3, c);
                }
            }
            let rhs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
            let mut xs = rhs.clone();
            let mut xd = rhs.clone();
            sparse.solve(&mut xs).unwrap();
            dense.solve(&mut xd).unwrap();
            for (a, b) in xs.iter().zip(&xd) {
                assert!((a - b).abs() < 1e-8, "sparse {a} vs dense {b}");
            }
        }
    }

    #[test]
    fn clear_keeps_dimension() {
        let mut m = SparseMatrix::zeros(4);
        m.add(1, 2, 5.0);
        m.clear();
        assert_eq!(m.get(1, 2), 0.0);
        assert_eq!(m.dim(), 4);
    }

    proptest! {
        #[test]
        fn diagonally_dominant_always_solves(n in 2usize..20, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = SparseMatrix::zeros(n);
            let mut rowsum = vec![0.0; n];
            for i in 0..n {
                for j in 0..n {
                    if i != j && rng.gen_bool(0.3) {
                        let v: f64 = rng.gen::<f64>() - 0.5;
                        m.add(i, j, v);
                        rowsum[i] += v.abs();
                    }
                }
            }
            for (i, &s) in rowsum.iter().enumerate() {
                m.add(i, i, s + 1.0);
            }
            let rhs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            let mut x = rhs.clone();
            m.solve(&mut x).unwrap();
            // Residual check.
            for i in 0..n {
                let mut acc = 0.0;
                for (j, &xj) in x.iter().enumerate() {
                    acc += m.get(i, j) * xj;
                }
                prop_assert!((acc - rhs[i]).abs() < 1e-7);
            }
        }
    }
}
