//! DC operating point and transient analysis.
//!
//! Both analyses assemble a Modified Nodal Analysis system: unknowns are
//! the non-ground node voltages followed by one branch current per voltage
//! source. Nonlinear devices (MOSFETs) are linearized around the current
//! Newton iterate with Norton companion models; capacitors use trapezoidal
//! companions (backward Euler on the first step after DC, which damps the
//! artificial ringing trapezoidal integration would otherwise inherit from
//! an inconsistent initial condition).

use crate::linear::DenseMatrix;
use crate::netlist::{Element, Netlist};
use crate::sparse::SparseMatrix;
use crate::waveform::{Trace, Waveform};
use crate::CktError;
use std::collections::HashMap;
use tdam_fefet::mosfet::ids;

/// Newton convergence tolerances.
const V_ABSTOL: f64 = 1e-6;
const RELTOL: f64 = 1e-6;
const MAX_NEWTON: usize = 200;

/// Configuration for a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranConfig {
    /// Stop time, seconds.
    pub t_stop: f64,
    /// Initial step, seconds.
    pub h_init: f64,
    /// Smallest step before giving up, seconds.
    pub h_min: f64,
    /// Largest step the controller may grow to, seconds.
    pub h_max: f64,
    /// Extra conductance from every node to ground for robustness, siemens.
    pub gmin: f64,
}

impl TranConfig {
    /// A sensible default configuration for a run of length `t_stop`:
    /// initial step `t_stop/2000`, max step `t_stop/500`.
    pub fn until(t_stop: f64) -> Self {
        Self {
            t_stop,
            h_init: t_stop / 2000.0,
            h_min: t_stop / 1e9,
            h_max: t_stop / 500.0,
            gmin: 1e-12,
        }
    }

    /// Returns a copy with a different maximum step (also clamping the
    /// initial step to it).
    pub fn with_max_step(mut self, h_max: f64) -> Self {
        self.h_max = h_max;
        self.h_init = self.h_init.min(h_max);
        self
    }
}

/// Result of a transient run: sampled node voltages and source currents.
#[derive(Debug, Clone)]
pub struct TranResult {
    time: Vec<f64>,
    /// Per non-ground node: sampled voltages (index = unknown index).
    node_samples: Vec<Vec<f64>>,
    /// Per voltage source: sampled branch currents.
    source_samples: Vec<Vec<f64>>,
    node_index: HashMap<String, usize>,
    source_index: HashMap<String, usize>,
    source_waves: Vec<Waveform>,
}

impl TranResult {
    /// The shared time base.
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// The voltage trace of a named node.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::UnknownNode`] when the node does not exist.
    pub fn trace(&self, node: &str) -> Result<Trace, CktError> {
        let &i = self
            .node_index
            .get(node)
            .ok_or_else(|| CktError::UnknownNode {
                name: node.to_owned(),
            })?;
        Ok(Trace::new(self.time.clone(), self.node_samples[i].clone()))
    }

    /// The branch-current trace of a named voltage source. Positive current
    /// flows from the positive terminal *through the source* to the
    /// negative terminal (so a source powering a load shows negative
    /// current).
    ///
    /// # Errors
    ///
    /// Returns [`CktError::UnknownNode`] when no source has that name.
    pub fn source_current(&self, source: &str) -> Result<Trace, CktError> {
        let &i = self
            .source_index
            .get(source)
            .ok_or_else(|| CktError::UnknownNode {
                name: source.to_owned(),
            })?;
        Ok(Trace::new(
            self.time.clone(),
            self.source_samples[i].clone(),
        ))
    }

    /// Energy delivered by a voltage source over the run, joules:
    /// `−∫ V(t)·i(t) dt`.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::UnknownNode`] when no source has that name.
    pub fn delivered_energy(&self, source: &str) -> Result<f64, CktError> {
        let &i = self
            .source_index
            .get(source)
            .ok_or_else(|| CktError::UnknownNode {
                name: source.to_owned(),
            })?;
        let current = Trace::new(self.time.clone(), self.source_samples[i].clone());
        let volts = Trace::new(
            self.time.clone(),
            self.time
                .iter()
                .map(|&t| self.source_waves[i].value_at(t))
                .collect(),
        );
        Ok(-volts.integral_product(&current))
    }
}

/// Unknowns past this count switch the solver from dense to sparse LU
/// (MNA matrices are a few entries per row, so sparse wins early).
const SPARSE_THRESHOLD: usize = 48;

/// The MNA matrix, dense for small systems and sparse for large ones.
enum MnaMatrix {
    Dense(DenseMatrix),
    Sparse(SparseMatrix),
}

impl MnaMatrix {
    fn zeros(n: usize) -> Self {
        if n > SPARSE_THRESHOLD {
            Self::Sparse(SparseMatrix::zeros(n))
        } else {
            Self::Dense(DenseMatrix::zeros(n))
        }
    }

    fn add(&mut self, r: usize, c: usize, v: f64) {
        match self {
            Self::Dense(m) => m.add(r, c, v),
            Self::Sparse(m) => m.add(r, c, v),
        }
    }

    fn clear(&mut self) {
        match self {
            Self::Dense(m) => m.clear(),
            Self::Sparse(m) => m.clear(),
        }
    }

    fn solve(&self, b: &mut [f64]) -> Result<(), CktError> {
        match self {
            Self::Dense(m) => m.solve(b),
            Self::Sparse(m) => m.solve(b),
        }
    }
}

/// System assembler shared by DC and transient analyses.
struct Assembler<'a> {
    nl: &'a Netlist,
    n_nodes: usize,
    n_src: usize,
    matrix: MnaMatrix,
    rhs: Vec<f64>,
    /// Trapezoidal companion state: previous accepted capacitor currents,
    /// by element order.
    cap_currents: Vec<f64>,
}

enum StampMode {
    /// DC: capacitors open.
    Dc,
    /// Transient step of size `h` ending at time `t`.
    Tran {
        h: f64,
        /// Use backward Euler instead of trapezoidal.
        be: bool,
    },
}

impl<'a> Assembler<'a> {
    fn new(nl: &'a Netlist) -> Self {
        let n_nodes = nl.node_count();
        let n_src = nl.vsource_count();
        let dim = n_nodes + n_src;
        let cap_count = nl
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Capacitor { .. }))
            .count();
        Self {
            nl,
            n_nodes,
            n_src,
            matrix: MnaMatrix::zeros(dim),
            rhs: vec![0.0; dim],
            cap_currents: vec![0.0; cap_count],
        }
    }

    fn dim(&self) -> usize {
        self.n_nodes + self.n_src
    }

    fn volt(x: &[f64], node: crate::netlist::NodeId) -> f64 {
        node.unknown().map_or(0.0, |i| x[i])
    }

    /// Assembles `J·x_new = b` linearized around iterate `x`, with
    /// `x_prev` the solution at the previous *accepted* timepoint (for
    /// companion models).
    fn stamp(&mut self, x: &[f64], x_prev: &[f64], t: f64, mode: &StampMode, gmin: f64) {
        self.matrix.clear();
        self.rhs.fill(0.0);
        for i in 0..self.n_nodes {
            self.matrix.add(i, i, gmin);
        }
        let mut src_k = 0usize;
        let mut cap_k = 0usize;
        for el in self.nl.elements() {
            match el {
                Element::Resistor { a, b, ohms, .. } => {
                    let g = 1.0 / ohms;
                    self.stamp_conductance(*a, *b, g);
                }
                Element::Capacitor { a, b, farads, .. } => {
                    if let StampMode::Tran { h, be } = mode {
                        let (geq, ieq) = if *be {
                            let geq = farads / h;
                            let v_prev = Self::volt(x_prev, *a) - Self::volt(x_prev, *b);
                            (geq, -geq * v_prev)
                        } else {
                            let geq = 2.0 * farads / h;
                            let v_prev = Self::volt(x_prev, *a) - Self::volt(x_prev, *b);
                            (geq, -(geq * v_prev + self.cap_currents[cap_k]))
                        };
                        self.stamp_conductance(*a, *b, geq);
                        if let Some(i) = a.unknown() {
                            self.rhs[i] -= ieq;
                        }
                        if let Some(i) = b.unknown() {
                            self.rhs[i] += ieq;
                        }
                    }
                    cap_k += 1;
                }
                Element::VSource { p, n, wave, .. } => {
                    let row = self.n_nodes + src_k;
                    if let Some(i) = p.unknown() {
                        self.matrix.add(i, row, 1.0);
                        self.matrix.add(row, i, 1.0);
                    }
                    if let Some(i) = n.unknown() {
                        self.matrix.add(i, row, -1.0);
                        self.matrix.add(row, i, -1.0);
                    }
                    self.rhs[row] = wave.value_at(t);
                    src_k += 1;
                }
                Element::ISource { p, n, wave, .. } => {
                    let i_val = wave.value_at(t);
                    if let Some(i) = p.unknown() {
                        self.rhs[i] -= i_val;
                    }
                    if let Some(i) = n.unknown() {
                        self.rhs[i] += i_val;
                    }
                }
                Element::Mosfet {
                    d, g, s, params, ..
                } => {
                    let vd = Self::volt(x, *d);
                    let vg = Self::volt(x, *g);
                    let vs = Self::volt(x, *s);
                    let op = ids(params, vg - vs, vd - vs);
                    // Norton: i = gm·vgs + gds·vds + i0.
                    let i0 = op.id - op.gm * (vg - vs) - op.gds * (vd - vs);
                    if let Some(i) = d.unknown() {
                        self.matrix.add(i, i, op.gds);
                        if let Some(j) = g.unknown() {
                            self.matrix.add(i, j, op.gm);
                        }
                        if let Some(j) = s.unknown() {
                            self.matrix.add(i, j, -(op.gm + op.gds));
                        }
                        self.rhs[i] -= i0;
                    }
                    if let Some(i) = s.unknown() {
                        if let Some(j) = d.unknown() {
                            self.matrix.add(i, j, -op.gds);
                        }
                        if let Some(j) = g.unknown() {
                            self.matrix.add(i, j, -op.gm);
                        }
                        self.matrix.add(i, i, op.gm + op.gds);
                        self.rhs[i] += i0;
                    }
                }
            }
        }
    }

    fn stamp_conductance(&mut self, a: crate::netlist::NodeId, b: crate::netlist::NodeId, g: f64) {
        if let Some(i) = a.unknown() {
            self.matrix.add(i, i, g);
            if let Some(j) = b.unknown() {
                self.matrix.add(i, j, -g);
            }
        }
        if let Some(j) = b.unknown() {
            self.matrix.add(j, j, g);
            if let Some(i) = a.unknown() {
                self.matrix.add(j, i, -g);
            }
        }
    }

    /// Runs Newton iteration at `(t, mode)` starting from `x`; on success
    /// returns the solution and the iteration count.
    fn newton(
        &mut self,
        mut x: Vec<f64>,
        x_prev: &[f64],
        t: f64,
        mode: &StampMode,
        gmin: f64,
    ) -> Result<(Vec<f64>, usize), CktError> {
        let phase = match mode {
            StampMode::Dc => "dc",
            StampMode::Tran { .. } => "transient",
        };
        for iter in 0..MAX_NEWTON {
            self.stamp(&x, x_prev, t, mode, gmin);
            // A non-finite residual means a device model or source
            // evaluated to NaN/Inf. Iterating further only propagates it,
            // and every comparison in the convergence test is false on NaN,
            // which would otherwise report a bogus "converged" solution.
            if self.rhs.iter().any(|v| !v.is_finite()) {
                return Err(CktError::NoConvergence { phase, time: t });
            }
            let mut sol = self.rhs.clone();
            self.matrix.solve(&mut sol)?;
            if sol.iter().any(|v| !v.is_finite()) {
                return Err(CktError::NoConvergence { phase, time: t });
            }
            let mut converged = true;
            for (new, old) in sol.iter().zip(&x) {
                if (new - old).abs() > V_ABSTOL + RELTOL * old.abs() {
                    converged = false;
                    break;
                }
            }
            // Damp large voltage moves to keep the exponential device
            // models inside representable range, with a fractional factor
            // that breaks period-2 Newton oscillations on stiff
            // exponentials.
            let damp = if iter < 8 {
                1.0
            } else if iter < 40 {
                0.6
            } else {
                0.35
            };
            for (xi, &si) in x.iter_mut().zip(&sol) {
                let step = (si - *xi) * damp;
                *xi += step.clamp(-0.5, 0.5);
            }
            if converged {
                return Ok((x, iter + 1));
            }
        }
        Err(CktError::NoConvergence { phase, time: t })
    }

    /// Updates stored capacitor currents after an accepted step.
    fn accept_step(&mut self, x_new: &[f64], x_prev: &[f64], h: f64, be: bool) {
        let mut cap_k = 0usize;
        for el in self.nl.elements() {
            if let Element::Capacitor { a, b, farads, .. } = el {
                let v_new = Self::volt(x_new, *a) - Self::volt(x_new, *b);
                let v_prev = Self::volt(x_prev, *a) - Self::volt(x_prev, *b);
                self.cap_currents[cap_k] = if be {
                    farads / h * (v_new - v_prev)
                } else {
                    2.0 * farads / h * (v_new - v_prev) - self.cap_currents[cap_k]
                };
                cap_k += 1;
            }
        }
    }
}

/// DC operating-point analysis.
#[derive(Debug)]
pub struct DcOp<'a> {
    nl: &'a Netlist,
}

impl<'a> DcOp<'a> {
    /// Creates a DC analysis over `nl`.
    pub fn new(nl: &'a Netlist) -> Self {
        Self { nl }
    }

    /// Solves the operating point (sources evaluated at `t = 0`), returning
    /// the unknown vector (node voltages then source currents).
    ///
    /// Uses g_min stepping: starts with a heavy shunt conductance and
    /// relaxes it geometrically, reusing each solution as the next start.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::NoConvergence`] or [`CktError::SingularMatrix`]
    /// if the circuit cannot be solved.
    pub fn solve(&self) -> Result<Vec<f64>, CktError> {
        let mut asm = Assembler::new(self.nl);
        let dim = asm.dim();
        let mut x = vec![0.0; dim];
        let zeros = vec![0.0; dim];
        let mut gmin = 1e-3;
        loop {
            let (sol, _) = asm.newton(x, &zeros, 0.0, &StampMode::Dc, gmin)?;
            x = sol;
            if gmin <= 1e-12 {
                return Ok(x);
            }
            gmin = (gmin * 1e-2).max(1e-12);
        }
    }

    /// Solves and returns the voltage of one named node.
    ///
    /// # Errors
    ///
    /// As [`DcOp::solve`], plus [`CktError::UnknownNode`].
    pub fn node_voltage(&self, node: &str) -> Result<f64, CktError> {
        let id = self.nl.find_node(node)?;
        let x = self.solve()?;
        Ok(id.unknown().map_or(0.0, |i| x[i]))
    }
}

/// Transient analysis driver.
#[derive(Debug)]
pub struct Transient<'a> {
    nl: &'a Netlist,
    cfg: TranConfig,
}

impl<'a> Transient<'a> {
    /// Creates a transient analysis of `nl` with the given configuration.
    pub fn new(nl: &'a Netlist, cfg: TranConfig) -> Self {
        Self { nl, cfg }
    }

    /// Runs the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CktError::NoConvergence`] if Newton fails even at the
    /// minimum step after a one-shot gmin escalation, or
    /// [`CktError::SingularMatrix`] for ill-posed circuits. Non-finite
    /// residuals or solutions (a device model evaluating to NaN/Inf) fail
    /// fast as [`CktError::NoConvergence`] instead of propagating NaN into
    /// the sampled waveforms.
    pub fn run(&self) -> Result<TranResult, CktError> {
        let mut asm = Assembler::new(self.nl);
        let n_nodes = asm.n_nodes;
        let n_src = asm.n_src;

        // Breakpoints from all source waveforms.
        let mut breakpoints: Vec<f64> = self
            .nl
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::VSource { wave, .. } | Element::ISource { wave, .. } => {
                    Some(wave.breakpoints(self.cfg.t_stop))
                }
                _ => None,
            })
            .flatten()
            .filter(|&t| t > 0.0)
            .collect();
        breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-18);

        // Initial condition from the DC operating point.
        let mut x = DcOp::new(self.nl).solve()?;

        let mut time = vec![0.0];
        let mut node_samples: Vec<Vec<f64>> = (0..n_nodes).map(|i| vec![x[i]]).collect();
        let mut source_samples: Vec<Vec<f64>> = (0..n_src).map(|k| vec![x[n_nodes + k]]).collect();

        let mut t = 0.0;
        let mut h = self.cfg.h_init.min(self.cfg.h_max);
        let mut bp_iter = breakpoints.into_iter().peekable();
        // First step after DC (and after each breakpoint) uses backward
        // Euler to restart the trapezoidal history cleanly. Additionally,
        // every 16th step is backward Euler: pure trapezoidal integration
        // is A-stable but not L-stable, so at steps much larger than the
        // circuit time constants it rings undamped around the settled
        // value; periodic BE steps absorb that ringing at negligible
        // accuracy cost.
        let mut be_next = true;
        let mut steps_since_be = 0usize;
        // One-shot gmin escalation: when timestep backoff bottoms out at
        // h_min, retry once with a 1000x heavier shunt before giving up.
        let mut gmin = self.cfg.gmin;
        let mut gmin_boosted = false;

        while t < self.cfg.t_stop - 1e-21 {
            // Clip the step to the next breakpoint or the stop time.
            let mut t_next = (t + h).min(self.cfg.t_stop);
            let mut hit_bp = false;
            if let Some(&bp) = bp_iter.peek() {
                if bp <= t + 1e-21 {
                    bp_iter.next();
                    continue;
                }
                if t_next >= bp {
                    t_next = bp;
                    hit_bp = true;
                }
            }
            let h_eff = t_next - t;
            let be_now = be_next || steps_since_be >= 15;
            let mode = StampMode::Tran {
                h: h_eff,
                be: be_now,
            };
            match asm.newton(x.clone(), &x, t_next, &mode, gmin) {
                Ok((sol, iters)) => {
                    // A boosted shunt only rescues the stuck step; return
                    // to the configured gmin for accuracy afterwards.
                    gmin = self.cfg.gmin;
                    asm.accept_step(&sol, &x, h_eff, be_now);
                    steps_since_be = if be_now { 0 } else { steps_since_be + 1 };
                    x = sol;
                    t = t_next;
                    time.push(t);
                    for (i, s) in node_samples.iter_mut().enumerate() {
                        s.push(x[i]);
                    }
                    for (k, s) in source_samples.iter_mut().enumerate() {
                        s.push(x[n_nodes + k]);
                    }
                    if hit_bp {
                        bp_iter.next();
                        // Restart integration history after the corner with
                        // a small step: source corners inject current
                        // spikes whose energy integral a large first step
                        // would overestimate badly.
                        be_next = true;
                        h = (self.cfg.h_init / 64.0)
                            .max(self.cfg.h_min)
                            .min(self.cfg.h_max);
                    } else {
                        be_next = false;
                        if iters <= 5 {
                            h = (h * 1.3).min(self.cfg.h_max);
                        } else if iters > 12 {
                            h *= 0.6;
                        }
                    }
                }
                Err(CktError::NoConvergence { .. }) if h_eff > self.cfg.h_min => {
                    h = (h_eff * 0.4).max(self.cfg.h_min);
                    be_next = true;
                }
                Err(CktError::NoConvergence { .. }) if !gmin_boosted => {
                    gmin_boosted = true;
                    gmin = (self.cfg.gmin * 1e3).max(1e-9);
                    be_next = true;
                }
                Err(e) => return Err(e),
            }
        }

        // Index maps.
        let mut node_index = HashMap::new();
        for (name, id) in self.nl.node_names() {
            if let Some(i) = id.unknown() {
                node_index.insert(name, i);
            }
        }
        let mut source_index = HashMap::new();
        let mut source_waves = Vec::new();
        let mut k = 0usize;
        for el in self.nl.elements() {
            if let Element::VSource { name, wave, .. } = el {
                source_index.insert(name.clone(), k);
                source_waves.push(wave.clone());
                k += 1;
            }
        }

        Ok(TranResult {
            time,
            node_samples,
            source_samples,
            node_index,
            source_index,
            source_waves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::waveform::{Edge, Waveform};
    use tdam_fefet::mosfet::MosParams;

    #[test]
    fn dc_voltage_divider() {
        let mut nl = Netlist::new();
        let top = nl.node("top");
        let mid = nl.node("mid");
        nl.vsource("V1", top, Netlist::GND, Waveform::dc(2.0));
        nl.resistor("R1", top, mid, 1000.0).unwrap();
        nl.resistor("R2", mid, Netlist::GND, 1000.0).unwrap();
        let v = DcOp::new(&nl).node_voltage("mid").unwrap();
        assert!((v - 1.0).abs() < 1e-6, "divider should sit at 1 V, got {v}");
    }

    #[test]
    fn dc_unknown_node() {
        let nl = Netlist::new();
        assert!(matches!(
            DcOp::new(&nl).node_voltage("nope"),
            Err(CktError::UnknownNode { .. })
        ));
    }

    #[test]
    fn rc_step_time_constant() {
        // R = 1 kΩ, C = 1 pF → τ = 1 ns. After 1τ the output reaches 63.2%.
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VIN", inp, Netlist::GND, Waveform::step(0.0, 1.0, 0.0));
        nl.resistor("R1", inp, out, 1000.0).unwrap();
        nl.capacitor("C1", out, Netlist::GND, 1e-12).unwrap();
        let res = Transient::new(&nl, TranConfig::until(8e-9).with_max_step(5e-12))
            .run()
            .unwrap();
        let tr = res.trace("out").unwrap();
        let v_tau = tr.sample(1e-9 + 1e-12);
        assert!(
            (v_tau - 0.632).abs() < 0.01,
            "RC charge at tau should be 63.2%, got {v_tau}"
        );
        assert!((tr.last_value() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rc_delay_measurement() {
        // 50% crossing of an RC step lags by ln(2)·τ ≈ 0.693 ns.
        let mut nl = Netlist::new();
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VIN", inp, Netlist::GND, Waveform::step(0.0, 1.0, 1e-9));
        nl.resistor("R1", inp, out, 1000.0).unwrap();
        nl.capacitor("C1", out, Netlist::GND, 1e-12).unwrap();
        let res = Transient::new(&nl, TranConfig::until(10e-9).with_max_step(5e-12))
            .run()
            .unwrap();
        let t_in = res
            .trace("in")
            .unwrap()
            .first_crossing(0.5, Edge::Rising)
            .unwrap();
        let t_out = res
            .trace("out")
            .unwrap()
            .first_crossing(0.5, Edge::Rising)
            .unwrap();
        let delay = t_out - t_in;
        assert!(
            (delay - 0.693e-9).abs() < 0.02e-9,
            "50% RC delay should be ln2·tau, got {delay:e}"
        );
    }

    #[test]
    fn source_energy_into_resistor() {
        // 1 V across 1 kΩ for 10 ns: E = V²/R · t = 10 pJ... (1e-3 W · 1e-8 s = 1e-11 J).
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GND, Waveform::dc(1.0));
        nl.resistor("R1", a, Netlist::GND, 1000.0).unwrap();
        let res = Transient::new(&nl, TranConfig::until(10e-9)).run().unwrap();
        let e = res.delivered_energy("V1").unwrap();
        assert!(
            (e - 1e-11).abs() < 1e-13,
            "delivered energy should be 10 pJ, got {e:e}"
        );
    }

    #[test]
    fn capacitor_charge_energy() {
        // Charging C to V through R delivers C·V² from the source
        // (half stored, half dissipated).
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GND, Waveform::step(0.0, 1.0, 0.1e-9));
        nl.resistor("R1", a, b, 1000.0).unwrap();
        nl.capacitor("C1", b, Netlist::GND, 1e-12).unwrap();
        let res = Transient::new(&nl, TranConfig::until(20e-9).with_max_step(10e-12))
            .run()
            .unwrap();
        let e = res.delivered_energy("V1").unwrap();
        assert!(
            (e - 1e-12).abs() < 0.05e-12,
            "source delivers C·V² = 1 pJ, got {e:e}"
        );
    }

    #[test]
    fn nmos_inverter_dc_transfer() {
        // Resistor-load NMOS inverter: low input → high output and vice
        // versa.
        let vdd_v = 1.1;
        let build = |vin: f64| {
            let mut nl = Netlist::new();
            let vdd = nl.node("vdd");
            let inp = nl.node("in");
            let out = nl.node("out");
            nl.vsource("VDD", vdd, Netlist::GND, Waveform::dc(vdd_v));
            nl.vsource("VIN", inp, Netlist::GND, Waveform::dc(vin));
            nl.resistor("RL", vdd, out, 20_000.0).unwrap();
            nl.mosfet("M1", out, inp, Netlist::GND, MosParams::nmos_40nm());
            nl
        };
        let v_low_in = DcOp::new(&build(0.0)).node_voltage("out").unwrap();
        let v_high_in = DcOp::new(&build(1.1)).node_voltage("out").unwrap();
        assert!(v_low_in > 1.0, "off NMOS → output near VDD, got {v_low_in}");
        assert!(
            v_high_in < 0.2,
            "on NMOS → output pulled low, got {v_high_in}"
        );
    }

    #[test]
    fn cmos_inverter_switches() {
        let vdd_v = 1.1;
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GND, Waveform::dc(vdd_v));
        nl.vsource(
            "VIN",
            inp,
            Netlist::GND,
            Waveform::pulse_once(0.0, vdd_v, 1e-9, 50e-12, 3e-9),
        );
        nl.mosfet("MP", out, inp, vdd, MosParams::pmos_40nm());
        nl.mosfet("MN", out, inp, Netlist::GND, MosParams::nmos_40nm());
        nl.capacitor("CL", out, Netlist::GND, 2e-15).unwrap();
        let res = Transient::new(&nl, TranConfig::until(8e-9).with_max_step(10e-12))
            .run()
            .unwrap();
        let tr = res.trace("out").unwrap();
        // Before the pulse: out ≈ VDD. During the pulse: out ≈ 0.
        assert!(tr.sample(0.9e-9) > vdd_v - 0.05);
        assert!(tr.sample(3.0e-9) < 0.05);
        assert!(tr.last_value() > vdd_v - 0.05);
        // Inverter delays exist and are finite.
        let t_fall = tr.first_crossing(vdd_v / 2.0, Edge::Falling).unwrap();
        assert!(t_fall > 1e-9 && t_fall < 1.5e-9);
    }

    #[test]
    fn floating_node_is_singular_or_converges_via_gmin() {
        // A node connected only through a capacitor has no DC path; gmin
        // keeps the matrix solvable and pins it near ground.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        nl.vsource("V1", a, Netlist::GND, Waveform::dc(1.0));
        nl.capacitor("C1", a, b, 1e-15).unwrap();
        let v = DcOp::new(&nl).node_voltage("b").unwrap();
        assert!(v.abs() < 1e-3, "floating node pinned by gmin, got {v}");
    }

    #[test]
    fn isource_into_resistor() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.isource("I1", Netlist::GND, a, Waveform::dc(1e-3));
        nl.resistor("R1", a, Netlist::GND, 1000.0).unwrap();
        let v = DcOp::new(&nl).node_voltage("a").unwrap();
        assert!((v - 1.0).abs() < 1e-6, "1 mA into 1 kΩ = 1 V, got {v}");
    }

    #[test]
    fn nan_source_fails_fast_in_dc() {
        // A NaN stimulus must surface as NoConvergence, not as a NaN
        // "solution" (every NaN comparison in the convergence test is
        // false, which without the finiteness guard reads as converged).
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource("V1", a, Netlist::GND, Waveform::dc(f64::NAN));
        nl.resistor("R1", a, Netlist::GND, 1000.0).unwrap();
        assert!(matches!(
            DcOp::new(&nl).node_voltage("a"),
            Err(CktError::NoConvergence { phase: "dc", .. })
        ));
    }

    #[test]
    fn nan_mid_transient_returns_no_convergence_without_nan_samples() {
        // The source is finite through DC and the first nanosecond, then
        // ramps to NaN: the transient solver must give up with
        // NoConvergence (after bounded backoff + one gmin retry) instead
        // of hanging or recording NaN into the waveforms.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource(
            "V1",
            a,
            Netlist::GND,
            Waveform::Pwl(vec![(0.0, 1.0), (1e-9, 1.0), (2e-9, f64::NAN)]),
        );
        nl.resistor("R1", a, Netlist::GND, 1000.0).unwrap();
        let err = Transient::new(&nl, TranConfig::until(5e-9))
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            CktError::NoConvergence {
                phase: "transient",
                ..
            }
        ));
    }

    #[test]
    fn gmin_escalation_is_bounded() {
        // Same NaN circuit: the run must terminate quickly — backoff to
        // h_min is geometric and the gmin escalation fires exactly once,
        // so the failure is bounded, not an infinite retry loop.
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource(
            "V1",
            a,
            Netlist::GND,
            Waveform::Pwl(vec![(0.0, 0.5), (1e-9, f64::NAN)]),
        );
        nl.resistor("R1", a, Netlist::GND, 1000.0).unwrap();
        let start = std::time::Instant::now();
        let res = Transient::new(&nl, TranConfig::until(4e-9)).run();
        assert!(res.is_err());
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "failure path must be bounded"
        );
    }

    #[test]
    fn transient_result_time_is_monotone() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.vsource(
            "V1",
            a,
            Netlist::GND,
            Waveform::pulse_once(0.0, 1.0, 1e-9, 0.1e-9, 1e-9),
        );
        nl.resistor("R1", a, Netlist::GND, 100.0).unwrap();
        let res = Transient::new(&nl, TranConfig::until(5e-9)).run().unwrap();
        for w in res.time().windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!((res.time().last().unwrap() - 5e-9).abs() < 1e-15);
    }
}
