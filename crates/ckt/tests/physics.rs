//! Physics property tests: the simulator must conserve energy and settle
//! to its own DC solution on randomized networks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdam_ckt::analysis::{DcOp, TranConfig, Transient};
use tdam_ckt::netlist::Netlist;
use tdam_ckt::waveform::Waveform;

/// Builds a random RC ladder of `n` sections; `step` selects a step
/// stimulus (for transients) or its final DC level (the operating-point
/// reference the transient must settle to).
fn rc_ladder(n: usize, seed: u64, step: bool) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new();
    let src = nl.node("src");
    let wave = if step {
        Waveform::step(0.0, 1.0, 0.2e-9)
    } else {
        Waveform::dc(1.0)
    };
    nl.vsource("VIN", src, Netlist::GND, wave);
    let mut prev = src;
    for i in 0..n {
        let node = nl.node(&format!("n{i}"));
        let r = 10f64.powf(rng.gen_range(2.0..4.0)); // 100 Ω .. 10 kΩ
        let c = 10f64.powf(rng.gen_range(-14.0..-12.0)); // 10 fF .. 1 pF
        nl.resistor(&format!("R{i}"), prev, node, r)
            .expect("resistor");
        nl.capacitor(&format!("C{i}"), node, Netlist::GND, c)
            .expect("capacitor");
        // Occasional shunt resistor makes the final DC value nontrivial.
        if rng.gen_bool(0.3) {
            nl.resistor(
                &format!("RS{i}"),
                node,
                Netlist::GND,
                10f64.powf(rng.gen_range(3.0..5.0)),
            )
            .expect("shunt");
        }
        prev = node;
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After many time constants, every node of a random RC ladder sits at
    /// the network's DC solution.
    #[test]
    fn transient_settles_to_dc(n in 2usize..6, seed in 0u64..500) {
        let nl = rc_ladder(n, seed, true);
        // Worst time constant bound: 10 kΩ · 1 pF = 10 ns per section.
        let t_stop = 40e-9 * n as f64 + 40e-9;
        let result = Transient::new(&nl, TranConfig::until(t_stop))
            .run()
            .expect("transient");
        let nl_dc = rc_ladder(n, seed, false);
        let dc = DcOp::new(&nl_dc);
        for i in 0..n {
            let name = format!("n{i}");
            let v_tran = result.trace(&name).expect("trace").last_value();
            let v_dc = dc.node_voltage(&name).expect("dc");
            prop_assert!(
                (v_tran - v_dc).abs() < 5e-3,
                "node {} transient {} vs dc {}", name, v_tran, v_dc
            );
        }
    }

    /// Source energy into a purely capacitive ladder (no shunts): the
    /// source must at least cover the stored energy (passivity), and for
    /// step charging dissipation equals storage, so delivered = 2·stored.
    /// The time step must resolve the ps-scale RC constants or the energy
    /// integral (not the final voltages) goes wrong — which is itself the
    /// regression this test guards.
    #[test]
    fn source_energy_bounds_stored_energy(n in 2usize..5, seed in 1000u64..1200) {
        let mut nl = Netlist::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let src = nl.node("src");
        nl.vsource("VIN", src, Netlist::GND, Waveform::step(0.0, 1.0, 0.2e-9));
        let mut prev = src;
        let mut caps = Vec::new();
        for i in 0..n {
            let node = nl.node(&format!("n{i}"));
            let r = 10f64.powf(rng.gen_range(2.0..3.5));
            let c = 10f64.powf(rng.gen_range(-14.0..-13.0));
            nl.resistor(&format!("R{i}"), prev, node, r).expect("resistor");
            nl.capacitor(&format!("C{i}"), node, Netlist::GND, c).expect("capacitor");
            caps.push((format!("n{i}"), c));
            prev = node;
        }
        // Horizon: the slowest section is ≤ 3.2 kΩ · 100 fF ≈ 0.32 ns; a
        // 40 ns window with 10 ps steps resolves both edge and settling.
        let result = Transient::new(&nl, TranConfig::until(40e-9).with_max_step(10e-12))
            .run()
            .expect("transient");
        let delivered = result.delivered_energy("VIN").expect("energy");
        // All caps end at 1 V (no DC shunts): stored = Σ C·V²/2.
        let stored: f64 = caps
            .iter()
            .map(|(name, c)| {
                let v = result.trace(name).expect("trace").last_value();
                0.5 * c * v * v
            })
            .sum();
        prop_assert!(
            delivered >= stored * 0.99,
            "passivity: delivered {delivered:e} must cover stored {stored:e}"
        );
        prop_assert!(
            (delivered - 2.0 * stored).abs() < 0.05 * delivered.max(1e-18),
            "RC step charging splits energy evenly: delivered {delivered:e}, stored {stored:e}"
        );
    }
}

/// Deterministic cross-solver check: a ladder large enough for the sparse
/// LU path settles to the operating point the (independently solved) DC
/// analysis reports.
#[test]
fn dense_and_sparse_paths_agree() {
    // 60 sections pushes the MNA system past the sparse threshold.
    let nl_big = rc_ladder(60, 7, true);
    let result = Transient::new(&nl_big, TranConfig::until(20e-6))
        .run()
        .expect("sparse transient");
    let nl_dc = rc_ladder(60, 7, false);
    let dc = DcOp::new(&nl_dc);
    for i in [0usize, 20, 59] {
        let name = format!("n{i}");
        let v_tran = result.trace(&name).expect("trace").last_value();
        let v_dc = dc.node_voltage(&name).expect("dc");
        assert!(
            (v_tran - v_dc).abs() < 5e-3,
            "node {name}: transient {v_tran} vs dc {v_dc}"
        );
    }
}
