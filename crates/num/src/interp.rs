//! Piecewise-linear interpolation over monotone grids.
//!
//! Used by the calibrated timing model ([`tdam`]'s `timing` module) to look
//! up stage delay and energy as functions of supply voltage and load
//! capacitance between the grid points extracted from circuit simulation.
//!
//! [`tdam`]: https://docs.rs/tdam

use serde::{Deserialize, Serialize};

/// A one-dimensional piecewise-linear function defined by sample points with
/// strictly increasing x values.
///
/// Evaluation outside the grid is clamped linear extrapolation from the
/// nearest segment (configurable via [`Interp1::eval_clamped`] vs
/// [`Interp1::eval`]).
///
/// # Examples
///
/// ```
/// use tdam_num::interp::Interp1;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = Interp1::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0])?;
/// assert_eq!(f.eval(0.5), 5.0);
/// assert_eq!(f.eval(1.5), 25.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interp1 {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

/// Error constructing an interpolant from an invalid grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildInterpError {
    /// `xs` and `ys` differ in length.
    LengthMismatch,
    /// Fewer than two sample points were supplied.
    TooFewPoints,
    /// The x grid is not strictly increasing.
    NotStrictlyIncreasing,
}

impl core::fmt::Display for BuildInterpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            Self::LengthMismatch => "x and y grids have different lengths",
            Self::TooFewPoints => "need at least two points to interpolate",
            Self::NotStrictlyIncreasing => "x grid must be strictly increasing",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for BuildInterpError {}

impl Interp1 {
    /// Builds an interpolant from paired samples.
    ///
    /// # Errors
    ///
    /// See [`BuildInterpError`].
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, BuildInterpError> {
        if xs.len() != ys.len() {
            return Err(BuildInterpError::LengthMismatch);
        }
        if xs.len() < 2 {
            return Err(BuildInterpError::TooFewPoints);
        }
        if xs
            .windows(2)
            .any(|w| w[0].is_nan() || w[1].is_nan() || w[0] >= w[1])
        {
            return Err(BuildInterpError::NotStrictlyIncreasing);
        }
        Ok(Self { xs, ys })
    }

    /// Evaluates the interpolant at `x`, extrapolating linearly beyond the
    /// grid ends.
    pub fn eval(&self, x: f64) -> f64 {
        let i = self.segment(x);
        let (x0, x1) = (self.xs[i], self.xs[i + 1]);
        let (y0, y1) = (self.ys[i], self.ys[i + 1]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Evaluates the interpolant at `x`, clamping to the grid range instead
    /// of extrapolating.
    pub fn eval_clamped(&self, x: f64) -> f64 {
        let lo = self.xs[0];
        let hi = *self.xs.last().expect("at least two points");
        self.eval(x.clamp(lo, hi))
    }

    /// The x-range covered by the grid.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("at least two points"))
    }

    fn segment(&self, x: f64) -> usize {
        match self
            .xs
            .binary_search_by(|p| p.partial_cmp(&x).expect("finite grid"))
        {
            Ok(i) => i.min(self.xs.len() - 2),
            Err(0) => 0,
            Err(i) if i >= self.xs.len() => self.xs.len() - 2,
            Err(i) => i - 1,
        }
    }
}

/// A bilinear interpolant on a rectangular grid (x-major storage).
///
/// Used for two-parameter lookups such as delay(V_DD, C_load). Out-of-range
/// queries are clamped to the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interp2 {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// `values[i * ys.len() + j]` is the sample at `(xs[i], ys[j])`.
    values: Vec<f64>,
}

impl Interp2 {
    /// Builds a bilinear interpolant; `values` is row-major with x as the
    /// slow axis.
    ///
    /// # Errors
    ///
    /// Returns [`BuildInterpError`] if either grid is invalid or `values`
    /// has the wrong length.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, values: Vec<f64>) -> Result<Self, BuildInterpError> {
        if xs.len() < 2 || ys.len() < 2 {
            return Err(BuildInterpError::TooFewPoints);
        }
        if xs
            .windows(2)
            .any(|w| w[0].is_nan() || w[1].is_nan() || w[0] >= w[1])
            || ys
                .windows(2)
                .any(|w| w[0].is_nan() || w[1].is_nan() || w[0] >= w[1])
        {
            return Err(BuildInterpError::NotStrictlyIncreasing);
        }
        if values.len() != xs.len() * ys.len() {
            return Err(BuildInterpError::LengthMismatch);
        }
        Ok(Self { xs, ys, values })
    }

    /// Evaluates at `(x, y)`, clamping to the grid.
    pub fn eval_clamped(&self, x: f64, y: f64) -> f64 {
        let x = x.clamp(self.xs[0], *self.xs.last().expect("grid"));
        let y = y.clamp(self.ys[0], *self.ys.last().expect("grid"));
        let i = find_segment(&self.xs, x);
        let j = find_segment(&self.ys, y);
        let (x0, x1) = (self.xs[i], self.xs[i + 1]);
        let (y0, y1) = (self.ys[j], self.ys[j + 1]);
        let tx = (x - x0) / (x1 - x0);
        let ty = (y - y0) / (y1 - y0);
        let ny = self.ys.len();
        let v00 = self.values[i * ny + j];
        let v01 = self.values[i * ny + j + 1];
        let v10 = self.values[(i + 1) * ny + j];
        let v11 = self.values[(i + 1) * ny + j + 1];
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }
}

fn find_segment(grid: &[f64], x: f64) -> usize {
    match grid.binary_search_by(|p| p.partial_cmp(&x).expect("finite grid")) {
        Ok(i) => i.min(grid.len() - 2),
        Err(0) => 0,
        Err(i) if i >= grid.len() => grid.len() - 2,
        Err(i) => i - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_grids() {
        assert_eq!(
            Interp1::new(vec![0.0], vec![0.0]),
            Err(BuildInterpError::TooFewPoints)
        );
        assert_eq!(
            Interp1::new(vec![0.0, 0.0], vec![1.0, 2.0]),
            Err(BuildInterpError::NotStrictlyIncreasing)
        );
        assert_eq!(
            Interp1::new(vec![0.0, 1.0], vec![1.0]),
            Err(BuildInterpError::LengthMismatch)
        );
    }

    #[test]
    fn hits_knots_exactly() {
        let f = Interp1::new(vec![0.0, 1.0, 3.0], vec![2.0, 4.0, -2.0]).unwrap();
        assert_eq!(f.eval(0.0), 2.0);
        assert_eq!(f.eval(1.0), 4.0);
        assert_eq!(f.eval(3.0), -2.0);
    }

    #[test]
    fn extrapolates_vs_clamps() {
        let f = Interp1::new(vec![0.0, 1.0], vec![0.0, 10.0]).unwrap();
        assert_eq!(f.eval(2.0), 20.0);
        assert_eq!(f.eval_clamped(2.0), 10.0);
        assert_eq!(f.eval(-1.0), -10.0);
        assert_eq!(f.eval_clamped(-1.0), 0.0);
    }

    #[test]
    fn bilinear_center() {
        let f = Interp2::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0, 1.0, 2.0], // v(x,y) = x + y
        )
        .unwrap();
        assert!((f.eval_clamped(0.5, 0.5) - 1.0).abs() < 1e-12);
        assert!((f.eval_clamped(0.25, 0.75) - 1.0).abs() < 1e-12);
        // Clamped outside.
        assert!((f.eval_clamped(5.0, 5.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bilinear_rejects_wrong_value_count() {
        assert!(Interp2::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 3]).is_err());
    }

    proptest! {
        #[test]
        fn within_convex_hull_of_neighbors(x in -0.5f64..3.5) {
            let f = Interp1::new(vec![0.0, 1.0, 2.0, 3.0], vec![1.0, 5.0, 2.0, 8.0]).unwrap();
            let v = f.eval_clamped(x);
            prop_assert!((1.0..=8.0).contains(&v));
        }
    }
}
