//! Probability distributions built on [`rand`].
//!
//! Only the distributions the workspace actually needs are provided: normal
//! (Box–Muller), log-normal, and truncated normal (rejection sampling with a
//! clamping fallback for very tight truncation windows).

use rand::Rng;

/// A normal (Gaussian) distribution parameterised by mean and standard
/// deviation.
///
/// Sampling uses the Box–Muller transform; each call to [`Normal::sample`]
/// draws two uniforms and returns one variate (the second is discarded for
/// simplicity — the workloads here are not sampling-bound).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tdam_num::Normal;
///
/// let n = Normal::new(1.0, 0.5).expect("valid parameters");
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

/// Error returned when constructing a distribution with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError {
    what: &'static str,
}

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for ParamError {}

impl Normal {
    /// Creates a normal distribution with the given `mean` and `std_dev`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `std_dev` is negative or either parameter is
    /// non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(ParamError {
                what: "non-finite mean or std_dev",
            });
        }
        if std_dev < 0.0 {
            return Err(ParamError {
                what: "negative std_dev",
            });
        }
        Ok(Self { mean, std_dev })
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Draws a standard-normal variate (`N(0, 1)`) via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The error function, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (absolute error below `1.5e-7`).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// The standard normal cumulative distribution function `Φ(x)`.
///
/// # Examples
///
/// ```
/// use tdam_num::dist::normal_cdf;
///
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
/// assert!(normal_cdf(3.0) > 0.998);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// A log-normal distribution: `exp(N(mu, sigma))`.
///
/// `mu` and `sigma` are the mean and standard deviation of the *underlying*
/// normal, matching the convention of `rand_distr::LogNormal`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution from the underlying normal
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] under the same conditions as [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(Self {
            inner: Normal::new(mu, sigma)?,
        })
    }

    /// Draws one (strictly positive) variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).exp()
    }
}

/// A normal distribution truncated to `[lo, hi]`.
///
/// Used for device parameters that are physically bounded (e.g. a threshold
/// voltage that programming guarantees stays within a window). Sampling is by
/// rejection; after 64 rejected draws the sample is clamped, which only
/// matters for pathologically tight windows many σ from the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    inner: Normal,
    lo: f64,
    hi: f64,
}

impl TruncatedNormal {
    /// Creates a truncated normal over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the normal parameters are invalid or
    /// `lo > hi`.
    pub fn new(mean: f64, std_dev: f64, lo: f64, hi: f64) -> Result<Self, ParamError> {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            return Err(ParamError {
                what: "truncation bounds out of order",
            });
        }
        Ok(Self {
            inner: Normal::new(mean, std_dev)?,
            lo,
            hi,
        })
    }

    /// Draws one variate guaranteed to lie in `[lo, hi]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        for _ in 0..64 {
            let x = self.inner.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn normal_moments_converge() {
        let n = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..200_000).map(|_| n.sample(&mut rng)).collect();
        let s = Summary::from_slice(&xs);
        assert!((s.mean - 3.0).abs() < 0.02, "mean {}", s.mean);
        assert!((s.std_dev - 2.0).abs() < 0.02, "std {}", s.std_dev);
    }

    #[test]
    fn zero_sigma_is_degenerate() {
        let n = Normal::new(1.5, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 1.5);
        }
    }

    #[test]
    fn lognormal_positive() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(ln.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let ln = LogNormal::new(2.0, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs: Vec<f64> = (0..100_001).map(|_| ln.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median / 2f64.exp() - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn truncated_respects_bounds() {
        let t = TruncatedNormal::new(0.0, 1.0, -0.5, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5000 {
            let x = t.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn truncated_bad_bounds_rejected() {
        assert!(TruncatedNormal::new(0.0, 1.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for x in [0.1, 0.7, 1.3, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn truncated_far_window_clamps() {
        // Window 20σ away: rejection will fail, clamping must keep bounds.
        let t = TruncatedNormal::new(0.0, 1.0, 20.0, 21.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let x = t.sample(&mut rng);
        assert!((20.0..=21.0).contains(&x));
    }
}
