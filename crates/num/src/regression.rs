//! Ordinary least-squares line fitting.
//!
//! The paper's central circuit-level claim (Fig. 4(c)) is that total chain
//! delay is *linear* in the number of mismatched stages; tests across the
//! workspace check linearity by fitting a line and asserting on R².

use serde::{Deserialize, Serialize};

/// Result of fitting `y ≈ slope * x + intercept` by least squares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (clamped).
    pub r_squared: f64,
}

/// Error fitting a line: fewer than two points, mismatched lengths, or a
/// degenerate (constant-x) input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitLineError {
    /// `xs` and `ys` have different lengths.
    LengthMismatch,
    /// Fewer than two points were provided.
    TooFewPoints,
    /// All x values are identical, so the slope is undefined.
    DegenerateX,
}

impl core::fmt::Display for FitLineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            Self::LengthMismatch => "x and y slices have different lengths",
            Self::TooFewPoints => "need at least two points to fit a line",
            Self::DegenerateX => "all x values identical; slope undefined",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for FitLineError {}

impl LinearFit {
    /// Fits `y = slope * x + intercept` to the paired samples.
    ///
    /// # Errors
    ///
    /// See [`FitLineError`].
    ///
    /// # Examples
    ///
    /// ```
    /// use tdam_num::LinearFit;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let xs = [0.0, 1.0, 2.0, 3.0];
    /// let ys = [1.0, 3.0, 5.0, 7.0];
    /// let fit = LinearFit::fit(&xs, &ys)?;
    /// assert!((fit.slope - 2.0).abs() < 1e-12);
    /// assert!((fit.intercept - 1.0).abs() < 1e-12);
    /// assert!(fit.r_squared > 0.999_999);
    /// # Ok(())
    /// # }
    /// ```
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, FitLineError> {
        if xs.len() != ys.len() {
            return Err(FitLineError::LengthMismatch);
        }
        if xs.len() < 2 {
            return Err(FitLineError::TooFewPoints);
        }
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            sxx += (x - mx) * (x - mx);
            sxy += (x - mx) * (y - my);
            syy += (y - my) * (y - my);
        }
        if sxx == 0.0 {
            return Err(FitLineError::DegenerateX);
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let r_squared = if syy == 0.0 {
            // Perfectly flat data is perfectly described by the flat fit.
            1.0
        } else {
            ((sxy * sxy) / (sxx * syy)).clamp(0.0, 1.0)
        };
        Ok(Self {
            slope,
            intercept,
            r_squared,
        })
    }

    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -3.0 * x + 0.5).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope + 3.0).abs() < 1e-12);
        assert!((fit.intercept - 0.5).abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn errors() {
        assert_eq!(
            LinearFit::fit(&[1.0], &[1.0, 2.0]),
            Err(FitLineError::LengthMismatch)
        );
        assert_eq!(
            LinearFit::fit(&[1.0], &[1.0]),
            Err(FitLineError::TooFewPoints)
        );
        assert_eq!(
            LinearFit::fit(&[2.0, 2.0], &[1.0, 3.0]),
            Err(FitLineError::DegenerateX)
        );
    }

    #[test]
    fn flat_data_r2_is_one() {
        let fit = LinearFit::fit(&[0.0, 1.0, 2.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_line_good_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.999);
    }

    proptest! {
        #[test]
        fn recovers_arbitrary_lines(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.37).collect();
            let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            let fit = LinearFit::fit(&xs, &ys).unwrap();
            prop_assert!((fit.slope - a).abs() < 1e-6 * (1.0 + a.abs()));
            prop_assert!((fit.intercept - b).abs() < 1e-6 * (1.0 + b.abs()));
        }

        #[test]
        fn r2_bounded(ys in prop::collection::vec(-1e3f64..1e3, 3..50)) {
            let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
            let fit = LinearFit::fit(&xs, &ys).unwrap();
            prop_assert!((0.0..=1.0).contains(&fit.r_squared));
        }
    }
}
