//! Descriptive statistics over `f64` samples.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample: count, mean, standard deviation, extrema.
///
/// The standard deviation is the *sample* standard deviation (Bessel's
/// correction, `n - 1` denominator); for `n <= 1` it is reported as `0.0`.
///
/// # Examples
///
/// ```
/// use tdam_num::Summary;
///
/// let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean, 5.0);
/// assert_eq!(s.min, 2.0);
/// assert_eq!(s.max, 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean; `0.0` for an empty sample.
    pub mean: f64,
    /// Sample standard deviation; `0.0` for fewer than two samples.
    pub std_dev: f64,
    /// Smallest sample; `+inf` for an empty sample.
    pub min: f64,
    /// Largest sample; `-inf` for an empty sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `xs` in one pass (Welford's algorithm).
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (i, &x) in xs.iter().enumerate() {
            let delta = x - mean;
            mean += delta / (i as f64 + 1.0);
            m2 += delta * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        let count = xs.len();
        let std_dev = if count > 1 {
            (m2 / (count as f64 - 1.0)).sqrt()
        } else {
            0.0
        };
        Self {
            count,
            mean: if count == 0 { 0.0 } else { mean },
            std_dev,
            min,
            max,
        }
    }

    /// Coefficient of variation (`std_dev / mean`); `0.0` when the mean is
    /// zero.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} mean={:.6e} std={:.6e} min={:.6e} max={:.6e}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// Returns the `q`-th percentile (0.0..=100.0) of `xs` by linear
/// interpolation between closest ranks.
///
/// Returns `None` when `xs` is empty or `q` is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// use tdam_num::stats::percentile;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 50.0), Some(2.5));
/// assert_eq!(percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(percentile(&xs, 100.0), Some(4.0));
/// ```
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let rank = q / 100.0 * (sorted.len() as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Mean of `xs`; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary() {
        let s = Summary::from_slice(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_slice(&[3.25]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.25);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 3.25);
        assert_eq!(s.max, 3.25);
    }

    #[test]
    fn known_std_dev() {
        // Sample std of [2,4,4,4,5,5,7,9] is sqrt(32/7).
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[1.0], 50.0), Some(1.0));
        assert_eq!(percentile(&[1.0, 2.0], -1.0), None);
        assert_eq!(percentile(&[1.0, 2.0], 101.0), None);
    }

    #[test]
    fn cov_zero_mean() {
        let s = Summary::from_slice(&[-1.0, 1.0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    proptest! {
        #[test]
        fn mean_within_extrema(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::from_slice(&xs);
            prop_assert!(s.mean >= s.min - 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
        }

        #[test]
        fn percentile_monotone(xs in prop::collection::vec(-1e3f64..1e3, 2..100),
                               q1 in 0.0f64..100.0, q2 in 0.0f64..100.0) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let p_lo = percentile(&xs, lo).unwrap();
            let p_hi = percentile(&xs, hi).unwrap();
            prop_assert!(p_lo <= p_hi + 1e-9);
        }

        #[test]
        fn shift_invariance(xs in prop::collection::vec(-1e3f64..1e3, 2..100), c in -1e3f64..1e3) {
            let s0 = Summary::from_slice(&xs);
            let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
            let s1 = Summary::from_slice(&shifted);
            prop_assert!((s1.mean - (s0.mean + c)).abs() < 1e-6);
            prop_assert!((s1.std_dev - s0.std_dev).abs() < 1e-6);
        }
    }
}
