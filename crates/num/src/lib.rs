//! Numeric utilities shared across the FeFET TD-AM workspace.
//!
//! The approved offline dependency set does not include statistics crates
//! (`rand_distr`, `statrs`, …), so this crate provides the small set of
//! numeric building blocks the rest of the workspace needs:
//!
//! - [`dist`] — normal / log-normal / truncated-normal sampling built on
//!   [`rand`] via the Box–Muller transform,
//! - [`stats`] — descriptive statistics ([`stats::Summary`]) and percentiles,
//! - [`histogram`] — uniform-bin histograms used by the Monte Carlo figures,
//! - [`regression`] — ordinary least-squares line fits and R² (used to verify
//!   the paper's delay-vs-mismatch linearity claim, Fig. 4(c)),
//! - [`interp`] — piecewise-linear interpolation over monotone grids (used by
//!   the calibrated timing model),
//! - [`solve`] — scalar bisection root finding (threshold-crossing search).
//!
//! # Examples
//!
//! ```
//! use tdam_num::stats::Summary;
//!
//! let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean, 2.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod histogram;
pub mod interp;
pub mod regression;
pub mod solve;
pub mod stats;

pub use dist::{LogNormal, Normal, TruncatedNormal};
pub use histogram::Histogram;
pub use regression::LinearFit;
pub use stats::Summary;
