//! Scalar root finding.
//!
//! The circuit simulator uses [`bisect`] to pin down threshold-crossing
//! times between transient samples, and device calibration uses it to invert
//! monotone characteristics (e.g. find the write voltage that lands a target
//! threshold voltage).

/// Error from [`bisect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveRootError {
    /// `f(lo)` and `f(hi)` have the same sign, so no bracketed root exists.
    NotBracketed {
        /// Function value at the lower bound.
        f_lo: f64,
        /// Function value at the upper bound.
        f_hi: f64,
    },
    /// The bounds were invalid (`lo >= hi` or non-finite).
    InvalidBounds,
}

impl core::fmt::Display for SolveRootError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NotBracketed { f_lo, f_hi } => {
                write!(f, "root not bracketed: f(lo)={f_lo}, f(hi)={f_hi}")
            }
            Self::InvalidBounds => write!(f, "invalid bracket bounds"),
        }
    }
}

impl std::error::Error for SolveRootError {}

/// Finds a root of `f` on `[lo, hi]` by bisection to absolute x-tolerance
/// `tol`.
///
/// The bracket must satisfy `sign(f(lo)) != sign(f(hi))`; a zero endpoint is
/// returned immediately.
///
/// # Errors
///
/// Returns [`SolveRootError::NotBracketed`] when the endpoints do not
/// bracket a root, and [`SolveRootError::InvalidBounds`] for a degenerate
/// bracket.
///
/// # Examples
///
/// ```
/// use tdam_num::solve::bisect;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12)?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Result<f64, SolveRootError> {
    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
        return Err(SolveRootError::InvalidBounds);
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    if fa == 0.0 {
        return Ok(a);
    }
    let fb = f(b);
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(SolveRootError::NotBracketed { f_lo: fa, f_hi: fb });
    }
    // 200 halvings reduce any finite bracket far below any practical tol.
    for _ in 0..200 {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm == 0.0 || (b - a) * 0.5 < tol {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Ok(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-13).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-11);
    }

    #[test]
    fn exact_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9), Ok(0.0));
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-9), Ok(1.0));
    }

    #[test]
    fn unbracketed_rejected() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9).unwrap_err();
        assert!(matches!(err, SolveRootError::NotBracketed { .. }));
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert_eq!(
            bisect(|x| x, 1.0, 0.0, 1e-9),
            Err(SolveRootError::InvalidBounds)
        );
        assert_eq!(
            bisect(|x| x, f64::NEG_INFINITY, 0.0, 1e-9),
            Err(SolveRootError::InvalidBounds)
        );
    }

    proptest! {
        #[test]
        fn finds_linear_roots(a in 0.1f64..10.0, b in -5.0f64..5.0) {
            // Root of a*x + b is -b/a, which lies in [-50, 50].
            let r = bisect(|x| a * x + b, -60.0, 60.0, 1e-12).unwrap();
            prop_assert!((r + b / a).abs() < 1e-9);
        }
    }
}
