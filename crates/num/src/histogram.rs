//! Uniform-bin histograms for Monte Carlo result reporting (Fig. 6).

use serde::{Deserialize, Serialize};

/// A histogram with uniformly sized bins over `[lo, hi)`.
///
/// Samples below `lo` are counted into the first bin and samples at or above
/// `hi` into the last bin, so no sample is silently dropped — Monte Carlo
/// tail mass is exactly what the sensing-margin analysis cares about.
///
/// # Examples
///
/// ```
/// use tdam_num::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10).expect("valid range");
/// for x in [0.5, 1.5, 1.7, 9.9] {
///     h.add(x);
/// }
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[1], 2);
/// assert_eq!(h.counts()[9], 1);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

/// Error constructing a [`Histogram`] with an invalid range or zero bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildHistogramError;

impl core::fmt::Display for BuildHistogramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "histogram requires lo < hi and at least one bin")
    }
}

impl std::error::Error for BuildHistogramError {}

impl Histogram {
    /// Creates an empty histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildHistogramError`] if `lo >= hi`, either bound is
    /// non-finite, or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, BuildHistogramError> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi || bins == 0 {
            return Err(BuildHistogramError);
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Adds a sample, clamping out-of-range values into the edge bins.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            ((frac * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every sample in `xs`.
    pub fn extend_from_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of bounds");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Fraction of samples in bin `i` (`0.0` when the histogram is empty).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Fraction of all samples that fall at or above `threshold`.
    ///
    /// Computed from the raw bins, so resolution is one bin width. This is
    /// the "outside sensing margin" metric of Fig. 6.
    pub fn fraction_at_or_above(&self, threshold: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut n = 0u64;
        for i in 0..self.counts.len() {
            if self.bin_center(i) >= threshold {
                n += self.counts[i];
            }
        }
        n as f64 / self.total as f64
    }

    /// Renders a compact ASCII bar chart, one line per bin.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!("{:>12.4e} | {bar} {c}\n", self.bin_center(i)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_ranges() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn out_of_range_clamped() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn fraction_at_or_above_counts_tail() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend_from_slice(&[1.0, 2.0, 8.4, 9.9]);
        let f = h.fraction_at_or_above(8.0);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_nonempty() {
        let mut h = Histogram::new(0.0, 1.0, 3).unwrap();
        h.add(0.1);
        let s = h.render_ascii(20);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
    }

    proptest! {
        #[test]
        fn totals_match(xs in prop::collection::vec(-10.0f64..10.0, 0..500)) {
            let mut h = Histogram::new(-5.0, 5.0, 13).unwrap();
            h.extend_from_slice(&xs);
            prop_assert_eq!(h.total(), xs.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), xs.len() as u64);
        }
    }
}
