//! `tdam-sim`: the FeFET TD-AM simulator from the command line.

use tdam_cli::args::Args;
use tdam_cli::commands::dispatch;
use tdam_cli::{CliError, ErrorClass, USAGE};

/// BSD `EX_TEMPFAIL`: the failure is transient; retrying the same
/// command may succeed (wrappers and schedulers key off this).
const EXIT_TEMPFAIL: i32 = 75;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let result = Args::parse(raw).and_then(|args| dispatch(&args));
    match result {
        Ok(report) => print!("{report}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            let code = match e.class() {
                ErrorClass::Transient => EXIT_TEMPFAIL,
                _ => 1,
            };
            std::process::exit(code);
        }
    }
}
