//! `tdam-sim`: the FeFET TD-AM simulator from the command line.

use tdam_cli::args::Args;
use tdam_cli::commands::dispatch;
use tdam_cli::{CliError, USAGE};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let result = Args::parse(raw).and_then(|args| dispatch(&args));
    match result {
        Ok(report) => print!("{report}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
