//! Minimal flag parsing (the approved dependency set has no `clap`).

use crate::CliError;
use std::collections::HashMap;

/// Parsed arguments: a subcommand plus `--flag value` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
    /// Flags given without a value (e.g. `--circuit`).
    switches: Vec<String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when no subcommand is given or a flag
    /// is malformed.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, CliError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| CliError::Usage("missing subcommand".to_owned()))?;
        if command.starts_with('-') && command != "--help" && command != "-h" {
            return Err(CliError::Usage(format!(
                "expected a subcommand, got flag {command}"
            )));
        }
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        while let Some(tok) = iter.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected argument {tok}")));
            };
            match iter.next_if(|v| !v.starts_with("--")) {
                Some(value) => {
                    flags.insert(name.to_owned(), value);
                }
                None => switches.push(name.to_owned()),
            }
        }
        Ok(Self {
            command,
            flags,
            switches,
        })
    }

    /// The raw value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether the value-less switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Parses `--name` as `f64`, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on a malformed number.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects a number, got {v}"))),
        }
    }

    /// Parses `--name` as `usize`, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on a malformed integer.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} expects an integer, got {v}"))),
        }
    }
}

/// Parses `"0,1,2;3,2,1"`-style vector lists.
///
/// # Errors
///
/// Returns [`CliError::Usage`] on malformed elements or empty input.
pub fn parse_vectors(text: &str) -> Result<Vec<Vec<u8>>, CliError> {
    let vectors: Result<Vec<Vec<u8>>, CliError> = text
        .split(';')
        .map(|row| {
            row.split(',')
                .map(|el| {
                    el.trim()
                        .parse::<u8>()
                        .map_err(|_| CliError::Usage(format!("bad vector element {el:?}")))
                })
                .collect()
        })
        .collect();
    let vectors = vectors?;
    if vectors.is_empty() || vectors.iter().any(Vec::is_empty) {
        return Err(CliError::Usage("empty vector".to_owned()));
    }
    Ok(vectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(toks: &[&str]) -> Result<Args, CliError> {
        Args::parse(toks.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_flags_and_switches() {
        let a = args(&["mc", "--stages", "64", "--experimental", "--runs", "100"]).unwrap();
        assert_eq!(a.command, "mc");
        assert_eq!(a.get("stages"), Some("64"));
        assert!(a.switch("experimental"));
        assert_eq!(a.usize_or("runs", 0).unwrap(), 100);
        assert_eq!(a.usize_or("seed", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_missing_subcommand() {
        assert!(matches!(args(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn rejects_stray_positional() {
        assert!(matches!(args(&["mc", "oops"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn rejects_bad_numbers() {
        let a = args(&["mc", "--runs", "lots"]).unwrap();
        assert!(matches!(a.usize_or("runs", 1), Err(CliError::Usage(_))));
        let a = args(&["mc", "--vdd", "1.1.1"]).unwrap();
        assert!(matches!(a.f64_or("vdd", 1.0), Err(CliError::Usage(_))));
    }

    #[test]
    fn vector_parsing() {
        assert_eq!(
            parse_vectors("0,1,2;3,2,1").unwrap(),
            vec![vec![0, 1, 2], vec![3, 2, 1]]
        );
        assert_eq!(parse_vectors("3").unwrap(), vec![vec![3]]);
        assert!(parse_vectors("0,x").is_err());
        assert!(parse_vectors("").is_err());
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_flag_values_roundtrip(name in "[a-z]{1,8}", value in "[a-z0-9.]{1,12}") {
            let a = Args::parse(vec!["cmd".to_owned(), format!("--{name}"), value.clone()]).unwrap();
            proptest::prop_assert_eq!(a.get(&name), Some(value.as_str()));
        }

        #[test]
        fn vector_parser_never_panics(text in ".{0,64}") {
            let _ = parse_vectors(&text);
        }
    }

    #[test]
    fn negative_flag_value_is_not_swallowed() {
        // "--offset --circuit": the next token starts with "--", so
        // offset becomes a switch, circuit too.
        let a = args(&["timing", "--offset", "--circuit"]).unwrap();
        assert!(a.switch("offset"));
        assert!(a.switch("circuit"));
    }
}
