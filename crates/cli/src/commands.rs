//! Subcommand implementations. Each returns its report as a `String` so
//! the binary stays a thin shell and tests can assert on output.

use crate::args::{parse_vectors, Args};
use crate::CliError;
use tdam::area::{array_area, AreaModel, StageArea};
use tdam::array::TdamArray;
use tdam::config::ArrayConfig;
use tdam::encoding::Encoding;
use tdam::engine::SimilarityEngine;
use tdam::margins::precision_sweep;
use tdam::monte_carlo::{run as mc_run, McConfig};
use tdam::power::static_power;
use tdam::timing::StageTiming;
use tdam_fefet::VthVariation;

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns [`CliError`] for usage problems or simulation failures.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "search" => search(args),
        "mc" => monte_carlo(args),
        "timing" => timing(args),
        "margins" => margins(args),
        "table1" => table1(args),
        "area" => area(args),
        "power" => power(args),
        "--help" | "-h" | "help" => Ok(crate::USAGE.to_owned()),
        other => Err(CliError::Usage(format!("unknown subcommand {other}"))),
    }
}

fn base_config(args: &Args) -> Result<ArrayConfig, CliError> {
    let bits = args.usize_or("bits", 2)? as u8;
    let cfg = ArrayConfig::paper_default()
        .with_encoding(Encoding::new(bits)?)
        .with_vdd(args.f64_or("vdd", 1.1)?)
        .with_c_load(args.f64_or("c-load-ff", 6.0)? * 1e-15);
    Ok(cfg)
}

fn search(args: &Args) -> Result<String, CliError> {
    let stored = parse_vectors(
        args.get("store")
            .ok_or_else(|| CliError::Usage("search needs --store".to_owned()))?,
    )?;
    let query = parse_vectors(
        args.get("query")
            .ok_or_else(|| CliError::Usage("search needs --query".to_owned()))?,
    )?;
    let [query] = query.as_slice() else {
        return Err(CliError::Usage("--query takes exactly one vector".to_owned()));
    };
    let stages = stored[0].len();
    if stored.iter().any(|v| v.len() != stages) {
        return Err(CliError::Usage("all stored vectors must be equal length".to_owned()));
    }
    let cfg = base_config(args)?.with_stages(stages).with_rows(stored.len());
    let mut am = TdamArray::new(cfg)?;
    for (i, row) in stored.iter().enumerate() {
        SimilarityEngine::store(&mut am, i, row)?;
    }
    let outcome = TdamArray::search(&am, query)?;
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4} {:>10} {:>12} {:>10}\n",
        "row", "distance", "delay (ps)", "count"
    ));
    for (i, row) in outcome.rows.iter().enumerate() {
        out.push_str(&format!(
            "{i:>4} {:>10} {:>12.1} {:>10}\n",
            row.decoded_mismatches,
            row.chain.total_delay * 1e12,
            row.count
        ));
    }
    out.push_str(&format!(
        "best row: {}   latency {:.3} ns   energy {:.2} fJ\n",
        outcome.best_row().expect("rows exist"),
        outcome.latency * 1e9,
        outcome.energy.total() * 1e15
    ));
    Ok(out)
}

fn monte_carlo(args: &Args) -> Result<String, CliError> {
    let stages = args.usize_or("stages", 64)?;
    let runs = args.usize_or("runs", 500)?;
    let seed = args.usize_or("seed", 0xF16)? as u64;
    let variation = if args.switch("experimental") {
        VthVariation::experimental()
    } else {
        VthVariation::uniform(args.f64_or("sigma-mv", 40.0)? * 1e-3)
    };
    let cfg = McConfig::worst_case(
        base_config(args)?.with_stages(stages),
        variation,
        runs,
        seed,
    );
    let result = mc_run(&cfg)?;
    Ok(format!(
        "{runs} runs, {stages} stages, worst case (all mismatched)\n\
         delay {:.4} ns ± {:.2} ps (nominal {:.4} ns, margin ±{:.2} ps)\n\
         within margin: {:.1}%   decode correct: {:.1}%\n",
        result.summary.mean * 1e9,
        result.summary.std_dev * 1e12,
        result.nominal_delay * 1e9,
        result.sensing_margin * 1e12,
        result.within_margin * 100.0,
        result.decode_accuracy * 100.0
    ))
}

fn timing(args: &Args) -> Result<String, CliError> {
    let cfg = base_config(args)?;
    let t = if args.switch("circuit") {
        StageTiming::from_circuit(&cfg.tech, cfg.c_load)?
    } else {
        StageTiming::analytic(&cfg.tech, cfg.c_load)?
    };
    Ok(format!(
        "{} calibration at V_DD = {:.2} V, C_load = {:.0} fF\n\
         d_INV = {:.3} ps   d_C = {:.3} ps   sensing margin = ±{:.3} ps\n\
         E_inv = {:.3} fJ   E_C = {:.3} fJ   E_MN = {:.3} fJ\n",
        if args.switch("circuit") { "circuit" } else { "analytic" },
        t.vdd,
        t.c_load * 1e15,
        t.d_inv * 1e12,
        t.d_c * 1e12,
        t.sensing_margin() * 1e12,
        t.e_inv * 1e15,
        t.e_c * 1e15,
        t.e_mn * 1e15
    ))
}

fn margins(args: &Args) -> Result<String, CliError> {
    let sigma = args.f64_or("sigma-mv", 45.0)? * 1e-3;
    let mut out = format!(
        "precision feasibility at sigma(V_TH) = {:.1} mV\n{:>6} {:>12} {:>14} {:>18}\n",
        sigma * 1e3,
        "bits",
        "margin (mV)",
        "P(cell error)",
        "max chain"
    );
    for r in precision_sweep(sigma)? {
        let chain = if r.max_reliable_chain == usize::MAX {
            "unbounded".to_owned()
        } else {
            r.max_reliable_chain.to_string()
        };
        out.push_str(&format!(
            "{:>6} {:>12.1} {:>14.3e} {:>18}\n",
            r.bits,
            r.margin * 1e3,
            r.p_cell_error,
            chain
        ));
    }
    Ok(out)
}

fn table1(args: &Args) -> Result<String, CliError> {
    let queries = args.usize_or("queries", 100)?;
    let rows = tdam_baselines::comparison_table(queries, 0x7AB1E)?;
    Ok(tdam_baselines::comparison::render_table(&rows))
}

fn power(args: &Args) -> Result<String, CliError> {
    let stages = args.usize_or("stages", 64)?;
    let rows = args.usize_or("rows", 16)?;
    let cfg = base_config(args)?.with_stages(stages).with_rows(rows);
    let p = static_power(&cfg)?;
    Ok(format!(
        "idle static power of a {rows}x{stages} array at {:.2} V:\n\
         cells {:.3e} W + inverters {:.3e} W + switches {:.3e} W = {:.3e} W\n",
        cfg.tech.vdd,
        p.cell_leakage,
        p.inverter_leakage,
        p.switch_leakage,
        p.total()
    ))
}

fn area(args: &Args) -> Result<String, CliError> {
    let stages = args.usize_or("stages", 64)?;
    let rows = args.usize_or("rows", 16)?;
    let c_load = args.f64_or("c-load-ff", 6.0)? * 1e-15;
    let model = AreaModel::at_node(40.0);
    let stage = StageArea::tdam(&model, c_load);
    let total = array_area(&model, rows, stages, c_load, 2);
    Ok(format!(
        "stage: cell {:.2} µm² + logic {:.2} µm² + load cap {:.2} µm² = {:.2} µm² ({:.2} µm²/bit)\n\
         array {rows}x{stages}: {:.1} µm² ({:.4} mm²)\n",
        stage.cell,
        stage.logic,
        stage.load_cap,
        stage.total(),
        stage.per_bit(2),
        total,
        total * 1e-6
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(toks: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(toks.iter().map(|s| s.to_string()))?;
        dispatch(&args)
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["--help"]).unwrap();
        assert!(out.contains("tdam-sim"));
        assert!(out.contains("SUBCOMMANDS"));
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(matches!(run(&["frobnicate"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn search_end_to_end() {
        let out = run(&[
            "search",
            "--store",
            "0,1,2,3;3,2,1,0",
            "--query",
            "0,1,2,2",
        ])
        .unwrap();
        assert!(out.contains("best row: 0"), "{out}");
        assert!(out.lines().count() >= 4);
    }

    #[test]
    fn search_validates_shapes() {
        assert!(matches!(
            run(&["search", "--store", "0,1;0,1,2", "--query", "0,1"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["search", "--query", "0,1"]),
            Err(CliError::Usage(_))
        ));
        // Element out of encoding range surfaces as a simulation error.
        assert!(matches!(
            run(&["search", "--store", "9,1", "--query", "0,1"]),
            Err(CliError::Simulation(_))
        ));
    }

    #[test]
    fn mc_reports_margin() {
        let out = run(&["mc", "--stages", "16", "--runs", "50", "--sigma-mv", "20"]).unwrap();
        assert!(out.contains("within margin"), "{out}");
    }

    #[test]
    fn timing_analytic_and_flags() {
        let out = run(&["timing", "--vdd", "0.8", "--c-load-ff", "12"]).unwrap();
        assert!(out.contains("analytic"));
        assert!(out.contains("C_load = 12 fF"));
    }

    #[test]
    fn margins_lists_four_precisions() {
        let out = run(&["margins", "--sigma-mv", "45"]).unwrap();
        assert_eq!(out.lines().count(), 6); // header x2 + 4 precisions
    }

    #[test]
    fn area_reports_footprint() {
        let out = run(&["area", "--stages", "32", "--rows", "8"]).unwrap();
        assert!(out.contains("µm²"));
    }

    #[test]
    fn power_reports_leakage() {
        let out = run(&["power", "--stages", "32", "--rows", "8"]).unwrap();
        assert!(out.contains("static power"), "{out}");
        assert!(out.contains("W"));
    }

    #[test]
    fn table1_renders() {
        let out = run(&["table1", "--queries", "5"]).unwrap();
        assert!(out.contains("This work"));
        assert_eq!(out.lines().count(), 7);
    }
}
