//! Subcommand implementations. Each returns its report as a `String` so
//! the binary stays a thin shell and tests can assert on output.

use crate::args::{parse_vectors, Args};
use crate::CliError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdam::area::{array_area, AreaModel, StageArea};
use tdam::array::TdamArray;
use tdam::config::ArrayConfig;
use tdam::encoding::Encoding;
use tdam::engine::{BatchQuery, SimilarityEngine};
use tdam::margins::precision_sweep;
use tdam::monte_carlo::{run as mc_run, McConfig};
use tdam::power::static_power;
use tdam::resilience::{run_campaign, CampaignConfig, CampaignFault, ResilienceConfig};
use tdam::timing::StageTiming;
use tdam_fefet::VthVariation;

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns [`CliError`] for usage problems or simulation failures.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "search" => search(args),
        "mc" => monte_carlo(args),
        "timing" => timing(args),
        "margins" => margins(args),
        "table1" => table1(args),
        "area" => area(args),
        "power" => power(args),
        "faults" => faults(args),
        "bench-batch" => bench_batch(args),
        "serve-chaos" => serve_chaos(args),
        "mutate-chaos" => mutate_chaos(args),
        "checkpoint" => checkpoint(args),
        "restore" => restore(args),
        "serve" => serve(args),
        "serve-load" => serve_load(args),
        "simulate" => simulate(args),
        "corpus-search" => corpus_search(args),
        "--help" | "-h" | "help" => Ok(crate::USAGE.to_owned()),
        other => Err(CliError::Usage(format!("unknown subcommand {other}"))),
    }
}

fn base_config(args: &Args) -> Result<ArrayConfig, CliError> {
    let bits = args.usize_or("bits", 2)? as u8;
    let cfg = ArrayConfig::paper_default()
        .with_encoding(Encoding::new(bits)?)
        .with_vdd(args.f64_or("vdd", 1.1)?)
        .with_c_load(args.f64_or("c-load-ff", 6.0)? * 1e-15);
    Ok(cfg)
}

fn search(args: &Args) -> Result<String, CliError> {
    let stored = parse_vectors(
        args.get("store")
            .ok_or_else(|| CliError::Usage("search needs --store".to_owned()))?,
    )?;
    let query = parse_vectors(
        args.get("query")
            .ok_or_else(|| CliError::Usage("search needs --query".to_owned()))?,
    )?;
    let [query] = query.as_slice() else {
        return Err(CliError::Usage(
            "--query takes exactly one vector".to_owned(),
        ));
    };
    let stages = stored.first().map_or(0, Vec::len);
    if stored.iter().any(|v| v.len() != stages) {
        return Err(CliError::Usage(
            "all stored vectors must be equal length".to_owned(),
        ));
    }
    let cfg = base_config(args)?
        .with_stages(stages)
        .with_rows(stored.len());
    let mut am = TdamArray::new(cfg)?;
    for (i, row) in stored.iter().enumerate() {
        SimilarityEngine::store(&mut am, i, row)?;
    }
    let outcome = TdamArray::search(&am, query)?;
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4} {:>10} {:>12} {:>10}\n",
        "row", "distance", "delay (ps)", "count"
    ));
    for (i, row) in outcome.rows.iter().enumerate() {
        out.push_str(&format!(
            "{i:>4} {:>10} {:>12.1} {:>10}\n",
            row.decoded_mismatches,
            row.chain.total_delay * 1e12,
            row.count
        ));
    }
    let best = outcome
        .best_row()
        .ok_or_else(|| CliError::permanent("search produced no rows"))?;
    out.push_str(&format!(
        "best row: {best}   latency {:.3} ns   energy {:.2} fJ\n",
        outcome.latency * 1e9,
        outcome.energy.total() * 1e15
    ));
    Ok(out)
}

fn monte_carlo(args: &Args) -> Result<String, CliError> {
    let stages = args.usize_or("stages", 64)?;
    let runs = args.usize_or("runs", 500)?;
    let seed = args.usize_or("seed", 0xF16)? as u64;
    let variation = if args.switch("experimental") {
        VthVariation::experimental()
    } else {
        VthVariation::uniform(args.f64_or("sigma-mv", 40.0)? * 1e-3)
    };
    let cfg = McConfig::worst_case(
        base_config(args)?.with_stages(stages),
        variation,
        runs,
        seed,
    );
    let result = mc_run(&cfg)?;
    Ok(format!(
        "{runs} runs, {stages} stages, worst case (all mismatched)\n\
         delay {:.4} ns ± {:.2} ps (nominal {:.4} ns, margin ±{:.2} ps)\n\
         within margin: {:.1}%   decode correct: {:.1}%\n",
        result.summary.mean * 1e9,
        result.summary.std_dev * 1e12,
        result.nominal_delay * 1e9,
        result.sensing_margin * 1e12,
        result.within_margin * 100.0,
        result.decode_accuracy * 100.0
    ))
}

fn timing(args: &Args) -> Result<String, CliError> {
    let cfg = base_config(args)?;
    let t = if args.switch("circuit") {
        StageTiming::from_circuit(&cfg.tech, cfg.c_load)?
    } else {
        StageTiming::analytic(&cfg.tech, cfg.c_load)?
    };
    Ok(format!(
        "{} calibration at V_DD = {:.2} V, C_load = {:.0} fF\n\
         d_INV = {:.3} ps   d_C = {:.3} ps   sensing margin = ±{:.3} ps\n\
         E_inv = {:.3} fJ   E_C = {:.3} fJ   E_MN = {:.3} fJ\n",
        if args.switch("circuit") {
            "circuit"
        } else {
            "analytic"
        },
        t.vdd,
        t.c_load * 1e15,
        t.d_inv * 1e12,
        t.d_c * 1e12,
        t.sensing_margin() * 1e12,
        t.e_inv * 1e15,
        t.e_c * 1e15,
        t.e_mn * 1e15
    ))
}

fn margins(args: &Args) -> Result<String, CliError> {
    let sigma = args.f64_or("sigma-mv", 45.0)? * 1e-3;
    let mut out = format!(
        "precision feasibility at sigma(V_TH) = {:.1} mV\n{:>6} {:>12} {:>14} {:>18}\n",
        sigma * 1e3,
        "bits",
        "margin (mV)",
        "P(cell error)",
        "max chain"
    );
    for r in precision_sweep(sigma)? {
        let chain = if r.max_reliable_chain == usize::MAX {
            "unbounded".to_owned()
        } else {
            r.max_reliable_chain.to_string()
        };
        out.push_str(&format!(
            "{:>6} {:>12.1} {:>14.3e} {:>18}\n",
            r.bits,
            r.margin * 1e3,
            r.p_cell_error,
            chain
        ));
    }
    Ok(out)
}

fn table1(args: &Args) -> Result<String, CliError> {
    let queries = args.usize_or("queries", 100)?;
    let rows = tdam_baselines::comparison_table(queries, 0x7AB1E)?;
    Ok(tdam_baselines::comparison::render_table(&rows))
}

fn power(args: &Args) -> Result<String, CliError> {
    let stages = args.usize_or("stages", 64)?;
    let rows = args.usize_or("rows", 16)?;
    let cfg = base_config(args)?.with_stages(stages).with_rows(rows);
    let p = static_power(&cfg)?;
    Ok(format!(
        "idle static power of a {rows}x{stages} array at {:.2} V:\n\
         cells {:.3e} W + inverters {:.3e} W + switches {:.3e} W = {:.3e} W\n",
        cfg.tech.vdd,
        p.cell_leakage,
        p.inverter_leakage,
        p.switch_leakage,
        p.total()
    ))
}

fn faults(args: &Args) -> Result<String, CliError> {
    let stages = args.usize_or("stages", 32)?;
    let rows = args.usize_or("rows", 16)?;
    let spares = args.usize_or("spares", rows)?;
    let trials = args.usize_or("trials", 8)?;
    let queries = args.usize_or("queries", 32)?;
    let seed = args.usize_or("seed", 0xD47E)? as u64;
    let rate = args.f64_or("rate", 0.01)?;
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(CliError::Usage(format!(
            "--rate is a per-cell fault probability and must be in 0..=1, got {rate}"
        )));
    }
    let repair = !args.switch("no-repair");
    let kind = match args.get("kind").unwrap_or("stuck-mismatch") {
        "stuck-mismatch" => CampaignFault::StuckMismatch,
        "stuck-match" => CampaignFault::StuckMatch,
        "stuck-mix" => CampaignFault::StuckMix,
        "drift" | "vth-drift" => CampaignFault::Drift {
            window_fraction: args.f64_or("window-fraction", 0.25)?,
        },
        "stuck-column" => CampaignFault::StuckColumn,
        "broken-stage" => CampaignFault::BrokenStage,
        "tdc-miscount" => CampaignFault::TdcMiscount,
        "sl-glitch" => CampaignFault::SlGlitch,
        other => {
            return Err(CliError::Usage(format!(
                "unknown fault kind {other} (stuck-mismatch, stuck-match, stuck-mix, drift, \
                 stuck-column, broken-stage, tdc-miscount, sl-glitch)"
            )))
        }
    };
    let cfg = CampaignConfig {
        array: base_config(args)?.with_stages(stages).with_rows(rows),
        resilience: ResilienceConfig {
            spare_rows: spares,
            ..ResilienceConfig::default()
        },
        kinds: vec![kind],
        fault_rates: vec![rate],
        trials,
        queries,
        repair,
        seed,
    };
    let result = run_campaign(&cfg)?;
    let p = result
        .points
        .first()
        .ok_or_else(|| CliError::permanent("campaign produced no points"))?;
    Ok(format!(
        "fault campaign: {rows}x{stages} array, {spares} spares, {} at rate {:.3}%\n\
         {trials} trials x {queries} exact-match queries, repair {}\n\
         decode accuracy: {:.1}%   retrieval accuracy: {:.1}%\n\
         per trial: {:.2} repaired, {:.2} remapped, {:.2} dead, {:.2} masked columns\n",
        p.kind.label(),
        rate * 100.0,
        if repair { "on" } else { "off" },
        p.decode_accuracy * 100.0,
        p.retrieval_accuracy * 100.0,
        p.avg_repaired,
        p.avg_remapped,
        p.avg_dead,
        p.avg_masked
    ))
}

fn bench_batch(args: &Args) -> Result<String, CliError> {
    let stages = args.usize_or("stages", 64)?;
    let rows = args.usize_or("rows", 32)?;
    let batch_size = args.usize_or("batch", 256)?;
    let seed = args.usize_or("seed", 0xBA7C)? as u64;
    let threads = args
        .get("threads")
        .map(|_| args.usize_or("threads", 1))
        .transpose()?;
    if batch_size == 0 {
        return Err(CliError::Usage("--batch must be positive".to_owned()));
    }
    let cfg = base_config(args)?.with_stages(stages).with_rows(rows);
    let mut am = TdamArray::new(cfg)?;
    let levels = am.config().encoding.levels();
    let mut rng = StdRng::seed_from_u64(seed);
    for row in 0..rows {
        let values: Vec<u8> = (0..stages).map(|_| rng.gen_range(0..levels)).collect();
        SimilarityEngine::store(&mut am, row, &values)?;
    }
    let mut batch = BatchQuery::new(stages);
    for _ in 0..batch_size {
        let q: Vec<u8> = (0..stages).map(|_| rng.gen_range(0..levels)).collect();
        batch.push(&q)?;
    }

    let t0 = std::time::Instant::now();
    let mut sequential = Vec::with_capacity(batch_size);
    for q in batch.iter() {
        sequential.push(SimilarityEngine::search(&mut am, q)?);
    }
    let t_seq = t0.elapsed().as_secs_f64();

    let compiled = am.compile();
    let t1 = std::time::Instant::now();
    let outcomes = compiled.search_batch(&batch, threads)?;
    let t_batch = t1.elapsed().as_secs_f64();

    // The packed batch tier's contract (tests/packed_equiv.rs): decisions,
    // distances, and energies exact; reconstructed delays are sums of the
    // same positive terms replayed in a different order, so they agree to
    // 2·(1.5·N + 2)·ε relative rather than bitwise.
    let latency_bound = |a: f64, b: f64| {
        (a - b).abs() <= 2.0 * (1.5 * stages as f64 + 2.0) * f64::EPSILON * a.abs().max(b.abs())
    };
    for (outcome, reference) in outcomes.iter().zip(&sequential) {
        let m = outcome.metrics();
        if m.best_row != reference.best_row
            || m.distances != reference.distances
            || m.energy != reference.energy
            || !latency_bound(m.latency, reference.latency)
        {
            return Err(CliError::permanent(
                "batched search disagrees with the sequential loop",
            ));
        }
    }
    let qps_seq = batch_size as f64 / t_seq;
    let qps_batch = batch_size as f64 / t_batch;
    Ok(format!(
        "batched query serving: {rows}x{stages} array, {batch_size} queries, threads {}\n\
         compiled rows: {}/{rows}\n\
         sequential: {:.3} ms  ({:.0} queries/s)\n\
         batched:    {:.3} ms  ({:.0} queries/s)\n\
         speedup: {:.2}x   results identical: yes\n",
        threads.map_or("auto".to_owned(), |t| t.to_string()),
        compiled.compiled_rows(),
        t_seq * 1e3,
        qps_seq,
        t_batch * 1e3,
        qps_batch,
        qps_batch / qps_seq
    ))
}

fn serve_chaos(args: &Args) -> Result<String, CliError> {
    use tdam::runtime::{run_chaos, ChaosConfig, DeadlinePolicy};

    let mut cfg = ChaosConfig::paper_default();
    let stages = args.usize_or("stages", cfg.array.stages)?;
    let rows = args.usize_or("rows", cfg.array.rows)?;
    cfg.array = base_config(args)?.with_stages(stages).with_rows(rows);
    cfg.resilience.spare_rows = args.usize_or("spares", cfg.resilience.spare_rows)?;
    cfg.batches = args.usize_or("batches", cfg.batches)?;
    cfg.batch_size = args.usize_or("batch", cfg.batch_size)?;
    cfg.fault_rate = args.f64_or("fault-rate", cfg.fault_rate)?;
    cfg.panic_rate = args.f64_or("panic-rate", cfg.panic_rate)?;
    cfg.seed = args.usize_or("seed", cfg.seed as usize)? as u64;
    for (name, rate) in [
        ("fault-rate", cfg.fault_rate),
        ("panic-rate", cfg.panic_rate),
    ] {
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(CliError::Usage(format!(
                "--{name} is a probability and must be in 0..=1, got {rate}"
            )));
        }
    }
    if args.get("deadline-queries").is_some() {
        cfg.runtime.deadline = DeadlinePolicy::QueryBudget(args.usize_or("deadline-queries", 0)?);
    }
    let report = run_chaos(&cfg)?;
    Ok(format!(
        "chaos campaign: {rows}x{stages} array, {} spares, seed {:#x}\n\
         {} batches x {} queries, fault rate {:.2}%, panic rate {:.2}%\n\
         availability: {:.2}%  ({} answered, {} timed out, {} failed of {})\n\
         correctness: {} wrong, {} silent wrong, {} flagged degraded\n\
         faults injected: {}   final backend: {:?} ({:?})\n\
         runtime: {} retries ({} backoff waits), {} breaker trips, {} recompiles, \
         {} health checks ({} missed), {} repairs, {} demotions, {} promotions\n",
        cfg.resilience.spare_rows,
        cfg.seed,
        cfg.batches,
        cfg.batch_size,
        cfg.fault_rate * 100.0,
        cfg.panic_rate * 100.0,
        report.availability() * 100.0,
        report.answered,
        report.timed_out,
        report.failed,
        report.total_queries,
        report.wrong,
        report.silent_wrong,
        report.degraded_answers,
        report.faults_injected,
        report.final_backend,
        report.final_degradation,
        report.stats.retries,
        report.stats.backoff_waits,
        report.stats.breaker_trips,
        report.stats.recompiles,
        report.stats.health_checks,
        report.stats.health_misses,
        report.stats.repairs,
        report.stats.demotions,
        report.stats.promotions
    ))
}

fn mutate_chaos(args: &Args) -> Result<String, CliError> {
    use tdam::runtime::{run_mutation_chaos, DeadlinePolicy, MutationChaosConfig};

    let mut cfg = MutationChaosConfig::paper_default();
    let stages = args.usize_or("stages", cfg.array.stages)?;
    let rows = args.usize_or("rows", cfg.array.rows)?;
    cfg.array = base_config(args)?.with_stages(stages).with_rows(rows);
    cfg.resilience.spare_rows = args.usize_or("spares", cfg.resilience.spare_rows)?;
    cfg.batches = args.usize_or("batches", cfg.batches)?;
    cfg.batch_size = args.usize_or("batch", cfg.batch_size)?;
    cfg.writes_per_batch = args.usize_or("writes", cfg.writes_per_batch)?;
    cfg.fault_rate = args.f64_or("fault-rate", cfg.fault_rate)?;
    cfg.panic_rate = args.f64_or("panic-rate", cfg.panic_rate)?;
    cfg.seed = args.usize_or("seed", cfg.seed as usize)? as u64;
    for (name, rate) in [
        ("fault-rate", cfg.fault_rate),
        ("panic-rate", cfg.panic_rate),
    ] {
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(CliError::Usage(format!(
                "--{name} is a probability and must be in 0..=1, got {rate}"
            )));
        }
    }
    if args.get("deadline-queries").is_some() {
        cfg.runtime.deadline = DeadlinePolicy::QueryBudget(args.usize_or("deadline-queries", 0)?);
    }
    let report = run_mutation_chaos(&cfg)?;
    let out = format!(
        "mutation chaos: {rows}x{stages} array, {} spares, seed {:#x}\n\
         {} batches x {} queries, {} writes/batch, fault rate {:.2}%, panic rate {:.2}%\n\
         availability: {:.2}%  ({} answered, {} timed out, {} failed of {})\n\
         correctness: {} wrong, {} silent wrong, {} flagged degraded (judged against \
         an independently replayed reference)\n\
         writes: {} user, {} physical (amplification {:.3}x), {} wear rotations, \
         {} refresh rewrites\n\
         repack: {} incremental repacks covering {} rows, {} epoch swaps, {} full recompiles\n\
         faults injected: {}   final backend: {:?} ({:?})\n",
        cfg.resilience.spare_rows,
        cfg.seed,
        cfg.batches,
        cfg.batch_size,
        cfg.writes_per_batch,
        cfg.fault_rate * 100.0,
        cfg.panic_rate * 100.0,
        report.availability() * 100.0,
        report.answered,
        report.timed_out,
        report.failed,
        report.total_queries,
        report.wrong,
        report.silent_wrong,
        report.degraded_answers,
        report.user_writes,
        report.physical_writes,
        report.write_amplification(),
        report.wear_rotations,
        report.refresh_rewrites,
        report.stats.incremental_repacks,
        report.stats.rows_repacked,
        report.stats.epoch_swaps,
        report
            .stats
            .recompiles
            .saturating_sub(report.stats.incremental_repacks),
        report.faults_injected,
        report.final_backend,
        report.final_degradation,
    );
    // The campaign gate: a silently wrong answer is forbidden under any
    // fault mix, and a pure-mutation campaign (no injected cell faults)
    // must be *correct* outright. Both are permanent failures — the same
    // seed will corrupt the same way, so a retry is pointless.
    if report.silent_wrong > 0 {
        return Err(CliError::permanent(format!(
            "{out}FAILED: {} silently wrong answer(s) delivered as nominal",
            report.silent_wrong
        )));
    }
    if cfg.fault_rate == 0.0 && report.wrong > 0 {
        return Err(CliError::permanent(format!(
            "{out}FAILED: {} wrong answer(s) in a pure-mutation campaign",
            report.wrong
        )));
    }
    Ok(out)
}

fn checkpoint(args: &Args) -> Result<String, CliError> {
    use tdam::runtime::{ResilientEngine, RuntimeConfig};
    use tdam::store::{CheckpointStore, DurableEngine};

    let dir = args
        .get("dir")
        .ok_or_else(|| CliError::Usage("checkpoint needs --dir".to_owned()))?
        .to_owned();
    let stages = args.usize_or("stages", 16)?;
    let rows = args.usize_or("rows", 8)?;
    let spares = args.usize_or("spares", 2)?;
    let mutations = args.usize_or("mutations", 3)?;
    let seed = args.usize_or("seed", 0xC4E0)? as u64;
    let cfg = base_config(args)?.with_stages(stages).with_rows(rows);
    let levels = cfg.encoding.levels() as usize;
    let resilience = ResilienceConfig {
        spare_rows: spares,
        ..Default::default()
    };

    let mut engine = ResilientEngine::new(cfg, resilience, RuntimeConfig::default())?;
    let mut rng = StdRng::seed_from_u64(seed);
    let random_row = |rng: &mut StdRng| -> Vec<u8> {
        (0..stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect()
    };
    for row in 0..rows {
        let values = random_row(&mut rng);
        engine.store(row, &values)?;
    }

    let store = CheckpointStore::open(&dir)?;
    let mut durable = DurableEngine::new(store, engine)?;
    let generation = durable.generation();
    for _ in 0..mutations {
        let row = rng.gen_range(0..rows);
        let values = random_row(&mut rng);
        durable.store(row, &values)?;
    }
    Ok(format!(
        "persisted a {rows}x{stages} deployment ({spares} spares, seed {seed:#x}) under {dir}\n\
         checkpoint generation {generation} committed atomically \
         (temp file + rename, CRC-32 over the payload)\n\
         {} post-checkpoint mutation(s) appended to the write-ahead journal \
         — run `tdam-sim restore --dir {dir}` to replay them\n",
        durable.journal_ops()
    ))
}

fn restore(args: &Args) -> Result<String, CliError> {
    use tdam::runtime::RuntimeConfig;
    use tdam::store::DurableEngine;

    let dir = args
        .get("dir")
        .ok_or_else(|| CliError::Usage("restore needs --dir".to_owned()))?
        .to_owned();
    let (mut durable, report) = DurableEngine::recover(&dir, RuntimeConfig::default())?;

    // Known-answer smoke: every logical row queried with its own stored
    // vector must come back as its own best match with zero mismatches.
    let data_rows = durable.engine().array().data_rows();
    let stages = durable.engine().array().array().config().stages;
    let mut batch = BatchQuery::new(stages);
    for row in 0..data_rows {
        let phys = durable.engine().array().physical_row(row)?;
        let values = durable.engine().array().array().stored(phys)?;
        batch.push(&values)?;
    }
    let outcome = durable.serve(&batch)?;
    let exact = outcome
        .slots
        .iter()
        .enumerate()
        .filter(|(row, slot)| {
            slot.ok()
                .is_some_and(|m| m.best_row == Some(*row) && m.distances[*row] == Some(0))
        })
        .count();

    let mut out = format!(
        "recovered generation {} from {dir}: {} journal op(s) replayed, {} skipped\n",
        report.generation, report.ops_replayed, report.ops_skipped
    );
    if report.corruption_detected {
        out.push_str(&format!(
            "corruption detected and contained: fell back past damaged file(s); \
             {} quarantined\n",
            report.quarantined.len()
        ));
    }
    if report.journal_torn {
        out.push_str("journal had a torn tail; the valid prefix was replayed\n");
    }
    out.push_str(&format!(
        "known-answer probes: {exact}/{data_rows} rows exact   backend after revalidation: {:?}\n",
        durable.engine().backend()
    ));
    Ok(out)
}

fn serve(args: &Args) -> Result<String, CliError> {
    use tdam::serve::{run_serve_chaos, ServeChaosConfig};

    let mut cfg = ServeChaosConfig::quick(None);
    cfg.serve.array = base_config(args)?
        .with_stages(args.usize_or("stages", 16)?)
        .with_rows(1); // per-shard rows come from the shard map
    cfg.rows = args.usize_or("rows", 96)?;
    cfg.serve.rows_per_shard = args.usize_or("rows-per-shard", 24)?;
    cfg.serve.workers = args.usize_or("workers", 4)?;
    cfg.serve.queue_capacity = args.usize_or("queue-capacity", 16)?;
    cfg.clients = args.usize_or("clients", 3)?;
    cfg.requests_per_client = args.usize_or("requests", 12)?;
    cfg.k = args.usize_or("k", 5)?;
    cfg.seed = args.usize_or("seed", 7)? as u64;
    cfg.deadline = std::time::Duration::from_millis(args.usize_or("deadline-ms", 250)? as u64);
    cfg.chaos = !args.switch("no-chaos");
    let standby_dir = match args.get("standby-dir") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("tdam-serve-standby-{}", std::process::id())),
    };
    std::fs::create_dir_all(&standby_dir)
        .map_err(|e| CliError::Usage(format!("cannot create standby dir: {e}")))?;
    cfg.standby_dir = Some(standby_dir.clone());

    let report = run_serve_chaos(&cfg)?;
    if args.get("standby-dir").is_none() {
        let _ = std::fs::remove_dir_all(&standby_dir);
    }

    let mut out = format!(
        "sharded serving campaign: {} rows x {} stages, {} rows/shard, \
         {} workers, queue {}, seed {:#x}\n\
         {:>10} {:>8} {:>9} {:>8} {:>9} {:>6} {:>6} {:>7} {:>7} {:>9} {:>9} {:>7}\n",
        cfg.rows,
        cfg.serve.array.stages,
        cfg.serve.rows_per_shard,
        cfg.serve.workers,
        cfg.serve.queue_capacity,
        cfg.seed,
        "phase",
        "requests",
        "answered",
        "partial",
        "degraded",
        "shedQ",
        "shedD",
        "wrong",
        "silent",
        "p50 (µs)",
        "p99 (µs)",
        "qps"
    );
    for p in &report.phases {
        out.push_str(&format!(
            "{:>10} {:>8} {:>9} {:>8} {:>9} {:>6} {:>6} {:>7} {:>7} {:>9} {:>9} {:>7}\n",
            p.name,
            p.requests,
            p.answered,
            p.partial,
            p.degraded,
            p.shed_queue,
            p.shed_deadline,
            p.flagged_mismatch,
            p.silent_wrong,
            p.p50_us,
            p.p99_us,
            p.qps
        ));
    }
    out.push_str(&format!(
        "service: {} requests, {} complete, {} partial, {} degraded; \
         {} shard downs, {} failovers ({} probe failures), {} restocks\n\
         front-end: {} connections, {} received, {} answered, \
         {} shed (queue {}, deadline {}), {} errors\n",
        report.service.requests,
        report.service.complete,
        report.service.partial,
        report.service.degraded,
        report.service.shard_downs,
        report.service.failovers,
        report.service.probe_failures,
        report.service.restocks,
        report.front.connections,
        report.front.received,
        report.front.answered,
        report.front.shed_queue + report.front.shed_deadline,
        report.front.shed_queue,
        report.front.shed_deadline,
        report.front.errors
    ));
    for (ix, s) in report.shards.iter().enumerate() {
        let write_amp = if s.stats.user_writes == 0 {
            1.0
        } else {
            s.stats.physical_writes as f64 / s.stats.user_writes as f64
        };
        out.push_str(&format!(
            "shard {ix}: rows {}..{} {} backend {:?}  \
             {} queries, {} retries ({} backoff waits), {} breaker trips, \
             {} demotions, {} promotions, {} repairs\n\
             \u{20}        writes: {} user, {} physical (amplification {write_amp:.3}x), \
             {} wear rotations, {} refresh rewrites; \
             {} epoch swaps ({} incremental repacks)\n",
            s.base,
            s.base + s.rows,
            if s.down { "DOWN" } else { "up  " },
            s.backend,
            s.stats.queries,
            s.stats.retries,
            s.stats.backoff_waits,
            s.stats.breaker_trips,
            s.stats.demotions,
            s.stats.promotions,
            s.stats.repairs,
            s.stats.user_writes,
            s.stats.physical_writes,
            s.stats.wear_rotations,
            s.stats.refresh_rewrites,
            s.stats.epoch_swaps,
            s.stats.incremental_repacks
        ));
    }
    if report.silent_wrong() > 0 {
        return Err(CliError::permanent(format!(
            "{} silent wrong answer(s): a complete answer differed from brute force",
            report.silent_wrong()
        )));
    }
    Ok(out)
}

fn serve_load(args: &Args) -> Result<String, CliError> {
    use tdam::serve::{percentile, ServeClient, ServeError, ShedReason};

    let addr = args
        .get("addr")
        .ok_or_else(|| CliError::Usage("serve-load needs --addr HOST:PORT".to_owned()))?;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| CliError::Usage(format!("bad --addr {addr}")))?;
    let clients = args.usize_or("clients", 2)?.max(1);
    let requests = args.usize_or("requests", 32)?;
    let k = args.usize_or("k", 5)?;
    let seed = args.usize_or("seed", 11)? as u64;
    let deadline = std::time::Duration::from_millis(args.usize_or("deadline-ms", 250)? as u64);

    // Discover the corpus shape over the wire so queries are well
    // formed without any out-of-band knowledge.
    let info = ServeClient::connect(addr)?.info()?;

    struct Tally {
        answered: usize,
        partial: usize,
        degraded: usize,
        shed_queue: usize,
        shed_deadline: usize,
        errors: usize,
        latencies_us: Vec<u64>,
    }
    let started = std::time::Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || -> Result<Tally, CliError> {
                    let mut rng =
                        StdRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9e37_79b9));
                    let mut client = ServeClient::connect(addr)?;
                    let mut tally = Tally {
                        answered: 0,
                        partial: 0,
                        degraded: 0,
                        shed_queue: 0,
                        shed_deadline: 0,
                        errors: 0,
                        latencies_us: Vec::with_capacity(requests),
                    };
                    for _ in 0..requests {
                        let query: Vec<u8> = (0..info.stages)
                            .map(|_| rng.gen_range(0..info.levels as u8))
                            .collect();
                        let sent = std::time::Instant::now();
                        match client.query(&query, k, deadline) {
                            Ok(topk) => {
                                tally.latencies_us.push(sent.elapsed().as_micros() as u64);
                                tally.answered += 1;
                                if topk.partial {
                                    tally.partial += 1;
                                }
                                if topk.degraded {
                                    tally.degraded += 1;
                                }
                            }
                            Err(ServeError::Overloaded(ShedReason::QueueFull)) => {
                                tally.shed_queue += 1;
                            }
                            Err(ServeError::Overloaded(ShedReason::DeadlineExpired)) => {
                                tally.shed_deadline += 1;
                            }
                            Err(_) => tally.errors += 1,
                        }
                    }
                    Ok(tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| CliError::permanent("load client panicked"))?
            })
            .collect::<Result<Vec<_>, CliError>>()
    })?;
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = Vec::new();
    let (mut answered, mut partial, mut degraded) = (0usize, 0usize, 0usize);
    let (mut shed_queue, mut shed_deadline, mut errors) = (0usize, 0usize, 0usize);
    for t in tallies {
        answered += t.answered;
        partial += t.partial;
        degraded += t.degraded;
        shed_queue += t.shed_queue;
        shed_deadline += t.shed_deadline;
        errors += t.errors;
        latencies.extend(t.latencies_us);
    }
    let total = clients * requests;
    let qps = total as f64 / elapsed.as_secs_f64().max(1e-9);
    Ok(format!(
        "serve-load against {addr}: corpus {} rows x {} stages over {} shard(s)\n\
         {} client(s) x {} request(s) closed-loop, k={k}, deadline {:?}\n\
         answered {answered}/{total} ({partial} partial, {degraded} degraded)\n\
         shed: {shed_queue} queue-full, {shed_deadline} deadline   errors: {errors}\n\
         throughput {qps:.0} qps   p50 {} µs   p99 {} µs\n",
        info.rows,
        info.stages,
        info.shards,
        clients,
        requests,
        deadline,
        percentile(&mut latencies, 50.0),
        percentile(&mut latencies, 99.0),
    ))
}

/// Renders one world's report as the CLI's stable text form.
fn sim_report_lines(report: &tdam::sim::SimReport) -> String {
    let mut out = format!(
        "requests {}: {} complete, {} partial, {} degraded, {} shed, \
         {} transport errors, {} protocol errors, {} server errors\n\
         events: {} mutations, {} shard crashes, {} failovers, {} durable crashes, \
         {} disk faults, {} checkpoints, {} ages, {} drifts, {} scrubs, {} reorders\n\
         judged {} answers against brute force; scrub heals {}\n",
        report.requests,
        report.complete,
        report.partial,
        report.degraded,
        report.shed,
        report.transport_errors,
        report.protocol_errors,
        report.server_errors,
        report.mutations,
        report.shard_crashes,
        report.failovers,
        report.durable_crashes,
        report.disk_faults,
        report.checkpoints,
        report.ages,
        report.drifts,
        report.scrubs,
        report.reorders,
        report.judged,
        report.scrub_heals,
    );
    if report.corpus_judged > 0 || report.corpus_mutations > 0 {
        out.push_str(&format!(
            "corpus tier: judged {} restricted re-ranks, {} mutations\n",
            report.corpus_judged, report.corpus_mutations,
        ));
    }
    out
}

/// Renders a failure artifact: everything needed to reproduce and debug
/// a failing seed (the seed itself, replay consistency, and the
/// greedily minimized fault schedule).
fn sim_artifact_lines(artifact: &tdam::sim::FailureArtifact) -> String {
    format!(
        "first failure: step {}: {}\n\
         replay bit-identical: {}\n\
         reproduce with: tdam-sim simulate --seed {}\n\
         minimized schedule ({} of {} events):\n{}",
        artifact.first_failure.step,
        artifact.first_failure.what,
        artifact.replay_consistent,
        artifact.seed,
        artifact.minimized.events.len(),
        artifact.original_events,
        artifact.minimized.describe(),
    )
}

fn simulate(args: &Args) -> Result<String, CliError> {
    use tdam::sim::{generate_schedule, run_sim_campaign, simulate as run_world, SimConfig};

    let seed = args.usize_or("seed", 0)? as u64;
    let scenarios = args.usize_or("scenarios", 1)?;
    let mut cfg = if args.switch("paper") {
        SimConfig::paper_default(seed)
    } else {
        SimConfig::quick(seed)
    };
    cfg.steps = args.usize_or("steps", cfg.steps)?;
    cfg.fault_density = args.usize_or("fault-density", cfg.fault_density as usize)? as u32;
    if !(1..=100).contains(&cfg.fault_density) {
        return Err(CliError::Usage(format!(
            "--fault-density is a percentage and must be in 1..=100, got {}",
            cfg.fault_density
        )));
    }
    cfg.sabotage = args.switch("sabotage");
    cfg.corpus_rows = args.usize_or("corpus-rows", cfg.corpus_rows)?;

    if scenarios > 1 {
        // Campaign mode: `seed` is the base seed each world derives
        // from. Any failing world is replayed and shrunk so the report
        // carries a directly actionable artifact.
        let report = run_sim_campaign(&cfg, seed, scenarios)?;
        let mut out = format!(
            "deterministic sim campaign: {} worlds from base seed {}, \
             {} steps x {} rows x {} stages each\n\
             requests {}: {} complete, {} flagged, {} shed, \
             {} transport errors, {} protocol errors\n\
             events: {} mutations, {} shard crashes, {} failovers, {} durable crashes, \
             {} ages, {} drifts; scrub heals {}\n\
             judged {} answers against brute force\n",
            report.scenarios,
            seed,
            cfg.steps,
            cfg.rows,
            cfg.stages,
            report.requests,
            report.complete,
            report.flagged,
            report.shed,
            report.transport_errors,
            report.protocol_errors,
            report.mutations,
            report.shard_crashes,
            report.failovers,
            report.durable_crashes,
            report.ages,
            report.drifts,
            report.scrub_heals,
            report.judged,
        );
        if report.corpus_judged > 0 || report.corpus_mutations > 0 {
            out.push_str(&format!(
                "corpus tier: judged {} restricted re-ranks, {} mutations\n",
                report.corpus_judged, report.corpus_mutations,
            ));
        }
        if report.failing_seeds.is_empty() {
            out.push_str("verdict: PASS (zero silent wrong answers)\n");
            return Ok(out);
        }
        out.push_str(&format!(
            "verdict: FAIL — {} failing seed(s): {:?}\n",
            report.failing_seeds.len(),
            report.failing_seeds
        ));
        // Shrink the first failing seed into a minimal reproducer.
        let mut failing = cfg;
        failing.seed = report.failing_seeds[0];
        let outcome = run_world(&failing)?;
        if let Some(artifact) = &outcome.failure {
            out.push_str(&sim_artifact_lines(artifact));
        }
        return Err(CliError::permanent(out));
    }

    let schedule = generate_schedule(&cfg);
    let outcome = run_world(&cfg)?;
    let mut out = format!(
        "deterministic sim: seed {}, {} steps, {} rows x {} stages over {} shards, \
         {} scheduled fault events\n{}",
        cfg.seed,
        cfg.steps,
        cfg.rows,
        cfg.stages,
        cfg.shards(),
        schedule.events.len(),
        sim_report_lines(&outcome.report),
    );
    match &outcome.failure {
        None => {
            out.push_str("verdict: PASS (zero silent wrong answers)\n");
            Ok(out)
        }
        Some(artifact) => {
            out.push_str("verdict: FAIL\n");
            out.push_str(&sim_artifact_lines(artifact));
            Err(CliError::permanent(out))
        }
    }
}

/// Two-tier corpus search demo: seeded clustered corpus, coarse
/// centroid pre-filter, exact packed re-rank from LRU-cached shard
/// snapshots — reporting recall@k against full brute force plus the
/// snapshot-cache counters.
fn corpus_search(args: &Args) -> Result<String, CliError> {
    use tdam::corpus::{CorpusBuilder, CorpusConfig};
    use tdam::serve::brute_force_topk;

    let rows = args.usize_or("rows", 4096)?;
    let stages = args.usize_or("stages", 32)?;
    let protos = args.usize_or("protos", 32)?.max(1);
    let shard_rows = args.usize_or("shard-rows", 256)?;
    let nprobe = args.usize_or("nprobe", 8)?;
    let queries = args.usize_or("queries", 32)?;
    let k = args.usize_or("k", 10)?;
    let seed = args.usize_or("seed", 7)? as u64;
    let cache_kb = args.usize_or("cache-kb", 4096)?;
    if rows == 0 || stages == 0 || queries == 0 || k == 0 {
        return Err(CliError::Usage(
            "--rows, --stages, --queries, and --k must all be positive".to_owned(),
        ));
    }

    let array = base_config(args)?.with_stages(stages);
    let levels = array.encoding.levels();

    // Clustered synthetic corpus: prototypes plus per-element noise, so
    // the coarse quantizer has structure to recover (recall over a
    // uniform corpus would just measure nprobe / shards).
    let mut rng = StdRng::seed_from_u64(seed);
    let proto_rows: Vec<Vec<u8>> = (0..protos)
        .map(|_| (0..stages).map(|_| rng.gen_range(0..levels)).collect())
        .collect();
    let corpus: Vec<Vec<u8>> = (0..rows)
        .map(|_| {
            let p = &proto_rows[rng.gen_range(0..protos)];
            p.iter()
                .map(|&v| {
                    if rng.gen_range(0..100u32) < 15 {
                        rng.gen_range(0..levels)
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();

    let ccfg = CorpusConfig {
        array,
        shard_rows,
        nprobe,
        cache_budget_bytes: cache_kb << 10,
        seed,
        ..CorpusConfig::paper_default()
    };
    let mut builder = CorpusBuilder::new(ccfg)?;
    builder.append_rows(&corpus)?;
    let mut engine = builder.build()?;

    let mut hits = 0usize;
    let mut total = 0usize;
    let mut probed_total = 0usize;
    for _ in 0..queries {
        let row = rng.gen_range(0..rows);
        let mut q = corpus[row].clone();
        for _ in 0..2 {
            let j = rng.gen_range(0..stages);
            q[j] = rng.gen_range(0..levels);
        }
        let (got, probed) = engine.search_topk_probed(&q, k)?;
        let expected = brute_force_topk(&corpus, array.encoding, &q, k)?;
        let want: std::collections::HashSet<usize> = expected.iter().map(|&(_, id)| id).collect();
        hits += got.iter().filter(|&&(_, id)| want.contains(&id)).count();
        total += expected.len();
        probed_total += probed.len();
    }

    let status = engine.status();
    Ok(format!(
        "two-tier corpus search: {} rows x {} stages over {} shards of {}, nprobe {}\n\
         recall@{}: {:.3} over {} queries ({}/{}); avg probed shards {:.1}\n\
         snapshot cache: {} resident ({} KiB of {} KiB budget), \
         {} hits, {} misses, {} evictions\n",
        status.rows,
        stages,
        status.clusters,
        shard_rows,
        status.nprobe,
        k,
        hits as f64 / total.max(1) as f64,
        queries,
        hits,
        total,
        probed_total as f64 / queries as f64,
        status.resident,
        status.resident_bytes >> 10,
        status.budget_bytes >> 10,
        status.stats.corpus_cache_hits,
        status.stats.corpus_cache_misses,
        status.stats.corpus_cache_evictions,
    ))
}

fn area(args: &Args) -> Result<String, CliError> {
    let stages = args.usize_or("stages", 64)?;
    let rows = args.usize_or("rows", 16)?;
    let c_load = args.f64_or("c-load-ff", 6.0)? * 1e-15;
    let model = AreaModel::at_node(40.0);
    let stage = StageArea::tdam(&model, c_load);
    let total = array_area(&model, rows, stages, c_load, 2);
    Ok(format!(
        "stage: cell {:.2} µm² + logic {:.2} µm² + load cap {:.2} µm² = {:.2} µm² ({:.2} µm²/bit)\n\
         array {rows}x{stages}: {:.1} µm² ({:.4} mm²)\n",
        stage.cell,
        stage.logic,
        stage.load_cap,
        stage.total(),
        stage.per_bit(2),
        total,
        total * 1e-6
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(toks: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(toks.iter().map(|s| s.to_string()))?;
        dispatch(&args)
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["--help"]).unwrap();
        assert!(out.contains("tdam-sim"));
        assert!(out.contains("SUBCOMMANDS"));
    }

    #[test]
    fn simulate_single_world_passes() {
        let out = run(&["simulate", "--seed", "42"]).unwrap();
        assert!(out.contains("verdict: PASS"), "{out}");
        assert!(out.contains("judged"), "{out}");
    }

    #[test]
    fn simulate_campaign_passes() {
        let out = run(&["simulate", "--seed", "12648430", "--scenarios", "25"]).unwrap();
        assert!(out.contains("25 worlds"), "{out}");
        assert!(out.contains("verdict: PASS"), "{out}");
    }

    #[test]
    fn simulate_sabotage_fails_with_artifact() {
        // The judge self-test: the CLI must fail loudly and carry a
        // directly replayable artifact (seed + minimized schedule).
        let err = run(&["simulate", "--seed", "7", "--sabotage"]).expect_err("sabotage");
        assert_eq!(err.class(), crate::ErrorClass::Permanent);
        let msg = err.to_string();
        assert!(msg.contains("verdict: FAIL"), "{msg}");
        assert!(msg.contains("silent wrong answer"), "{msg}");
        assert!(msg.contains("replay bit-identical: true"), "{msg}");
        assert!(msg.contains("tdam-sim simulate --seed 7"), "{msg}");
        assert!(msg.contains("minimized schedule"), "{msg}");
    }

    #[test]
    fn simulate_with_corpus_rows_reports_corpus_tier() {
        let out = run(&["simulate", "--seed", "42", "--corpus-rows", "48"]).unwrap();
        assert!(out.contains("verdict: PASS"), "{out}");
        assert!(out.contains("corpus tier: judged"), "{out}");
    }

    #[test]
    fn corpus_search_reports_recall_and_cache() {
        let out = run(&[
            "corpus-search",
            "--rows",
            "512",
            "--stages",
            "16",
            "--protos",
            "8",
            "--shard-rows",
            "64",
            "--nprobe",
            "4",
            "--queries",
            "8",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("two-tier corpus search"), "{out}");
        assert!(out.contains("recall@10"), "{out}");
        assert!(out.contains("snapshot cache"), "{out}");
    }

    #[test]
    fn simulate_validates_fault_density() {
        assert!(matches!(
            run(&["simulate", "--fault-density", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["simulate", "--fault-density", "101"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(matches!(run(&["frobnicate"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn search_end_to_end() {
        let out = run(&["search", "--store", "0,1,2,3;3,2,1,0", "--query", "0,1,2,2"]).unwrap();
        assert!(out.contains("best row: 0"), "{out}");
        assert!(out.lines().count() >= 4);
    }

    #[test]
    fn search_validates_shapes() {
        assert!(matches!(
            run(&["search", "--store", "0,1;0,1,2", "--query", "0,1"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["search", "--query", "0,1"]),
            Err(CliError::Usage(_))
        ));
        // Element out of encoding range surfaces as a simulation error.
        assert!(matches!(
            run(&["search", "--store", "9,1", "--query", "0,1"]),
            Err(CliError::Simulation { .. })
        ));
    }

    #[test]
    fn mc_reports_margin() {
        let out = run(&["mc", "--stages", "16", "--runs", "50", "--sigma-mv", "20"]).unwrap();
        assert!(out.contains("within margin"), "{out}");
    }

    #[test]
    fn timing_analytic_and_flags() {
        let out = run(&["timing", "--vdd", "0.8", "--c-load-ff", "12"]).unwrap();
        assert!(out.contains("analytic"));
        assert!(out.contains("C_load = 12 fF"));
    }

    #[test]
    fn margins_lists_four_precisions() {
        let out = run(&["margins", "--sigma-mv", "45"]).unwrap();
        assert_eq!(out.lines().count(), 6); // header x2 + 4 precisions
    }

    #[test]
    fn area_reports_footprint() {
        let out = run(&["area", "--stages", "32", "--rows", "8"]).unwrap();
        assert!(out.contains("µm²"));
    }

    #[test]
    fn power_reports_leakage() {
        let out = run(&["power", "--stages", "32", "--rows", "8"]).unwrap();
        assert!(out.contains("static power"), "{out}");
        assert!(out.contains("W"));
    }

    #[test]
    fn faults_reports_campaign_point() {
        let out = run(&[
            "faults",
            "--rows",
            "4",
            "--stages",
            "16",
            "--trials",
            "2",
            "--queries",
            "4",
        ])
        .unwrap();
        assert!(out.contains("decode accuracy"), "{out}");
        assert!(out.contains("repair on"), "{out}");
    }

    #[test]
    fn faults_no_repair_and_kinds() {
        let out = run(&[
            "faults",
            "--rows",
            "4",
            "--stages",
            "16",
            "--trials",
            "2",
            "--queries",
            "4",
            "--kind",
            "sl-glitch",
            "--no-repair",
        ])
        .unwrap();
        assert!(out.contains("sl-glitch"), "{out}");
        assert!(out.contains("repair off"), "{out}");
        assert!(matches!(
            run(&["faults", "--kind", "gremlins"]),
            Err(CliError::Usage(_))
        ));
        // The campaign table prints "vth-drift"; accept it as an alias.
        let out = run(&[
            "faults",
            "--rows",
            "4",
            "--stages",
            "16",
            "--trials",
            "1",
            "--queries",
            "2",
            "--kind",
            "vth-drift",
        ])
        .unwrap();
        assert!(out.contains("vth-drift"), "{out}");
        assert!(matches!(
            run(&["faults", "--rate", "1.5"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["faults", "--rate", "-0.1"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bench_batch_verifies_and_reports() {
        let out = run(&[
            "bench-batch",
            "--rows",
            "4",
            "--stages",
            "16",
            "--batch",
            "8",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("results identical: yes"), "{out}");
        assert!(out.contains("compiled rows: 4/4"), "{out}");
        assert!(matches!(
            run(&["bench-batch", "--batch", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_chaos_reports_availability() {
        let out = run(&[
            "serve-chaos",
            "--rows",
            "8",
            "--stages",
            "16",
            "--batches",
            "4",
            "--batch",
            "8",
            "--spares",
            "4",
        ])
        .unwrap();
        assert!(out.contains("availability"), "{out}");
        assert!(out.contains("silent wrong"), "{out}");
        // Same seed → bit-identical report text.
        let replay = run(&[
            "serve-chaos",
            "--rows",
            "8",
            "--stages",
            "16",
            "--batches",
            "4",
            "--batch",
            "8",
            "--spares",
            "4",
        ])
        .unwrap();
        assert_eq!(out, replay);
    }

    #[test]
    fn serve_chaos_validates_rates_and_honors_deadline() {
        assert!(matches!(
            run(&["serve-chaos", "--fault-rate", "1.5"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["serve-chaos", "--panic-rate", "-0.2"]),
            Err(CliError::Usage(_))
        ));
        let out = run(&[
            "serve-chaos",
            "--rows",
            "4",
            "--stages",
            "16",
            "--batches",
            "2",
            "--batch",
            "8",
            "--fault-rate",
            "0",
            "--panic-rate",
            "0",
            "--deadline-queries",
            "3",
        ])
        .unwrap();
        // 2 batches x 8 queries with a 3-query budget: 6 answered, 10 expired.
        assert!(out.contains("6 answered, 10 timed out"), "{out}");
    }

    #[test]
    fn mutate_chaos_reports_and_replays_bit_identically() {
        let argv = [
            "mutate-chaos",
            "--rows",
            "8",
            "--stages",
            "16",
            "--batches",
            "4",
            "--batch",
            "8",
            "--writes",
            "2",
            "--panic-rate",
            "0",
        ];
        let out = run(&argv).unwrap();
        assert!(out.contains("0 wrong, 0 silent wrong"), "{out}");
        assert!(out.contains("amplification"), "{out}");
        assert!(out.contains("incremental repacks"), "{out}");
        // Same seed → bit-identical report text (integer-only campaign).
        assert_eq!(out, run(&argv).unwrap());
    }

    #[test]
    fn mutate_chaos_validates_rates() {
        assert!(matches!(
            run(&["mutate-chaos", "--fault-rate", "2"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["mutate-chaos", "--panic-rate", "nan"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn table1_renders() {
        let out = run(&["table1", "--queries", "5"]).unwrap();
        assert!(out.contains("This work"));
        assert_eq!(out.lines().count(), 7);
    }

    fn checkpoint_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tdam-cli-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn checkpoint_then_restore_roundtrips() {
        let dir = checkpoint_dir("roundtrip");
        let dir_str = dir.to_str().expect("utf-8 temp dir");
        let out = run(&[
            "checkpoint",
            "--dir",
            dir_str,
            "--stages",
            "8",
            "--rows",
            "4",
            "--mutations",
            "2",
        ])
        .unwrap();
        assert!(out.contains("checkpoint generation 1"), "{out}");
        assert!(out.contains("2 post-checkpoint mutation(s)"), "{out}");

        let out = run(&["restore", "--dir", dir_str]).unwrap();
        assert!(out.contains("recovered generation 1 from"), "{out}");
        assert!(out.contains("2 journal op(s) replayed, 0 skipped"), "{out}");
        assert!(out.contains("known-answer probes: 4/4 rows exact"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_detects_damage_and_falls_back() {
        let dir = checkpoint_dir("damage");
        let dir_str = dir.to_str().expect("utf-8 temp dir");
        run(&[
            "checkpoint",
            "--dir",
            dir_str,
            "--stages",
            "8",
            "--rows",
            "4",
            "--mutations",
            "0",
        ])
        .unwrap();
        // Corrupt the only checkpoint's payload: recovery must refuse it.
        let ckpt = dir.join("ckpt-00000001.tdam");
        let mut bytes = std::fs::read(&ckpt).expect("read checkpoint");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&ckpt, &bytes).expect("damage checkpoint");
        assert!(matches!(
            run(&["restore", "--dir", dir_str]),
            Err(CliError::Simulation { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_and_restore_require_dir() {
        assert!(matches!(run(&["checkpoint"]), Err(CliError::Usage(_))));
        assert!(matches!(run(&["restore"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn serve_steady_reports_phase_and_shard_stats() {
        let out = run(&[
            "serve",
            "--rows",
            "48",
            "--stages",
            "16",
            "--rows-per-shard",
            "16",
            "--clients",
            "2",
            "--requests",
            "6",
            "--no-chaos",
        ])
        .unwrap();
        assert!(out.contains("sharded serving campaign"), "{out}");
        assert!(out.contains("steady"), "{out}");
        assert!(!out.contains("crash"), "--no-chaos runs steady only: {out}");
        assert!(out.contains("shard 0: rows 0..16"), "{out}");
        assert!(out.contains("shard 2: rows 32..48"), "{out}");
        assert!(out.contains("breaker trips"), "{out}");
        assert!(out.contains("0 silent") || out.contains(" 0 "), "{out}");
    }

    #[test]
    fn serve_chaos_campaign_recovers_and_reports_failover() {
        let out = run(&[
            "serve",
            "--rows",
            "48",
            "--stages",
            "16",
            "--rows-per-shard",
            "16",
            "--clients",
            "2",
            "--requests",
            "6",
            "--deadline-ms",
            "100",
        ])
        .unwrap();
        for phase in ["steady", "overload", "slow-shard", "crash", "recovered"] {
            assert!(out.contains(phase), "missing phase {phase}: {out}");
        }
        assert!(out.contains("failovers"), "{out}");
    }

    #[test]
    fn serve_load_requires_addr_and_validates_it() {
        assert!(matches!(run(&["serve-load"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&["serve-load", "--addr", "not-an-addr"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_load_drives_a_live_front_end() {
        use std::sync::Arc;
        use tdam::serve::{seeded_corpus, FrontEnd, ServeConfig, ShardedService};

        let mut cfg = ServeConfig::paper_default();
        cfg.array = ArrayConfig::paper_default().with_stages(8);
        cfg.rows_per_shard = 10;
        let corpus = seeded_corpus(20, 8, 4, 31);
        let service = Arc::new(ShardedService::new(&cfg, &corpus, None).expect("service"));
        let mut front =
            FrontEnd::start(Arc::clone(&service), &cfg, "127.0.0.1:0").expect("front-end");
        let out = run(&[
            "serve-load",
            "--addr",
            &front.addr().to_string(),
            "--clients",
            "2",
            "--requests",
            "5",
            "--k",
            "3",
        ])
        .unwrap();
        assert!(
            out.contains("corpus 20 rows x 8 stages over 2 shard(s)"),
            "{out}"
        );
        assert!(out.contains("answered 10/10"), "{out}");
        assert!(out.contains("p99"), "{out}");
        front.shutdown();
    }

    #[test]
    fn serve_load_against_nothing_is_transient() {
        // A connection refusal is transient (the server may come back):
        // the exit-code contract maps it to EX_TEMPFAIL.
        let err = run(&["serve-load", "--addr", "127.0.0.1:1", "--requests", "1"])
            .expect_err("nothing listening");
        assert_eq!(err.class(), crate::ErrorClass::Transient, "{err:?}");
    }

    #[test]
    fn error_classes_map_to_exit_semantics() {
        // Usage problems are permanent; encoding violations (caller
        // bugs) are permanent; both exit non-retryable.
        let usage = run(&["frobnicate"]).unwrap_err();
        assert_eq!(usage.class(), crate::ErrorClass::Permanent);
        let sim = run(&["search", "--store", "9,1", "--query", "0,1"]).unwrap_err();
        assert_eq!(sim.class(), crate::ErrorClass::Permanent);
    }
}
