//! Library backing the `tdam-sim` command-line tool: argument parsing and
//! the subcommand implementations, separated from `main` so they are
//! testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use tdam::ErrorClass;

/// Top-level CLI error.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Bad command-line usage; the message is shown with the usage text.
    Usage(String),
    /// A simulation- or serving-layer failure, carrying its
    /// [`ErrorClass`] so the process exit code can tell callers whether
    /// a retry is worthwhile (`EX_TEMPFAIL` for transient failures).
    Simulation {
        /// Human-readable description.
        msg: String,
        /// Retryability classification.
        class: ErrorClass,
    },
}

impl CliError {
    /// A permanent simulation failure (the common case for caller
    /// mistakes surfaced by the simulation layer).
    pub fn permanent(msg: impl Into<String>) -> Self {
        Self::Simulation {
            msg: msg.into(),
            class: ErrorClass::Permanent,
        }
    }

    /// How retryable this error is. Usage errors are permanent: the
    /// same command line will fail the same way.
    pub fn class(&self) -> ErrorClass {
        match self {
            Self::Usage(_) => ErrorClass::Permanent,
            Self::Simulation { class, .. } => *class,
        }
    }
}

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Usage(m) => write!(f, "usage error: {m}"),
            Self::Simulation { msg, .. } => write!(f, "simulation error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<tdam::TdamError> for CliError {
    fn from(e: tdam::TdamError) -> Self {
        Self::Simulation {
            msg: e.to_string(),
            class: e.class(),
        }
    }
}

impl From<tdam::store::StoreError> for CliError {
    fn from(e: tdam::store::StoreError) -> Self {
        use tdam::store::StoreError;
        let class = match &e {
            // A failed disk op may succeed on retry; corrupt or
            // version-skewed state will not.
            StoreError::Io(_) => ErrorClass::Transient,
            StoreError::Sim(inner) => inner.class(),
            _ => ErrorClass::Permanent,
        };
        Self::Simulation {
            msg: e.to_string(),
            class,
        }
    }
}

impl From<tdam::serve::ServeError> for CliError {
    fn from(e: tdam::serve::ServeError) -> Self {
        Self::Simulation {
            msg: e.to_string(),
            class: e.class(),
        }
    }
}

/// The usage text shown by `tdam-sim --help`.
pub const USAGE: &str = "\
tdam-sim — FeFET time-domain associative memory simulator

USAGE:
  tdam-sim search  --store 0,1,2,3;3,2,1,0 --query 0,1,2,2 [--vdd V] [--c-load-ff F] [--bits N]
  tdam-sim mc      [--stages N] [--sigma-mv S | --experimental] [--runs R] [--seed X]
  tdam-sim timing  [--vdd V] [--c-load-ff F] [--circuit]
  tdam-sim margins [--sigma-mv S]
  tdam-sim table1  [--queries Q]
  tdam-sim area    [--stages N] [--rows R] [--c-load-ff F]
  tdam-sim power   [--stages N] [--rows R] [--vdd V]
  tdam-sim faults  [--stages N] [--rows R] [--spares S] [--rate P] [--kind K]
                   [--trials T] [--queries Q] [--seed X] [--no-repair]
  tdam-sim bench-batch [--stages N] [--rows R] [--batch B] [--threads T] [--seed X]
  tdam-sim serve-chaos [--stages N] [--rows R] [--spares S] [--batches B] [--batch Q]
                   [--fault-rate P] [--panic-rate P] [--deadline-queries D] [--seed X]
  tdam-sim mutate-chaos [--stages N] [--rows R] [--spares S] [--batches B] [--batch Q]
                   [--writes W] [--fault-rate P] [--panic-rate P]
                   [--deadline-queries D] [--seed X]
  tdam-sim checkpoint --dir D [--stages N] [--rows R] [--spares S] [--mutations M] [--seed X]
  tdam-sim restore    --dir D
  tdam-sim serve   [--rows R] [--stages N] [--rows-per-shard S] [--clients C]
                   [--requests Q] [--k K] [--deadline-ms D] [--workers W]
                   [--queue-capacity N] [--seed X] [--standby-dir DIR] [--no-chaos]
  tdam-sim serve-load --addr HOST:PORT [--clients C] [--requests Q] [--k K]
                   [--deadline-ms D] [--seed X]
  tdam-sim simulate [--seed X] [--scenarios N] [--steps S] [--fault-density P]
                   [--corpus-rows R] [--paper] [--sabotage]
  tdam-sim corpus-search [--rows R] [--stages N] [--protos P] [--shard-rows S]
                   [--nprobe Q] [--queries M] [--k K] [--cache-kb B] [--seed X]

SUBCOMMANDS:
  search    store vectors and run one associative search
  mc        worst-case Monte Carlo under V_TH variation (Fig. 6)
  timing    stage timing calibration (analytic, or --circuit extraction)
  margins   multi-bit sensing-margin feasibility analysis
  table1    the Table I energy-per-bit comparison
  area      array footprint estimate
  power     idle static (leakage) power estimate
  faults    seeded fault campaign with detection + spare-row repair
            (--kind: stuck-mismatch, stuck-match, stuck-mix, drift,
             stuck-column, broken-stage, tdc-miscount, sl-glitch)
  bench-batch  time batched parallel search vs a sequential query loop
  serve-chaos  seeded chaos campaign against the fault-tolerant serving
               runtime: injected cell faults + worker panics, reporting
               availability and silent-wrong-answer counts
  mutate-chaos seeded read/write chaos campaign: row rewrites churn the
               array (incremental repack + epoch-swapped snapshots, wear
               leveling) between served batches; every answer is judged
               against an independently replayed reference, and the
               command fails on any silent corruption (or any wrong
               answer at all when --fault-rate is 0)
  checkpoint   program a seeded deployment and persist it under --dir:
               a CRC-checksummed snapshot plus a write-ahead journal of
               the post-checkpoint mutations (--mutations, left
               unflushed so restore demonstrates replay)
  restore      recover the deployment under --dir: validate checksums,
               fall back past damaged generations, replay the journal,
               then revalidate with known-answer probes
  serve        stand up the sharded TCP serving front-end over a seeded
               corpus and drive it with a closed-loop chaos campaign
               (steady → overload → slow shard → crash → recovered),
               reporting per-phase sheds/latency and per-shard runtime
               stats; --no-chaos runs the steady phase only
  serve-load   closed-loop load generator against a running `serve`
               front-end: discovers the corpus shape over the wire,
               then reports qps, p50/p99, and explicit shed counts
  simulate     deterministic full-system simulation on virtual time: a
               whole deployment (sharded serving, durable track, device
               aging) runs single-threaded under a seed-derived fault
               schedule, with every complete answer judged against a
               brute-force replay of the shadow corpus; a failing seed
               replays bit-identically and is shrunk to a minimal
               schedule before it is reported. --scenarios N runs a
               campaign of N worlds derived from the base seed;
               --sabotage self-tests the judge by corrupting an answer;
               --corpus-rows R adds a two-tier corpus side-track whose
               pre-filtered answers are judged against brute force
               restricted to the probed shards
  corpus-search  two-tier search demo over a seeded clustered corpus:
               coarse centroid pre-filter picks nprobe shards, the
               packed re-rank tier answers exactly from LRU-cached
               snapshots; reports recall@k vs full brute force and the
               snapshot-cache hit/miss/evict counters

Vectors are comma-separated elements; multiple vectors are separated
by ';'. Elements must fit the encoding (--bits, default 2 → 0..=3).
Exit codes: 0 success, 1 permanent failure, 2 usage, 75 transient
failure (retry may succeed).
";
