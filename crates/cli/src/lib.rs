//! Library backing the `tdam-sim` command-line tool: argument parsing and
//! the subcommand implementations, separated from `main` so they are
//! testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

/// Top-level CLI error.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Bad command-line usage; the message is shown with the usage text.
    Usage(String),
    /// A simulation-layer failure.
    Simulation(String),
}

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Usage(m) => write!(f, "usage error: {m}"),
            Self::Simulation(m) => write!(f, "simulation error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<tdam::TdamError> for CliError {
    fn from(e: tdam::TdamError) -> Self {
        Self::Simulation(e.to_string())
    }
}

impl From<tdam::store::StoreError> for CliError {
    fn from(e: tdam::store::StoreError) -> Self {
        Self::Simulation(e.to_string())
    }
}

/// The usage text shown by `tdam-sim --help`.
pub const USAGE: &str = "\
tdam-sim — FeFET time-domain associative memory simulator

USAGE:
  tdam-sim search  --store 0,1,2,3;3,2,1,0 --query 0,1,2,2 [--vdd V] [--c-load-ff F] [--bits N]
  tdam-sim mc      [--stages N] [--sigma-mv S | --experimental] [--runs R] [--seed X]
  tdam-sim timing  [--vdd V] [--c-load-ff F] [--circuit]
  tdam-sim margins [--sigma-mv S]
  tdam-sim table1  [--queries Q]
  tdam-sim area    [--stages N] [--rows R] [--c-load-ff F]
  tdam-sim power   [--stages N] [--rows R] [--vdd V]
  tdam-sim faults  [--stages N] [--rows R] [--spares S] [--rate P] [--kind K]
                   [--trials T] [--queries Q] [--seed X] [--no-repair]
  tdam-sim bench-batch [--stages N] [--rows R] [--batch B] [--threads T] [--seed X]
  tdam-sim serve-chaos [--stages N] [--rows R] [--spares S] [--batches B] [--batch Q]
                   [--fault-rate P] [--panic-rate P] [--deadline-queries D] [--seed X]
  tdam-sim checkpoint --dir D [--stages N] [--rows R] [--spares S] [--mutations M] [--seed X]
  tdam-sim restore    --dir D

SUBCOMMANDS:
  search    store vectors and run one associative search
  mc        worst-case Monte Carlo under V_TH variation (Fig. 6)
  timing    stage timing calibration (analytic, or --circuit extraction)
  margins   multi-bit sensing-margin feasibility analysis
  table1    the Table I energy-per-bit comparison
  area      array footprint estimate
  power     idle static (leakage) power estimate
  faults    seeded fault campaign with detection + spare-row repair
            (--kind: stuck-mismatch, stuck-match, stuck-mix, drift,
             stuck-column, broken-stage, tdc-miscount, sl-glitch)
  bench-batch  time batched parallel search vs a sequential query loop
  serve-chaos  seeded chaos campaign against the fault-tolerant serving
               runtime: injected cell faults + worker panics, reporting
               availability and silent-wrong-answer counts
  checkpoint   program a seeded deployment and persist it under --dir:
               a CRC-checksummed snapshot plus a write-ahead journal of
               the post-checkpoint mutations (--mutations, left
               unflushed so restore demonstrates replay)
  restore      recover the deployment under --dir: validate checksums,
               fall back past damaged generations, replay the journal,
               then revalidate with known-answer probes

Vectors are comma-separated elements; multiple vectors are separated
by ';'. Elements must fit the encoding (--bits, default 2 → 0..=3).
";
