//! HDC clustering: k-centroid clustering in hyperdimensional space.
//!
//! The paper motivates HDC with tasks "spanning graph memorization,
//! reasoning, classification, **clustering**, and genomic detection". The
//! TD-AM serves clustering the same way it serves classification — each
//! iteration's assignment step is an associative search of every sample
//! against the current centroid hypervectors — so this module implements
//! the k-centroid algorithm over encoded samples, assignable to hardware
//! through the same [`crate::quantize`]/[`crate::mapping`] path as
//! classification models.

use crate::encoder::IdLevelEncoder;
use crate::hypervector::Hypervector;
use crate::HdcError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted HDC clustering model.
#[derive(Debug, Clone, PartialEq)]
pub struct HdcClusters {
    centroids: Vec<Hypervector>,
    /// Mean of the training encodings (removed before similarity).
    mean: Vec<f32>,
    /// Final cluster assignment of each training sample.
    assignments: Vec<usize>,
    /// Number of refinement iterations actually executed.
    iterations: usize,
}

impl HdcClusters {
    /// Fits `k` clusters to the encoded `samples` with at most
    /// `max_iters` refinement passes.
    ///
    /// Centroids initialize from k distinct random samples; each pass
    /// assigns every sample to its most-similar centroid (cosine) and
    /// re-bundles the centroids; an emptied cluster is reseeded from the
    /// sample farthest from its centroid. Stops early when assignments
    /// stabilize.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for `k == 0` or fewer samples
    /// than clusters, and propagates encoding errors.
    pub fn fit(
        encoder: &IdLevelEncoder,
        samples: &[Vec<f64>],
        k: usize,
        max_iters: usize,
        seed: u64,
    ) -> Result<Self, HdcError> {
        if k == 0 {
            return Err(HdcError::InvalidConfig {
                what: "need at least one cluster",
            });
        }
        if samples.len() < k {
            return Err(HdcError::InvalidConfig {
                what: "need at least k samples",
            });
        }
        let mut encoded: Vec<Hypervector> = samples
            .iter()
            .map(|x| encoder.encode(x))
            .collect::<Result<_, _>>()?;
        // Encoded samples share a large common component (every encoding
        // bundles the same ID⊙level structure); remove the global mean so
        // cosine distances reflect the discriminative part. The same
        // centering underpins quantization — see `crate::quantize`.
        let dims = encoder.dims();
        let n = encoded.len() as f32;
        let mut mean = vec![0.0f32; dims];
        for h in &encoded {
            for (m, v) in mean.iter_mut().zip(h.values()) {
                *m += v / n;
            }
        }
        for h in &mut encoded {
            for (v, m) in h.values_mut().iter_mut().zip(&mean) {
                *v -= m;
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);

        // Distinct random initial centroids.
        let mut picks: Vec<usize> = Vec::with_capacity(k);
        while picks.len() < k {
            let i = rng.gen_range(0..encoded.len());
            if !picks.contains(&i) {
                picks.push(i);
            }
        }
        let mut centroids: Vec<Hypervector> = picks.iter().map(|&i| encoded[i].clone()).collect();
        let mut assignments = vec![0usize; encoded.len()];
        let mut iterations = 0;

        for _ in 0..max_iters {
            iterations += 1;
            // Assignment step.
            let mut changed = false;
            for (i, h) in encoded.iter().enumerate() {
                let best = nearest(h, &centroids)?;
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            // Update step: re-bundle.
            let mut sums = vec![Hypervector::zeros(dims); k];
            let mut counts = vec![0usize; k];
            for (h, &a) in encoded.iter().zip(&assignments) {
                sums[a].add_scaled(h, 1.0)?;
                counts[a] += 1;
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    *c = sum.clone();
                } else {
                    // Reseed an empty cluster from a random sample.
                    let i = rng.gen_range(0..encoded.len());
                    *c = encoded[i].clone();
                }
            }
            if !changed {
                break;
            }
        }
        Ok(Self {
            centroids,
            mean,
            assignments,
            iterations,
        })
    }

    /// Fits with `restarts` different initializations and keeps the run
    /// with the highest within-cluster cohesion (mean cosine of samples to
    /// their centroid) — k-centroid clustering is sensitive to its
    /// initialization, especially on noisy data.
    ///
    /// # Errors
    ///
    /// As [`HdcClusters::fit`]; `restarts == 0` is rejected.
    pub fn fit_best_of(
        encoder: &IdLevelEncoder,
        samples: &[Vec<f64>],
        k: usize,
        max_iters: usize,
        restarts: usize,
        seed: u64,
    ) -> Result<Self, HdcError> {
        if restarts == 0 {
            return Err(HdcError::InvalidConfig {
                what: "need at least one restart",
            });
        }
        let mut best: Option<(f64, Self)> = None;
        for r in 0..restarts {
            let model = Self::fit(encoder, samples, k, max_iters, seed.wrapping_add(r as u64))?;
            let score = model.cohesion(encoder, samples)?;
            if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                best = Some((score, model));
            }
        }
        Ok(best.expect("at least one restart ran").1)
    }

    /// Mean cosine similarity of each sample to its assigned centroid.
    ///
    /// # Errors
    ///
    /// Propagates encoding/similarity errors.
    pub fn cohesion(
        &self,
        encoder: &IdLevelEncoder,
        samples: &[Vec<f64>],
    ) -> Result<f64, HdcError> {
        if samples.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0;
        for (x, &a) in samples.iter().zip(&self.assignments) {
            let mut h = encoder.encode(x)?;
            for (v, m) in h.values_mut().iter_mut().zip(&self.mean) {
                *v -= m;
            }
            if self.centroids[a].norm() > 0.0 && h.norm() > 0.0 {
                total += h.cosine(&self.centroids[a])?;
            }
        }
        Ok(total / samples.len() as f64)
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// The centroid hypervectors.
    pub fn centroids(&self) -> &[Hypervector] {
        &self.centroids
    }

    /// Final training-sample assignments.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Refinement iterations executed before convergence (or the cap).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Assigns a new sample to its nearest cluster (after removing the
    /// training-set mean component, mirroring `fit`).
    ///
    /// # Errors
    ///
    /// Propagates encoding/similarity errors.
    pub fn assign(&self, encoder: &IdLevelEncoder, sample: &[f64]) -> Result<usize, HdcError> {
        let mut h = encoder.encode(sample)?;
        for (v, m) in h.values_mut().iter_mut().zip(&self.mean) {
            *v -= m;
        }
        nearest(&h, &self.centroids)
    }
}

fn nearest(h: &Hypervector, centroids: &[Hypervector]) -> Result<usize, HdcError> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in centroids.iter().enumerate() {
        if c.norm() == 0.0 {
            continue;
        }
        let sim = h.cosine(c)?;
        if best.map(|(_, s)| sim > s).unwrap_or(true) {
            best = Some((i, sim));
        }
    }
    best.map(|(i, _)| i).ok_or(HdcError::EmptyModel)
}

/// Clustering purity against ground-truth labels: the fraction of samples
/// whose cluster's majority label matches their own.
pub fn purity(assignments: &[usize], labels: &[usize], k: usize, classes: usize) -> f64 {
    if assignments.is_empty() {
        return 0.0;
    }
    let mut table = vec![vec![0usize; classes]; k];
    for (&a, &l) in assignments.iter().zip(labels) {
        table[a][l] += 1;
    }
    let correct: usize = table
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    correct as f64 / assignments.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, DatasetKind};

    fn setup() -> (Dataset, IdLevelEncoder, Vec<Vec<f64>>, Vec<usize>) {
        let ds = Dataset::generate(DatasetKind::Ucihar, 20, 5, 31);
        let enc = IdLevelEncoder::new(4096, ds.features(), 32, (0.0, 1.0), 17).expect("encoder");
        let samples: Vec<Vec<f64>> = ds.train.iter().map(|(x, _)| x.clone()).collect();
        let labels: Vec<usize> = ds.train.iter().map(|(_, l)| *l).collect();
        (ds, enc, samples, labels)
    }

    #[test]
    fn clusters_recover_class_structure() {
        // UCIHAR is deliberately hard (correlated activity pairs, heavy
        // noise): unsupervised purity of ~2.5x chance is the realistic bar.
        let (ds, enc, samples, labels) = setup();
        let model = HdcClusters::fit_best_of(&enc, &samples, ds.classes(), 20, 5, 5).expect("fit");
        let p = purity(model.assignments(), &labels, ds.classes(), ds.classes());
        assert!(
            p > 2.0 / ds.classes() as f64,
            "purity {p} should beat 2x chance ({:.2})",
            2.0 / ds.classes() as f64
        );
    }

    #[test]
    fn two_class_clustering_is_clean() {
        let ds = Dataset::generate(DatasetKind::Face, 40, 5, 32);
        let enc = IdLevelEncoder::new(4096, ds.features(), 32, (0.0, 1.0), 17).expect("encoder");
        let samples: Vec<Vec<f64>> = ds.train.iter().map(|(x, _)| x.clone()).collect();
        let labels: Vec<usize> = ds.train.iter().map(|(_, l)| *l).collect();
        let model = HdcClusters::fit_best_of(&enc, &samples, 2, 25, 6, 9).expect("fit");
        let p = purity(model.assignments(), &labels, 2, 2);
        assert!(p > 0.65, "2-class purity {p} should be high");
    }

    #[test]
    fn converges_and_reports_iterations() {
        let (_, enc, samples, _) = setup();
        let model = HdcClusters::fit(&enc, &samples, 4, 50, 5).expect("fit");
        assert!(model.iterations() < 50, "should converge early");
        assert_eq!(model.k(), 4);
        assert_eq!(model.assignments().len(), samples.len());
    }

    #[test]
    fn assign_is_consistent_with_training() {
        let (_, enc, samples, _) = setup();
        let model = HdcClusters::fit(&enc, &samples, 3, 20, 5).expect("fit");
        // Re-assigning training samples reproduces the stored assignment
        // (the model converged, so the mapping is stable).
        for (i, s) in samples.iter().take(10).enumerate() {
            let a = model.assign(&enc, s).expect("assign");
            assert_eq!(a, model.assignments()[i]);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let (_, enc, samples, _) = setup();
        assert!(HdcClusters::fit(&enc, &samples, 0, 5, 1).is_err());
        assert!(HdcClusters::fit(&enc, &samples[..2], 3, 5, 1).is_err());
    }

    #[test]
    fn purity_edges() {
        assert_eq!(purity(&[], &[], 2, 2), 0.0);
        assert_eq!(purity(&[0, 0, 1, 1], &[0, 0, 1, 1], 2, 2), 1.0);
        assert_eq!(purity(&[0, 0, 0, 0], &[0, 0, 1, 1], 2, 2), 0.5);
    }
}
