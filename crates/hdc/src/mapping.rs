//! Mapping quantized HDC inference onto TD-AM hardware (Fig. 8 setup).
//!
//! A quantized model with `C` classes and dimensionality `D` maps onto
//! TD-AM tiles of `N` stages (the paper uses `N = 128` at 0.6 V): each
//! tile holds one `N`-element chunk of every class hypervector in its `C`
//! rows, chunks are searched sequentially, and per-row mismatch counts
//! accumulate across chunks — the class with the smallest total Hamming
//! distance wins. Latency is the sum of per-chunk search latencies
//! (chunks share the query bus); energy sums every tile search.

use crate::hypervector::QuantizedHypervector;
use crate::quantize::QuantizedModel;
use crate::HdcError;
use serde::{Deserialize, Serialize};
use tdam::array::TdamArray;
use tdam::config::ArrayConfig;
use tdam::encoding::Encoding;
use tdam::energy::EnergyBreakdown;
use tdam::faults::{faulty_row, FaultKind, FaultMap};

/// Result of one TD-AM-mapped inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdamInferenceResult {
    /// Predicted class.
    pub class: usize,
    /// Total decoded Hamming distance of the winning class.
    pub distance: usize,
    /// Per-class accumulated distances.
    pub distances: Vec<usize>,
    /// End-to-end latency, seconds.
    pub latency: f64,
    /// Energy, joules.
    pub energy: EnergyBreakdown,
    /// Dimensions masked out of the Hamming metric (graceful
    /// degradation under hardware faults); `0` on a healthy deployment.
    pub masked_dimensions: usize,
}

/// A quantized HDC model deployed on TD-AM tiles.
///
/// # Examples
///
/// ```no_run
/// use tdam_hdc::datasets::{Dataset, DatasetKind};
/// use tdam_hdc::encoder::IdLevelEncoder;
/// use tdam_hdc::mapping::TdamHdcInference;
/// use tdam_hdc::quantize::QuantizedModel;
/// use tdam_hdc::train::HdcModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ds = Dataset::generate(DatasetKind::Face, 30, 10, 1);
/// let enc = IdLevelEncoder::new(1024, ds.features(), 32, (0.0, 1.0), 7)?;
/// let model = HdcModel::train(&enc, &ds.train, ds.classes(), 2)?;
/// let quant = QuantizedModel::from_model(&model, 2)?;
/// let hw = TdamHdcInference::new(&quant, 128, 0.6)?;
/// let q = quant.quantize_query(&enc.encode(&ds.test[0].0)?)?;
/// let result = hw.classify(&q)?;
/// assert!(result.latency > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TdamHdcInference {
    tiles: Vec<TdamArray>,
    stages: usize,
    dims: usize,
    classes: usize,
    /// Fixed per-query front-end energy (on-chip encoding + query I/O),
    /// joules. Zero by default (pure search accounting).
    e_frontend: f64,
    /// Dimensions masked out of the metric (graceful degradation).
    masked: Vec<bool>,
    /// Injected cell faults per tile, in tile-local `(row, stage)`
    /// coordinates.
    tile_faults: Vec<FaultMap>,
    /// Per-tile, per-row constant decode bias from stuck-mismatch cells
    /// at excluded (masked or padded) stages, subtracted after decode.
    bias: Vec<Vec<usize>>,
}

impl TdamHdcInference {
    /// Deploys `model` on TD-AM tiles of `stages` stages at supply `vdd`.
    ///
    /// The last chunk is zero-padded on both the stored and query side, so
    /// padding never contributes mismatches.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for zero stages and propagates
    /// TD-AM configuration errors.
    pub fn new(model: &QuantizedModel, stages: usize, vdd: f64) -> Result<Self, HdcError> {
        if stages == 0 {
            return Err(HdcError::InvalidConfig {
                what: "tiles need at least one stage",
            });
        }
        let dims = model.dims();
        let classes = model.classes();
        let encoding = Encoding::new(model.bits()).map_err(HdcError::Tdam)?;
        let chunks = dims.div_ceil(stages);
        let cfg = ArrayConfig::paper_default()
            .with_stages(stages)
            .with_rows(classes)
            .with_encoding(encoding)
            .with_vdd(vdd);
        let mut tiles = Vec::with_capacity(chunks);
        for chunk in 0..chunks {
            let mut tile = TdamArray::new(cfg)?;
            for (row, class_hv) in model.class_hvs().iter().enumerate() {
                let mut slice = vec![0u8; stages];
                let start = chunk * stages;
                let end = (start + stages).min(dims);
                slice[..end - start].copy_from_slice(&class_hv.levels()[start..end]);
                tdam::engine::SimilarityEngine::store(&mut tile, row, &slice)?;
            }
            tiles.push(tile);
        }
        let chunk_count = tiles.len();
        Ok(Self {
            tiles,
            stages,
            dims,
            classes,
            e_frontend: 0.0,
            masked: vec![false; dims],
            tile_faults: vec![FaultMap::new(); chunk_count],
            bias: vec![vec![0; classes]; chunk_count],
        })
    }

    /// Adds the front-end (encoding + I/O) energy to every query's
    /// accounting: `features × underlying_dims × e_per_op` joules, the
    /// cost of producing the query hypervector on-chip (after the
    /// in-memory HDC encoder literature, ~fJ per bind-accumulate op).
    /// Front-end *latency* is excluded: encoding pipelines with the
    /// previous query's search, but its energy accrues regardless.
    pub fn with_frontend_cost(
        mut self,
        features: usize,
        underlying_dims: usize,
        e_per_op: f64,
    ) -> Self {
        self.e_frontend = features as f64 * underlying_dims as f64 * e_per_op;
        self
    }

    /// Number of sequential chunks (tiles) per query.
    pub fn chunks(&self) -> usize {
        self.tiles.len()
    }

    /// Number of classes (rows per tile).
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of dimensions masked out of the metric.
    pub fn masked_dimensions(&self) -> usize {
        self.masked.iter().filter(|&&m| m).count()
    }

    /// Fraction of the hypervector excluded from the metric, `0.0..=1.0`
    /// — the deployment's degradation level.
    pub fn degradation_fraction(&self) -> f64 {
        if self.dims == 0 {
            return 0.0;
        }
        self.masked_dimensions() as f64 / self.dims as f64
    }

    /// Dimensions with a hard (unrepairable) cell fault in any class row
    /// — the candidate set for [`TdamHdcInference::apply_dimension_mask`].
    pub fn faulty_dimensions(&self) -> Vec<usize> {
        let mut dims: Vec<usize> = Vec::new();
        for (chunk, faults) in self.tile_faults.iter().enumerate() {
            for &(_, stage, kind) in faults.iter() {
                let dim = chunk * self.stages + stage;
                if kind.is_hard() && dim < self.dims && !dims.contains(&dim) {
                    dims.push(dim);
                }
            }
        }
        dims.sort_unstable();
        dims
    }

    /// Injects cell faults into one tile (tile-local `(row, stage)`
    /// coordinates, rows are classes) and re-realizes its cells. Faults
    /// accumulate across calls; re-injecting a site replaces its fault.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for an out-of-range chunk and
    /// propagates TD-AM cell errors.
    pub fn inject_tile_faults(&mut self, chunk: usize, faults: &FaultMap) -> Result<(), HdcError> {
        if chunk >= self.tiles.len() {
            return Err(HdcError::InvalidConfig {
                what: "fault injection chunk out of range",
            });
        }
        for &(row, stage, kind) in faults.iter() {
            self.tile_faults[chunk].inject(row, stage, kind);
        }
        self.rebuild_tile(chunk)
    }

    /// Masks hypervector dimensions out of the Hamming metric: the
    /// stored and query sides are both zeroed there (the padding trick),
    /// so a healthy cell contributes nothing, and the known constant
    /// bias of stuck-mismatch cells at masked positions is subtracted
    /// after decode. Distances shrink by at most one per masked
    /// dimension instead of carrying fault garbage; masking is
    /// irreversible for the deployment.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for out-of-range
    /// dimensions and propagates TD-AM cell errors.
    pub fn apply_dimension_mask(&mut self, dims: &[usize]) -> Result<(), HdcError> {
        let mut touched: Vec<usize> = Vec::new();
        for &d in dims {
            if d >= self.dims {
                return Err(HdcError::DimensionMismatch {
                    got: d,
                    expected: self.dims,
                });
            }
            if !self.masked[d] {
                self.masked[d] = true;
                let chunk = d / self.stages;
                if !touched.contains(&chunk) {
                    touched.push(chunk);
                }
            }
        }
        for chunk in touched {
            self.rebuild_tile(chunk)?;
        }
        Ok(())
    }

    /// Whether a tile-local stage is excluded from the metric (masked or
    /// padding).
    fn excluded(&self, chunk: usize, stage: usize) -> bool {
        let dim = chunk * self.stages + stage;
        dim >= self.dims || self.masked[dim]
    }

    /// Re-realizes one tile's cells from its stored values, the fault
    /// map, and the dimension mask, and recomputes its decode bias.
    fn rebuild_tile(&mut self, chunk: usize) -> Result<(), HdcError> {
        let encoding = self.tiles[chunk].config().encoding;
        for row in 0..self.classes {
            let mut values = self.tiles[chunk].stored(row)?;
            for (stage, v) in values.iter_mut().enumerate() {
                if self.excluded(chunk, stage) {
                    *v = 0;
                }
            }
            let cells = faulty_row(row, &values, encoding, &self.tile_faults[chunk])?;
            self.tiles[chunk].store_cells(row, cells)?;
        }
        for row in 0..self.classes {
            self.bias[chunk][row] = self.tile_faults[chunk]
                .row_faults(row)
                .filter(|&(stage, kind)| {
                    matches!(kind, FaultKind::StuckMismatch) && self.excluded(chunk, stage)
                })
                .count();
        }
        Ok(())
    }

    /// Classifies a quantized query.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for a wrong-sized query and
    /// propagates TD-AM search errors.
    pub fn classify(&self, query: &QuantizedHypervector) -> Result<TdamInferenceResult, HdcError> {
        if query.dims() != self.dims {
            return Err(HdcError::DimensionMismatch {
                got: query.dims(),
                expected: self.dims,
            });
        }
        let mut distances = vec![0usize; self.classes];
        let mut latency = 0.0;
        let mut energy = EnergyBreakdown::default();
        energy.search_lines += self.e_frontend;
        for (chunk, tile) in self.tiles.iter().enumerate() {
            let mut slice = vec![0u8; self.stages];
            let start = chunk * self.stages;
            let end = (start + self.stages).min(self.dims);
            slice[..end - start].copy_from_slice(&query.levels()[start..end]);
            for (stage, q) in slice.iter_mut().enumerate() {
                if start + stage < self.dims && self.masked[start + stage] {
                    *q = 0;
                }
            }
            let outcome = tile.search(&slice)?;
            latency += outcome.latency;
            energy.accumulate(&outcome.energy);
            for (row, r) in outcome.rows.iter().enumerate() {
                distances[row] += r.decoded_mismatches.saturating_sub(self.bias[chunk][row]);
            }
        }
        let (class, &distance) = distances
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| d)
            .ok_or(HdcError::EmptyModel)?;
        Ok(TdamInferenceResult {
            class,
            distance,
            distances,
            latency,
            energy,
            masked_dimensions: self.masked_dimensions(),
        })
    }

    /// Classifies a batch of quantized queries across the worker pool of
    /// [`tdam::parallel`]. Results are in query order and identical to
    /// sequential [`TdamHdcInference::classify`] calls; `threads` is
    /// interpreted as in [`tdam::parallel::run_chunked`].
    ///
    /// # Errors
    ///
    /// Returns the first per-query error in batch order.
    pub fn classify_batch(
        &self,
        queries: &[QuantizedHypervector],
        threads: Option<usize>,
    ) -> Result<Vec<TdamInferenceResult>, HdcError> {
        tdam::parallel::run_chunked(queries.len(), threads, |i| self.classify(&queries[i]))
    }

    /// Classifies a batch with per-query fault isolation: every query gets
    /// its own `Result` slot, so one failing (or panicking) query does not
    /// discard its siblings' answers. This is the HDC-layer view of
    /// [`tdam::parallel::run_chunked_partial`], for serving paths that
    /// prefer partial batches over all-or-nothing
    /// [`classify_batch`](TdamHdcInference::classify_batch).
    pub fn classify_batch_partial(
        &self,
        queries: &[QuantizedHypervector],
        threads: Option<usize>,
    ) -> Vec<Result<TdamInferenceResult, HdcError>> {
        tdam::parallel::run_chunked_partial(queries.len(), threads, |i| self.classify(&queries[i]))
    }
}

/// Result of one hardware-in-the-loop retraining epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareEpochReport {
    /// Samples whose hardware classification was wrong (and triggered an
    /// update).
    pub corrections: usize,
    /// Samples processed.
    pub samples: usize,
    /// Total hardware search energy spent on the epoch, joules.
    pub search_energy: f64,
}

/// Learning-rate scale applied to hardware-derived update weights.
/// Hardware similarities live in centered rank space where mispredicted
/// samples sit much farther from the class hypervectors than uncentered
/// cosine suggests; unscaled corrections overshoot.
const HW_LEARNING_RATE: f32 = 0.05;

/// Runs one hardware-in-the-loop OnlineHD retraining epoch.
///
/// Every training sample is classified *on the deployed TD-AM*; on a
/// misprediction the full-precision model receives an OnlineHD correction
/// whose weights come from the hardware's **exact decoded Hamming
/// distances** — the quantitative-similarity capability the paper argues
/// plain CAMs lack ("this design does not output the exact similarity
/// result, which is crucial for parameter update"). The model is then
/// re-quantized and re-deployed once at the end of the epoch.
///
/// Returns the refreshed deployment plus an epoch report.
///
/// # Errors
///
/// Propagates encoding, quantization and hardware errors.
pub fn hardware_retrain_epoch(
    model: &mut crate::train::HdcModel,
    encoder: &crate::encoder::IdLevelEncoder,
    bits: u8,
    stages: usize,
    vdd: f64,
    samples: &[(Vec<f64>, usize)],
) -> Result<(QuantizedModel, TdamHdcInference, HardwareEpochReport), HdcError> {
    let mut quant = QuantizedModel::from_model(model, bits)?;
    let mut hw = TdamHdcInference::new(&quant, stages, vdd)?;
    let dims = quant.dims() as f64;
    let mut report = HardwareEpochReport {
        corrections: 0,
        samples: 0,
        search_energy: 0.0,
    };
    // Direction of the shared class component: corrections must be
    // orthogonal to it, or each update injects the (large) common part of
    // the encoding into the class *difference* that centered quantization
    // classifies by, destabilizing the deployed model.
    let full_dims = model.dims();
    let classes = model.classes() as f32;
    let mut mean = vec![0.0f32; full_dims];
    for c in model.class_hvs() {
        for (m, v) in mean.iter_mut().zip(c.values()) {
            *m += v / classes;
        }
    }
    let mean_norm2: f32 = mean.iter().map(|m| m * m).sum();
    for (x, label) in samples {
        report.samples += 1;
        let h = encoder.encode(x)?;
        let q = quant.quantize_query(&h)?;
        let result = hw.classify(&q)?;
        report.search_energy += result.energy.total();
        if result.class != *label {
            // Hardware similarity in [0, 1]: 1 − distance/dims.
            let sim_pred = 1.0 - result.distances[result.class] as f64 / dims;
            let sim_true = 1.0 - result.distances[*label] as f64 / dims;
            // Remove the shared-direction projection from the update.
            let h_perp = if mean_norm2 > 0.0 {
                let dot: f32 = h.values().iter().zip(&mean).map(|(a, b)| a * b).sum();
                let scale = dot / mean_norm2;
                crate::hypervector::Hypervector::from_values(
                    h.values()
                        .iter()
                        .zip(&mean)
                        .map(|(v, m)| v - scale * m)
                        .collect(),
                )
            } else {
                h.clone()
            };
            model.update_weighted(
                &h_perp,
                *label,
                result.class,
                HW_LEARNING_RATE * (1.0 - sim_true).clamp(0.0, 1.0) as f32,
                HW_LEARNING_RATE * (1.0 - sim_pred).clamp(0.0, 1.0) as f32,
            )?;
            report.corrections += 1;
        }
    }
    if report.corrections > 0 {
        quant = QuantizedModel::from_model(model, bits)?;
        hw = TdamHdcInference::new(&quant, stages, vdd)?;
    }
    Ok((quant, hw, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, DatasetKind};
    use crate::encoder::IdLevelEncoder;
    use crate::train::HdcModel;

    fn deployed() -> (QuantizedModel, IdLevelEncoder, Dataset, TdamHdcInference) {
        let ds = Dataset::generate(DatasetKind::Face, 30, 10, 77);
        let enc = IdLevelEncoder::new(512, ds.features(), 32, (0.0, 1.0), 8).unwrap();
        let model = HdcModel::train(&enc, &ds.train, ds.classes(), 2).unwrap();
        let quant = QuantizedModel::from_model(&model, 2).unwrap();
        let hw = TdamHdcInference::new(&quant, 128, 0.6).unwrap();
        (quant, enc, ds, hw)
    }

    #[test]
    fn tiling_shape() {
        // 512-dim underlying model at 2 bits packs to 256 elements → 2
        // tiles of 128 stages.
        let (_, _, _, hw) = deployed();
        assert_eq!(hw.chunks(), 2);
        assert_eq!(hw.classes(), 2);
    }

    #[test]
    fn hardware_agrees_with_software_min_hamming() {
        let (quant, enc, ds, hw) = deployed();
        for (x, _) in ds.test.iter().take(10) {
            let h = enc.encode(x).unwrap();
            let q = quant.quantize_query(&h).unwrap();
            let (sw_class, sw_dist) = quant.classify_quantized(&q).unwrap();
            let result = hw.classify(&q).unwrap();
            assert_eq!(result.class, sw_class, "hardware and software disagree");
            assert_eq!(result.distance, sw_dist);
        }
    }

    #[test]
    fn padding_contributes_nothing() {
        // 300-dim underlying model at 2 bits → 150 packed elements on
        // 128-stage tiles → 2 chunks with 106 padded stages.
        let ds = Dataset::generate(DatasetKind::Face, 20, 5, 78);
        let enc = IdLevelEncoder::new(300, ds.features(), 32, (0.0, 1.0), 8).unwrap();
        let model = HdcModel::train(&enc, &ds.train, ds.classes(), 1).unwrap();
        let quant = QuantizedModel::from_model(&model, 2).unwrap();
        let hw = TdamHdcInference::new(&quant, 128, 0.6).unwrap();
        assert_eq!(hw.chunks(), 2);
        let h = enc.encode(&ds.test[0].0).unwrap();
        let q = quant.quantize_query(&h).unwrap();
        let result = hw.classify(&q).unwrap();
        let (_, sw_dist) = quant.classify_quantized(&q).unwrap();
        assert_eq!(result.distance, sw_dist, "padding must not add mismatches");
    }

    #[test]
    fn batch_classification_matches_sequential() {
        let (quant, enc, ds, hw) = deployed();
        let queries: Vec<QuantizedHypervector> = ds
            .test
            .iter()
            .take(8)
            .map(|(x, _)| quant.quantize_query(&enc.encode(x).unwrap()).unwrap())
            .collect();
        let sequential: Vec<TdamInferenceResult> =
            queries.iter().map(|q| hw.classify(q).unwrap()).collect();
        for threads in [Some(1), Some(3), None] {
            let batched = hw.classify_batch(&queries, threads).unwrap();
            assert_eq!(batched, sequential, "threads={threads:?}");
        }
        assert!(hw.classify_batch(&[], None).unwrap().is_empty());
    }

    #[test]
    fn partial_batch_isolates_a_bad_query() {
        let (quant, enc, ds, hw) = deployed();
        let mut queries: Vec<QuantizedHypervector> = ds
            .test
            .iter()
            .take(6)
            .map(|(x, _)| quant.quantize_query(&enc.encode(x).unwrap()).unwrap())
            .collect();
        // Corrupt slot 2 with a wrong-dimensionality query: the all-or-
        // nothing path loses the whole batch, the partial path loses only
        // that slot.
        queries[2] = QuantizedHypervector::new(vec![0u8; 3], quant.bits()).unwrap();
        assert!(matches!(
            hw.classify_batch(&queries, None),
            Err(HdcError::DimensionMismatch { .. })
        ));
        for threads in [Some(1), Some(3), None] {
            let slots = hw.classify_batch_partial(&queries, threads);
            assert_eq!(slots.len(), 6, "threads={threads:?}");
            for (i, slot) in slots.iter().enumerate() {
                if i == 2 {
                    let err = slot.as_ref().unwrap_err();
                    assert!(matches!(err, HdcError::DimensionMismatch { .. }));
                    assert_eq!(err.class(), tdam::ErrorClass::Permanent);
                    assert!(!err.is_transient());
                } else {
                    let got = slot.as_ref().unwrap();
                    assert_eq!(got, &hw.classify(&queries[i]).unwrap());
                }
            }
        }
    }

    #[test]
    fn latency_scales_with_dims() {
        let ds = Dataset::generate(DatasetKind::Face, 20, 5, 79);
        let lat_at = |dims: usize| {
            let enc = IdLevelEncoder::new(dims, ds.features(), 32, (0.0, 1.0), 8).unwrap();
            let model = HdcModel::train(&enc, &ds.train, ds.classes(), 1).unwrap();
            let quant = QuantizedModel::from_model(&model, 2).unwrap();
            let hw = TdamHdcInference::new(&quant, 128, 0.6).unwrap();
            let h = enc.encode(&ds.test[0].0).unwrap();
            let q = quant.quantize_query(&h).unwrap();
            hw.classify(&q).unwrap().latency
        };
        let l_small = lat_at(512);
        let l_large = lat_at(2048);
        let ratio = l_large / l_small;
        assert!(
            (3.0..6.0).contains(&ratio),
            "4x dims should cost ~4x latency, got {ratio}"
        );
    }

    #[test]
    fn hardware_in_the_loop_training_improves_or_holds() {
        // Start from an undertrained model (bundling only) and run two
        // hardware-feedback epochs; hardware accuracy must not degrade and
        // typically improves.
        let ds = Dataset::generate(DatasetKind::Ucihar, 25, 12, 91);
        // 512 dims is deliberately marginal so hardware mispredictions
        // actually occur on the training set.
        let enc = IdLevelEncoder::new(512, ds.features(), 32, (0.0, 1.0), 13).unwrap();
        let mut model = HdcModel::train(&enc, &ds.train, ds.classes(), 0).unwrap();

        let hw_accuracy = |quant: &QuantizedModel, hw: &TdamHdcInference| {
            let mut correct = 0usize;
            for (x, label) in &ds.test {
                let h = enc.encode(x).unwrap();
                let q = quant.quantize_query(&h).unwrap();
                if hw.classify(&q).unwrap().class == *label {
                    correct += 1;
                }
            }
            correct as f64 / ds.test.len() as f64
        };

        let quant0 = QuantizedModel::from_model(&model, 2).unwrap();
        let hw0 = TdamHdcInference::new(&quant0, 128, 0.6).unwrap();
        let before = hw_accuracy(&quant0, &hw0);

        let mut last = None;
        for _ in 0..2 {
            last = Some(hardware_retrain_epoch(&mut model, &enc, 2, 128, 0.6, &ds.train).unwrap());
        }
        let (quant, hw, report) = last.unwrap();
        let after = hw_accuracy(&quant, &hw);
        assert_eq!(report.samples, ds.train.len());
        assert!(report.search_energy > 0.0);
        assert!(
            after >= before - 0.05,
            "hardware-loop training must not hurt: {before:.3} -> {after:.3}"
        );
    }

    #[test]
    fn masking_excludes_faulty_dimensions_exactly() {
        let (quant, enc, ds, mut hw) = deployed();
        // A stuck column in tile 0 plus stuck cells in both tiles.
        let mut tile0 = FaultMap::new();
        for row in 0..hw.classes() {
            tile0.inject(row, 5, FaultKind::StuckMismatch);
        }
        tile0.inject(1, 17, FaultKind::StuckMismatch);
        hw.inject_tile_faults(0, &tile0).unwrap();
        let mut tile1 = FaultMap::new();
        tile1.inject(0, 10, FaultKind::StuckMismatch); // dim 138
        hw.inject_tile_faults(1, &tile1).unwrap();

        let faulty = hw.faulty_dimensions();
        assert_eq!(faulty, vec![5, 17, 138]);
        hw.apply_dimension_mask(&faulty).unwrap();
        assert_eq!(hw.masked_dimensions(), 3);
        assert!((hw.degradation_fraction() - 3.0 / 256.0).abs() < 1e-12);

        for (x, _) in ds.test.iter().take(6) {
            let h = enc.encode(x).unwrap();
            let q = quant.quantize_query(&h).unwrap();
            let result = hw.classify(&q).unwrap();
            assert_eq!(result.masked_dimensions, 3);
            // Expected: software Hamming distance over unmasked dims.
            for (row, class_hv) in quant.class_hvs().iter().enumerate() {
                let expected = class_hv
                    .levels()
                    .iter()
                    .zip(q.levels())
                    .enumerate()
                    .filter(|&(d, (a, b))| !faulty.contains(&d) && a != b)
                    .count();
                assert_eq!(
                    result.distances[row], expected,
                    "masked metric must match software on row {row}"
                );
            }
        }
    }

    #[test]
    fn padded_stage_faults_are_bias_corrected_not_masked() {
        // 300-dim model at 2 bits → 150 elements on 128-stage tiles:
        // chunk 1 stages 22..128 are padding.
        let ds = Dataset::generate(DatasetKind::Face, 20, 5, 78);
        let enc = IdLevelEncoder::new(300, ds.features(), 32, (0.0, 1.0), 8).unwrap();
        let model = HdcModel::train(&enc, &ds.train, ds.classes(), 1).unwrap();
        let quant = QuantizedModel::from_model(&model, 2).unwrap();
        let mut hw = TdamHdcInference::new(&quant, 128, 0.6).unwrap();

        let mut faults = FaultMap::new();
        faults.inject(0, 50, FaultKind::StuckMismatch); // padding stage
        hw.inject_tile_faults(1, &faults).unwrap();
        assert!(hw.faulty_dimensions().is_empty(), "padding is not a dim");

        let h = enc.encode(&ds.test[0].0).unwrap();
        let q = quant.quantize_query(&h).unwrap();
        let result = hw.classify(&q).unwrap();
        let (_, sw_dist) = quant.classify_quantized(&q).unwrap();
        assert_eq!(
            result.distance, sw_dist,
            "padded-stage fault bias must be subtracted"
        );
    }

    #[test]
    fn unmasked_faults_corrupt_distances_masking_recovers() {
        let (quant, enc, ds, mut hw) = deployed();
        let h = enc.encode(&ds.test[0].0).unwrap();
        let q = quant.quantize_query(&h).unwrap();
        let clean = hw.classify(&q).unwrap();

        let mut faults = FaultMap::new();
        for stage in [3usize, 40, 77, 101] {
            for row in 0..hw.classes() {
                faults.inject(row, stage, FaultKind::StuckMismatch);
            }
        }
        hw.inject_tile_faults(0, &faults).unwrap();
        let corrupted = hw.classify(&q).unwrap();
        assert!(
            corrupted.distances.iter().sum::<usize>() > clean.distances.iter().sum::<usize>(),
            "stuck-mismatch cells must inflate distances"
        );

        hw.apply_dimension_mask(&hw.faulty_dimensions()).unwrap();
        let masked = hw.classify(&q).unwrap();
        assert_eq!(masked.class, clean.class, "masking must restore the winner");
        for (m, c) in masked.distances.iter().zip(&clean.distances) {
            assert!(m <= c, "a masked metric can only shrink distances");
            assert!(c - m <= 4, "at most one count per masked dimension");
        }
    }

    #[test]
    fn wrong_query_dims_rejected() {
        let (quant, _, _, hw) = deployed();
        let bad = QuantizedHypervector::new(vec![0; 100], quant.bits()).unwrap();
        assert!(matches!(
            hw.classify(&bad),
            Err(HdcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_stages_rejected() {
        let (quant, _, _, _) = deployed();
        assert!(TdamHdcInference::new(&quant, 0, 0.6).is_err());
    }
}
