//! Accuracy evaluation: the precision × dimensionality sweep of Fig. 7.
//!
//! Sweep semantics follow the hardware framing: a point `(D, n-bit)` is a
//! TD-AM deployment with `D` delay stages whose cells each store `n`
//! bits, i.e. a packed quantization of an underlying `n·D`-dimensional
//! full-precision model (see [`crate::quantize`]). The 32-bit reference
//! point at `D` is the full-precision model of dimensionality `D`
//! classified by cosine similarity. Underlying models are trained once
//! per distinct dimensionality and shared across precision points; the
//! sweep is parallelized across those models.

use crate::datasets::Dataset;
use crate::encoder::IdLevelEncoder;
use crate::quantize::QuantizedModel;
use crate::train::HdcModel;
use crate::HdcError;
use serde::{Deserialize, Serialize};

/// Element precision of an evaluated model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// `n`-bit equal-area quantization (`1..=4`).
    Bits(u8),
    /// The 32-bit full-precision reference (cosine similarity).
    Full,
}

impl core::fmt::Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Bits(b) => write!(f, "{b}-bit"),
            Self::Full => write!(f, "32-bit"),
        }
    }
}

/// One accuracy measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Hardware dimensionality: TD-AM elements per hypervector.
    pub dims: usize,
    /// Element precision.
    pub precision: Precision,
    /// Test accuracy in `[0, 1]`.
    pub accuracy: f64,
}

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Dimensionalities to evaluate (the paper uses 512, 1024, 2048,
    /// 5120, 10240).
    pub dims: Vec<usize>,
    /// Quantized precisions to evaluate alongside the 32-bit reference.
    pub bits: Vec<u8>,
    /// Retraining epochs for each full-precision model.
    pub retrain_epochs: usize,
    /// Encoder/level-memory seed.
    pub seed: u64,
}

impl SweepConfig {
    /// The paper's Fig. 7 grid.
    pub fn paper_grid() -> Self {
        Self {
            dims: vec![512, 1024, 2048, 5120, 10240],
            bits: vec![1, 2, 3, 4],
            retrain_epochs: 3,
            seed: 0xF167,
        }
    }

    /// A reduced grid for quick runs and tests.
    pub fn quick() -> Self {
        Self {
            dims: vec![256, 1024],
            bits: vec![1, 2, 4],
            retrain_epochs: 2,
            seed: 0xF167,
        }
    }
}

/// Evaluates a quantized model's accuracy on a test set. Samples are
/// classified as a batch across the worker pool of [`tdam::parallel`];
/// the result is identical to a sequential loop.
///
/// # Errors
///
/// Propagates encoding/classification errors; rejects empty test sets.
pub fn quantized_accuracy(
    model: &QuantizedModel,
    encoder: &IdLevelEncoder,
    test: &[(Vec<f64>, usize)],
) -> Result<f64, HdcError> {
    if test.is_empty() {
        return Err(HdcError::InvalidConfig {
            what: "test set is empty",
        });
    }
    let correct = tdam::parallel::run_chunked(test.len(), None, |i| -> Result<bool, HdcError> {
        let (x, label) = &test[i];
        let h = encoder.encode(x)?;
        let (pred, _) = model.classify(&h)?;
        Ok(pred == *label)
    })?;
    Ok(correct.into_iter().filter(|&c| c).count() as f64 / test.len() as f64)
}

/// Runs the full precision × dimensionality sweep on one dataset.
///
/// # Errors
///
/// Propagates training/evaluation errors from any grid point.
pub fn accuracy_sweep(dataset: &Dataset, cfg: &SweepConfig) -> Result<Vec<SweepPoint>, HdcError> {
    // Distinct underlying model dimensionalities: D for the full-precision
    // reference plus n·D for each packed precision.
    let mut underlying: Vec<usize> = Vec::new();
    for &d in &cfg.dims {
        underlying.push(d);
        for &b in &cfg.bits {
            underlying.push(d * b as usize);
        }
    }
    underlying.sort_unstable();
    underlying.dedup();

    // Train one model per underlying dimensionality, in parallel across
    // the shared worker pool.
    type Trained = (usize, IdLevelEncoder, HdcModel);
    let models: Vec<Trained> =
        tdam::parallel::run_chunked(underlying.len(), None, |i| -> Result<Trained, HdcError> {
            let u = underlying[i];
            let encoder = IdLevelEncoder::new(u, dataset.features(), 32, (0.0, 1.0), cfg.seed)?;
            let model = HdcModel::train(
                &encoder,
                &dataset.train,
                dataset.classes(),
                cfg.retrain_epochs,
            )?;
            Ok((u, encoder, model))
        })?;
    let find = |u: usize| -> &Trained {
        models
            .iter()
            .find(|(m, _, _)| *m == u)
            .expect("model trained for every needed dimensionality")
    };

    let mut out = Vec::new();
    for &d in &cfg.dims {
        let (_, encoder, model) = find(d);
        out.push(SweepPoint {
            dims: d,
            precision: Precision::Full,
            accuracy: model.accuracy(encoder, &dataset.test)?,
        });
        for &b in &cfg.bits {
            let (_, enc_u, model_u) = find(d * b as usize);
            let quant = QuantizedModel::from_model(model_u, b)?;
            out.push(SweepPoint {
                dims: d,
                precision: Precision::Bits(b),
                accuracy: quantized_accuracy(&quant, enc_u, &dataset.test)?,
            });
        }
    }
    out.sort_by_key(|p| p.dims);
    Ok(out)
}

/// The smallest dimensionality at which `precision` reaches
/// `target_accuracy`, if any — the paper's "dimensionality required to
/// match the full-precision model" metric.
pub fn required_dimension(
    points: &[SweepPoint],
    precision: Precision,
    target_accuracy: f64,
) -> Option<usize> {
    points
        .iter()
        .filter(|p| p.precision == precision && p.accuracy >= target_accuracy)
        .map(|p| p.dims)
        .min()
}

/// The peak accuracy reached by `precision` anywhere in the sweep.
pub fn peak_accuracy(points: &[SweepPoint], precision: Precision) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.precision == precision)
        .map(|p| p.accuracy)
        .fold(None, |acc, a| Some(acc.map_or(a, |m: f64| m.max(a))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    fn small_sweep(kind: DatasetKind) -> Vec<SweepPoint> {
        let ds = Dataset::generate(kind, 25, 12, 33);
        let cfg = SweepConfig {
            dims: vec![256, 2048],
            bits: vec![1, 4],
            retrain_epochs: 2,
            seed: 5,
        };
        accuracy_sweep(&ds, &cfg).unwrap()
    }

    #[test]
    fn sweep_covers_grid() {
        let points = small_sweep(DatasetKind::Face);
        // 2 dims × (1 full + 2 quantized) = 6 points.
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.accuracy));
        }
    }

    #[test]
    fn four_bit_close_to_full_at_high_dims() {
        let points = small_sweep(DatasetKind::Face);
        let full = points
            .iter()
            .find(|p| p.dims == 2048 && p.precision == Precision::Full)
            .unwrap();
        let q4 = points
            .iter()
            .find(|p| p.dims == 2048 && p.precision == Precision::Bits(4))
            .unwrap();
        assert!(
            q4.accuracy >= full.accuracy - 0.1,
            "4-bit {:.3} vs full {:.3}",
            q4.accuracy,
            full.accuracy
        );
    }

    #[test]
    fn higher_precision_wins_at_low_dims() {
        // Fig. 7's headline: higher element precision reaches peak accuracy
        // at lower dimensionality. The effect is decisive at small hardware
        // dimensionality, where an n-bit cell packs n× the underlying
        // binary model (at large D all precisions saturate, so comparisons
        // there are noise).
        let points = small_sweep(DatasetKind::Isolet);
        let b1 = points
            .iter()
            .find(|p| p.dims == 256 && p.precision == Precision::Bits(1))
            .unwrap();
        let b4 = points
            .iter()
            .find(|p| p.dims == 256 && p.precision == Precision::Bits(4))
            .unwrap();
        assert!(
            b4.accuracy > b1.accuracy + 0.05,
            "4-bit {:.3} should clearly beat 1-bit {:.3} at 256 hardware dims",
            b4.accuracy,
            b1.accuracy
        );
    }

    #[test]
    fn helpers_extract_metrics() {
        let points = vec![
            SweepPoint {
                dims: 512,
                precision: Precision::Bits(2),
                accuracy: 0.8,
            },
            SweepPoint {
                dims: 1024,
                precision: Precision::Bits(2),
                accuracy: 0.9,
            },
            SweepPoint {
                dims: 2048,
                precision: Precision::Bits(2),
                accuracy: 0.92,
            },
        ];
        assert_eq!(
            required_dimension(&points, Precision::Bits(2), 0.9),
            Some(1024)
        );
        assert_eq!(required_dimension(&points, Precision::Bits(2), 0.99), None);
        assert_eq!(peak_accuracy(&points, Precision::Bits(2)), Some(0.92));
        assert_eq!(peak_accuracy(&points, Precision::Full), None);
    }

    #[test]
    fn empty_test_set_rejected() {
        let ds = Dataset::generate(DatasetKind::Face, 4, 2, 0);
        let enc = IdLevelEncoder::new(128, ds.features(), 8, (0.0, 1.0), 0).unwrap();
        let model = HdcModel::train(&enc, &ds.train, ds.classes(), 0).unwrap();
        let q = QuantizedModel::from_model(&model, 2).unwrap();
        assert!(quantized_accuracy(&q, &enc, &[]).is_err());
    }
}
