//! Hyperdimensional sequence encoding for genomic pattern matching.
//!
//! The paper motivates the TD-AM with HDC workloads including "genomic
//! detection" (its refs. \[38\]–\[41\], e.g. HDGIM: genome sequence
//! matching on FeFET). This module implements the standard HDC k-mer
//! encoder those systems use: each base gets a random hypervector, a
//! k-mer binds its bases under increasing permutations (position
//! encoding), and a read/reference window bundles its k-mers. Similar
//! sequences share k-mers and therefore correlate; after
//! [`crate::quantize`] packing, matching a read against reference windows
//! is exactly the TD-AM's parallel Hamming search.

use crate::hypervector::Hypervector;
use crate::HdcError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A DNA base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Base {
    /// Adenine.
    A,
    /// Cytosine.
    C,
    /// Guanine.
    G,
    /// Thymine.
    T,
}

impl Base {
    /// Parses one IUPAC base character (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for non-ACGT characters.
    pub fn from_char(c: char) -> Result<Self, HdcError> {
        match c.to_ascii_uppercase() {
            'A' => Ok(Self::A),
            'C' => Ok(Self::C),
            'G' => Ok(Self::G),
            'T' => Ok(Self::T),
            _ => Err(HdcError::InvalidConfig {
                what: "sequence may contain only A/C/G/T",
            }),
        }
    }

    fn index(self) -> usize {
        match self {
            Self::A => 0,
            Self::C => 1,
            Self::G => 2,
            Self::T => 3,
        }
    }
}

/// Parses an ACGT string.
///
/// # Errors
///
/// Returns [`HdcError::InvalidConfig`] on the first invalid character.
pub fn parse_sequence(text: &str) -> Result<Vec<Base>, HdcError> {
    text.chars().map(Base::from_char).collect()
}

/// A k-mer sequence encoder.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceEncoder {
    dims: usize,
    k: usize,
    base_memory: [Hypervector; 4],
}

impl SequenceEncoder {
    /// Builds an encoder with hypervector dimensionality `dims` and k-mer
    /// length `k`, deterministically seeded.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for zero dims or `k == 0`.
    pub fn new(dims: usize, k: usize, seed: u64) -> Result<Self, HdcError> {
        if dims == 0 || k == 0 {
            return Err(HdcError::InvalidConfig {
                what: "sequence encoder needs dims >= 1 and k >= 1",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E9);
        let base_memory = [
            Hypervector::random(dims, &mut rng),
            Hypervector::random(dims, &mut rng),
            Hypervector::random(dims, &mut rng),
            Hypervector::random(dims, &mut rng),
        ];
        Ok(Self {
            dims,
            k,
            base_memory,
        })
    }

    /// Hypervector dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Encodes one k-mer: `Π_j ρ^j(B_j)` (bind bases under
    /// position-indexed permutations).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `kmer.len() != k`.
    pub fn encode_kmer(&self, kmer: &[Base]) -> Result<Hypervector, HdcError> {
        if kmer.len() != self.k {
            return Err(HdcError::InvalidConfig {
                what: "k-mer length must equal k",
            });
        }
        let mut acc = self.base_memory[kmer[0].index()].clone();
        for (j, base) in kmer.iter().enumerate().skip(1) {
            let rotated = self.base_memory[base.index()].permute(j);
            acc = acc.bind(&rotated)?;
        }
        Ok(acc)
    }

    /// Encodes a sequence as the bundle of all its k-mers.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for sequences shorter than `k`.
    pub fn encode_sequence(&self, seq: &[Base]) -> Result<Hypervector, HdcError> {
        if seq.len() < self.k {
            return Err(HdcError::InvalidConfig {
                what: "sequence shorter than k",
            });
        }
        let mut acc = Hypervector::zeros(self.dims);
        for window in seq.windows(self.k) {
            let kmer_hv = self.encode_kmer(window)?;
            acc.add_scaled(&kmer_hv, 1.0)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn random_seq(len: usize, seed: u64) -> Vec<Base> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| match rng.gen_range(0..4) {
                0 => Base::A,
                1 => Base::C,
                2 => Base::G,
                _ => Base::T,
            })
            .collect()
    }

    fn mutate(seq: &[Base], count: usize, seed: u64) -> Vec<Base> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = seq.to_vec();
        for _ in 0..count {
            let i = rng.gen_range(0..out.len());
            out[i] = match rng.gen_range(0..4) {
                0 => Base::A,
                1 => Base::C,
                2 => Base::G,
                _ => Base::T,
            };
        }
        out
    }

    #[test]
    fn parsing() {
        let seq = parse_sequence("AcGT").unwrap();
        assert_eq!(seq, vec![Base::A, Base::C, Base::G, Base::T]);
        assert!(parse_sequence("ACGN").is_err());
        assert!(parse_sequence("").unwrap().is_empty());
    }

    #[test]
    fn construction_validation() {
        assert!(SequenceEncoder::new(0, 4, 1).is_err());
        assert!(SequenceEncoder::new(1024, 0, 1).is_err());
        assert!(SequenceEncoder::new(1024, 4, 1).is_ok());
    }

    #[test]
    fn kmers_are_position_sensitive() {
        let enc = SequenceEncoder::new(4096, 3, 7).unwrap();
        let acg = enc.encode_kmer(&parse_sequence("ACG").unwrap()).unwrap();
        let gca = enc.encode_kmer(&parse_sequence("GCA").unwrap()).unwrap();
        // Same bases, different order → quasi-orthogonal k-mer codes.
        assert!(acg.cosine(&gca).unwrap().abs() < 0.1);
    }

    #[test]
    fn similar_sequences_correlate() {
        let enc = SequenceEncoder::new(4096, 5, 7).unwrap();
        let reference = random_seq(200, 1);
        let near = mutate(&reference, 5, 2); // ~2.5% mutation rate
        let unrelated = random_seq(200, 4);
        let h_ref = enc.encode_sequence(&reference).unwrap();
        let h_near = enc.encode_sequence(&near).unwrap();
        let h_far = enc.encode_sequence(&unrelated).unwrap();
        let sim_near = h_ref.cosine(&h_near).unwrap();
        let sim_far = h_ref.cosine(&h_far).unwrap();
        assert!(
            sim_near > 0.6,
            "5 mutations keep similarity high: {sim_near}"
        );
        assert!(sim_far < 0.2, "unrelated genomes ~orthogonal: {sim_far}");
    }

    #[test]
    fn read_matches_its_source_window() {
        // Reference genome split into windows; a (mutated) read drawn from
        // one window must match that window best — the HDGIM workload.
        let enc = SequenceEncoder::new(4096, 5, 7).unwrap();
        let genome = random_seq(800, 10);
        let windows: Vec<&[Base]> = genome.chunks(200).collect();
        let read = mutate(&windows[2][40..160], 3, 11);
        let h_read = enc.encode_sequence(&read).unwrap();
        let mut best = (usize::MAX, -1.0);
        for (i, w) in windows.iter().enumerate() {
            let sim = h_read.cosine(&enc.encode_sequence(w).unwrap()).unwrap();
            if sim > best.1 {
                best = (i, sim);
            }
        }
        assert_eq!(best.0, 2, "read must map to its source window");
    }

    #[test]
    fn shape_errors() {
        let enc = SequenceEncoder::new(256, 4, 7).unwrap();
        assert!(enc.encode_kmer(&parse_sequence("ACG").unwrap()).is_err());
        assert!(enc
            .encode_sequence(&parse_sequence("ACG").unwrap())
            .is_err());
    }
}
