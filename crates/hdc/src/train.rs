//! OnlineHD-style training (Hernández-Cano et al., DATE 2021 — the
//! paper's full-precision reference model \[35\]).
//!
//! Single-pass training with similarity-weighted updates: each encoded
//! sample is compared against all class hypervectors; on a misprediction
//! the sample is added to its true class scaled by `(1 − sim_true)` and
//! subtracted from the mispredicted class scaled by `(1 − sim_pred)`.
//! A few retraining epochs over the same data polish the boundaries.

use crate::encoder::IdLevelEncoder;
use crate::hypervector::Hypervector;
use crate::HdcError;
use serde::{Deserialize, Serialize};

/// A trained full-precision HDC classification model.
///
/// # Examples
///
/// ```no_run
/// use tdam_hdc::datasets::{Dataset, DatasetKind};
/// use tdam_hdc::encoder::IdLevelEncoder;
/// use tdam_hdc::train::HdcModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ds = Dataset::generate(DatasetKind::Face, 50, 20, 1);
/// let enc = IdLevelEncoder::new(2048, ds.features(), 32, (0.0, 1.0), 7)?;
/// let model = HdcModel::train(&enc, &ds.train, ds.classes(), 3)?;
/// let acc = model.accuracy(&enc, &ds.test)?;
/// assert!(acc > 0.8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HdcModel {
    class_hvs: Vec<Hypervector>,
    dims: usize,
}

impl HdcModel {
    /// Trains a model: one online pass plus `retrain_epochs` refinement
    /// passes.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for zero classes or empty
    /// training data, and propagates encoding errors.
    pub fn train(
        encoder: &IdLevelEncoder,
        samples: &[(Vec<f64>, usize)],
        classes: usize,
        retrain_epochs: usize,
    ) -> Result<Self, HdcError> {
        if classes == 0 {
            return Err(HdcError::InvalidConfig {
                what: "need at least one class",
            });
        }
        if samples.is_empty() {
            return Err(HdcError::InvalidConfig {
                what: "training set is empty",
            });
        }
        let dims = encoder.dims();
        let mut model = Self {
            class_hvs: vec![Hypervector::zeros(dims); classes],
            dims,
        };
        // Pre-encode once; training revisits the same encodings.
        let encoded: Vec<(Hypervector, usize)> = samples
            .iter()
            .map(|(x, label)| encoder.encode(x).map(|h| (h, *label)))
            .collect::<Result<_, _>>()?;

        // Initial pass: plain bundling so similarities are meaningful
        // before online corrections start.
        for (h, label) in &encoded {
            model.class_hvs[*label].add_scaled(h, 1.0)?;
        }
        for _ in 0..retrain_epochs {
            for (h, label) in &encoded {
                model.update(h, *label)?;
            }
        }
        Ok(model)
    }

    /// OnlineHD update with one encoded sample.
    fn update(&mut self, h: &Hypervector, label: usize) -> Result<(), HdcError> {
        let (pred, sim_pred) = self.classify_encoded(h)?;
        if pred == label {
            return Ok(());
        }
        let sim_true = self.similarity(h, label)?;
        self.update_weighted(h, label, pred, 1.0 - sim_true as f32, 1.0 - sim_pred as f32)
    }

    /// Applies one explicit OnlineHD correction: adds `h` to `label`'s
    /// class hypervector with weight `w_true` and subtracts it from the
    /// mispredicted class `pred` with weight `w_pred`.
    ///
    /// This is the primitive that *quantitative* similarity hardware
    /// enables (the paper's Sec. II-B point): the update weights come
    /// from measured similarity values — e.g. the TD-AM's exact decoded
    /// Hamming distances — not just a match/mismatch flag.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for out-of-range class indices.
    pub fn update_weighted(
        &mut self,
        h: &Hypervector,
        label: usize,
        pred: usize,
        w_true: f32,
        w_pred: f32,
    ) -> Result<(), HdcError> {
        if label >= self.class_hvs.len() || pred >= self.class_hvs.len() {
            return Err(HdcError::InvalidConfig {
                what: "class index out of range",
            });
        }
        self.class_hvs[label].add_scaled(h, w_true)?;
        self.class_hvs[pred].add_scaled(h, -w_pred)?;
        Ok(())
    }

    /// Dimensionality of the class hypervectors.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.class_hvs.len()
    }

    /// The class hypervectors.
    pub fn class_hvs(&self) -> &[Hypervector] {
        &self.class_hvs
    }

    /// Cosine similarity between an encoded sample and one class.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for an unknown class or
    /// zero-norm operands.
    pub fn similarity(&self, h: &Hypervector, class: usize) -> Result<f64, HdcError> {
        let class_hv = self.class_hvs.get(class).ok_or(HdcError::InvalidConfig {
            what: "class index out of range",
        })?;
        if class_hv.norm() == 0.0 {
            return Ok(0.0);
        }
        h.cosine(class_hv)
    }

    /// Classifies an already-encoded hypervector, returning the class and
    /// its cosine similarity.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyModel`] if no class hypervector is
    /// non-zero.
    pub fn classify_encoded(&self, h: &Hypervector) -> Result<(usize, f64), HdcError> {
        let mut best: Option<(usize, f64)> = None;
        for (i, _) in self.class_hvs.iter().enumerate() {
            let sim = self.similarity(h, i)?;
            if best.map(|(_, s)| sim > s).unwrap_or(true) {
                best = Some((i, sim));
            }
        }
        best.ok_or(HdcError::EmptyModel)
    }

    /// Encodes and classifies a raw sample.
    ///
    /// # Errors
    ///
    /// Propagates encoding and classification errors.
    pub fn classify(
        &self,
        encoder: &IdLevelEncoder,
        sample: &[f64],
    ) -> Result<(usize, f64), HdcError> {
        let h = encoder.encode(sample)?;
        self.classify_encoded(&h)
    }

    /// Accuracy over a labelled test set.
    ///
    /// # Errors
    ///
    /// Propagates classification errors; returns
    /// [`HdcError::InvalidConfig`] for an empty test set.
    pub fn accuracy(
        &self,
        encoder: &IdLevelEncoder,
        test: &[(Vec<f64>, usize)],
    ) -> Result<f64, HdcError> {
        if test.is_empty() {
            return Err(HdcError::InvalidConfig {
                what: "test set is empty",
            });
        }
        let mut correct = 0usize;
        for (x, label) in test {
            let (pred, _) = self.classify(encoder, x)?;
            if pred == *label {
                correct += 1;
            }
        }
        Ok(correct as f64 / test.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, DatasetKind};

    fn quick_setup(dims: usize) -> (Dataset, IdLevelEncoder) {
        let ds = Dataset::generate(DatasetKind::Face, 40, 20, 11);
        let enc = IdLevelEncoder::new(dims, ds.features(), 32, (0.0, 1.0), 5).unwrap();
        (ds, enc)
    }

    #[test]
    fn trains_above_chance_on_face() {
        let (ds, enc) = quick_setup(1024);
        let model = HdcModel::train(&enc, &ds.train, ds.classes(), 2).unwrap();
        let acc = model.accuracy(&enc, &ds.test).unwrap();
        assert!(acc > 0.8, "FACE accuracy {acc} should be high");
    }

    #[test]
    fn retraining_does_not_hurt() {
        let (ds, enc) = quick_setup(1024);
        let m0 = HdcModel::train(&enc, &ds.train, ds.classes(), 0).unwrap();
        let m3 = HdcModel::train(&enc, &ds.train, ds.classes(), 3).unwrap();
        let a0 = m0.accuracy(&enc, &ds.test).unwrap();
        let a3 = m3.accuracy(&enc, &ds.test).unwrap();
        assert!(a3 >= a0 - 0.05, "retrained {a3} vs bundled {a0}");
    }

    #[test]
    fn higher_dims_help_on_isolet() {
        let ds = Dataset::generate(DatasetKind::Isolet, 12, 6, 2);
        let acc_at = |dims: usize| {
            let enc = IdLevelEncoder::new(dims, ds.features(), 32, (0.0, 1.0), 5).unwrap();
            let model = HdcModel::train(&enc, &ds.train, ds.classes(), 2).unwrap();
            model.accuracy(&enc, &ds.test).unwrap()
        };
        let low = acc_at(128);
        let high = acc_at(2048);
        assert!(
            high >= low,
            "2048-dim accuracy {high} should not trail 128-dim {low}"
        );
        assert!(high > 1.5 / 26.0, "well above chance");
    }

    #[test]
    fn empty_inputs_rejected() {
        let (_, enc) = quick_setup(256);
        assert!(HdcModel::train(&enc, &[], 2, 0).is_err());
        let ds = Dataset::generate(DatasetKind::Face, 2, 1, 0);
        assert!(HdcModel::train(&enc, &ds.train, 0, 0).is_err());
        let model = HdcModel::train(&enc, &ds.train, 2, 0).unwrap();
        assert!(model.accuracy(&enc, &[]).is_err());
    }

    #[test]
    fn model_dimensions_consistent() {
        let (ds, enc) = quick_setup(512);
        let model = HdcModel::train(&enc, &ds.train, ds.classes(), 1).unwrap();
        assert_eq!(model.dims(), 512);
        assert_eq!(model.classes(), 2);
        assert!(model.class_hvs().iter().all(|h| h.dims() == 512));
    }
}
