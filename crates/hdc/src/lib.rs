//! Hyperdimensional computing (HDC) on the FeFET TD-AM.
//!
//! The paper's application case study (Sec. IV-B): brain-inspired
//! hyperdimensional classification, quantized to the multi-bit precision
//! the TD-AM supports, benchmarked on three datasets (ISOLET voice
//! recognition, UCIHAR activity recognition, FACE detection) across
//! dimensionalities 512–10240 and element precisions 1–4 bits vs. the
//! 32-bit float reference (Figs. 7 and 8).
//!
//! Modules:
//!
//! - [`hypervector`] — dense real and quantized integer hypervectors with
//!   cosine/Hamming similarity,
//! - [`encoder`] — record-based ID–level encoding of feature vectors,
//! - [`train`] — OnlineHD-style single-pass training with
//!   similarity-weighted updates plus retraining epochs,
//! - [`quantize`] — the paper's equal-probability-area quantization of
//!   class hypervectors into `2^n` levels,
//! - [`datasets`] — synthetic stand-ins for ISOLET / UCIHAR / FACE
//!   (Gaussian class clusters matching each dataset's class/feature
//!   counts; the UCI originals are not available offline — see
//!   DESIGN.md),
//! - [`eval`] — accuracy evaluation and the precision × dimension sweep
//!   of Fig. 7,
//! - [`mapping`] — inference mapped onto TD-AM tiles, with
//!   latency/energy accounting for the Fig. 8 GPU comparison,
//! - [`cluster`] — k-centroid clustering in hyperdimensional space,
//! - [`sequence`] — k-mer genomic encoding for approximate sequence
//!   matching (the HDGIM workload the paper cites).
//!
//! Batched inference: [`mapping::TdamHdcInference::classify_batch`] fans a
//! set of queries across the worker pool of [`tdam::parallel`], returning
//! per-query results in order, identical to sequential
//! [`classify`](mapping::TdamHdcInference::classify) calls;
//! [`eval::quantized_accuracy`] and [`eval::accuracy_sweep`] use the same
//! pool internally.
//!
//! # Examples
//!
//! Train a tiny model, deploy it on TD-AM tiles, classify a batch of
//! queries, read each prediction:
//!
//! ```
//! use tdam_hdc::datasets::{Dataset, DatasetKind};
//! use tdam_hdc::encoder::IdLevelEncoder;
//! use tdam_hdc::mapping::TdamHdcInference;
//! use tdam_hdc::quantize::QuantizedModel;
//! use tdam_hdc::train::HdcModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ds = Dataset::generate(DatasetKind::Face, 10, 4, 1);
//! let enc = IdLevelEncoder::new(128, ds.features(), 16, (0.0, 1.0), 7)?;
//! let model = HdcModel::train(&enc, &ds.train, ds.classes(), 1)?;
//! let quant = QuantizedModel::from_model(&model, 2)?;
//! let hw = TdamHdcInference::new(&quant, 64, 0.6)?;
//! let mut queries = Vec::new();
//! for (x, _) in ds.test.iter().take(2) {
//!     queries.push(quant.quantize_query(&enc.encode(x)?)?);
//! }
//! let results = hw.classify_batch(&queries, None)?;
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.class < ds.classes()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod datasets;
pub mod encoder;
pub mod eval;
pub mod hypervector;
pub mod mapping;
pub mod quantize;
pub mod sequence;
pub mod train;

pub use datasets::{Dataset, DatasetKind};
pub use encoder::IdLevelEncoder;
pub use hypervector::{Hypervector, QuantizedHypervector};
pub use train::HdcModel;

/// Errors from the HDC layer.
#[derive(Debug, Clone, PartialEq)]
pub enum HdcError {
    /// A parameter was out of range.
    InvalidConfig {
        /// Which parameter.
        what: &'static str,
    },
    /// Vector dimensionalities disagree.
    DimensionMismatch {
        /// Dimensionality provided.
        got: usize,
        /// Dimensionality expected.
        expected: usize,
    },
    /// The model has no trained classes.
    EmptyModel,
    /// An error bubbled up from the TD-AM hardware model.
    Tdam(tdam::TdamError),
}

impl core::fmt::Display for HdcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            Self::DimensionMismatch { got, expected } => {
                write!(f, "dimension mismatch: got {got}, expected {expected}")
            }
            Self::EmptyModel => write!(f, "model has no trained classes"),
            Self::Tdam(e) => write!(f, "TD-AM error: {e}"),
        }
    }
}

impl std::error::Error for HdcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Tdam(e) => Some(e),
            _ => None,
        }
    }
}

impl HdcError {
    /// Classifies this error for retry/degrade decisions, using the same
    /// taxonomy as the serving runtime ([`tdam::ErrorClass`]): hardware
    /// errors inherit their TD-AM classification, while configuration,
    /// shape, and empty-model errors are deterministic caller bugs.
    pub fn class(&self) -> tdam::ErrorClass {
        match self {
            Self::Tdam(e) => e.class(),
            Self::InvalidConfig { .. } | Self::DimensionMismatch { .. } | Self::EmptyModel => {
                tdam::ErrorClass::Permanent
            }
        }
    }

    /// Whether a bounded retry can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        self.class() == tdam::ErrorClass::Transient
    }
}

impl From<tdam::TdamError> for HdcError {
    fn from(e: tdam::TdamError) -> Self {
        Self::Tdam(e)
    }
}

impl From<tdam::parallel::WorkerLost> for HdcError {
    fn from(e: tdam::parallel::WorkerLost) -> Self {
        Self::Tdam(e.into())
    }
}
