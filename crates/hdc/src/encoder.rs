//! Record-based ID–level encoding of feature vectors into hypervectors.
//!
//! The standard HDC front end: each feature index gets a random *ID*
//! hypervector; each quantized feature value gets a *level* hypervector
//! drawn from a chain that interpolates between two random endpoints, so
//! nearby values stay similar. A sample is encoded as
//! `Σ_f ID_f ⊙ L(value_f)` — the holographic superposition the paper's
//! associative search operates on.

use crate::hypervector::Hypervector;
use crate::HdcError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// ID–level encoder configuration and memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdLevelEncoder {
    dims: usize,
    features: usize,
    levels: usize,
    id_memory: Vec<Hypervector>,
    level_memory: Vec<Hypervector>,
    /// Feature range mapped onto the level chain.
    range: (f64, f64),
}

impl IdLevelEncoder {
    /// Builds an encoder for `features`-dimensional inputs in `range`,
    /// quantized over `levels` level hypervectors of dimensionality
    /// `dims`, deterministically seeded.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for zero sizes or an empty
    /// range.
    pub fn new(
        dims: usize,
        features: usize,
        levels: usize,
        range: (f64, f64),
        seed: u64,
    ) -> Result<Self, HdcError> {
        if dims == 0 || features == 0 || levels < 2 {
            return Err(HdcError::InvalidConfig {
                what: "encoder needs dims >= 1, features >= 1, levels >= 2",
            });
        }
        if range.0.is_nan() || range.1.is_nan() || range.0 >= range.1 {
            return Err(HdcError::InvalidConfig {
                what: "feature range must be non-empty",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // Gaussian (not bipolar) ID vectors: binding bipolar IDs with
        // bipolar levels makes every encoding integer-valued, and the
        // resulting mass of exactly-tied coordinates destabilizes
        // rank-based quantization (tie order flips under any perturbation
        // of a class hypervector). Continuous IDs keep the same binding
        // statistics with almost-surely distinct values.
        let id_memory: Vec<Hypervector> = (0..features)
            .map(|_| Hypervector::random(dims, &mut rng))
            .collect();
        // Level chain: interpolate between two random endpoints by
        // progressively swapping a random subset of coordinates, so
        // adjacent levels are highly similar and the extremes are
        // quasi-orthogonal. The endpoints are Gaussian for the same
        // reason as the IDs: with bipolar endpoints, the ~50% of
        // coordinates where lo[i] == hi[i] are level-independent, so every
        // sample encodes identically there and the class-hypervector
        // *differences* are exactly zero on half the coordinates — a
        // degenerate tie block that made rank-based quantization
        // catastrophically sensitive to model updates.
        let lo = Hypervector::random(dims, &mut rng);
        let hi = Hypervector::random(dims, &mut rng);
        // Pre-pick a random flip order of the coordinates.
        let mut order: Vec<usize> = (0..dims).collect();
        for i in (1..dims).rev() {
            let j = rand::Rng::gen_range(&mut rng, 0..=i);
            order.swap(i, j);
        }
        let mut level_memory = Vec::with_capacity(levels);
        for l in 0..levels {
            let f = l as f64 / (levels - 1) as f64;
            let cut = (f * dims as f64) as usize;
            let mut v = lo.clone();
            for &idx in &order[..cut] {
                v.values_mut()[idx] = hi.values()[idx];
            }
            level_memory.push(v);
        }
        Ok(Self {
            dims,
            features,
            levels,
            id_memory,
            level_memory,
            range,
        })
    }

    /// Hypervector dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of input features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of quantization levels in the level chain.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The level index a raw feature value maps to.
    pub fn level_index(&self, value: f64) -> usize {
        let (lo, hi) = self.range;
        let f = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((f * (self.levels - 1) as f64).round() as usize).min(self.levels - 1)
    }

    /// Encodes a feature vector into a hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the sample does not have
    /// exactly `features` values.
    pub fn encode(&self, sample: &[f64]) -> Result<Hypervector, HdcError> {
        if sample.len() != self.features {
            return Err(HdcError::DimensionMismatch {
                got: sample.len(),
                expected: self.features,
            });
        }
        let mut acc = Hypervector::zeros(self.dims);
        for (f, &value) in sample.iter().enumerate() {
            let level = &self.level_memory[self.level_index(value)];
            let bound = self.id_memory[f].bind(level)?;
            acc.add_scaled(&bound, 1.0)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> IdLevelEncoder {
        IdLevelEncoder::new(2048, 16, 32, (0.0, 1.0), 42).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(IdLevelEncoder::new(0, 4, 8, (0.0, 1.0), 0).is_err());
        assert!(IdLevelEncoder::new(64, 0, 8, (0.0, 1.0), 0).is_err());
        assert!(IdLevelEncoder::new(64, 4, 1, (0.0, 1.0), 0).is_err());
        assert!(IdLevelEncoder::new(64, 4, 8, (1.0, 1.0), 0).is_err());
    }

    #[test]
    fn level_chain_is_locally_similar() {
        let enc = encoder();
        let l0 = &enc.level_memory[0];
        let l1 = &enc.level_memory[1];
        let l_last = &enc.level_memory[31];
        assert!(l0.cosine(l1).unwrap() > 0.85, "adjacent levels similar");
        assert!(
            l0.cosine(l_last).unwrap() < 0.2,
            "extreme levels quasi-orthogonal"
        );
    }

    #[test]
    fn level_index_clamps() {
        let enc = encoder();
        assert_eq!(enc.level_index(-5.0), 0);
        assert_eq!(enc.level_index(0.0), 0);
        assert_eq!(enc.level_index(1.0), 31);
        assert_eq!(enc.level_index(99.0), 31);
    }

    #[test]
    fn similar_inputs_encode_similarly() {
        let enc = encoder();
        let a: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
        let mut b = a.clone();
        b[0] += 0.02; // tiny perturbation
        let mut c: Vec<f64> = a.iter().map(|x| 1.0 - x).collect();
        c[15] = 0.99;
        let ha = enc.encode(&a).unwrap();
        let hb = enc.encode(&b).unwrap();
        let hc = enc.encode(&c).unwrap();
        let sim_ab = ha.cosine(&hb).unwrap();
        let sim_ac = ha.cosine(&hc).unwrap();
        assert!(sim_ab > 0.9, "near-identical inputs: {sim_ab}");
        assert!(sim_ab > sim_ac, "ab {sim_ab} should exceed ac {sim_ac}");
    }

    #[test]
    fn encode_rejects_wrong_arity() {
        let enc = encoder();
        assert!(enc.encode(&[0.0; 15]).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = IdLevelEncoder::new(256, 4, 8, (0.0, 1.0), 9).unwrap();
        let b = IdLevelEncoder::new(256, 4, 8, (0.0, 1.0), 9).unwrap();
        let s = [0.1, 0.5, 0.9, 0.3];
        assert_eq!(a.encode(&s).unwrap(), b.encode(&s).unwrap());
    }
}
