//! Synthetic stand-ins for the paper's three benchmark datasets.
//!
//! The paper evaluates on ISOLET (voice, UCI), UCIHAR (activity, UCI) and
//! FACE (face detection); none are available offline, so each is replaced
//! by a Gaussian class-cluster generator with the *same class count,
//! feature count and relative difficulty* (noise level calibrated so
//! full-precision HDC accuracy lands in the paper's ~88–96% regime).
//! Fig. 7's claims are about relative behaviour across precision and
//! dimensionality, which survives this substitution — see DESIGN.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tdam_num::dist::standard_normal;

/// Which benchmark a synthetic dataset emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// ISOLET spoken-letter recognition: 26 classes × 617 features.
    Isolet,
    /// UCIHAR smartphone activity recognition: 6 classes × 561 features.
    Ucihar,
    /// FACE detection: 2 classes × 608 features.
    Face,
}

impl DatasetKind {
    /// All three benchmarks, in the paper's order.
    pub const ALL: [DatasetKind; 3] = [Self::Isolet, Self::Ucihar, Self::Face];

    /// Number of classes.
    pub fn classes(self) -> usize {
        match self {
            Self::Isolet => 26,
            Self::Ucihar => 6,
            Self::Face => 2,
        }
    }

    /// Number of input features.
    pub fn features(self) -> usize {
        match self {
            Self::Isolet => 617,
            Self::Ucihar => 561,
            Self::Face => 608,
        }
    }

    /// Within-class noise standard deviation relative to unit centroid
    /// spread — the difficulty knob calibrated per dataset.
    fn noise_sigma(self) -> f64 {
        match self {
            // Voice data: many confusable classes, moderate noise.
            Self::Isolet => 3.4,
            // Activity data: few classes but pairs (sitting/standing) are
            // genuinely hard to separate; high noise plus correlated
            // class centroids (see below).
            Self::Ucihar => 2.8,
            // Face/non-face: separable but noisy (~96% ceiling).
            Self::Face => 4.5,
        }
    }

    /// Human-readable name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Self::Isolet => "ISOLET",
            Self::Ucihar => "UCIHAR",
            Self::Face => "FACE",
        }
    }
}

impl core::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A labelled dataset: feature vectors in roughly `[0, 1]` with class
/// labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Which benchmark this emulates.
    pub kind: DatasetKind,
    /// Training samples `(features, label)`.
    pub train: Vec<(Vec<f64>, usize)>,
    /// Test samples `(features, label)`.
    pub test: Vec<(Vec<f64>, usize)>,
}

/// Error parsing an external dataset file.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseDatasetError {
    /// A line had a malformed number.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// A line had a different field count than the first line.
    InconsistentWidth {
        /// 1-based line number.
        line: usize,
    },
    /// The file had no usable rows.
    Empty,
}

impl core::fmt::Display for ParseDatasetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadNumber { line } => write!(f, "malformed number on line {line}"),
            Self::InconsistentWidth { line } => {
                write!(f, "inconsistent field count on line {line}")
            }
            Self::Empty => write!(f, "no data rows found"),
        }
    }
}

impl std::error::Error for ParseDatasetError {}

/// Parses labelled samples from CSV text: each row is
/// `feature1,feature2,…,label` with the label as the final integer
/// column. Blank lines and lines starting with `#` are skipped. Use this
/// to run the pipeline on the *real* ISOLET/UCIHAR/FACE files when they
/// are available (this repository substitutes synthetic generators only
/// because the UCI archives are unavailable offline).
///
/// # Errors
///
/// Returns [`ParseDatasetError`] for malformed rows.
///
/// # Examples
///
/// ```
/// use tdam_hdc::datasets::parse_csv;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rows = parse_csv("0.1,0.9,0\n0.8,0.2,1\n")?;
/// assert_eq!(rows.len(), 2);
/// assert_eq!(rows[1].1, 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_csv(text: &str) -> Result<Vec<(Vec<f64>, usize)>, ParseDatasetError> {
    let mut rows = Vec::new();
    let mut width = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(ParseDatasetError::InconsistentWidth { line });
        }
        match width {
            None => width = Some(fields.len()),
            Some(w) if w != fields.len() => {
                return Err(ParseDatasetError::InconsistentWidth { line })
            }
            _ => {}
        }
        let label: usize = fields[fields.len() - 1]
            .parse()
            .map_err(|_| ParseDatasetError::BadNumber { line })?;
        let features: Vec<f64> = fields[..fields.len() - 1]
            .iter()
            .map(|f| f.parse().map_err(|_| ParseDatasetError::BadNumber { line }))
            .collect::<Result<_, _>>()?;
        rows.push((features, label));
    }
    if rows.is_empty() {
        return Err(ParseDatasetError::Empty);
    }
    Ok(rows)
}

impl Dataset {
    /// Generates a synthetic dataset with `train_per_class` /
    /// `test_per_class` samples per class, deterministically seeded.
    ///
    /// Class centroids are drawn from a shared pool with per-dataset
    /// correlation (UCIHAR centroids are pairwise correlated to emulate
    /// its confusable activity pairs); samples add isotropic Gaussian
    /// noise, and every feature is squashed through a logistic to land in
    /// `(0, 1)` like the normalized UCI data.
    pub fn generate(
        kind: DatasetKind,
        train_per_class: usize,
        test_per_class: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DA7_A5E7);
        let classes = kind.classes();
        let features = kind.features();
        let sigma = kind.noise_sigma();

        // Class centroids.
        let mut centroids: Vec<Vec<f64>> = (0..classes)
            .map(|_| (0..features).map(|_| standard_normal(&mut rng)).collect())
            .collect();
        if kind == DatasetKind::Ucihar {
            // Correlate class pairs (2k, 2k+1): mix 70% of a shared base in,
            // emulating sitting-vs-standing style confusability.
            for k in 0..classes / 2 {
                let base: Vec<f64> = (0..features).map(|_| standard_normal(&mut rng)).collect();
                for c in [2 * k, 2 * k + 1] {
                    for (v, b) in centroids[c].iter_mut().zip(&base) {
                        *v = 0.55 * *b + 0.45 * *v;
                    }
                }
            }
        }

        let sample = |rng: &mut StdRng, label: usize| -> (Vec<f64>, usize) {
            let x: Vec<f64> = centroids[label]
                .iter()
                .map(|&c| {
                    let raw = c + sigma * standard_normal(rng);
                    1.0 / (1.0 + (-raw).exp())
                })
                .collect();
            (x, label)
        };

        let mut train = Vec::with_capacity(classes * train_per_class);
        let mut test = Vec::with_capacity(classes * test_per_class);
        for label in 0..classes {
            for _ in 0..train_per_class {
                train.push(sample(&mut rng, label));
            }
            for _ in 0..test_per_class {
                test.push(sample(&mut rng, label));
            }
        }
        // Shuffle training order (single-pass online training is
        // order-sensitive).
        for i in (1..train.len()).rev() {
            let j = rng.gen_range(0..=i);
            train.swap(i, j);
        }
        Self { kind, train, test }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.kind.classes()
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.kind.features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_benchmarks() {
        for kind in DatasetKind::ALL {
            let ds = Dataset::generate(kind, 5, 3, 1);
            assert_eq!(ds.train.len(), kind.classes() * 5);
            assert_eq!(ds.test.len(), kind.classes() * 3);
            for (x, label) in ds.train.iter().chain(&ds.test) {
                assert_eq!(x.len(), kind.features());
                assert!(*label < kind.classes());
                assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Dataset::generate(DatasetKind::Face, 4, 2, 9);
        let b = Dataset::generate(DatasetKind::Face, 4, 2, 9);
        assert_eq!(a, b);
        let c = Dataset::generate(DatasetKind::Face, 4, 2, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn classes_are_separable_in_feature_space() {
        // Nearest-centroid classification on raw features should beat
        // chance comfortably — otherwise HDC has nothing to learn.
        let ds = Dataset::generate(DatasetKind::Isolet, 20, 10, 3);
        let classes = ds.classes();
        let features = ds.features();
        let mut centroids = vec![vec![0.0f64; features]; classes];
        let mut counts = vec![0usize; classes];
        for (x, label) in &ds.train {
            counts[*label] += 1;
            for (c, v) in centroids[*label].iter_mut().zip(x) {
                *c += v;
            }
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= *n as f64;
            }
        }
        let mut correct = 0;
        for (x, label) in &ds.test {
            let pred = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da: f64 = a.iter().zip(x).map(|(p, q)| (p - q).powi(2)).sum();
                    let db: f64 = b.iter().zip(x).map(|(p, q)| (p - q).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            if pred == *label {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.test.len() as f64;
        assert!(acc > 0.5, "nearest-centroid accuracy {acc} too low");
    }

    #[test]
    fn csv_roundtrip() {
        let rows = parse_csv("# header comment\n0.5, 0.25, 2\n\n1.0,0.0,0\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (vec![0.5, 0.25], 2));
        assert_eq!(rows[1], (vec![1.0, 0.0], 0));
    }

    #[test]
    fn csv_rejects_malformed() {
        assert_eq!(parse_csv(""), Err(ParseDatasetError::Empty));
        assert_eq!(
            parse_csv("# only comments\n"),
            Err(ParseDatasetError::Empty)
        );
        assert_eq!(
            parse_csv("0.1,0.2,x"),
            Err(ParseDatasetError::BadNumber { line: 1 })
        );
        assert_eq!(
            parse_csv("0.1,0.2,1\n0.3,1"),
            Err(ParseDatasetError::InconsistentWidth { line: 2 })
        );
        assert_eq!(
            parse_csv("5"),
            Err(ParseDatasetError::InconsistentWidth { line: 1 })
        );
    }

    #[test]
    fn csv_feeds_training() {
        // A parsed toy dataset trains end to end.
        let mut text = String::new();
        for i in 0..30 {
            let x = i as f64 / 30.0;
            text.push_str(&format!("{x},{},{}\n", 1.0 - x, usize::from(x > 0.5)));
        }
        let rows = parse_csv(&text).unwrap();
        let enc = crate::encoder::IdLevelEncoder::new(512, 2, 16, (0.0, 1.0), 3).unwrap();
        let model = crate::train::HdcModel::train(&enc, &rows, 2, 2).unwrap();
        let acc = model.accuracy(&enc, &rows).unwrap();
        assert!(acc > 0.9, "toy CSV training accuracy {acc}");
    }

    #[test]
    fn ucihar_is_hardest() {
        // Relative difficulty ordering: UCIHAR's correlated pairs should
        // produce the lowest nearest-centroid margin of the three.
        let margin = |kind: DatasetKind| {
            let ds = Dataset::generate(kind, 15, 8, 4);
            // Average gap between distance to own centroid vs best other.
            let classes = ds.classes();
            let features = ds.features();
            let mut centroids = vec![vec![0.0f64; features]; classes];
            let mut counts = vec![0usize; classes];
            for (x, label) in &ds.train {
                counts[*label] += 1;
                for (c, v) in centroids[*label].iter_mut().zip(x) {
                    *c += v;
                }
            }
            for (c, n) in centroids.iter_mut().zip(&counts) {
                for v in c.iter_mut() {
                    *v /= (*n).max(1) as f64;
                }
            }
            let mut margins = Vec::new();
            for (x, label) in &ds.test {
                let d = |c: &Vec<f64>| -> f64 {
                    c.iter()
                        .zip(x)
                        .map(|(p, q)| (p - q).powi(2))
                        .sum::<f64>()
                        .sqrt()
                };
                let own = d(&centroids[*label]);
                let other = centroids
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i != label)
                    .map(|(_, c)| d(c))
                    .fold(f64::INFINITY, f64::min);
                margins.push(other - own);
            }
            margins.iter().sum::<f64>() / margins.len() as f64
        };
        let m_ucihar = margin(DatasetKind::Ucihar);
        let m_face = margin(DatasetKind::Face);
        assert!(
            m_ucihar < m_face,
            "UCIHAR margin {m_ucihar} should be below FACE {m_face}"
        );
    }
}
