//! Dense hypervectors: full-precision (`f32`) and quantized (`u8`)
//! representations with similarity metrics.

use crate::HdcError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tdam_num::dist::standard_normal;

/// A dense full-precision hypervector.
///
/// # Examples
///
/// ```
/// use tdam_hdc::Hypervector;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Hypervector::from_values(vec![1.0, 0.0, -1.0]);
/// let b = Hypervector::from_values(vec![1.0, 0.0, -1.0]);
/// assert!((a.cosine(&b)? - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypervector {
    values: Vec<f32>,
}

impl Hypervector {
    /// Creates a zero hypervector of dimensionality `dims`.
    pub fn zeros(dims: usize) -> Self {
        Self {
            values: vec![0.0; dims],
        }
    }

    /// Wraps an explicit value vector.
    pub fn from_values(values: Vec<f32>) -> Self {
        Self { values }
    }

    /// A random Gaussian hypervector (the standard HDC item-memory draw).
    pub fn random<R: Rng + ?Sized>(dims: usize, rng: &mut R) -> Self {
        Self {
            values: (0..dims).map(|_| standard_normal(rng) as f32).collect(),
        }
    }

    /// A random bipolar (±1) hypervector.
    pub fn random_bipolar<R: Rng + ?Sized>(dims: usize, rng: &mut R) -> Self {
        Self {
            values: (0..dims)
                .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                .collect(),
        }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// The raw values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable raw values.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Adds `other` scaled by `weight` (the bundling/update primitive).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for unequal dimensionality.
    pub fn add_scaled(&mut self, other: &Hypervector, weight: f32) -> Result<(), HdcError> {
        if other.dims() != self.dims() {
            return Err(HdcError::DimensionMismatch {
                got: other.dims(),
                expected: self.dims(),
            });
        }
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += weight * b;
        }
        Ok(())
    }

    /// Element-wise product (binding).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for unequal dimensionality.
    pub fn bind(&self, other: &Hypervector) -> Result<Hypervector, HdcError> {
        if other.dims() != self.dims() {
            return Err(HdcError::DimensionMismatch {
                got: other.dims(),
                expected: self.dims(),
            });
        }
        Ok(Hypervector {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Cyclic permutation by `k` positions (sequence encoding primitive).
    pub fn permute(&self, k: usize) -> Hypervector {
        let n = self.values.len();
        if n == 0 {
            return self.clone();
        }
        let k = k % n;
        let mut values = Vec::with_capacity(n);
        values.extend_from_slice(&self.values[n - k..]);
        values.extend_from_slice(&self.values[..n - k]);
        Hypervector { values }
    }

    /// Cosine similarity in `[-1, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for unequal dimensionality
    /// and [`HdcError::InvalidConfig`] if either vector has zero norm.
    pub fn cosine(&self, other: &Hypervector) -> Result<f64, HdcError> {
        if other.dims() != self.dims() {
            return Err(HdcError::DimensionMismatch {
                got: other.dims(),
                expected: self.dims(),
            });
        }
        let mut dot = 0.0f64;
        let mut na = 0.0f64;
        let mut nb = 0.0f64;
        for (a, b) in self.values.iter().zip(&other.values) {
            dot += *a as f64 * *b as f64;
            na += (*a as f64).powi(2);
            nb += (*b as f64).powi(2);
        }
        if na == 0.0 || nb == 0.0 {
            return Err(HdcError::InvalidConfig {
                what: "cosine undefined for zero-norm hypervector",
            });
        }
        Ok(dot / (na.sqrt() * nb.sqrt()))
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.values
            .iter()
            .map(|v| (*v as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

/// A hypervector quantized to `bits`-bit unsigned levels (`0..2^bits`),
/// ready to store in TD-AM cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedHypervector {
    levels: Vec<u8>,
    bits: u8,
}

impl QuantizedHypervector {
    /// Wraps explicit level values.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] if `bits` is outside `1..=4` or
    /// any level exceeds `2^bits − 1`.
    pub fn new(levels: Vec<u8>, bits: u8) -> Result<Self, HdcError> {
        if !(1..=4).contains(&bits) {
            return Err(HdcError::InvalidConfig {
                what: "quantized precision must be 1..=4 bits",
            });
        }
        let max = (1u8 << bits) - 1;
        if levels.iter().any(|&l| l > max) {
            return Err(HdcError::InvalidConfig {
                what: "level exceeds 2^bits - 1",
            });
        }
        Ok(Self { levels, bits })
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.levels.len()
    }

    /// Bits per element.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The level values (each in `0..2^bits`).
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// Element-wise Hamming distance (the metric the TD-AM computes).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for unequal dimensionality.
    pub fn hamming(&self, other: &QuantizedHypervector) -> Result<usize, HdcError> {
        if other.dims() != self.dims() {
            return Err(HdcError::DimensionMismatch {
                got: other.dims(),
                expected: self.dims(),
            });
        }
        Ok(self
            .levels
            .iter()
            .zip(&other.levels)
            .filter(|(a, b)| a != b)
            .count())
    }

    /// Dot-product similarity over centered levels (levels re-centered to
    /// signed values), a cheap software stand-in for cosine on quantized
    /// models.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for unequal dimensionality.
    pub fn dot_centered(&self, other: &QuantizedHypervector) -> Result<f64, HdcError> {
        if other.dims() != self.dims() {
            return Err(HdcError::DimensionMismatch {
                got: other.dims(),
                expected: self.dims(),
            });
        }
        let ca = ((1u16 << self.bits) - 1) as f64 / 2.0;
        let cb = ((1u16 << other.bits) - 1) as f64 / 2.0;
        Ok(self
            .levels
            .iter()
            .zip(&other.levels)
            .map(|(&a, &b)| (a as f64 - ca) * (b as f64 - cb))
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_hypervectors_quasi_orthogonal() {
        // Concentration of measure: two random 10k-dim hypervectors have
        // cosine close to 0 — the property all of HDC rests on.
        let mut rng = StdRng::seed_from_u64(1);
        let a = Hypervector::random(10_240, &mut rng);
        let b = Hypervector::random(10_240, &mut rng);
        let c = a.cosine(&b).unwrap();
        assert!(c.abs() < 0.05, "random HVs should be ~orthogonal, got {c}");
    }

    #[test]
    fn cosine_self_is_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Hypervector::random(512, &mut rng);
        assert!((a.cosine(&a).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_errors() {
        let a = Hypervector::zeros(4);
        let b = Hypervector::from_values(vec![1.0; 4]);
        assert!(matches!(a.cosine(&b), Err(HdcError::InvalidConfig { .. })));
        let c = Hypervector::zeros(5);
        assert!(matches!(
            b.cosine(&c),
            Err(HdcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn bind_is_involutive_for_bipolar() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Hypervector::random_bipolar(256, &mut rng);
        let b = Hypervector::random_bipolar(256, &mut rng);
        let bound = a.bind(&b).unwrap();
        let unbound = bound.bind(&b).unwrap();
        assert!((unbound.cosine(&a).unwrap() - 1.0).abs() < 1e-6);
        // Bound vector is dissimilar to both factors.
        assert!(bound.cosine(&a).unwrap().abs() < 0.2);
    }

    #[test]
    fn permute_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Hypervector::random(100, &mut rng);
        assert_eq!(a.permute(0), a);
        assert_eq!(a.permute(100), a);
        let p = a.permute(37);
        assert!(p.cosine(&a).unwrap().abs() < 0.3);
        assert_eq!(p.permute(63), a);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut acc = Hypervector::zeros(3);
        let x = Hypervector::from_values(vec![1.0, 2.0, 3.0]);
        acc.add_scaled(&x, 0.5).unwrap();
        acc.add_scaled(&x, 0.5).unwrap();
        assert_eq!(acc.values(), &[1.0, 2.0, 3.0]);
        let bad = Hypervector::zeros(4);
        assert!(acc.add_scaled(&bad, 1.0).is_err());
    }

    #[test]
    fn quantized_validation() {
        assert!(QuantizedHypervector::new(vec![0, 3], 2).is_ok());
        assert!(QuantizedHypervector::new(vec![4], 2).is_err());
        assert!(QuantizedHypervector::new(vec![0], 0).is_err());
        assert!(QuantizedHypervector::new(vec![0], 5).is_err());
    }

    #[test]
    fn quantized_hamming() {
        let a = QuantizedHypervector::new(vec![0, 1, 2, 3], 2).unwrap();
        let b = QuantizedHypervector::new(vec![0, 1, 3, 2], 2).unwrap();
        assert_eq!(a.hamming(&b).unwrap(), 2);
        assert_eq!(a.hamming(&a).unwrap(), 0);
    }

    #[test]
    fn dot_centered_sign() {
        // Identical extreme vectors correlate positively; opposite ones
        // negatively.
        let hi = QuantizedHypervector::new(vec![3; 16], 2).unwrap();
        let lo = QuantizedHypervector::new(vec![0; 16], 2).unwrap();
        assert!(hi.dot_centered(&hi).unwrap() > 0.0);
        assert!(hi.dot_centered(&lo).unwrap() < 0.0);
    }

    proptest! {
        #[test]
        fn permute_preserves_norm(k in 0usize..200) {
            let mut rng = StdRng::seed_from_u64(5);
            let a = Hypervector::random(64, &mut rng);
            let p = a.permute(k);
            prop_assert!((p.norm() - a.norm()).abs() < 1e-9);
        }

        #[test]
        fn hamming_symmetric(xs in prop::collection::vec(0u8..4, 1..64),
                             ys in prop::collection::vec(0u8..4, 1..64)) {
            let n = xs.len().min(ys.len());
            let a = QuantizedHypervector::new(xs[..n].to_vec(), 2).unwrap();
            let b = QuantizedHypervector::new(ys[..n].to_vec(), 2).unwrap();
            prop_assert_eq!(a.hamming(&b).unwrap(), b.hamming(&a).unwrap());
        }
    }
}
