//! Equal-probability-area quantization of HDC models (paper Sec. IV-B).
//!
//! The paper quantizes the 32-bit class hypervectors into the `n`-bit
//! levels the TD-AM stores "by thoroughly mapping the class hypervector
//! values based on probability distributions into 2^n blocks of equal
//! areas" — i.e. the level boundaries are the `k/2^n` quantiles of the
//! hypervector's own value distribution, so every level is used equally
//! often and dense value regions get narrow blocks.
//!
//! # How multi-bit elements carry more information
//!
//! The TD-AM cell reports *exact-match* per element, and for exact-match
//! Hamming the discriminability of plain multi-level rank quantization
//! *decreases* with level count (a Monte Carlo of bivariate-normal
//! quantile bins shows the per-element SNR falling ~2× from 2 to 16
//! levels). What makes higher precision pay off — the paper's Fig. 7
//! trend — is *packing*: an `n`-bit element stores `n` binary
//! sub-dimensions of the underlying model, so a `D`-element, `n`-bit
//! model holds the information of an `n·D`-bit binary model in `D` delay
//! stages. [`QuantizedModel::from_model`] therefore binarizes the
//! (centered) class hypervectors by their per-vector median and packs
//! `n` consecutive sign bits into each TD-AM element. An element
//! mismatches when *any* of its packed bits differs — which the 2-FeFET
//! cell detects natively.
//!
//! Before binarization the *shared class component* is removed: bundled
//! class hypervectors are dominated by the mean over all classes (their
//! pairwise cosine can exceed 0.9), which would drown the discriminative
//! rank structure. Class hypervectors are centered by the class mean and
//! queries have their projection onto the mean direction removed — this
//! is the "intricately designed quantization to minimize information
//! loss" step of the paper's Sec. IV-B, made explicit.

use crate::hypervector::{Hypervector, QuantizedHypervector};
use crate::train::HdcModel;
use crate::HdcError;
use serde::{Deserialize, Serialize};

/// Quantizes one hypervector into `2^bits` equal-probability-area levels
/// derived from its own value distribution.
///
/// # Errors
///
/// Returns [`HdcError::InvalidConfig`] for `bits` outside `1..=4` or an
/// empty vector.
pub fn equal_area_quantize(h: &Hypervector, bits: u8) -> Result<QuantizedHypervector, HdcError> {
    if !(1..=4).contains(&bits) {
        return Err(HdcError::InvalidConfig {
            what: "quantized precision must be 1..=4 bits",
        });
    }
    let values = h.values();
    if values.is_empty() {
        return Err(HdcError::InvalidConfig {
            what: "cannot quantize an empty hypervector",
        });
    }
    // Rank-based assignment: sort element indices by value (ties broken by
    // index, deterministically) and give each equal-population rank band
    // one level. This realizes equal-probability-area blocks exactly, even
    // when the distribution has large point masses — which centered class
    // hypervectors do, because coordinates the classes agree on center to
    // exactly zero.
    let n = values.len();
    let levels = 1usize << bits;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("finite hypervector values")
            .then(a.cmp(&b))
    });
    let mut quantized = vec![0u8; n];
    for (rank, &i) in order.iter().enumerate() {
        quantized[i] = ((rank * levels) / n) as u8;
    }
    QuantizedHypervector::new(quantized, bits)
}

/// Binarizes a hypervector by its per-vector median (rank-based, exactly
/// balanced) and packs `bits` consecutive sign bits into each element.
///
/// # Errors
///
/// Returns [`HdcError::InvalidConfig`] for `bits` outside `1..=4`, an
/// empty vector, or a length not divisible by `bits`.
pub fn binarize_and_pack(h: &Hypervector, bits: u8) -> Result<QuantizedHypervector, HdcError> {
    if !(1..=4).contains(&bits) {
        return Err(HdcError::InvalidConfig {
            what: "packed precision must be 1..=4 bits",
        });
    }
    if h.dims() == 0 || !h.dims().is_multiple_of(bits as usize) {
        return Err(HdcError::InvalidConfig {
            what: "vector length must be a positive multiple of the bit width",
        });
    }
    let binary = equal_area_quantize(h, 1)?;
    let n = bits as usize;
    let packed: Vec<u8> = binary
        .levels()
        .chunks(n)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u8, |acc, (k, &b)| acc | (b << k))
        })
        .collect();
    QuantizedHypervector::new(packed, bits)
}

/// A quantized HDC model: `n`-bit packed class hypervectors ready for
/// TD-AM deployment, plus the shared-component direction used to
/// preprocess queries consistently.
///
/// A model quantized to `n` bits from an underlying model of
/// dimensionality `U` has `U / n` packed elements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedModel {
    class_hvs: Vec<QuantizedHypervector>,
    /// Mean of the full-precision class hypervectors (the shared
    /// component removed before binarization).
    mean: Vec<f32>,
    bits: u8,
    /// Underlying (unpacked) dimensionality = `packed_dims * bits`.
    underlying_dims: usize,
}

impl QuantizedModel {
    /// Quantizes a trained full-precision model to `bits`-bit packed
    /// elements: each class hypervector is centered, binarized by its own
    /// median, and `bits` consecutive sign bits are packed per element.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for `bits` outside `1..=4`, a
    /// model dimensionality not divisible by `bits`, or an untrained
    /// (all-zero) model.
    pub fn from_model(model: &HdcModel, bits: u8) -> Result<Self, HdcError> {
        if !(1..=4).contains(&bits) {
            return Err(HdcError::InvalidConfig {
                what: "quantized precision must be 1..=4 bits",
            });
        }
        if model
            .class_hvs()
            .iter()
            .all(|h| h.values().iter().all(|&v| v == 0.0))
        {
            return Err(HdcError::InvalidConfig {
                what: "cannot quantize an untrained model",
            });
        }
        let dims = model.dims();
        if !dims.is_multiple_of(bits as usize) {
            return Err(HdcError::InvalidConfig {
                what: "model dimensionality must be divisible by the bit width",
            });
        }
        let classes = model.classes() as f32;
        let mut mean = vec![0.0f32; dims];
        for h in model.class_hvs() {
            for (m, v) in mean.iter_mut().zip(h.values()) {
                *m += v / classes;
            }
        }
        // A single-class model has nothing to discriminate; skip centering
        // so its (sole) hypervector still quantizes.
        let center = model.classes() > 1;
        let class_hvs = model
            .class_hvs()
            .iter()
            .map(|h| {
                let centered: Vec<f32> = if center {
                    h.values().iter().zip(&mean).map(|(v, m)| v - m).collect()
                } else {
                    h.values().to_vec()
                };
                binarize_and_pack(&Hypervector::from_values(centered), bits)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            class_hvs,
            mean: if center { mean } else { vec![0.0; dims] },
            bits,
            underlying_dims: dims,
        })
    }

    /// Bits per element.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Packed dimensionality (TD-AM elements per class hypervector).
    pub fn dims(&self) -> usize {
        self.underlying_dims / self.bits as usize
    }

    /// Underlying (pre-packing) model dimensionality.
    pub fn underlying_dims(&self) -> usize {
        self.underlying_dims
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.class_hvs.len()
    }

    /// The quantized class hypervectors.
    pub fn class_hvs(&self) -> &[QuantizedHypervector] {
        &self.class_hvs
    }

    /// Quantizes a full-precision query (at the *underlying*
    /// dimensionality) into packed `bits`-bit elements, using the same
    /// centering and per-vector median binarization as the class side.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for a wrong-sized query.
    pub fn quantize_query(&self, h: &Hypervector) -> Result<QuantizedHypervector, HdcError> {
        if h.dims() != self.underlying_dims {
            return Err(HdcError::DimensionMismatch {
                got: h.dims(),
                expected: self.underlying_dims,
            });
        }
        // Remove the query's projection onto the shared-component
        // direction, mirroring the class-side centering at the query's own
        // scale.
        let mnorm2: f32 = self.mean.iter().map(|m| m * m).sum();
        let projected: Vec<f32> = if mnorm2 > 0.0 {
            let dot: f32 = h.values().iter().zip(&self.mean).map(|(a, b)| a * b).sum();
            let scale = dot / mnorm2;
            h.values()
                .iter()
                .zip(&self.mean)
                .map(|(v, m)| v - scale * m)
                .collect()
        } else {
            h.values().to_vec()
        };
        binarize_and_pack(&Hypervector::from_values(projected), self.bits)
    }

    /// Classifies a full-precision query by quantizing it and finding the
    /// minimum-Hamming-distance class (the TD-AM's operation, in
    /// software). Returns `(class, hamming_distance)`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyModel`] for a classless model and
    /// dimension errors as above.
    pub fn classify(&self, h: &Hypervector) -> Result<(usize, usize), HdcError> {
        let q = self.quantize_query(h)?;
        self.classify_quantized(&q)
    }

    /// Classifies an already-quantized query by minimum Hamming distance.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyModel`] for a classless model.
    pub fn classify_quantized(&self, q: &QuantizedHypervector) -> Result<(usize, usize), HdcError> {
        let mut best: Option<(usize, usize)> = None;
        for (i, class_hv) in self.class_hvs.iter().enumerate() {
            let d = q.hamming(class_hv)?;
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((i, d));
            }
        }
        best.ok_or(HdcError::EmptyModel)
    }
}

impl QuantizedModel {
    /// Serializes the model to a portable text artifact (the form you
    /// would hand to a TD-AM programmer): a header line
    /// `tdam-qmodel v1 <bits> <underlying_dims> <classes>`, one hex row of
    /// packed levels per class, and the shared-mean vector (needed to
    /// preprocess queries) as one whitespace-separated float row.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "tdam-qmodel v1 {} {} {}\n",
            self.bits,
            self.underlying_dims,
            self.class_hvs.len()
        );
        for hv in &self.class_hvs {
            for &l in hv.levels() {
                out.push(char::from_digit(l as u32, 16).expect("levels < 16"));
            }
            out.push('\n');
        }
        let mean_row: Vec<String> = self.mean.iter().map(|m| format!("{m:e}")).collect();
        out.push_str(&mean_row.join(" "));
        out.push('\n');
        out
    }

    /// Parses a model previously produced by [`QuantizedModel::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for malformed artifacts.
    pub fn from_text(text: &str) -> Result<Self, HdcError> {
        let bad = || HdcError::InvalidConfig {
            what: "malformed quantized-model artifact",
        };
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(bad)?;
        let fields: Vec<&str> = header.split_whitespace().collect();
        if fields.len() != 5 || fields[0] != "tdam-qmodel" || fields[1] != "v1" {
            return Err(bad());
        }
        let bits: u8 = fields[2].parse().map_err(|_| bad())?;
        let underlying_dims: usize = fields[3].parse().map_err(|_| bad())?;
        let classes: usize = fields[4].parse().map_err(|_| bad())?;
        if !(1..=4).contains(&bits) || underlying_dims == 0 || classes == 0 {
            return Err(bad());
        }
        let packed_dims = underlying_dims / bits as usize;
        let mut class_hvs = Vec::with_capacity(classes);
        for _ in 0..classes {
            let row = lines.next().ok_or_else(bad)?;
            if row.len() != packed_dims {
                return Err(bad());
            }
            let levels: Vec<u8> = row
                .chars()
                .map(|c| c.to_digit(16).map(|d| d as u8).ok_or_else(bad))
                .collect::<Result<_, _>>()?;
            class_hvs.push(QuantizedHypervector::new(levels, bits)?);
        }
        let mean_row = lines.next().ok_or_else(bad)?;
        let mean: Vec<f32> = mean_row
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| bad()))
            .collect::<Result<_, _>>()?;
        if mean.len() != underlying_dims {
            return Err(bad());
        }
        Ok(Self {
            class_hvs,
            mean,
            bits,
            underlying_dims,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, DatasetKind};
    use crate::encoder::IdLevelEncoder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_model() -> (HdcModel, IdLevelEncoder, Dataset) {
        let ds = Dataset::generate(DatasetKind::Face, 40, 20, 23);
        let enc = IdLevelEncoder::new(1024, ds.features(), 32, (0.0, 1.0), 6).unwrap();
        let model = HdcModel::train(&enc, &ds.train, ds.classes(), 2).unwrap();
        (model, enc, ds)
    }

    #[test]
    fn equal_area_levels_are_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = Hypervector::random(4096, &mut rng);
        for bits in 1..=4u8 {
            let q = equal_area_quantize(&h, bits).unwrap();
            let levels = 1usize << bits;
            let mut counts = vec![0usize; levels];
            for &l in q.levels() {
                counts[l as usize] += 1;
            }
            for &c in &counts {
                let frac = c as f64 / 4096.0;
                let expect = 1.0 / levels as f64;
                assert!(
                    (frac - expect).abs() < 0.01,
                    "bits={bits}: level fraction {frac} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn rank_quantization_handles_ties() {
        // A vector that is 75% exactly zero still splits into balanced
        // levels (the failure mode that motivated rank-based assignment).
        let mut v = vec![0.0f32; 1000];
        for (i, x) in v.iter_mut().enumerate().take(250) {
            *x = (i as f32) - 125.0;
        }
        let q = equal_area_quantize(&Hypervector::from_values(v), 2).unwrap();
        let mut counts = [0usize; 4];
        for &l in q.levels() {
            counts[l as usize] += 1;
        }
        assert_eq!(counts, [250; 4]);
    }

    #[test]
    fn packing_layout() {
        // 4 values, 2 bits: sign bits (rank >= half) pack little-endian.
        let h = Hypervector::from_values(vec![-2.0, 3.0, 1.0, -5.0]);
        // Ranks: -5 < -2 < 1 < 3 → bits: [0, 1, 1, 0]
        let q = binarize_and_pack(&h, 2).unwrap();
        assert_eq!(q.dims(), 2);
        assert_eq!(q.levels(), &[0b10, 0b01]);
    }

    #[test]
    fn pack_validation() {
        let h = Hypervector::from_values(vec![1.0, 2.0, 3.0]);
        assert!(binarize_and_pack(&h, 2).is_err(), "3 not divisible by 2");
        assert!(binarize_and_pack(&Hypervector::zeros(0), 1).is_err());
        assert!(binarize_and_pack(&h, 0).is_err());
        assert!(binarize_and_pack(&h, 5).is_err());
        assert!(binarize_and_pack(&h, 3).is_ok());
    }

    #[test]
    fn packed_dims_shrink_with_bits() {
        let (model, _, _) = trained_model();
        for bits in [1u8, 2, 4] {
            let q = QuantizedModel::from_model(&model, bits).unwrap();
            assert_eq!(q.dims(), 1024 / bits as usize);
            assert_eq!(q.underlying_dims(), 1024);
            assert_eq!(q.bits(), bits);
        }
    }

    #[test]
    fn indivisible_dims_rejected() {
        let ds = Dataset::generate(DatasetKind::Face, 4, 2, 0);
        let enc = IdLevelEncoder::new(130, ds.features(), 8, (0.0, 1.0), 0).unwrap();
        let model = HdcModel::train(&enc, &ds.train, ds.classes(), 0).unwrap();
        assert!(QuantizedModel::from_model(&model, 4).is_err());
        assert!(QuantizedModel::from_model(&model, 2).is_ok());
    }

    #[test]
    fn invalid_bits_rejected() {
        let (model, _, _) = trained_model();
        assert!(QuantizedModel::from_model(&model, 0).is_err());
        assert!(QuantizedModel::from_model(&model, 5).is_err());
    }

    #[test]
    fn quantized_classification_tracks_full_precision() {
        let (model, enc, ds) = trained_model();
        let q = QuantizedModel::from_model(&model, 4).unwrap();
        let mut agree = 0usize;
        for (x, _) in ds.test.iter().take(30) {
            let h = enc.encode(x).unwrap();
            let (full, _) = model.classify_encoded(&h).unwrap();
            let (quant, _) = q.classify(&h).unwrap();
            if full == quant {
                agree += 1;
            }
        }
        assert!(
            agree >= 24,
            "4-bit quantized predictions should mostly agree: {agree}/30"
        );
    }

    #[test]
    fn accuracy_survives_quantization() {
        let (model, enc, ds) = trained_model();
        let full_acc = model.accuracy(&enc, &ds.test).unwrap();
        for bits in [1u8, 2, 4] {
            let q = QuantizedModel::from_model(&model, bits).unwrap();
            let mut correct = 0usize;
            for (x, label) in &ds.test {
                let h = enc.encode(x).unwrap();
                let (pred, _) = q.classify(&h).unwrap();
                if pred == *label {
                    correct += 1;
                }
            }
            let acc = correct as f64 / ds.test.len() as f64;
            assert!(
                acc > full_acc - 0.15,
                "{bits}-bit accuracy {acc} vs full {full_acc}"
            );
        }
    }

    #[test]
    fn text_artifact_roundtrip() {
        let (model, enc, ds) = trained_model();
        let q = QuantizedModel::from_model(&model, 2).unwrap();
        let text = q.to_text();
        let restored = QuantizedModel::from_text(&text).unwrap();
        assert_eq!(q, restored);
        // And the restored model classifies identically.
        for (x, _) in ds.test.iter().take(5) {
            let h = enc.encode(x).unwrap();
            assert_eq!(q.classify(&h).unwrap(), restored.classify(&h).unwrap());
        }
    }

    #[test]
    fn text_artifact_rejects_garbage() {
        assert!(QuantizedModel::from_text("").is_err());
        assert!(QuantizedModel::from_text("nope v1 2 8 1\n").is_err());
        assert!(QuantizedModel::from_text("tdam-qmodel v1 9 8 1\nzz\n0 0\n").is_err());
        // Wrong row width.
        assert!(QuantizedModel::from_text("tdam-qmodel v1 2 8 1\n012\n0 0 0 0 0 0 0 0\n").is_err());
        // Non-hex level.
        assert!(
            QuantizedModel::from_text("tdam-qmodel v1 2 8 1\n01xz\n0 0 0 0 0 0 0 0\n").is_err()
        );
    }

    #[test]
    fn query_dimension_checked() {
        let (model, _, _) = trained_model();
        let q = QuantizedModel::from_model(&model, 2).unwrap();
        let wrong = Hypervector::zeros(32);
        assert!(matches!(
            q.quantize_query(&wrong),
            Err(HdcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_vector_rejected() {
        let empty = Hypervector::zeros(0);
        assert!(equal_area_quantize(&empty, 2).is_err());
    }
}
