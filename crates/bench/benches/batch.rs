//! Criterion micro-benchmarks of the batched query path: compiled-LUT
//! chain evaluation vs the full behavioral model, and whole-batch serving
//! through `CompiledArray::search_batch` (which now rides the bit-sliced
//! packed kernel; see `packed_vs_lut.rs` for the tier-by-tier comparison).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdam::array::TdamArray;
use tdam::config::ArrayConfig;
use tdam::engine::{BatchQuery, SimilarityEngine};

fn seeded_array(stages: usize, rows: usize, seed: u64) -> (TdamArray, BatchQuery) {
    let cfg = ArrayConfig::paper_default()
        .with_stages(stages)
        .with_rows(rows);
    let levels = cfg.encoding.levels() as u32;
    let mut am = TdamArray::new(cfg).expect("array");
    let mut rng = StdRng::seed_from_u64(seed);
    for row in 0..rows {
        let values: Vec<u8> = (0..stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        am.store(row, &values).expect("store");
    }
    let mut batch = BatchQuery::new(stages);
    for _ in 0..64 {
        let q: Vec<u8> = (0..stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        batch.push(&q).expect("push");
    }
    (am, batch)
}

fn bench_compiled_vs_behavioral_search(c: &mut Criterion) {
    let (am, batch) = seeded_array(128, 64, 0xBE9C);
    let query = batch.get(0).to_vec();
    c.bench_function("array_search_behavioral_64x128", |b| {
        b.iter(|| TdamArray::search(black_box(&am), black_box(&query)).expect("searches"))
    });
    let compiled = am.compile();
    c.bench_function("array_search_compiled_64x128", |b| {
        b.iter(|| compiled.search(black_box(&query)).expect("searches"))
    });
}

fn bench_batch_serving(c: &mut Criterion) {
    let (mut am, batch) = seeded_array(128, 64, 0xBE9C);
    c.bench_function("batch64_sequential_loop_64x128", |b| {
        b.iter(|| {
            batch
                .iter()
                .map(|q| SimilarityEngine::search(&mut am, black_box(q)).expect("searches"))
                .count()
        })
    });
    let compiled = am.compile();
    c.bench_function("batch64_compiled_pool_64x128", |b| {
        b.iter(|| {
            compiled
                .search_batch(black_box(&batch), None)
                .expect("searches")
                .len()
        })
    });
}

criterion_group!(
    benches,
    bench_compiled_vs_behavioral_search,
    bench_batch_serving
);
criterion_main!(benches);
