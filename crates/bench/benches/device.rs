//! Criterion micro-benchmarks of the FeFET device layer: drain-current
//! evaluation, Preisach pulse application, and multi-level programming.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tdam_fefet::mosfet::{ids, MosParams};
use tdam_fefet::programming::{program_state, ProgramConfig};
use tdam_fefet::{DomainStack, Fefet, FefetParams, PreisachParams};

fn bench_mosfet_ids(c: &mut Criterion) {
    let p = MosParams::nmos_40nm();
    c.bench_function("mosfet_ids_eval", |b| {
        b.iter(|| ids(black_box(&p), black_box(0.8), black_box(0.55)))
    });
}

fn bench_preisach_pulse(c: &mut Criterion) {
    c.bench_function("preisach_write_pulse_128_domains", |b| {
        let mut stack = DomainStack::nominal(PreisachParams::default());
        b.iter(|| {
            stack.apply_pulse(black_box(2.4), black_box(500e-9));
            stack.apply_pulse(black_box(-5.0), black_box(500e-9));
        })
    });
}

fn bench_program_state(c: &mut Criterion) {
    let cfg = ProgramConfig::default();
    c.bench_function("program_state_write_verify", |b| {
        b.iter(|| {
            let mut dev = Fefet::new(FefetParams::default());
            program_state(&mut dev, black_box(2), &cfg).expect("programs")
        })
    });
}

criterion_group!(
    benches,
    bench_mosfet_ids,
    bench_preisach_pulse,
    bench_program_state
);
criterion_main!(benches);
