//! Criterion micro-benchmarks of the circuit simulator: DC operating
//! point and transient analysis of representative stage circuits.

use criterion::{criterion_group, criterion_main, Criterion};
use tdam::config::TechParams;
use tdam::stage::{build_stage_netlist, measure_stage, MnDrive};
use tdam_ckt::analysis::{DcOp, TranConfig, Transient};
use tdam_ckt::waveform::Waveform;

fn bench_dc_op(c: &mut Criterion) {
    let tech = TechParams::nominal_40nm();
    let nl = build_stage_netlist(&tech, 6e-15, &MnDrive::ForcedMismatch, Waveform::dc(0.0))
        .expect("netlist");
    c.bench_function("stage_dc_operating_point", |b| {
        b.iter(|| DcOp::new(&nl).solve().expect("dc converges"))
    });
}

fn bench_stage_transient(c: &mut Criterion) {
    let tech = TechParams::nominal_40nm();
    c.bench_function("stage_transient_6ns", |b| {
        b.iter(|| {
            measure_stage(&tech, 6e-15, &MnDrive::ForcedMismatch, 6e-9).expect("stage measures")
        })
    });
}

fn bench_rc_transient(c: &mut Criterion) {
    let mut nl = tdam_ckt::netlist::Netlist::new();
    let inp = nl.node("in");
    let out = nl.node("out");
    nl.vsource(
        "VIN",
        inp,
        tdam_ckt::Netlist::GND,
        Waveform::step(0.0, 1.0, 1e-9),
    );
    nl.resistor("R1", inp, out, 1000.0).expect("resistor");
    nl.capacitor("C1", out, tdam_ckt::Netlist::GND, 1e-12)
        .expect("capacitor");
    c.bench_function("rc_transient_10ns", |b| {
        b.iter(|| {
            Transient::new(&nl, TranConfig::until(10e-9))
                .run()
                .expect("transient")
        })
    });
}

criterion_group!(
    benches,
    bench_dc_op,
    bench_stage_transient,
    bench_rc_transient
);
criterion_main!(benches);
