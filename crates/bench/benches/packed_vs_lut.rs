//! Criterion micro-benchmarks of the bit-sliced packed kernel against the
//! scalar compiled-LUT tier, across encoding widths (1/2/3/4-bit at 128
//! rows) and array sizes (64/128/1024 rows at 2-bit). Each configuration
//! times three single-threaded batch tiers: `search_batch_lut` (scalar
//! per-stage LUT walk), `search_batch` (packed kernel, full analog
//! outcomes), and `decide_batch` (packed kernel, decision-only).
//!
//! A third group sweeps the kernel **dispatch ladder** (scalar /
//! unrolled / wide-SIMD rungs, the latter only under `--features simd`
//! on a capable CPU) on the 1024-row decision path, where the
//! cache-blocked wide rungs matter most.
//!
//! Besides the Criterion registrations, each configuration prints one
//! coarse best-of-N summary line so `cargo bench --bench packed_vs_lut`
//! leaves an archivable trace (see `results/packed_vs_lut.txt`) even when
//! the harness is the offline stand-in.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tdam::array::TdamArray;
use tdam::config::ArrayConfig;
use tdam::encoding::Encoding;
use tdam::engine::{BatchQuery, SimilarityEngine};
use tdam::packed::PackedKernel;

const STAGES: usize = 128;
const BATCH: usize = 32;

fn seeded_array(bits: u8, rows: usize, seed: u64) -> (TdamArray, BatchQuery) {
    let cfg = ArrayConfig::paper_default()
        .with_encoding(Encoding::new(bits).expect("encoding"))
        .with_stages(STAGES)
        .with_rows(rows);
    let levels = cfg.encoding.levels() as u32;
    let mut am = TdamArray::new(cfg).expect("array");
    let mut rng = StdRng::seed_from_u64(seed);
    for row in 0..rows {
        let values: Vec<u8> = (0..STAGES)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        am.store(row, &values).expect("store");
    }
    let mut batch = BatchQuery::new(STAGES);
    for _ in 0..BATCH {
        let q: Vec<u8> = (0..STAGES)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        batch.push(&q).expect("push");
    }
    (am, batch)
}

fn best_of<F: FnMut() -> usize>(f: F) -> f64 {
    best_of_n(3, f)
}

fn best_of_n<F: FnMut() -> usize>(n: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_config(c: &mut Criterion, bits: u8, rows: usize) {
    let (am, batch) = seeded_array(bits, rows, 0xBEC5 ^ ((bits as u64) << 16) ^ rows as u64);
    let compiled = am.compile();
    assert_eq!(compiled.packed_rows(), rows, "all rows must pack");
    let tag = format!("{bits}bit_{rows}rows_{STAGES}stages");

    // Coarse archivable summary, independent of the harness backend.
    let lut = best_of(|| {
        compiled
            .search_batch_lut(&batch, Some(1))
            .expect("lut")
            .len()
    });
    let packed = best_of(|| {
        compiled
            .search_batch(&batch, Some(1))
            .expect("packed")
            .len()
    });
    let decide = best_of(|| {
        compiled
            .decide_batch(&batch, Some(1))
            .expect("decide")
            .len()
    });
    println!(
        "{tag}: per query  lut {:8.2} µs  packed {:7.2} µs ({:5.2}x)  decide {:7.2} µs ({:5.2}x)",
        lut / BATCH as f64 * 1e6,
        packed / BATCH as f64 * 1e6,
        lut / packed,
        decide / BATCH as f64 * 1e6,
        lut / decide,
    );

    c.bench_function(&format!("lut_batch_{tag}"), |b| {
        b.iter(|| {
            compiled
                .search_batch_lut(black_box(&batch), Some(1))
                .expect("lut")
                .len()
        })
    });
    c.bench_function(&format!("packed_batch_{tag}"), |b| {
        b.iter(|| {
            compiled
                .search_batch(black_box(&batch), Some(1))
                .expect("packed")
                .len()
        })
    });
    c.bench_function(&format!("decide_batch_{tag}"), |b| {
        b.iter(|| {
            compiled
                .decide_batch(black_box(&batch), Some(1))
                .expect("decide")
                .len()
        })
    });
}

fn bench_encoding_sweep(c: &mut Criterion) {
    for bits in 1..=4u8 {
        bench_config(c, bits, 128);
    }
}

fn bench_row_sweep(c: &mut Criterion) {
    for rows in [64usize, 1024] {
        bench_config(c, 2, rows);
    }
}

/// Dispatch ladder on the 1024-row decision path: every available rung,
/// each asserted decision-identical to the scalar rung before timing.
fn bench_kernel_ladder(c: &mut Criterion) {
    const ROWS: usize = 1024;
    let (am, batch) = seeded_array(2, ROWS, 0x1ADD);
    let mut compiled = am.compile();
    assert_eq!(compiled.packed_rows(), ROWS, "all rows must pack");
    assert!(compiled.force_kernel(PackedKernel::Scalar));
    let reference = compiled.decide_batch(&batch, Some(1)).expect("scalar");
    // Best of many passes: at 1024 rows a single 32-query pass is short
    // enough that scheduler noise would otherwise dominate the ratios.
    let scalar = best_of_n(20, || {
        compiled
            .decide_batch(&batch, Some(1))
            .expect("scalar")
            .len()
    });
    let mut line = format!(
        "ladder_2bit_{ROWS}rows_{STAGES}stages: per query  scalar {:7.2} µs",
        scalar / BATCH as f64 * 1e6
    );
    for rung in [
        PackedKernel::Scalar,
        PackedKernel::Unrolled,
        PackedKernel::Simd,
    ] {
        if !compiled.force_kernel(rung) {
            continue;
        }
        let name = compiled.kernel().name();
        assert_eq!(
            compiled.decide_batch(&batch, Some(1)).expect("rung"),
            reference,
            "{name} rung diverged from scalar"
        );
        if rung != PackedKernel::Scalar {
            let t = best_of_n(20, || {
                compiled.decide_batch(&batch, Some(1)).expect("rung").len()
            });
            line.push_str(&format!(
                "  {name} {:7.2} µs ({:5.2}x)",
                t / BATCH as f64 * 1e6,
                scalar / t
            ));
        }
        c.bench_function(
            &format!("decide_{name}_2bit_{ROWS}rows_{STAGES}stages"),
            |b| {
                b.iter(|| {
                    compiled
                        .decide_batch(black_box(&batch), Some(1))
                        .expect("rung")
                        .len()
                })
            },
        );
    }
    println!("{line}");
}

criterion_group!(
    benches,
    bench_encoding_sweep,
    bench_row_sweep,
    bench_kernel_ladder
);
criterion_main!(benches);
