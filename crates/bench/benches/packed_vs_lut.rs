//! Criterion micro-benchmarks of the bit-sliced packed kernel against the
//! scalar compiled-LUT tier, across encoding widths (1/2/3/4-bit at 128
//! rows) and array sizes (64/128/1024 rows at 2-bit). Each configuration
//! times three single-threaded batch tiers: `search_batch_lut` (scalar
//! per-stage LUT walk), `search_batch` (packed kernel, full analog
//! outcomes), and `decide_batch` (packed kernel, decision-only).
//!
//! Besides the Criterion registrations, each configuration prints one
//! coarse best-of-N summary line so `cargo bench --bench packed_vs_lut`
//! leaves an archivable trace (see `results/packed_vs_lut.txt`) even when
//! the harness is the offline stand-in.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tdam::array::TdamArray;
use tdam::config::ArrayConfig;
use tdam::encoding::Encoding;
use tdam::engine::{BatchQuery, SimilarityEngine};

const STAGES: usize = 128;
const BATCH: usize = 32;

fn seeded_array(bits: u8, rows: usize, seed: u64) -> (TdamArray, BatchQuery) {
    let cfg = ArrayConfig::paper_default()
        .with_encoding(Encoding::new(bits).expect("encoding"))
        .with_stages(STAGES)
        .with_rows(rows);
    let levels = cfg.encoding.levels() as u32;
    let mut am = TdamArray::new(cfg).expect("array");
    let mut rng = StdRng::seed_from_u64(seed);
    for row in 0..rows {
        let values: Vec<u8> = (0..STAGES)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        am.store(row, &values).expect("store");
    }
    let mut batch = BatchQuery::new(STAGES);
    for _ in 0..BATCH {
        let q: Vec<u8> = (0..STAGES)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        batch.push(&q).expect("push");
    }
    (am, batch)
}

fn best_of<F: FnMut() -> usize>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_config(c: &mut Criterion, bits: u8, rows: usize) {
    let (am, batch) = seeded_array(bits, rows, 0xBEC5 ^ ((bits as u64) << 16) ^ rows as u64);
    let compiled = am.compile();
    assert_eq!(compiled.packed_rows(), rows, "all rows must pack");
    let tag = format!("{bits}bit_{rows}rows_{STAGES}stages");

    // Coarse archivable summary, independent of the harness backend.
    let lut = best_of(|| {
        compiled
            .search_batch_lut(&batch, Some(1))
            .expect("lut")
            .len()
    });
    let packed = best_of(|| {
        compiled
            .search_batch(&batch, Some(1))
            .expect("packed")
            .len()
    });
    let decide = best_of(|| {
        compiled
            .decide_batch(&batch, Some(1))
            .expect("decide")
            .len()
    });
    println!(
        "{tag}: per query  lut {:8.2} µs  packed {:7.2} µs ({:5.2}x)  decide {:7.2} µs ({:5.2}x)",
        lut / BATCH as f64 * 1e6,
        packed / BATCH as f64 * 1e6,
        lut / packed,
        decide / BATCH as f64 * 1e6,
        lut / decide,
    );

    c.bench_function(&format!("lut_batch_{tag}"), |b| {
        b.iter(|| {
            compiled
                .search_batch_lut(black_box(&batch), Some(1))
                .expect("lut")
                .len()
        })
    });
    c.bench_function(&format!("packed_batch_{tag}"), |b| {
        b.iter(|| {
            compiled
                .search_batch(black_box(&batch), Some(1))
                .expect("packed")
                .len()
        })
    });
    c.bench_function(&format!("decide_batch_{tag}"), |b| {
        b.iter(|| {
            compiled
                .decide_batch(black_box(&batch), Some(1))
                .expect("decide")
                .len()
        })
    });
}

fn bench_encoding_sweep(c: &mut Criterion) {
    for bits in 1..=4u8 {
        bench_config(c, bits, 128);
    }
}

fn bench_row_sweep(c: &mut Criterion) {
    for rows in [64usize, 1024] {
        bench_config(c, 2, rows);
    }
}

criterion_group!(benches, bench_encoding_sweep, bench_row_sweep);
criterion_main!(benches);
