//! Criterion micro-benchmarks of the HDC layer: encoding, quantization,
//! Hamming search, and hardware-mapped inference.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tdam_hdc::datasets::{Dataset, DatasetKind};
use tdam_hdc::encoder::IdLevelEncoder;
use tdam_hdc::mapping::TdamHdcInference;
use tdam_hdc::quantize::{equal_area_quantize, QuantizedModel};
use tdam_hdc::train::HdcModel;

fn setup() -> (Dataset, IdLevelEncoder, HdcModel) {
    let ds = Dataset::generate(DatasetKind::Face, 20, 5, 1);
    let enc = IdLevelEncoder::new(2048, ds.features(), 32, (0.0, 1.0), 7).expect("encoder");
    let model = HdcModel::train(&enc, &ds.train, ds.classes(), 1).expect("trains");
    (ds, enc, model)
}

fn bench_encode(c: &mut Criterion) {
    let (ds, enc, _) = setup();
    let sample = &ds.test[0].0;
    c.bench_function("encode_2048_dims_608_features", |b| {
        b.iter(|| enc.encode(black_box(sample)).expect("encodes"))
    });
}

fn bench_quantize(c: &mut Criterion) {
    let (ds, enc, _) = setup();
    let h = enc.encode(&ds.test[0].0).expect("encodes");
    c.bench_function("equal_area_quantize_2048", |b| {
        b.iter(|| equal_area_quantize(black_box(&h), 2).expect("quantizes"))
    });
}

fn bench_software_hamming_classify(c: &mut Criterion) {
    let (ds, enc, model) = setup();
    let quant = QuantizedModel::from_model(&model, 2).expect("quantizes");
    let h = enc.encode(&ds.test[0].0).expect("encodes");
    let q = quant.quantize_query(&h).expect("query");
    c.bench_function("software_min_hamming_classify", |b| {
        b.iter(|| quant.classify_quantized(black_box(&q)).expect("classifies"))
    });
}

fn bench_hardware_inference(c: &mut Criterion) {
    let (ds, enc, model) = setup();
    let quant = QuantizedModel::from_model(&model, 2).expect("quantizes");
    let hw = TdamHdcInference::new(&quant, 128, 0.6).expect("deploys");
    let h = enc.encode(&ds.test[0].0).expect("encodes");
    let q = quant.quantize_query(&h).expect("query");
    c.bench_function("tdam_mapped_inference_1024el", |b| {
        b.iter(|| hw.classify(black_box(&q)).expect("classifies"))
    });
}

fn bench_sequence_encode(c: &mut Criterion) {
    use tdam_hdc::sequence::{Base, SequenceEncoder};
    let enc = SequenceEncoder::new(2048, 6, 7).expect("encoder");
    let seq: Vec<Base> = (0..200)
        .map(|i| match i % 4 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        })
        .collect();
    c.bench_function("sequence_encode_200bp_k6", |b| {
        b.iter(|| enc.encode_sequence(black_box(&seq)).expect("encodes"))
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_quantize,
    bench_software_hamming_classify,
    bench_hardware_inference,
    bench_sequence_encode
);
criterion_main!(benches);
