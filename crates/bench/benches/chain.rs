//! Criterion micro-benchmarks of the TD-AM core: behavioral chain
//! evaluation, array search throughput, and Monte Carlo run cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tdam::array::TdamArray;
use tdam::chain::DelayChain;
use tdam::config::ArrayConfig;
use tdam::monte_carlo::{run, McConfig};
use tdam_fefet::VthVariation;

fn bench_chain_evaluate(c: &mut Criterion) {
    for stages in [32usize, 128] {
        let cfg = ArrayConfig::paper_default().with_stages(stages);
        let chain = DelayChain::new(&vec![1u8; stages], &cfg).expect("chain");
        let query = vec![2u8; stages];
        c.bench_function(&format!("chain_evaluate_{stages}_stages"), |b| {
            b.iter(|| chain.evaluate(black_box(&query)).expect("evaluates"))
        });
    }
}

fn bench_array_search(c: &mut Criterion) {
    let cfg = ArrayConfig::paper_default().with_stages(64).with_rows(26);
    let am = TdamArray::new(cfg).expect("array");
    let query = vec![1u8; 64];
    c.bench_function("array_search_26x64", |b| {
        b.iter(|| TdamArray::search(black_box(&am), black_box(&query)).expect("searches"))
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    c.bench_function("monte_carlo_64_stages_32_runs", |b| {
        b.iter(|| {
            run(&McConfig::worst_case(
                ArrayConfig::paper_default().with_stages(64),
                VthVariation::uniform(40e-3),
                32,
                7,
            ))
            .expect("monte carlo")
        })
    });
}

criterion_group!(
    benches,
    bench_chain_evaluate,
    bench_array_search,
    bench_monte_carlo
);
criterion_main!(benches);
