//! Fig. 6: Monte Carlo delay distributions of the worst-case computation
//! (all stages mismatched by one level) under FeFET V_TH variation.
//!
//! Reproduces both panels — 64- and 128-stage chains — for uniform σ
//! levels of 20/40/60 mV plus the experimentally fitted per-state model
//! (σ = 7.1/35/45/40 mV), reporting the delay spread, the fraction of
//! runs inside the sensing margin, and an ASCII histogram.
//!
//! Usage: `cargo run --release -p tdam-bench --bin fig6_monte_carlo [--quick]`

use tdam::config::ArrayConfig;
use tdam::monte_carlo::{run, McConfig};
use tdam_bench::{eng, header, quick_mode};
use tdam_fefet::VthVariation;

fn main() {
    let runs = if quick_mode() { 200 } else { 1000 };
    let variations: Vec<(String, VthVariation)> = vec![
        ("sigma = 20 mV".to_owned(), VthVariation::uniform(20e-3)),
        ("sigma = 40 mV".to_owned(), VthVariation::uniform(40e-3)),
        ("sigma = 60 mV".to_owned(), VthVariation::uniform(60e-3)),
        (
            "experimental (7.1/35/45/40 mV)".to_owned(),
            VthVariation::experimental(),
        ),
    ];

    for stages in [64usize, 128] {
        header(&format!(
            "Fig. 6: {stages}-stage chain, worst case (all mismatched), {runs} runs"
        ));
        let array = ArrayConfig::paper_default().with_stages(stages);
        println!(
            "{:<32} {:>13} {:>12} {:>12} {:>14} {:>12}",
            "variation", "mean (s)", "std (s)", "margin (s)", "within margin", "decode ok"
        );
        for (label, variation) in &variations {
            let cfg = McConfig::worst_case(array, variation.clone(), runs, 0xF166);
            let result = run(&cfg).expect("Monte Carlo");
            println!(
                "{label:<32} {:>13.4e} {:>12.3e} {:>12.3e} {:>13.1}% {:>11.1}%",
                result.summary.mean,
                result.summary.std_dev,
                result.sensing_margin,
                result.within_margin * 100.0,
                result.decode_accuracy * 100.0
            );
        }

        // Histogram of the highest uniform σ (the widest panel curve).
        let cfg = McConfig::worst_case(array, VthVariation::uniform(60e-3), runs, 0xF166);
        let result = run(&cfg).expect("Monte Carlo");
        println!(
            "\nDelay histogram at sigma = 60 mV (nominal {}):",
            eng(result.nominal_delay, "s")
        );
        println!("{}", result.histogram(15).render_ascii(40));
    }
}
