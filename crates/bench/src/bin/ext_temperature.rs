//! Extension: TD-AM behaviour across the industrial temperature range.
//!
//! The paper evaluates at nominal temperature only. Here the stage timing
//! and the decode reliability are swept from −40 °C to 125 °C: heat slows
//! the drive (mobility) while raising subthreshold leakage, which eats
//! into the match cells' sensing margin.
//!
//! Usage: `cargo run --release -p tdam-bench --bin ext_temperature [--quick] [--save]`

use tdam::cell::Cell;
use tdam::config::{ArrayConfig, TechParams};
use tdam::encoding::Encoding;
use tdam::monte_carlo::{run, McConfig};
use tdam::timing::StageTiming;
use tdam_bench::{quick_mode, rline, Report};
use tdam_fefet::VthVariation;

fn main() {
    let runs = if quick_mode() { 150 } else { 600 };
    let mut rpt = Report::new("ext_temperature");
    rpt.header("Stage timing and match leakage vs temperature (6 fF, 1.1 V)");
    rline!(
        rpt,
        "{:>8} {:>12} {:>12} {:>18}",
        "temp",
        "d_INV (ps)",
        "d_C (ps)",
        "match leak (nA)"
    );
    let enc = Encoding::paper_default();
    for (label, kelvin) in [
        ("-40C", 233.0),
        ("25C", 298.0),
        ("85C", 358.0),
        ("125C", 398.0),
    ] {
        let tech = TechParams::nominal_40nm().at_temperature(kelvin);
        let t = StageTiming::analytic(&tech, 6e-15).expect("timing");
        let cell = Cell::new(1, enc).expect("cell");
        let leak = cell
            .discharge_current(1, tech.vdd, &tech.nmos)
            .expect("leak");
        rline!(
            rpt,
            "{label:>8} {:>12.2} {:>12.2} {:>18.3}",
            t.d_inv * 1e12,
            t.d_c * 1e12,
            leak * 1e9
        );
    }

    rpt.header("Worst-case decode across temperature (64 stages, experimental sigma)");
    rline!(
        rpt,
        "{:>8} {:>14} {:>12}",
        "temp",
        "within margin",
        "decode ok"
    );
    for (label, kelvin) in [("-40C", 233.0), ("25C", 298.0), ("125C", 398.0)] {
        let array = ArrayConfig {
            tech: TechParams::nominal_40nm().at_temperature(kelvin),
            ..ArrayConfig::paper_default().with_stages(64)
        };
        let result = run(&McConfig::worst_case(
            array,
            VthVariation::experimental(),
            runs,
            0x7E39,
        ))
        .expect("Monte Carlo");
        rline!(
            rpt,
            "{label:>8} {:>13.1}% {:>11.1}%",
            result.within_margin * 100.0,
            result.decode_accuracy * 100.0
        );
    }
    rline!(
        rpt,
        "\nHot silicon is slower but the time-domain decode is ratiometric\n\
         (d_C and d_INV drift together), so decode accuracy holds across the\n\
         industrial range as long as the TDC reference tracks temperature."
    );
    rpt.finish();
}
