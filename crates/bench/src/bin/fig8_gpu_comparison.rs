//! Fig. 8: TD-AM vs GPU — speedup (b) and energy efficiency (a) for HDC
//! inference at 128 stages, 0.6 V, across dimensionalities and datasets.
//!
//! The GPU side is the analytic RTX 4070-class cost model (see
//! `tdam_baselines::gpu`); the TD-AM side maps each quantized model onto
//! 128-stage tiles and measures per-query latency/energy through the
//! calibrated hardware model. 2-bit deployments are used for the main
//! sweep (matching the hardware demonstration) and the paper's 3/4-bit @
//! 1024-dims highlight is reported separately.
//!
//! Usage: `cargo run --release -p tdam-bench --bin fig8_gpu_comparison [--quick]`

use tdam_baselines::gpu::{GpuModel, GpuWorkload};
use tdam_bench::{header, quick_mode};
use tdam_hdc::datasets::{Dataset, DatasetKind};
use tdam_hdc::encoder::IdLevelEncoder;
use tdam_hdc::mapping::TdamHdcInference;
use tdam_hdc::quantize::QuantizedModel;
use tdam_hdc::train::HdcModel;

struct Point {
    dims: usize,
    speedup: f64,
    efficiency: f64,
}

fn evaluate_config(
    ds: &Dataset,
    underlying_dims: usize,
    bits: u8,
    queries: usize,
    gpu: &GpuModel,
) -> Point {
    let enc = IdLevelEncoder::new(underlying_dims, ds.features(), 32, (0.0, 1.0), 0xF168)
        .expect("encoder");
    let model = HdcModel::train(&enc, &ds.train, ds.classes(), 2).expect("training");
    let quant = QuantizedModel::from_model(&model, bits).expect("quantization");
    // Front-end energy: the on-chip HDC encoder's bind-accumulate ops
    // (~2 fJ each at 0.6 V, after the FeFET in-memory encoder literature).
    let hw = TdamHdcInference::new(&quant, 128, 0.6)
        .expect("deployment")
        .with_frontend_cost(ds.features(), underlying_dims, 2e-15);

    let mut latency = 0.0;
    let mut energy = 0.0;
    for (x, _) in ds.test.iter().take(queries) {
        let h = enc.encode(x).expect("encode");
        let q = quant.quantize_query(&h).expect("quantize");
        let r = hw.classify(&q).expect("hardware inference");
        latency += r.latency;
        energy += r.energy.total();
    }
    let n = queries.min(ds.test.len()) as f64;
    let tdam_latency = latency / n;
    let tdam_energy = energy / n;

    let wl = GpuWorkload {
        dims: underlying_dims,
        classes: ds.classes(),
        bytes_per_element: 4.0,
    };
    Point {
        dims: hw.chunks() * 128,
        speedup: gpu.query_latency(&wl) / tdam_latency,
        efficiency: gpu.query_energy(&wl) / tdam_energy,
    }
}

fn main() {
    let quick = quick_mode();
    let dims_grid: Vec<usize> = if quick {
        vec![512, 2048]
    } else {
        vec![512, 1024, 2048, 5120, 10240]
    };
    let (train_per_class, queries) = if quick { (20, 10) } else { (40, 30) };
    let gpu = GpuModel::rtx_4070();

    println!("Fig. 8 reproduction: TD-AM (128 stages @ 0.6 V, 2-bit) vs RTX 4070-class GPU model");

    let mut all_small_speedups = Vec::new();
    let mut all_large_speedups = Vec::new();
    let mut all_large_effs = Vec::new();
    for kind in DatasetKind::ALL {
        let ds = Dataset::generate(kind, train_per_class, 15, 0xD5EED);
        header(kind.name());
        println!("{:>10} {:>12} {:>16}", "dims", "speedup", "energy-eff gain");
        for &d in &dims_grid {
            let p = evaluate_config(&ds, d, 2, queries, &gpu);
            println!("{:>10} {:>11.1}x {:>15.0}x", d, p.speedup, p.efficiency);
            if d == *dims_grid.first().expect("non-empty grid") {
                all_small_speedups.push(p.speedup);
            }
            if d == *dims_grid.last().expect("non-empty grid") {
                all_large_speedups.push(p.speedup);
                all_large_effs.push(p.efficiency);
            }
        }
    }

    header("Aggregates (paper: 194–287x small-dim speedup, 11.65x average at 10240; 5061–5790x small-dim efficiency, 303x at 10240)");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "small-dim speedups: {:?}",
        all_small_speedups
            .iter()
            .map(|s| format!("{s:.0}x"))
            .collect::<Vec<_>>()
    );
    println!(
        "largest-dim average speedup: {:.2}x",
        avg(&all_large_speedups)
    );
    println!(
        "largest-dim average energy efficiency: {:.0}x",
        avg(&all_large_effs)
    );

    header(
        "Paper highlight: 3/4-bit precision at 1024 dims (avg speedup 124.8x, efficiency 2837x)",
    );
    let mut speedups = Vec::new();
    let mut effs = Vec::new();
    for kind in DatasetKind::ALL {
        let ds = Dataset::generate(kind, train_per_class, 15, 0xD5EED);
        {
            let bits = 4u8;
            // 1024 hardware dims at n bits = underlying n*1024.
            let p = evaluate_config(&ds, 1024 * bits as usize, bits, queries, &gpu);
            println!(
                "{:>8} {}-bit @ {} hw dims: speedup {:.1}x, efficiency {:.0}x",
                kind.name(),
                bits,
                p.dims,
                p.speedup,
                p.efficiency
            );
            speedups.push(p.speedup);
            effs.push(p.efficiency);
        }
    }
    println!(
        "average: speedup {:.1}x, efficiency {:.0}x",
        avg(&speedups),
        avg(&effs)
    );
}
