//! Extension: durable-state crash recovery campaign.
//!
//! Exercises the `tdam::store` persistence subsystem two ways. First, a
//! clean warm-start demonstration: a deployment is programmed, served,
//! checkpointed, and recovered, and the recovered engine must answer the
//! same query batch bit-identically to the pre-restart engine. Second,
//! the seeded crash-injection campaign (`run_crash_chaos`): simulated
//! kills at every byte boundary of the checkpoint commit sequence and of
//! the write-ahead journal, plus seeded bit flips and truncations of
//! both file kinds, with every recovery compared against an
//! independently replayed expected state. The acceptance bar: over 1000
//! scenarios in the full run, zero silent corruptions — every damaged
//! file is detected (CRC, magic, length, or version) and recovery falls
//! back to the last good generation.
//!
//! Usage: `cargo run --release -p tdam-bench --bin ext_recovery [--quick] [--save]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdam::config::ArrayConfig;
use tdam::engine::BatchQuery;
use tdam::resilience::ResilienceConfig;
use tdam::runtime::{ResilientEngine, RetryConfig, RuntimeConfig};
use tdam::store::{run_crash_chaos, CheckpointStore, CrashChaosConfig, DurableEngine};
use tdam_bench::{quick_mode, rline, Report};

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tdam-ext-recovery-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch");
    }
    dir
}

fn warm_start_demo(rpt: &mut Report) {
    let stages = 16;
    let data_rows = 8;
    let cfg = ArrayConfig::paper_default()
        .with_stages(stages)
        .with_rows(data_rows);
    let levels = cfg.encoding.levels() as usize;
    let rcfg = RuntimeConfig {
        retry: RetryConfig {
            max_retries: 2,
            backoff: std::time::Duration::ZERO,
            backoff_cap: std::time::Duration::ZERO,
        },
        ..RuntimeConfig::default()
    };
    let resilience = ResilienceConfig {
        spare_rows: 2,
        reference_rows: 2,
        ..Default::default()
    };

    let mut engine = ResilientEngine::new(cfg, resilience, rcfg).expect("engine");
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    let mut stored = Vec::new();
    for row in 0..data_rows {
        let values: Vec<u8> = (0..stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        engine.store(row, &values).expect("store");
        stored.push(values);
    }
    let mut batch = BatchQuery::new(stages);
    for values in &stored {
        let mut q = values.clone();
        q[0] = (q[0] + 1) % levels as u8; // near-match: 1 mismatch per row
        batch.push(&q).expect("push");
    }

    let dir = scratch("warm-start");
    let store = CheckpointStore::open(&dir).expect("open store");
    let mut durable = DurableEngine::new(store, engine).expect("durable");
    let before = durable.serve(&batch).expect("serve before checkpoint");
    let generation = durable.checkpoint().expect("checkpoint");

    let (mut recovered, report) = DurableEngine::recover(&dir, rcfg).expect("recover");
    let after = recovered.serve(&batch).expect("serve after recovery");

    rline!(
        rpt,
        "checkpointed generation {generation} ({} data rows, {stages} stages); \
         recovery replayed {} journal ops, corruption detected: {}",
        data_rows,
        report.ops_replayed,
        report.corruption_detected
    );
    let identical = before.slots == after.slots;
    rline!(
        rpt,
        "pre-restart vs post-restore search_batch bit-identical: {}",
        if identical { "yes" } else { "NO" }
    );
    rline!(
        rpt,
        "post-restore backend after revalidation: {:?}",
        recovered.engine().backend()
    );
    assert!(
        identical,
        "restored engine must answer the same batch bit-identically"
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn main() {
    let mut rpt = Report::new("ext_recovery");

    rpt.header("warm-start: checkpoint -> restore -> identical serving");
    warm_start_demo(&mut rpt);

    let cfg = if quick_mode() {
        CrashChaosConfig::quick()
    } else {
        CrashChaosConfig::paper_default()
    };
    rpt.header("seeded crash-injection campaign over the checkpoint/journal store");
    rline!(
        rpt,
        "deployment: {} stages x {} data rows (+{} spares, +{} references); \
         commit-kill stride {}, journal-kill stride {}",
        cfg.stages,
        cfg.data_rows,
        cfg.resilience.spare_rows,
        cfg.resilience.reference_rows,
        cfg.commit_stride,
        cfg.journal_stride
    );

    let dir = scratch("chaos");
    let report = run_crash_chaos(&cfg, &dir).expect("crash campaign");
    std::fs::remove_dir_all(&dir).ok();

    rline!(rpt, "{:>28} {:>8}", "scenario family", "count");
    for (label, count) in [
        ("kill mid-commit", report.commit_kills),
        ("kill mid-journal-append", report.journal_kills),
        ("checkpoint bit flips", report.checkpoint_flips),
        ("checkpoint truncations", report.checkpoint_truncations),
        ("journal bit flips", report.journal_flips),
        ("clean controls", report.clean_controls),
    ] {
        rline!(rpt, "{label:>28} {count:>8}");
    }
    rline!(rpt);
    rline!(rpt, "total scenarios:        {:>8}", report.scenarios);
    rline!(rpt, "damage detected:        {:>8}", report.detected);
    rline!(rpt, "generation fallbacks:   {:>8}", report.fallbacks);
    rline!(rpt, "torn journal tails:     {:>8}", report.torn_journals);
    rline!(
        rpt,
        "silent corruptions:     {:>8}",
        report.silent_corruptions
    );
    rline!(
        rpt,
        "failed recoveries:      {:>8}",
        report.failed_recoveries
    );
    rline!(rpt, "false alarms:           {:>8}", report.false_alarms);

    rline!(
        rpt,
        "\nEvery recovery was compared bit-for-bit against an independently\n\
         replayed expectation for the generation and journal prefix it\n\
         claimed to recover; a mismatch — detected or not — counts as a\n\
         silent corruption above."
    );

    if !quick_mode() {
        assert!(
            report.scenarios >= 1000,
            "full campaign must cover >= 1000 scenarios, got {}",
            report.scenarios
        );
    }
    assert_eq!(
        report.silent_corruptions, 0,
        "no scenario may recover divergent state"
    );
    assert_eq!(
        report.failed_recoveries, 0,
        "a good generation always existed; recovery must find it"
    );
    assert_eq!(
        report.false_alarms, 0,
        "clean recoveries must not report corruption"
    );
    rpt.finish();
}
