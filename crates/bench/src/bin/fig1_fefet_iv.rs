//! Fig. 1(c)(d): FeFET I_D–V_G characteristics.
//!
//! - Fig. 1(d): the compact-model curves for the four programmed states
//!   (each device programmed with erase + write-verify, then swept).
//! - Fig. 1(c): a 60-device device-to-device ensemble; per-state
//!   constant-current threshold voltages are extracted and their spread is
//!   compared against the paper's fitted σ = 7.1/35/45/40 mV.
//!
//! Usage: `cargo run --release -p tdam-bench --bin fig1_fefet_iv [--quick]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdam_bench::{header, quick_mode};
use tdam_fefet::iv::{device_to_device_curves, sweep_fefet};
use tdam_fefet::programming::{program_state, ProgramConfig};
use tdam_fefet::{Fefet, FefetParams, PAPER_VTH, PAPER_VTH_SIGMA};
use tdam_num::Summary;

fn main() {
    let devices = if quick_mode() { 20 } else { 60 };

    header("Fig. 1(d): compact-model I_D–V_G for the four programmed states");
    let cfg = ProgramConfig::default();
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "V_G (V)", "state 0 (A)", "state 1 (A)", "state 2 (A)", "state 3 (A)"
    );
    let mut curves = Vec::new();
    for state in 0..4u8 {
        let mut dev = Fefet::new(FefetParams {
            preisach: tdam_fefet::PreisachParams {
                domains: 512,
                ..Default::default()
            },
            ..FefetParams::default()
        });
        program_state(&mut dev, state, &cfg).expect("nominal device programs");
        curves.push(sweep_fefet(&dev, 0.05, (-0.2, 1.8), 21));
    }
    for i in 0..curves[0].v_g.len() {
        print!("{:>8.2}", curves[0].v_g[i]);
        for c in &curves {
            print!(" {:>14.4e}", c.i_d[i]);
        }
        println!();
    }

    header(&format!(
        "Fig. 1(c): {devices}-device ensemble, extracted V_TH statistics"
    ));
    let mut rng = StdRng::seed_from_u64(0x1C);
    let ensemble =
        device_to_device_curves(devices, 0.05, 300, &mut rng).expect("ensemble generation");
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>14}",
        "state", "mean (V)", "sigma (mV)", "paper mean (V)", "paper sigma (mV)"
    );
    for state in 0..4u8 {
        let vths: Vec<f64> = ensemble
            .iter()
            .filter(|c| c.state == Some(state))
            .filter_map(|c| c.extract_vth(1e-7))
            .collect();
        let s = Summary::from_slice(&vths);
        println!(
            "{:>6} {:>12.4} {:>12.1} {:>14.1} {:>14.1}",
            state,
            s.mean,
            s.std_dev * 1e3,
            PAPER_VTH[state as usize],
            PAPER_VTH_SIGMA[state as usize] * 1e3
        );
    }
    println!("\n(ON/OFF ratio check at V_G = 0.8 V, V_DS = 1.1 V)");
    let mut lo = Fefet::new(FefetParams::default());
    lo.stack_mut().saturate();
    let hi = Fefet::new(FefetParams::default());
    let ratio = lo.ids(0.8, 1.1).id / hi.ids(0.8, 1.1).id;
    println!("on/off = {ratio:.3e}");
}
