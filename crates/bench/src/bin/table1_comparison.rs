//! Table I: energy-per-bit comparison of the TD-AM against the five prior
//! designs, on an identical near-match associative workload.
//!
//! Also prints the paper's reported figures next to the measured ones so
//! the per-design calibration and ratio shape can be judged directly.
//!
//! Usage: `cargo run --release -p tdam-bench --bin table1_comparison [--quick]`

use tdam_baselines::comparison::{comparison_table, extended_comparison_table, render_table};
use tdam_bench::{header, quick_mode};

/// The paper's Table I `(design substring, energy fJ/bit, ratio)` rows.
const PAPER: [(&str, f64, f64); 6] = [
    ("16T", 0.59, 3.71),
    ("Nat. Electron.", 0.40, 2.52),
    ("TIMAQ", 2.20, 13.84),
    ("Fe-FinFET", 0.039, 0.245),
    ("[24]", 0.234, 1.47),
    ("This work", 0.159, 1.0),
];

fn main() {
    let queries = if quick_mode() { 20 } else { 200 };
    let rows = comparison_table(queries, 0x7AB1E).expect("comparison workload");

    header("Table I (measured on the standard near-match workload)");
    println!("{}", render_table(&rows));

    header("Measured vs paper-reported");
    println!(
        "{:<34} {:>14} {:>14} {:>12} {:>12}",
        "Design", "ours (fJ/bit)", "paper (fJ/bit)", "our ratio", "paper ratio"
    );
    for (needle, paper_epb, paper_ratio) in PAPER {
        let row = rows
            .iter()
            .find(|r| r.design.contains(needle))
            .unwrap_or_else(|| panic!("design {needle} missing from table"));
        println!(
            "{:<34} {:>14.3} {:>14.3} {:>11.2}x {:>11.2}x",
            row.design,
            row.energy_per_bit * 1e15,
            paper_epb,
            row.ratio,
            paper_ratio
        );
    }
    println!(
        "\nShape check: CMOS TD-IMC worst, Fe-FinFET (14 nm) lowest absolute, \
         TD-AM beats both CAMs and the binary 3T-2FeFET fabric per bit."
    );

    header("Extended comparison (adds the Sec. II-B crossbar CAM and cell area)");
    let extended = extended_comparison_table(queries, 0x7AB1E).expect("extended table");
    println!(
        "{:<34} {:>14} {:>8} {:>16}",
        "Design", "E/bit (fJ)", "Ratio", "area (µm²/bit)"
    );
    for (row, area) in &extended {
        let area_text = if area.is_finite() {
            format!("{area:.2}")
        } else {
            "-".to_owned()
        };
        println!(
            "{:<34} {:>14.3} {:>7.2}x {:>16}",
            row.design,
            row.energy_per_bit * 1e15,
            row.ratio,
            area_text
        );
    }
}
