//! Extension: feasibility of 3- and 4-bit cells (the paper's closing
//! "intriguing potential" remark, made quantitative).
//!
//! For each precision the ladder margin, the Gaussian per-cell error
//! probability, and the longest reliably-decodable chain are computed at
//! several variation levels; a Monte Carlo spot check validates the
//! closed-form numbers at 2 bits.
//!
//! Usage: `cargo run --release -p tdam-bench --bin ext_precision_margins [--quick] [--save]`

use tdam::config::ArrayConfig;
use tdam::encoding::Encoding;
use tdam::margins::{analyze, precision_sweep};
use tdam::monte_carlo::{run, McConfig};
use tdam_bench::{quick_mode, rline, Report};
use tdam_fefet::VthVariation;

fn main() {
    let runs = if quick_mode() { 200 } else { 800 };
    let mut rpt = Report::new("ext_precision_margins");

    for sigma in [7e-3, 20e-3, 45e-3, 60e-3] {
        rpt.header(&format!("sigma(V_TH) = {:.0} mV", sigma * 1e3));
        rline!(
            rpt,
            "{:>6} {:>12} {:>16} {:>20}",
            "bits",
            "margin (mV)",
            "P(cell error)",
            "max reliable chain"
        );
        for report in precision_sweep(sigma).expect("sweep") {
            let chain = if report.max_reliable_chain == usize::MAX {
                "unbounded".to_owned()
            } else {
                report.max_reliable_chain.to_string()
            };
            rline!(
                rpt,
                "{:>6} {:>12.1} {:>16.3e} {:>20}",
                report.bits,
                report.margin * 1e3,
                report.p_cell_error,
                chain
            );
        }
    }

    rpt.header("Monte Carlo spot check: 2-bit vs 3-bit decode at sigma = 20 mV, 64 stages");
    for bits in [2u8, 3] {
        let enc = Encoding::new(bits).expect("encoding");
        let array = ArrayConfig::paper_default()
            .with_stages(64)
            .with_encoding(enc);
        let variation = VthVariation::new(
            (0..enc.levels())
                .map(|i| 0.2 + 1.2 * i as f64 / (enc.levels() - 1) as f64)
                .collect(),
            vec![20e-3; enc.levels() as usize],
        )
        .expect("variation model");
        let result =
            run(&McConfig::worst_case(array, variation, runs, 0xB175)).expect("Monte Carlo");
        let predicted = analyze(bits, 20e-3).expect("analysis");
        rline!(
            rpt,
            "{bits}-bit: decode accuracy {:.1}% (margin model predicts P_cell = {:.2e}, \
             max chain {})",
            result.decode_accuracy * 100.0,
            predicted.p_cell_error,
            if predicted.max_reliable_chain == usize::MAX {
                "unbounded".to_owned()
            } else {
                predicted.max_reliable_chain.to_string()
            }
        );
    }
    rline!(
        rpt,
        "\nConclusion: 2-bit operation is comfortable at the measured variation;\n\
         3-bit needs ~20 mV-class uniformity; 4-bit demands the best-state\n\
         (7 mV) uniformity across all states — matching the paper's outlook."
    );
    rpt.finish();
}
