//! Fig. 2(d-f): the 2-FeFET multi-bit cell's match/mismatch behaviour.
//!
//! Prints the full 4×4 behavioral truth table (which FeFET conducts and
//! with what overdrive) and then reproduces the paper's example — a cell
//! storing '1' driven with inputs 0/1/2 — in the transient circuit
//! simulator, reporting the final match-node voltage of each case.
//!
//! Usage: `cargo run --release -p tdam-bench --bin fig2_cell_truth`

use tdam::cell::{Cell, ConductingFefet};
use tdam::config::TechParams;
use tdam::Encoding;
use tdam_bench::header;
use tdam_ckt::analysis::{TranConfig, Transient};

fn main() {
    let enc = Encoding::paper_default();
    let tech = TechParams::nominal_40nm();

    header("Behavioral truth table (stored d vs query q)");
    println!(
        "{:>4} {:>4} {:>12} {:>16}",
        "d", "q", "result", "overdrive (V)"
    );
    for d in 0..4u8 {
        let cell = Cell::new(d, enc).expect("valid stored value");
        for q in 0..4u8 {
            let out = cell.evaluate(q).expect("valid query");
            let (result, ov) = match out.conducting {
                None => ("match", f64::NAN),
                Some(ConductingFefet::A) => ("F_A on", out.overdrive_a),
                Some(ConductingFefet::B) => ("F_B on", out.overdrive_b),
            };
            if out.is_match() {
                println!("{d:>4} {q:>4} {result:>12} {:>16}", "-");
            } else {
                println!("{d:>4} {q:>4} {result:>12} {ov:>16.2}");
            }
        }
    }

    header("Circuit-level reproduction of Fig. 2(d-f): cell stores '1'");
    println!("{:>6} {:>14} {:>10}", "query", "V_MN final (V)", "verdict");
    let cell = Cell::new(1, enc).expect("valid stored value");
    for q in [0u8, 1, 2] {
        let nl = cell.build_netlist(q, &tech).expect("netlist");
        let res = Transient::new(&nl, TranConfig::until(6e-9).with_max_step(20e-12))
            .run()
            .expect("transient");
        let v_mn = res.trace("mn").expect("mn trace").last_value();
        let verdict = if v_mn > tech.vdd * 0.9 {
            "match"
        } else {
            "mismatch"
        };
        println!("{q:>6} {v_mn:>14.3} {verdict:>10}");
    }
}
