//! Extension: TD-AM reliability over device lifetime.
//!
//! The paper's Monte Carlo covers time-zero variation; this analysis adds
//! retention (log-time window decay) and endurance (wake-up/fatigue
//! cycling): the aged threshold ladder contracts toward the window
//! center, shrinking every cell's sensing margin, until adjacent levels
//! blur. For each lifetime point the worst-case Monte Carlo of Fig. 6 is
//! rerun with the aged ladder + experimental variation.
//!
//! Usage: `cargo run --release -p tdam-bench --bin ext_lifetime [--quick] [--save]`

use tdam::config::ArrayConfig;
use tdam::monte_carlo::{run, McConfig};
use tdam_bench::{quick_mode, rline, Report};
use tdam_fefet::retention::Lifetime;
use tdam_fefet::{VthVariation, PAPER_VTH, PAPER_VTH_SIGMA};

fn aged_variation(life: &Lifetime) -> VthVariation {
    let means: Vec<f64> = PAPER_VTH.iter().map(|&v| life.age_vth(v)).collect();
    // Aging does not shrink the device-to-device spread, only the window.
    VthVariation::new(means, PAPER_VTH_SIGMA.to_vec()).expect("valid aged ladder")
}

fn main() {
    let runs = if quick_mode() { 150 } else { 600 };
    let array = ArrayConfig::paper_default().with_stages(64);
    let mut rpt = Report::new("ext_lifetime");

    rpt.header("TD-AM worst-case decode vs lifetime (64 stages, experimental sigma)");
    rline!(
        rpt,
        "{:>14} {:>14} {:>10} {:>14} {:>12}",
        "P/E cycles",
        "retention",
        "window",
        "within margin",
        "decode ok"
    );
    let scenarios: &[(f64, f64, &str)] = &[
        (0.0, 0.0, "fresh"),
        (1e3, 0.0, "wake-up"),
        (1e6, 3.15e7, "1 year"),
        (1e8, 3.15e8, "10 years"),
        (1e10, 3.15e8, "fatigue onset"),
        (3e10, 3.15e8, "worn"),
    ];
    for &(cycles, seconds, label) in scenarios {
        let mut life = Lifetime::fresh();
        life.cycles = cycles;
        life.seconds = seconds;
        let variation = aged_variation(&life);
        let result =
            run(&McConfig::worst_case(array, variation, runs, 0x11FE)).expect("Monte Carlo");
        rline!(
            rpt,
            "{cycles:>14.1e} {seconds:>14.1e} {:>9.1}% {:>13.1}% {:>11.1}%   ({label})",
            life.window_fraction() * 100.0,
            result.within_margin * 100.0,
            result.decode_accuracy * 100.0
        );
    }
    rline!(
        rpt,
        "\nThe TD-AM decodes correctly well past 10-year retention; fatigue\n\
         beyond ~1e10 cycles contracts adjacent levels into the variation\n\
         floor and the decode collapses — a wear-leveling target, not a\n\
         design flaw (HDC class memories are written rarely)."
    );
    rpt.finish();
}
