//! Fig. 7: HDC accuracy vs element precision and dimensionality on the
//! three (synthetic stand-in) datasets.
//!
//! Prints one accuracy matrix per dataset (rows = hardware dimensionality,
//! columns = precision) plus the paper's headline analysis: the
//! dimensionality each precision needs to reach the full-precision
//! model's peak accuracy.
//!
//! Usage: `cargo run --release -p tdam-bench --bin fig7_hdc_accuracy [--quick]`

use tdam_bench::{header, quick_mode};
use tdam_hdc::datasets::{Dataset, DatasetKind};
use tdam_hdc::eval::{accuracy_sweep, peak_accuracy, required_dimension, Precision, SweepConfig};

fn main() {
    let quick = quick_mode();
    let cfg = if quick {
        SweepConfig {
            dims: vec![256, 512, 1024, 2048],
            bits: vec![1, 2, 4],
            retrain_epochs: 2,
            seed: 0xF167,
        }
    } else {
        SweepConfig::paper_grid()
    };
    let (train_per_class, test_per_class) = if quick { (30, 15) } else { (60, 25) };

    println!("Fig. 7 reproduction: accuracy vs precision and dimensionality");
    println!(
        "(synthetic stand-ins for ISOLET/UCIHAR/FACE; {} train / {} test per class)",
        train_per_class, test_per_class
    );

    for kind in DatasetKind::ALL {
        let ds = Dataset::generate(kind, train_per_class, test_per_class, 0xD5EED);
        let points = accuracy_sweep(&ds, &cfg).expect("sweep");

        header(&format!(
            "{} ({} classes, {} features)",
            kind.name(),
            kind.classes(),
            kind.features()
        ));
        let mut precisions: Vec<Precision> = cfg.bits.iter().map(|&b| Precision::Bits(b)).collect();
        precisions.push(Precision::Full);
        print!("{:>8}", "dims");
        for p in &precisions {
            print!("{:>9}", p.to_string());
        }
        println!();
        for &d in &cfg.dims {
            print!("{d:>8}");
            for p in &precisions {
                let acc = points
                    .iter()
                    .find(|pt| pt.dims == d && pt.precision == *p)
                    .map(|pt| pt.accuracy)
                    .unwrap_or(f64::NAN);
                print!("{:>8.1}%", acc * 100.0);
            }
            println!();
        }

        // Headline analysis: dimensionality needed to reach (near) the
        // full-precision peak.
        let full_peak = peak_accuracy(&points, Precision::Full).unwrap_or(0.0);
        let target = full_peak - 0.02; // within 2 points of the 32-bit peak
        println!("\n  32-bit peak accuracy: {:.1}%", full_peak * 100.0);
        println!("  dimensionality required to come within 2 points of that peak:");
        for p in &precisions {
            match required_dimension(&points, *p, target) {
                Some(d) => println!("    {:>7}: {d}", p.to_string()),
                None => println!("    {:>7}: not reached on this grid", p.to_string()),
            }
        }
    }
}
