//! Fig. 5: TD-AM scaling with array size, load capacitance and supply
//! voltage.
//!
//! - (a)(b): worst-case (all stages mismatched) search energy and delay
//!   over a grid of chain lengths × load capacitances — the diagonal
//!   contours show energy/delay ∝ `C_load × N_mis`,
//! - (c)(d): average energy and latency of 32/64/128-stage chains under
//!   supply-voltage scaling, plus the best-case energy-per-bit figure the
//!   paper quotes (0.159 fJ/bit).
//!
//! Usage: `cargo run --release -p tdam-bench --bin fig5_scaling [--quick]`

use tdam::chain::DelayChain;
use tdam::config::ArrayConfig;
use tdam_bench::{eng, header, quick_mode};

fn chain_for(cfg: &ArrayConfig) -> DelayChain {
    DelayChain::new(&vec![1u8; cfg.stages], cfg).expect("chain")
}

fn main() {
    let quick = quick_mode();
    let stage_grid: Vec<usize> = if quick {
        vec![4, 16, 64]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64]
    };
    let cap_grid: Vec<f64> = if quick {
        vec![6e-15, 80e-15, 1280e-15]
    } else {
        vec![
            6e-15, 12e-15, 40e-15, 80e-15, 160e-15, 320e-15, 640e-15, 1280e-15,
        ]
    };

    header("Fig. 5(a): worst-case search energy (J) vs stages × C_load");
    print!("{:>8}", "stages");
    for &c in &cap_grid {
        print!("{:>12}", format!("{:.0} fF", c * 1e15));
    }
    println!();
    for &n in &stage_grid {
        print!("{n:>8}");
        for &c in &cap_grid {
            let cfg = ArrayConfig::paper_default().with_stages(n).with_c_load(c);
            let chain = chain_for(&cfg);
            let r = chain.evaluate(&vec![2u8; n]).expect("worst case");
            print!("{:>12.3e}", r.energy.total());
        }
        println!();
    }

    header("Fig. 5(b): worst-case total delay (s) vs stages × C_load");
    print!("{:>8}", "stages");
    for &c in &cap_grid {
        print!("{:>12}", format!("{:.0} fF", c * 1e15));
    }
    println!();
    for &n in &stage_grid {
        print!("{n:>8}");
        for &c in &cap_grid {
            let cfg = ArrayConfig::paper_default().with_stages(n).with_c_load(c);
            let chain = chain_for(&cfg);
            let r = chain.evaluate(&vec![2u8; n]).expect("worst case");
            print!("{:>12.3e}", r.total_delay);
        }
        println!();
    }

    let vdd_grid: Vec<f64> = if quick {
        vec![0.6, 0.9, 1.1]
    } else {
        vec![0.6, 0.7, 0.8, 0.9, 1.0, 1.1]
    };
    let chain_lengths = [32usize, 64, 128];

    header("Fig. 5(c): average search energy (J) under V_DD scaling");
    print!("{:>8}", "V_DD");
    for &n in &chain_lengths {
        print!("{:>14}", format!("{n} stages"));
    }
    println!();
    for &vdd in &vdd_grid {
        print!("{vdd:>8.2}");
        for &n in &chain_lengths {
            let cfg = ArrayConfig::paper_default().with_stages(n).with_vdd(vdd);
            let chain = chain_for(&cfg);
            // Average case: ~25% of stages mismatch (random 2-bit data
            // against stored data has 75% mismatch; associative near-match
            // traffic has far less — use 25% as the representative mix).
            let n_mis = n / 4;
            let mut q = vec![1u8; n];
            for item in q.iter_mut().take(n_mis) {
                *item = 2;
            }
            let r = chain.evaluate(&q).expect("avg case");
            print!("{:>14.3e}", r.energy.total());
        }
        println!();
    }

    header("Fig. 5(d): latency (s) under V_DD scaling");
    print!("{:>8}", "V_DD");
    for &n in &chain_lengths {
        print!("{:>14}", format!("{n} stages"));
    }
    println!();
    for &vdd in &vdd_grid {
        print!("{vdd:>8.2}");
        for &n in &chain_lengths {
            let cfg = ArrayConfig::paper_default().with_stages(n).with_vdd(vdd);
            let chain = chain_for(&cfg);
            let r = chain.evaluate(&vec![2u8; n]).expect("worst case");
            print!("{:>14.3e}", r.total_delay);
        }
        println!();
    }

    header("Best-case energy efficiency (paper: 0.159 fJ/bit)");
    // Best case: lowest supply, full-match traffic, 64-stage chain.
    let cfg = ArrayConfig::paper_default().with_stages(64).with_vdd(0.6);
    let chain = chain_for(&cfg);
    let r = chain.evaluate(&[1u8; 64]).expect("full match");
    let bits = cfg.bits_per_row();
    let epb = r.energy.total() / bits as f64;
    println!(
        "64 stages @ 0.6 V, full-match search: {} total → {} per bit",
        eng(r.energy.total(), "J"),
        eng(epb, "J")
    );
}
