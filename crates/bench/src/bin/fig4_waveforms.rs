//! Fig. 4: circuit-level transient behaviour of a 32-stage delay chain.
//!
//! - (a)(b): rising/falling output-edge arrival times for increasing
//!   numbers of mismatched stages (the "delayed output pulse" series),
//! - (c): linearity of total delay vs mismatch count (least-squares fit
//!   with R², plus the extracted `d_INV` and `d_C`).
//!
//! Usage: `cargo run --release -p tdam-bench --bin fig4_waveforms [--quick]`

use tdam::chain_circuit::CircuitChain;
use tdam::config::ArrayConfig;
use tdam::timing::StageTiming;
use tdam_bench::{eng, header, quick_mode};
use tdam_num::LinearFit;

fn main() {
    let stages = if quick_mode() { 8 } else { 32 };
    let cfg = ArrayConfig::paper_default().with_stages(stages);
    let chain = CircuitChain::new(&vec![1u8; stages], &cfg).expect("chain");

    header(&format!(
        "Fig. 4(a)(b): {stages}-stage chain, rising/falling edge delays vs mismatches"
    ));
    println!(
        "{:>12} {:>16} {:>16} {:>16}",
        "mismatches", "rising (s)", "falling (s)", "total (s)"
    );
    let counts: Vec<usize> = (0..=stages)
        .step_by(if quick_mode() { 2 } else { 4 })
        .collect();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n_mis in &counts {
        let mut q = vec![1u8; stages];
        for item in q.iter_mut().take(n_mis) {
            *item = 2;
        }
        let r = chain.evaluate(&q, false).expect("circuit evaluation");
        println!(
            "{n_mis:>12} {:>16.4e} {:>16.4e} {:>16.4e}",
            r.rising.delay,
            r.falling.delay,
            r.total_delay()
        );
        xs.push(n_mis as f64);
        ys.push(r.total_delay());
    }

    header("Fig. 4(c): linearity of total delay vs mismatch count");
    let fit = LinearFit::fit(&xs, &ys).expect("at least two points");
    println!("slope (d_C)      : {}", eng(fit.slope, "s"));
    println!("intercept        : {}", eng(fit.intercept, "s"));
    println!("R²               : {:.6}", fit.r_squared);
    let analytic = StageTiming::analytic(&cfg.tech, cfg.c_load).expect("analytic timing");
    println!(
        "analytic model   : d_INV = {}, d_C = {}",
        eng(analytic.d_inv, "s"),
        eng(analytic.d_c, "s")
    );
    let circuit = StageTiming::from_circuit(&cfg.tech, cfg.c_load).expect("circuit calibration");
    println!(
        "circuit-extracted: d_INV = {}, d_C = {}",
        eng(circuit.d_inv, "s"),
        eng(circuit.d_c, "s")
    );
    assert!(
        fit.r_squared > 0.98,
        "delay must be linear in mismatch count (paper Fig. 4(c))"
    );
    println!("\nLinearity confirmed: R² = {:.4} > 0.98", fit.r_squared);
}
