//! Extension: sharded serving front-end under load — throughput
//! degradation curve, guaranteed load shedding, and warm-standby
//! failover, all judged against brute force.
//!
//! Three experiments against the `tdam::serve` TCP front-end:
//!
//! 1. **Client sweep** — closed-loop clients at increasing concurrency
//!    against a healthy sharded service. Every complete reply is judged
//!    against `brute_force_topk` inline; the sweep reports the
//!    qps / p50 / p99 degradation curve with a 100%-accepted-correct
//!    gate.
//! 2. **Overload** — a deliberately starved deployment (one worker,
//!    one queue slot, an injected-slow shard) driven past capacity.
//!    The contract under overload is *explicit* shedding: clients see
//!    `Overloaded` replies, never silent tail latency; the run asserts
//!    sheds occurred and that every accepted answer was still correct.
//! 3. **Failover chaos campaign** — the five-phase
//!    `run_serve_chaos` campaign (steady → overload → slow shard →
//!    crash → recovered) with warm standbys restored from the
//!    checkpoint store. Asserts zero silent wrong answers across all
//!    phases, at least one probe-gated failover, and a bounded p99
//!    through the crash and recovery phases.
//!
//! With `--save`, archives the human-readable run to
//! `results/ext_serve_scale.txt` and a machine-readable sidecar to
//! `results/BENCH_serve.json` (the CI artifact).
//!
//! Usage: `cargo run --release -p tdam-bench --bin ext_serve_scale [--quick] [--save]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdam::serve::{
    brute_force_topk, percentile, run_serve_chaos, seeded_corpus, FrontEnd, ServeChaosConfig,
    ServeClient, ServeConfig, ServeError, ShardedService, ShedReason,
};
use tdam_bench::{quick_mode, rline, JsonMap, Report};

/// One closed-loop client pool's aggregate view of a drive.
#[derive(Debug, Default, Clone)]
struct Drive {
    sent: usize,
    answered: usize,
    complete: usize,
    correct_complete: usize,
    partial: usize,
    shed_queue: usize,
    shed_deadline: usize,
    errors: usize,
    latencies_us: Vec<u64>,
    wall: Duration,
}

impl Drive {
    fn qps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.sent as f64 / self.wall.as_secs_f64()
        }
    }

    fn p50_us(&mut self) -> u64 {
        percentile(&mut self.latencies_us, 50.0)
    }

    fn p99_us(&mut self) -> u64 {
        percentile(&mut self.latencies_us, 99.0)
    }

    fn sheds(&self) -> usize {
        self.shed_queue + self.shed_deadline
    }
}

/// Drives `clients` closed-loop client threads against `addr`, each
/// sending `requests` seeded queries (perturbed corpus rows), judging
/// every complete reply against brute force.
#[allow(clippy::too_many_arguments)]
fn drive(
    addr: SocketAddr,
    corpus: &[Vec<u8>],
    encoding: tdam::encoding::Encoding,
    clients: usize,
    requests: usize,
    k: usize,
    deadline: Duration,
    seed: u64,
) -> Drive {
    let levels = encoding.levels() as u32;
    let stages = corpus[0].len();
    let t0 = Instant::now();
    let tallies: Vec<Drive> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut tally = Drive::default();
                    let mut rng = StdRng::seed_from_u64(seed ^ (0x9E37 + c as u64));
                    let mut client = match ServeClient::connect(addr) {
                        Ok(cl) => cl,
                        Err(_) => {
                            tally.errors = requests;
                            return tally;
                        }
                    };
                    for _ in 0..requests {
                        let base = rng.gen_range(0..corpus.len());
                        let mut query = corpus[base].clone();
                        // Perturb a couple of stages so queries are not
                        // pure exact matches.
                        for _ in 0..2 {
                            let s = rng.gen_range(0..stages);
                            query[s] = rng.gen_range(0..levels) as u8;
                        }
                        tally.sent += 1;
                        let q0 = Instant::now();
                        match client.query(&query, k, deadline) {
                            Ok(topk) => {
                                tally.answered += 1;
                                tally.latencies_us.push(q0.elapsed().as_micros() as u64);
                                if topk.complete() {
                                    tally.complete += 1;
                                    let reference = brute_force_topk(corpus, encoding, &query, k)
                                        .expect("brute force");
                                    if topk.neighbors == reference {
                                        tally.correct_complete += 1;
                                    }
                                } else {
                                    tally.partial += 1;
                                }
                            }
                            Err(ServeError::Overloaded(ShedReason::QueueFull)) => {
                                tally.shed_queue += 1;
                            }
                            Err(ServeError::Overloaded(ShedReason::DeadlineExpired)) => {
                                tally.shed_deadline += 1;
                            }
                            Err(_) => {
                                tally.errors += 1;
                                // The connection may be poisoned; dial a
                                // fresh one and keep the loop closed.
                                if let Ok(cl) = ServeClient::connect(addr) {
                                    client = cl;
                                }
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let mut total = Drive {
        wall: t0.elapsed(),
        ..Drive::default()
    };
    for t in tallies {
        total.sent += t.sent;
        total.answered += t.answered;
        total.complete += t.complete;
        total.correct_complete += t.correct_complete;
        total.partial += t.partial;
        total.shed_queue += t.shed_queue;
        total.shed_deadline += t.shed_deadline;
        total.errors += t.errors;
        total.latencies_us.extend(t.latencies_us);
    }
    total
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tdam-serve-scale-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn main() {
    let quick = quick_mode();
    // Scatter cost grows with rows x stages; the grids keep one query's
    // full scatter well inside the 250 ms deadline so the sweep measures
    // throughput, not deadline clipping.
    let (rows, stages, rows_per_shard, requests, sweep): (usize, usize, usize, usize, &[usize]) =
        if quick {
            (72, 16, 24, 12, &[1, 2, 4])
        } else {
            (96, 16, 24, 24, &[1, 2, 4, 8])
        };
    let k = 5;
    let seed = 0x5E21_u64;
    let deadline = Duration::from_millis(250);
    let mut rpt = Report::new("ext_serve_scale");

    let mut cfg = ServeConfig::paper_default();
    cfg.array = cfg.array.with_stages(stages);
    cfg.rows_per_shard = rows_per_shard;
    cfg.workers = 4;
    cfg.queue_capacity = 64;
    let levels = cfg.array.encoding.levels();
    let corpus = seeded_corpus(rows, stages, levels, seed);

    // ------------------------------------------------------------------
    // 1. Client sweep: qps / p50 / p99 degradation curve, judged inline.
    // ------------------------------------------------------------------
    rpt.header(&format!(
        "client sweep: {rows}x{stages} corpus, {} shards, k={k}",
        rows.div_ceil(rows_per_shard)
    ));
    let service = Arc::new(ShardedService::new(&cfg, &corpus, None).expect("service"));
    let encoding = service.encoding();
    let mut front = FrontEnd::start(Arc::clone(&service), &cfg, "127.0.0.1:0").expect("front");
    let addr = front.addr();

    rline!(
        rpt,
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>9} {:>7}",
        "clients",
        "sent",
        "qps",
        "p50_us",
        "p99_us",
        "correct",
        "sheds"
    );
    let mut sweep_rows = Vec::new();
    let mut sweep_correct = true;
    for &clients in sweep {
        let mut d = drive(
            addr, &corpus, encoding, clients, requests, k, deadline, seed,
        );
        sweep_correct &= d.correct_complete == d.complete && d.errors == 0;
        let (p50, p99) = (d.p50_us(), d.p99_us());
        rline!(
            rpt,
            "{clients:>8} {:>8} {:>10.0} {p50:>10} {p99:>10} {:>5}/{:<3} {:>7}",
            d.sent,
            d.qps(),
            d.correct_complete,
            d.complete,
            d.sheds()
        );
        sweep_rows.push(
            JsonMap::new()
                .int("clients", clients as i64)
                .int("sent", d.sent as i64)
                .int("answered", d.answered as i64)
                .num("qps", d.qps())
                .int("p50_us", p50 as i64)
                .int("p99_us", p99 as i64)
                .int("complete", d.complete as i64)
                .int("correct_complete", d.correct_complete as i64)
                .int("sheds", d.sheds() as i64)
                .int("errors", d.errors as i64),
        );
    }
    front.shutdown();
    rline!(
        rpt,
        "accepted-correct gate (every complete reply == brute force): {}",
        if sweep_correct { "PASS" } else { "FAIL" }
    );
    assert!(
        sweep_correct,
        "sweep returned a complete reply that differs from brute force"
    );

    // ------------------------------------------------------------------
    // 2. Overload: a starved deployment must shed explicitly.
    // ------------------------------------------------------------------
    rpt.header("overload: 1 worker, 1 queue slot, injected-slow shard");
    let mut starving = ServeConfig::paper_default();
    starving.array = starving.array.with_stages(stages);
    starving.rows_per_shard = rows_per_shard;
    starving.workers = 1;
    starving.queue_capacity = 1;
    // The slow shard must not trip its breaker mid-run: this experiment
    // measures admission control, not failover.
    starving.shard_breaker_threshold = 1_000_000;
    let service = Arc::new(ShardedService::new(&starving, &corpus, None).expect("service"));
    service.inject_slow(0, Some(Duration::from_millis(5)));
    let mut front = FrontEnd::start(Arc::clone(&service), &starving, "127.0.0.1:0").expect("front");
    let burst_clients = if quick { 6 } else { 8 };
    let mut d = drive(
        front.addr(),
        &corpus,
        encoding,
        burst_clients,
        requests,
        k,
        Duration::from_millis(40),
        seed ^ 0xBEEF,
    );
    front.shutdown();
    let (p50, p99) = (d.p50_us(), d.p99_us());
    rline!(
        rpt,
        "sent {} | answered {} | shed queue-full {} | shed deadline {} | errors {}",
        d.sent,
        d.answered,
        d.shed_queue,
        d.shed_deadline,
        d.errors
    );
    rline!(
        rpt,
        "answered p50 {p50} us, p99 {p99} us, {:.0} qps",
        d.qps()
    );
    rline!(
        rpt,
        "explicit-shed gate (overload produces Overloaded replies, not tail latency): {}",
        if d.sheds() > 0 { "PASS" } else { "FAIL" }
    );
    assert!(d.sheds() > 0, "starved deployment shed nothing");
    assert_eq!(
        d.correct_complete, d.complete,
        "overload returned a silent wrong answer"
    );
    let overload_json = JsonMap::new()
        .int("clients", burst_clients as i64)
        .int("sent", d.sent as i64)
        .int("answered", d.answered as i64)
        .int("shed_queue", d.shed_queue as i64)
        .int("shed_deadline", d.shed_deadline as i64)
        .int("errors", d.errors as i64)
        .int("p99_us", p99 as i64)
        .int("complete", d.complete as i64)
        .int("correct_complete", d.correct_complete as i64);

    // ------------------------------------------------------------------
    // 3. Failover chaos campaign with warm standbys.
    // ------------------------------------------------------------------
    rpt.header("failover chaos campaign (steady -> overload -> slow -> crash -> recovered)");
    let standby = scratch_dir("failover");
    let mut chaos = ServeChaosConfig::quick(Some(standby.clone()));
    chaos.serve.array = chaos.serve.array.with_stages(stages);
    chaos.rows = rows;
    chaos.serve.rows_per_shard = rows_per_shard;
    chaos.seed = seed;
    chaos.k = k;
    chaos.requests_per_client = requests;
    chaos.deadline = deadline;
    let report = run_serve_chaos(&chaos).expect("chaos campaign");
    std::fs::remove_dir_all(&standby).ok();

    rline!(
        rpt,
        "{:>11} {:>6} {:>9} {:>8} {:>6} {:>7} {:>10} {:>10}",
        "phase",
        "sent",
        "answered",
        "partial",
        "sheds",
        "silent",
        "p99_us",
        "qps"
    );
    let deadline_us = deadline.as_micros() as u64;
    let mut p99_bounded = true;
    let mut phase_rows = Vec::new();
    for p in &report.phases {
        // Accepted answers are deadline-scoped; anything slower must
        // have been shed, so p99 of *answered* requests stays bounded
        // by the request deadline (2x allows client-side I/O slack).
        if p.answered > 0 && (p.name == "crash" || p.name == "recovered") {
            p99_bounded &= p.p99_us <= 2 * deadline_us;
        }
        rline!(
            rpt,
            "{:>11} {:>6} {:>9} {:>8} {:>6} {:>7} {:>10} {:>10}",
            p.name,
            p.requests,
            p.answered,
            p.partial,
            p.shed_queue + p.shed_deadline,
            p.silent_wrong,
            p.p99_us,
            p.qps
        );
        phase_rows.push(
            JsonMap::new()
                .str("phase", &p.name)
                .int("requests", p.requests as i64)
                .int("answered", p.answered as i64)
                .int("partial", p.partial as i64)
                .int("degraded", p.degraded as i64)
                .int("shed_queue", p.shed_queue as i64)
                .int("shed_deadline", p.shed_deadline as i64)
                .int("errors", p.errors as i64)
                .int("silent_wrong", p.silent_wrong as i64)
                .int("p50_us", p.p50_us as i64)
                .int("p99_us", p.p99_us as i64)
                .int("qps", p.qps as i64),
        );
    }
    rline!(
        rpt,
        "failovers {} (probe failures {}, standby restocks {}), shard downs {}",
        report.service.failovers,
        report.service.probe_failures,
        report.service.restocks,
        report.service.shard_downs
    );
    rline!(
        rpt,
        "silent-wrong gate: {} | failover gate (>=1 promotion): {} | bounded-p99 gate: {}",
        if report.silent_wrong() == 0 {
            "PASS"
        } else {
            "FAIL"
        },
        if report.service.failovers >= 1 {
            "PASS"
        } else {
            "FAIL"
        },
        if p99_bounded { "PASS" } else { "FAIL" }
    );
    assert_eq!(
        report.silent_wrong(),
        0,
        "chaos campaign produced silent wrong answers"
    );
    assert!(
        report.service.failovers >= 1,
        "crash phase never promoted a standby"
    );
    assert!(
        p99_bounded,
        "p99 exceeded 2x deadline through crash/recovery"
    );
    rpt.finish();

    JsonMap::new()
        .str(
            "scenario",
            &format!(
                "{rows}x{stages} corpus, {} shards, k={k}",
                rows.div_ceil(rows_per_shard)
            ),
        )
        .obj(
            "config",
            JsonMap::new()
                .int("rows", rows as i64)
                .int("stages", stages as i64)
                .int("rows_per_shard", rows_per_shard as i64)
                .int("requests_per_client", requests as i64)
                .int("k", k as i64)
                .int("deadline_ms", deadline.as_millis() as i64)
                .bool("quick", quick),
        )
        .arr("sweep", sweep_rows)
        .bool("accepted_correct", sweep_correct)
        .obj("overload", overload_json)
        .obj(
            "failover",
            JsonMap::new()
                .arr("phases", phase_rows)
                .int("failovers", report.service.failovers as i64)
                .int("probe_failures", report.service.probe_failures as i64)
                .int("restocks", report.service.restocks as i64)
                .int("silent_wrong", report.silent_wrong() as i64)
                .int("sheds", report.sheds() as i64)
                .bool("p99_bounded", p99_bounded),
        )
        .finish("BENCH_serve");
}
