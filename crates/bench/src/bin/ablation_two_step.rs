//! Ablation: the 2-step even/odd operation scheme vs alternatives.
//!
//! Compares three ways of running the delay chain:
//!
//! 1. **naive single pass** — all stages active, one edge: a mismatch's
//!    delay contribution depends on its position parity (the inverter
//!    flips the edge each stage, and the PMOS-gated capacitor only loads
//!    falling output transitions), so delay no longer maps linearly to
//!    Hamming distance;
//! 2. **buffer chain** — fixing (1) by giving every stage a buffer costs
//!    an extra inverter of delay, area and energy per stage;
//! 3. **2-step scheme (this work)** — parity-independent and linear with
//!    no extra devices, at the cost of running two edges.
//!
//! Usage: `cargo run --release -p tdam-bench --bin ablation_two_step [--quick]`

use tdam::chain_circuit::CircuitChain;
use tdam::config::ArrayConfig;
use tdam::timing::StageTiming;
use tdam_bench::{eng, header, quick_mode};

fn main() {
    let stages = if quick_mode() { 6 } else { 12 };
    let cfg = ArrayConfig::paper_default().with_stages(stages);
    let chain = CircuitChain::new(&vec![1u8; stages], &cfg).expect("chain");

    header("Naive single-pass: mismatch delay depends on position parity");
    // One mismatch placed at an even vs an odd stage.
    let base = chain.simulate_naive(&vec![1u8; stages]).expect("base");
    let mut q_even = vec![1u8; stages];
    q_even[2] = 2;
    let mut q_odd = vec![1u8; stages];
    q_odd[3] = 2;
    let d_even = chain.simulate_naive(&q_even).expect("even mismatch").delay - base.delay;
    let d_odd = chain.simulate_naive(&q_odd).expect("odd mismatch").delay - base.delay;
    println!("mismatch at even stage: +{}", eng(d_even, "s"));
    println!("mismatch at odd stage : +{}", eng(d_odd, "s"));
    let parity_ratio = d_even.max(d_odd) / d_even.min(d_odd).max(1e-15);
    println!("parity asymmetry      : {parity_ratio:.1}x  (ideal quantitative SC needs 1.0x)");

    header("2-step scheme: parity-independent contributions");
    let base2 = chain.evaluate(&vec![1u8; stages], false).expect("base");
    let d2_even = chain.evaluate(&q_even, false).expect("even").total_delay() - base2.total_delay();
    let d2_odd = chain.evaluate(&q_odd, false).expect("odd").total_delay() - base2.total_delay();
    println!("mismatch at even stage: +{}", eng(d2_even, "s"));
    println!("mismatch at odd stage : +{}", eng(d2_odd, "s"));
    let two_step_ratio = d2_even.max(d2_odd) / d2_even.min(d2_odd).max(1e-15);
    println!("parity asymmetry      : {two_step_ratio:.2}x");
    assert!(
        two_step_ratio < parity_ratio,
        "2-step must reduce parity asymmetry"
    );

    header("Buffer-chain alternative: overhead per stage");
    let t = StageTiming::analytic(&cfg.tech, cfg.c_load).expect("timing");
    // A buffer = 2 inverters: doubles intrinsic delay contribution and the
    // stage switching energy, and adds 2 transistors per stage.
    println!(
        "2-step : base delay 2·N·d_INV = {} per chain, stage energy {}",
        eng(2.0 * stages as f64 * t.d_inv, "s"),
        eng(t.e_inv, "J")
    );
    println!(
        "buffers: base delay 2·N·d_INV = {} per chain (one pass, doubled stages), stage energy {} (+2T/stage area)",
        eng(2.0 * stages as f64 * t.d_inv, "s"),
        eng(2.0 * t.e_inv, "J")
    );
    println!(
        "\n2-step achieves buffer-grade linearity with {} less stage energy and 2 fewer transistors per stage.",
        eng(t.e_inv, "J")
    );
}
