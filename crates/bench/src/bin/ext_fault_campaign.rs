//! Extension: array-scale fault campaigns with and without repair.
//!
//! Sweeps fault rate × fault kind over the paper's 32-stage 2-bit array
//! wrapped in the resilience machinery (reference rows, margin monitors,
//! write-verify repair, spare-row remapping, digital column masking), and
//! reports retrieval/decode accuracy for an unprotected array next to the
//! same array after detection + repair. The headline: at a 1% hard-fault
//! rate the unrepaired array measurably mis-decodes, while spare-row
//! repair restores ≥99% exact-decode accuracy.
//!
//! Usage: `cargo run --release -p tdam-bench --bin ext_fault_campaign [--quick] [--save]`

use tdam::resilience::{run_campaign, CampaignConfig, CampaignFault};
use tdam_bench::{quick_mode, rline, Report};

fn run(repair: bool, trials: usize, queries: usize) -> tdam::resilience::CampaignResult {
    let mut cfg = CampaignConfig::paper_default();
    // Spares take cell faults at the swept rate too, so provision the pool
    // for worst-case demand: one spare per data row keeps the probability
    // of running dry at the 1% point negligible.
    cfg.resilience.spare_rows = cfg.array.rows;
    cfg.kinds = vec![
        CampaignFault::StuckMismatch,
        CampaignFault::StuckMix,
        CampaignFault::Drift {
            window_fraction: 0.25,
        },
        CampaignFault::StuckColumn,
        CampaignFault::BrokenStage,
        CampaignFault::TdcMiscount,
        CampaignFault::SlGlitch,
    ];
    cfg.trials = trials;
    cfg.queries = queries;
    cfg.repair = repair;
    run_campaign(&cfg).expect("fault campaign")
}

fn main() {
    let (trials, queries) = if quick_mode() { (6, 16) } else { (24, 48) };
    let mut rpt = Report::new("ext_fault_campaign");

    rpt.header("TD-AM fault campaign: 32 stages x 16 data rows, 16 spares, 2 reference rows");
    rline!(
        rpt,
        "{trials} trials x {queries} exact-match queries per (kind, rate) point\n"
    );

    let baseline = run(false, trials, queries);
    let repaired = run(true, trials, queries);

    rline!(
        rpt,
        "{:>14} {:>8} {:>12} {:>12} {:>12} {:>12} {:>9} {:>8} {:>7}",
        "fault kind",
        "rate",
        "decode raw",
        "decode rep",
        "retr raw",
        "retr rep",
        "repaired",
        "remapped",
        "masked"
    );
    for (b, r) in baseline.points.iter().zip(&repaired.points) {
        rline!(
            rpt,
            "{:>14} {:>7.2}% {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}% {:>9.2} {:>8.2} {:>7.2}",
            b.kind.label(),
            b.rate * 100.0,
            b.decode_accuracy * 100.0,
            r.decode_accuracy * 100.0,
            b.retrieval_accuracy * 100.0,
            r.retrieval_accuracy * 100.0,
            r.avg_repaired,
            r.avg_remapped,
            r.avg_masked
        );
    }

    // Headline acceptance point: 1% stuck-mismatch cells.
    let pick = |res: &tdam::resilience::CampaignResult| {
        res.points
            .iter()
            .find(|p| p.kind == CampaignFault::StuckMismatch && (p.rate - 0.01).abs() < 1e-12)
            .copied()
            .expect("1% stuck-mismatch point")
    };
    let (raw, rep) = (pick(&baseline), pick(&repaired));
    rline!(
        rpt,
        "\nAt a 1% hard-fault (stuck-mismatch) rate the unprotected array\n\
         exact-decodes {:.1}% of queries; after reference-row detection,\n\
         write-verify reprogramming, and spare-row remapping it recovers\n\
         {:.1}% (>= 99% expected). Transient kinds (tdc-miscount,\n\
         sl-glitch) are invisible to repair by construction: the repaired\n\
         and raw columns agree, and accuracy is restored only by lowering\n\
         the per-search rate.",
        raw.decode_accuracy * 100.0,
        rep.decode_accuracy * 100.0,
    );
    assert!(
        rep.decode_accuracy >= 0.99,
        "repair should restore >=99% decode accuracy at 1% hard faults, got {:.3}",
        rep.decode_accuracy
    );
    assert!(
        raw.decode_accuracy < rep.decode_accuracy,
        "unrepaired decode accuracy should measurably trail repaired"
    );
    rpt.finish();
}
