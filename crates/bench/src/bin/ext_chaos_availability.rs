//! Extension: availability of the fault-tolerant serving runtime under
//! chaos injection.
//!
//! Sweeps persistent cell-fault rate × injected worker-panic rate over the
//! paper's 32-stage 2-bit array wrapped in [`tdam::runtime::ResilientEngine`]
//! (compiled-LUT serving, health probes with a circuit breaker, repair and
//! backend demotion along the CompiledLut → Behavioral → DegradedMasked
//! fallback chain), and reports how much of the query traffic stays
//! answered and whether any wrong answer escaped without a degradation
//! flag. The headline: at the acceptance point — 1% cumulative cell faults
//! plus 2% per-attempt worker panics — the runtime sustains ≥ 99%
//! availability with zero silent wrong answers.
//!
//! Usage: `cargo run --release -p tdam-bench --bin ext_chaos_availability [--quick] [--save]`

use tdam::runtime::{run_chaos, ChaosConfig, DeadlinePolicy};
use tdam_bench::{quick_mode, rline, Report};

fn campaign(fault_rate: f64, panic_rate: f64, batches: usize, batch_size: usize) -> ChaosConfig {
    let mut cfg = ChaosConfig::paper_default();
    cfg.fault_rate = fault_rate;
    cfg.panic_rate = panic_rate;
    cfg.batches = batches;
    cfg.batch_size = batch_size;
    cfg
}

fn main() {
    let (batches, batch_size) = if quick_mode() { (8, 16) } else { (24, 32) };
    let mut rpt = Report::new("ext_chaos_availability");

    // Injected chaos panics are caught by the runtime's per-slot isolation,
    // but the default hook would still print a backtrace for each one.
    // Silence the hook for the campaigns; restored before the assertions.
    std::panic::set_hook(Box::new(|_| {}));

    rpt.header("TD-AM chaos campaign: 32 stages x 16 data rows, 8 spares, 2 reference rows");
    rline!(
        rpt,
        "{batches} batches x {batch_size} exact-match queries per (fault, panic) point; \
         retries 3, health probe every batch\n"
    );

    rline!(
        rpt,
        "{:>8} {:>8} {:>10} {:>9} {:>8} {:>7} {:>7} {:>9} {:>9} {:>8} {:>17}",
        "faults",
        "panics",
        "avail",
        "answered",
        "timedout",
        "failed",
        "wrong",
        "silent",
        "degraded",
        "repairs",
        "final backend"
    );
    let mut acceptance = None;
    for &fault_rate in &[0.0, 0.01, 0.05] {
        for &panic_rate in &[0.0, 0.02, 0.10] {
            let cfg = campaign(fault_rate, panic_rate, batches, batch_size);
            let report = run_chaos(&cfg).expect("chaos campaign");
            rline!(
                rpt,
                "{:>7.1}% {:>7.1}% {:>9.2}% {:>9} {:>8} {:>7} {:>7} {:>9} {:>9} {:>8} {:>17}",
                fault_rate * 100.0,
                panic_rate * 100.0,
                report.availability() * 100.0,
                report.answered,
                report.timed_out,
                report.failed,
                report.wrong,
                report.silent_wrong,
                report.degraded_answers,
                report.stats.repairs,
                format!("{:?}", report.final_backend)
            );
            if fault_rate == 0.01 && panic_rate == 0.02 {
                acceptance = Some(report);
            }
        }
    }

    // Deadline demonstration: a query budget expires the tail of each batch
    // but the answered prefix is still served and correct.
    let mut cfg = campaign(0.01, 0.02, batches, batch_size);
    cfg.runtime.deadline = DeadlinePolicy::QueryBudget(batch_size / 2);
    let bounded = run_chaos(&cfg).expect("deadline campaign");
    rline!(
        rpt,
        "\nWith a {}-query deadline budget per {batch_size}-query batch: \
         {} answered, {} expired, {} silent wrong.",
        batch_size / 2,
        bounded.answered,
        bounded.timed_out,
        bounded.silent_wrong
    );

    let _ = std::panic::take_hook();
    let report = acceptance.expect("acceptance point present in the sweep");
    rline!(
        rpt,
        "\nAt the acceptance point (1% cumulative cell faults, 2% per-attempt\n\
         worker panics) the runtime answered {:.2}% of {} queries with {}\n\
         silent wrong answers; {} answers carried an explicit degradation\n\
         flag, and the health monitor ran {} repairs across {} probes.",
        report.availability() * 100.0,
        report.total_queries,
        report.silent_wrong,
        report.degraded_answers,
        report.stats.repairs,
        report.stats.health_checks
    );
    assert!(
        report.availability() >= 0.99,
        "availability at the acceptance point should be >= 99%, got {:.4}",
        report.availability()
    );
    assert_eq!(
        report.silent_wrong, 0,
        "no wrong answer may be served without a degradation flag"
    );
    assert_eq!(
        bounded.silent_wrong, 0,
        "deadline-bounded serving must not introduce silent wrong answers"
    );
    rpt.finish();
}
