//! Extension: batched query serving — measured software throughput next
//! to the paper's pipelined cycle-time model.
//!
//! Stores a seeded random 128×128 2-bit array, then answers the same
//! query batch four ways: a sequential loop of single-query
//! `SimilarityEngine::search` calls through the full calibrated
//! behavioral model; the scalar compiled-LUT batch path
//! (`CompiledArray::search_batch_lut`, bit-identical to the behavioral
//! model); the bit-sliced packed kernel materializing full analog
//! outcomes (`CompiledArray::search_batch`, XOR/popcount over bit-plane
//! words with count-indexed delay reconstruction); and the packed
//! kernel's decision-only path (`CompiledArray::decide_batch`, winners
//! and decoded distances — the output the hardware TDC exports). Before
//! any timing is reported, the LUT tier is verified bit-identical to
//! the sequential loop and both packed tiers decision-identical (same
//! winners, same decoded distances — the `tdam::packed` equivalence
//! contract).
//!
//! A second scenario sweeps the **kernel dispatch ladder** on a
//! 1024-row array (where the cache-blocked, wide-register rungs
//! matter): `decide_batch` with the kernel forced to each available
//! rung — plain scalar (the PR-5 shape), hand-unrolled, and the wide
//! SIMD rung when built with `--features simd` on a capable CPU. All
//! rungs are asserted bit-identical before their ratios are reported.
//!
//! A third scenario measures the **two-tier corpus tier**: streaming
//! ingest rate (rows/s) through `CorpusBuilder` and the hot-cache
//! pre-filtered search qps next to the batch tiers above. The recall
//! and end-to-end speedup gates for that tier live in `ext_corpus`;
//! here it is throughput only.
//!
//! With `--save`, archives the human-readable run to
//! `results/ext_batch_throughput.txt` and a machine-readable sidecar to
//! `results/BENCH_batch.json`. The quick run doubles as the CI perf
//! smoke: it asserts the packed kernel sustains ≥ 4× the scalar-LUT
//! throughput, and — when the SIMD rung is active — that the wide rung
//! sustains ≥ 2× the scalar rung on the 1024-row ladder scenario (the
//! archived full run on an AVX-512 host shows the ≥ 3× headline).
//!
//! Usage: `cargo run --release -p tdam-bench --bin ext_batch_throughput [--quick] [--save]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tdam::array::TdamArray;
use tdam::config::ArrayConfig;
use tdam::corpus::{CorpusBuilder, CorpusConfig};
use tdam::engine::{BatchQuery, SimilarityEngine};
use tdam::packed::PackedKernel;
use tdam::throughput::worst_case_cycle;
use tdam_bench::{eng, quick_mode, rline, JsonMap, Report};

fn main() {
    // The quick grid keeps the full 128-stage chain so the per-query
    // work (and therefore the packed-vs-LUT ratio) is representative.
    let (stages, rows, batch_size, repeats) = if quick_mode() {
        (128, 64, 128, 2)
    } else {
        (128, 128, 256, 3)
    };
    let seed = 0xBA7C_u64;
    let mut rpt = Report::new("ext_batch_throughput");

    let cfg = ArrayConfig::paper_default()
        .with_stages(stages)
        .with_rows(rows);
    let bits = cfg.encoding.bits();
    let levels = cfg.encoding.levels() as u32;
    let mut am = TdamArray::new(cfg).expect("array");
    let mut rng = StdRng::seed_from_u64(seed);
    for row in 0..rows {
        let values: Vec<u8> = (0..stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        am.store(row, &values).expect("store");
    }
    let mut batch = BatchQuery::new(stages);
    for _ in 0..batch_size {
        let q: Vec<u8> = (0..stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        batch.push(&q).expect("push");
    }

    rpt.header(&format!(
        "batched query serving: {stages}x{rows} {bits}-bit array, {batch_size}-query batch"
    ));

    // Sequential reference: the full variation-aware behavioral model,
    // one query at a time. Best of `repeats` passes.
    let mut sequential_results = Vec::new();
    let mut seq_best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let run: Vec<_> = batch
            .iter()
            .map(|q| SimilarityEngine::search(&mut am, q).expect("sequential"))
            .collect();
        seq_best = seq_best.min(t0.elapsed().as_secs_f64());
        sequential_results = run;
    }

    let compiled = am.compile();
    rline!(rpt, "compiled rows: {}/{}", compiled.compiled_rows(), rows);
    rline!(rpt, "packed rows:   {}/{}", compiled.packed_rows(), rows);

    // Scalar compiled-LUT tier: per-stage delay lookups, bit-identical
    // to the behavioral model.
    let mut lut_results = Vec::new();
    let mut lut_best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let run = compiled.search_batch_lut(&batch, None).expect("LUT batch");
        lut_best = lut_best.min(t0.elapsed().as_secs_f64());
        lut_results = run;
    }

    // Packed tier: bit-plane XOR/popcount mismatch counting with
    // count-indexed delay reconstruction into full analog outcomes.
    let mut packed_results = Vec::new();
    let mut packed_best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let run = compiled.search_batch(&batch, None).expect("packed batch");
        packed_best = packed_best.min(t0.elapsed().as_secs_f64());
        packed_results = run;
    }

    // Decision tier: the packed kernel at full speed — winners and
    // decoded distances only (what the hardware TDC exports), skipping
    // the per-row analog materialization that dominates the full path.
    let mut decide_results = Vec::new();
    let mut decide_best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let run = compiled.decide_batch(&batch, None).expect("decide batch");
        decide_best = decide_best.min(t0.elapsed().as_secs_f64());
        decide_results = run;
    }

    // Correctness gates: timings mean nothing if the answers differ.
    // LUT must be bit-identical; packed and decision tiers must be
    // decision-identical.
    assert_eq!(lut_results.len(), sequential_results.len());
    assert_eq!(packed_results.len(), sequential_results.len());
    assert_eq!(decide_results.len(), sequential_results.len());
    for (((lut, packed), decision), reference) in lut_results
        .iter()
        .zip(&packed_results)
        .zip(&decide_results)
        .zip(&sequential_results)
    {
        assert!(
            lut.metrics() == *reference,
            "LUT tier diverged from sequential"
        );
        let packed = packed.metrics();
        assert_eq!(packed.best_row, reference.best_row, "packed winner");
        assert_eq!(packed.distances, reference.distances, "packed distances");
        assert_eq!(decision.best_row, reference.best_row, "decision winner");
        assert_eq!(
            decision
                .distances
                .iter()
                .map(|&d| Some(d))
                .collect::<Vec<_>>(),
            reference.distances,
            "decision distances"
        );
    }
    rline!(
        rpt,
        "LUT tier bit-identical: yes; packed + decision tiers decision-identical: yes"
    );

    let seq_qps = batch_size as f64 / seq_best;
    let lut_qps = batch_size as f64 / lut_best;
    let packed_qps = batch_size as f64 / packed_best;
    let decide_qps = batch_size as f64 / decide_best;
    let lut_speedup = lut_qps / seq_qps;
    let packed_speedup = packed_qps / seq_qps;
    let packed_vs_lut = packed_qps / lut_qps;
    let decide_vs_lut = decide_qps / lut_qps;
    rline!(
        rpt,
        "sequential loop:    {:>10.3} ms  ({:>9.0} queries/s)",
        seq_best * 1e3,
        seq_qps
    );
    rline!(
        rpt,
        "batched + LUT:      {:>10.3} ms  ({:>9.0} queries/s)   {lut_speedup:6.2}x sequential",
        lut_best * 1e3,
        lut_qps
    );
    rline!(
        rpt,
        "batched + packed:   {:>10.3} ms  ({:>9.0} queries/s)   {packed_speedup:6.2}x sequential, {packed_vs_lut:.2}x LUT",
        packed_best * 1e3,
        packed_qps
    );
    rline!(
        rpt,
        "packed decisions:   {:>10.3} ms  ({:>9.0} queries/s)   {:6.2}x sequential, {decide_vs_lut:.2}x LUT",
        decide_best * 1e3,
        decide_qps,
        decide_qps / seq_qps
    );
    rline!(
        rpt,
        "(the full packed path is bounded by materializing per-row analog \
         outcomes; the decision path is the kernel itself)"
    );
    if quick_mode() {
        // The CI perf smoke: a ratio, not an absolute time, so it holds
        // on throttled shared runners.
        rline!(
            rpt,
            "quick perf gate: packed kernel >= 4x LUT qps: {}",
            if decide_vs_lut >= 4.0 { "PASS" } else { "FAIL" }
        );
        assert!(
            decide_vs_lut >= 4.0,
            "perf smoke: packed kernel only {decide_vs_lut:.2}x the scalar LUT tier"
        );
    } else {
        rline!(
            rpt,
            "speedup: packed kernel {decide_vs_lut:.2}x over the compiled-LUT path   (target >= 10x: {})",
            if decide_vs_lut >= 10.0 { "PASS" } else { "MISS" }
        );
    }

    // ------------------------------------------------------------------
    // Kernel dispatch ladder on a 1024-row array: the regime where the
    // cache-blocked, wide-register rungs pay off. Decision-only batches
    // (the kernel at full speed), each rung forced in turn and asserted
    // bit-identical to the scalar rung before any ratio is reported.
    // ------------------------------------------------------------------
    let ladder_rows = 1024usize;
    let ladder_batch = if quick_mode() { 64 } else { 256 };
    let mut ladder_am = TdamArray::new(
        ArrayConfig::paper_default()
            .with_stages(stages)
            .with_rows(ladder_rows),
    )
    .expect("ladder array");
    for row in 0..ladder_rows {
        let values: Vec<u8> = (0..stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        ladder_am.store(row, &values).expect("store");
    }
    let mut ladder_queries = BatchQuery::new(stages);
    for _ in 0..ladder_batch {
        let q: Vec<u8> = (0..stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        ladder_queries.push(&q).expect("push");
    }
    let mut ladder = ladder_am.compile();
    assert_eq!(ladder.packed_rows(), ladder_rows, "ladder rows must pack");
    rpt.header(&format!(
        "kernel dispatch ladder: {stages}x{ladder_rows} {bits}-bit array, \
         {ladder_batch}-query decision batches"
    ));

    let mut scalar_decisions = Vec::new();
    let mut rung_qps: Vec<(&'static str, f64)> = Vec::new();
    for rung in [
        PackedKernel::Scalar,
        PackedKernel::Unrolled,
        PackedKernel::Simd,
    ] {
        if !ladder.force_kernel(rung) {
            rline!(rpt, "{:>10}: not available in this build/CPU", "simd");
            continue;
        }
        let name = ladder.kernel().name();
        let mut decisions = Vec::new();
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let t0 = Instant::now();
            let run = ladder
                .decide_batch(&ladder_queries, None)
                .expect("ladder decide");
            best = best.min(t0.elapsed().as_secs_f64());
            decisions = run;
        }
        if rung == PackedKernel::Scalar {
            scalar_decisions = decisions;
        } else {
            assert_eq!(
                decisions, scalar_decisions,
                "{name} rung diverged from the scalar rung"
            );
        }
        let qps = ladder_batch as f64 / best;
        let vs_scalar = qps / rung_qps.first().map_or(qps, |&(_, s)| s);
        rline!(
            rpt,
            "{name:>10}: {:>10.3} ms  ({:>9.0} queries/s)   {vs_scalar:5.2}x scalar rung",
            best * 1e3,
            qps
        );
        rung_qps.push((name, qps));
    }
    let scalar_rung_qps = rung_qps.first().map_or(0.0, |&(_, q)| q);
    let (widest_name, widest_qps) = *rung_qps.last().expect("scalar rung always runs");
    let wide_vs_scalar = widest_qps / scalar_rung_qps;
    let simd_active = widest_name != "scalar" && widest_name != "unrolled";
    rline!(
        rpt,
        "all rungs bit-identical: yes; widest rung ({widest_name}) {wide_vs_scalar:.2}x scalar"
    );
    if quick_mode() {
        if simd_active {
            // The SIMD leg of the CI matrix gates the ladder ratio too —
            // conservatively (2x) because shared runners vary; the
            // archived full-mode run on an AVX-512 host shows >= 3x.
            rline!(
                rpt,
                "quick perf gate: simd rung >= 2x scalar rung: {}",
                if wide_vs_scalar >= 2.0 {
                    "PASS"
                } else {
                    "FAIL"
                }
            );
            assert!(
                wide_vs_scalar >= 2.0,
                "perf smoke: {widest_name} rung only {wide_vs_scalar:.2}x the scalar rung"
            );
        }
    } else {
        rline!(
            rpt,
            "speedup: widest rung {wide_vs_scalar:.2}x over the scalar packed kernel   (target >= 3x: {})",
            if wide_vs_scalar >= 3.0 { "PASS" } else { "MISS" }
        );
    }
    // Leave the ladder view on its auto-detected rung for honesty in any
    // later reporting (force_kernel only pins what we measured above).
    let _ = ladder.force_kernel(PackedKernel::detect());

    // ------------------------------------------------------------------
    // Two-tier corpus tier: streaming ingest rate through CorpusBuilder
    // and the hot-cache pre-filtered search qps. Throughput only — the
    // recall and end-to-end speedup gates live in `ext_corpus`.
    // ------------------------------------------------------------------
    let (corpus_rows, corpus_shard_rows, corpus_nprobe) = if quick_mode() {
        (20_000usize, 512usize, 8usize)
    } else {
        (100_000, 1024, 8)
    };
    let corpus_queries = if quick_mode() { 32usize } else { 64 };
    rpt.header(&format!(
        "two-tier corpus tier: {corpus_rows} rows x {stages} stages, \
         shards of {corpus_shard_rows}, nprobe {corpus_nprobe}"
    ));
    let corpus_data: Vec<Vec<u8>> = (0..corpus_rows)
        .map(|_| {
            (0..stages)
                .map(|_| rng.gen_range(0..levels) as u8)
                .collect()
        })
        .collect();
    let t0 = Instant::now();
    let mut corpus_builder = CorpusBuilder::new(CorpusConfig {
        array: ArrayConfig::paper_default().with_stages(stages),
        shard_rows: corpus_shard_rows,
        nprobe: corpus_nprobe,
        cache_budget_bytes: 128 << 20,
        seed,
        ..CorpusConfig::paper_default()
    })
    .expect("corpus config");
    corpus_builder.append_rows(&corpus_data).expect("ingest");
    let mut corpus_engine = corpus_builder.build().expect("corpus build");
    let corpus_build_s = t0.elapsed().as_secs_f64();
    let corpus_ingest_rows_per_s = corpus_rows as f64 / corpus_build_s;
    rline!(
        rpt,
        "ingest + build:     {:>10.3} ms  ({:>9.0} rows/s) into {} shards",
        corpus_build_s * 1e3,
        corpus_ingest_rows_per_s,
        corpus_engine.shards()
    );
    let corpus_query_set: Vec<Vec<u8>> = (0..corpus_queries)
        .map(|_| {
            (0..stages)
                .map(|_| rng.gen_range(0..levels) as u8)
                .collect()
        })
        .collect();
    // Warm pass compiles the probed snapshots; the timed passes are hot.
    for q in &corpus_query_set {
        corpus_engine.search_topk(q, 10).expect("corpus warm");
    }
    let mut corpus_best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        for q in &corpus_query_set {
            corpus_engine.search_topk(q, 10).expect("corpus search");
        }
        corpus_best = corpus_best.min(t0.elapsed().as_secs_f64());
    }
    let corpus_qps = corpus_queries as f64 / corpus_best;
    rline!(
        rpt,
        "pre-filtered top-10:{:>10.3} ms  ({:>9.0} queries/s) hot snapshot cache",
        corpus_best * 1e3,
        corpus_qps
    );

    // What the hardware itself would sustain: the paper's 2-step scheme
    // pipelines precharge/settle of query k+1 under propagation of k.
    let cycle = worst_case_cycle(&cfg).expect("cycle model");
    rpt.header("analytic pipelined cycle-time model (worst-case mismatch)");
    rline!(
        rpt,
        "cycle: precharge {} + settle {} + step-I {} + step-II {} + TDC {}",
        eng(cycle.precharge, "s"),
        eng(cycle.settle, "s"),
        eng(cycle.step_one, "s"),
        eng(cycle.step_two, "s"),
        eng(cycle.tdc, "s"),
    );
    rline!(
        rpt,
        "hardware QPS: sequential {:.3e}, pipelined {:.3e}, batch({batch_size}) {:.3e}",
        cycle.sequential_qps(),
        cycle.pipelined_qps(),
        cycle.batch_qps(batch_size),
    );
    rpt.finish();

    JsonMap::new()
        .str(
            "scenario",
            &format!("{stages}x{rows} {bits}-bit, {batch_size}-query batch"),
        )
        .obj(
            "config",
            JsonMap::new()
                .int("stages", stages as i64)
                .int("rows", rows as i64)
                .int("bits", bits as i64)
                .int("batch", batch_size as i64)
                .int("repeats", repeats as i64)
                .bool("quick", quick_mode()),
        )
        .obj(
            "qps",
            JsonMap::new()
                .num("sequential", seq_qps)
                .num("lut", lut_qps)
                .num("packed", packed_qps)
                .num("packed_decisions", decide_qps),
        )
        .obj(
            "speedup",
            JsonMap::new()
                .num("lut_vs_sequential", lut_speedup)
                .num("packed_vs_sequential", packed_speedup)
                .num("packed_vs_lut", packed_vs_lut)
                .num("decisions_vs_lut", decide_vs_lut),
        )
        .obj("kernel_ladder", {
            let mut qps = JsonMap::new();
            for &(name, q) in &rung_qps {
                qps = qps.num(name, q);
            }
            JsonMap::new()
                .str(
                    "scenario",
                    &format!(
                        "{stages}x{ladder_rows} {bits}-bit, {ladder_batch}-query decision batches"
                    ),
                )
                .int("rows", ladder_rows as i64)
                .int("batch", ladder_batch as i64)
                .str("widest", widest_name)
                .bool("simd_active", simd_active)
                .obj("qps", qps)
                .num("widest_vs_scalar", wide_vs_scalar)
        })
        .obj(
            "corpus",
            JsonMap::new()
                .int("rows", corpus_rows as i64)
                .int("shard_rows", corpus_shard_rows as i64)
                .int("nprobe", corpus_nprobe as i64)
                .int("shards", corpus_engine.shards() as i64)
                .int("queries", corpus_queries as i64)
                .num("ingest_rows_per_s", corpus_ingest_rows_per_s)
                .num("search_qps", corpus_qps),
        )
        .finish("BENCH_batch");
}
