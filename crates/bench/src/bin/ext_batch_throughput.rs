//! Extension: batched query serving — measured software throughput next
//! to the paper's pipelined cycle-time model.
//!
//! Stores a seeded random 128×128 2-bit array, then answers the same
//! query batch two ways: a sequential loop of single-query
//! `SimilarityEngine::search` calls through the full calibrated
//! behavioral model, and the batched path (`TdamArray::compile` +
//! `CompiledArray::search_batch`) that serves every nominal row from a
//! precompiled per-cell delay LUT across the worker pool. Results are
//! verified bit-identical before any timing is reported; the acceptance
//! bar is a ≥ 4× batched speedup. The analytic section reports what the
//! *hardware* would do: worst-case cycle breakdown and the pipelined
//! initiation-interval QPS the paper's 2-step scheme sustains.
//!
//! Usage: `cargo run --release -p tdam-bench --bin ext_batch_throughput [--quick] [--save]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tdam::array::TdamArray;
use tdam::config::ArrayConfig;
use tdam::engine::{BatchQuery, SimilarityEngine};
use tdam::throughput::worst_case_cycle;
use tdam_bench::{eng, quick_mode, rline, Report};

fn main() {
    let (stages, rows, batch_size, repeats) = if quick_mode() {
        (32, 32, 64, 1)
    } else {
        (128, 128, 256, 3)
    };
    let seed = 0xBA7C_u64;
    let mut rpt = Report::new("ext_batch_throughput");

    let cfg = ArrayConfig::paper_default()
        .with_stages(stages)
        .with_rows(rows);
    let levels = cfg.encoding.levels() as u32;
    let mut am = TdamArray::new(cfg).expect("array");
    let mut rng = StdRng::seed_from_u64(seed);
    for row in 0..rows {
        let values: Vec<u8> = (0..stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        am.store(row, &values).expect("store");
    }
    let mut batch = BatchQuery::new(stages);
    for _ in 0..batch_size {
        let q: Vec<u8> = (0..stages)
            .map(|_| rng.gen_range(0..levels) as u8)
            .collect();
        batch.push(&q).expect("push");
    }

    rpt.header(&format!(
        "batched query serving: {stages}x{rows} 2-bit array, {batch_size}-query batch"
    ));

    // Sequential reference: the full variation-aware behavioral model,
    // one query at a time. Best of `repeats` passes.
    let mut sequential_results = Vec::new();
    let mut seq_best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let run: Vec<_> = batch
            .iter()
            .map(|q| SimilarityEngine::search(&mut am, q).expect("sequential"))
            .collect();
        seq_best = seq_best.min(t0.elapsed().as_secs_f64());
        sequential_results = run;
    }

    // Batched path: compile once, then serve the batch from the LUTs.
    let compiled = am.compile();
    rline!(rpt, "compiled rows: {}/{}", compiled.compiled_rows(), rows);
    let mut batched_results = Vec::new();
    let mut batch_best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let run = compiled.search_batch(&batch, None).expect("batched");
        batch_best = batch_best.min(t0.elapsed().as_secs_f64());
        batched_results = run;
    }

    // Bit-identity gate: timings mean nothing if the answers differ.
    let mut identical = batched_results.len() == sequential_results.len();
    for (outcome, reference) in batched_results.iter().zip(&sequential_results) {
        identical &= outcome.metrics() == *reference;
    }
    assert!(identical, "batched results diverged from sequential");

    let seq_qps = batch_size as f64 / seq_best;
    let batch_qps = batch_size as f64 / batch_best;
    let speedup = batch_qps / seq_qps;
    rline!(rpt, "results identical: yes");
    rline!(
        rpt,
        "sequential loop:  {:>10.3} ms  ({:>9.0} queries/s)",
        seq_best * 1e3,
        seq_qps
    );
    rline!(
        rpt,
        "batched + LUT:    {:>10.3} ms  ({:>9.0} queries/s)",
        batch_best * 1e3,
        batch_qps
    );
    if quick_mode() {
        rline!(
            rpt,
            "speedup: {speedup:.2}x   (quick smoke run; the full run enforces >= 4x)"
        );
    } else {
        rline!(
            rpt,
            "speedup: {speedup:.2}x   (target >= 4x: {})",
            if speedup >= 4.0 { "PASS" } else { "MISS" }
        );
    }

    // What the hardware itself would sustain: the paper's 2-step scheme
    // pipelines precharge/settle of query k+1 under propagation of k.
    let cycle = worst_case_cycle(&cfg).expect("cycle model");
    rpt.header("analytic pipelined cycle-time model (worst-case mismatch)");
    rline!(
        rpt,
        "cycle: precharge {} + settle {} + step-I {} + step-II {} + TDC {}",
        eng(cycle.precharge, "s"),
        eng(cycle.settle, "s"),
        eng(cycle.step_one, "s"),
        eng(cycle.step_two, "s"),
        eng(cycle.tdc, "s"),
    );
    rline!(
        rpt,
        "hardware QPS: sequential {:.3e}, pipelined {:.3e}, batch({batch_size}) {:.3e}",
        cycle.sequential_qps(),
        cycle.pipelined_qps(),
        cycle.batch_qps(batch_size),
    );
    rpt.finish();
}
