//! Ablation: variable-capacitance (this work) vs variable-resistance
//! (prior FeFET TD designs) delay stages under V_TH variation.
//!
//! The paper's core robustness argument (Sec. II-C / III): putting the
//! FeFET directly in the signal path (VR) makes stage delay an
//! exponential function of V_TH, while using it only to gate a load
//! capacitor (VC) leaves the delay set by CMOS RC constants. This
//! ablation quantifies both: per-stage delay spread vs σ(V_TH), plus the
//! VR failure mode where an off-drifted FeFET interrupts propagation.
//!
//! Usage: `cargo run --release -p tdam-bench --bin ablation_vc_vs_vr [--quick]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdam::config::ArrayConfig;
use tdam::monte_carlo::{run, McConfig};
use tdam_baselines::fefinfet::{FeFinFet, FeFinFetParams};
use tdam_bench::{header, quick_mode};
use tdam_fefet::VthVariation;
use tdam_num::dist::Normal;
use tdam_num::Summary;

fn main() {
    let runs = if quick_mode() { 300 } else { 2000 };
    let sigmas = [20e-3, 40e-3, 60e-3];

    header("Per-stage mismatch-delay spread (coefficient of variation)");
    println!(
        "{:>12} {:>22} {:>22}",
        "sigma (mV)", "VC (this work)", "VR (FeFET in path)"
    );
    let vr = FeFinFet::new(1, 8, FeFinFetParams::default());
    let array = ArrayConfig::paper_default().with_stages(32);
    for &sigma in &sigmas {
        // VR: stage delay directly through the FeFET's drive current.
        let mut rng = StdRng::seed_from_u64(0xAB1A);
        let dist = Normal::new(0.0, sigma).expect("valid sigma");
        let vr_delays: Vec<f64> = (0..runs)
            .map(|_| vr.stage_delay_with_vth_shift(dist.sample(&mut rng)))
            .collect();
        let vr_cov = Summary::from_slice(&vr_delays).coefficient_of_variation();

        // VC: full-chain Monte Carlo, per-stage spread backed out of the
        // chain-level spread (variance of independent per-stage terms adds).
        let mc = run(&McConfig::worst_case(
            array,
            VthVariation::uniform(sigma),
            runs,
            0xAB1B,
        ))
        .expect("Monte Carlo");
        let per_stage_std = mc.summary.std_dev / (array.stages as f64).sqrt();
        let per_stage_mean = mc.summary.mean / array.stages as f64;
        let vc_cov = per_stage_std / per_stage_mean;

        println!(
            "{:>12.0} {:>21.3}% {:>21.3}%",
            sigma * 1e3,
            vc_cov * 100.0,
            vr_cov * 100.0
        );
        assert!(
            vr_cov > 5.0 * vc_cov,
            "VR spread should dwarf VC spread at sigma = {sigma}"
        );
    }

    header("VR failure mode: off-drifted FeFET interrupts propagation");
    let nominal = vr.stage_delay_with_vth_shift(0.0);
    for dvth in [0.1, 0.2, 0.4, 0.6] {
        let d = vr.stage_delay_with_vth_shift(dvth);
        println!(
            "dV_TH = +{:.0} mV: stage delay {:.3e} s ({:.1}x nominal)",
            dvth * 1e3,
            d,
            d / nominal
        );
    }
    println!(
        "\nVC verdict: FeFET variation only perturbs the match-node discharge, \
         not the CMOS-set RC delay — the paper's robustness claim."
    );
}
