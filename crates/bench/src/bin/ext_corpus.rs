//! Extension: million-row two-tier corpus search — coarse centroid
//! pre-filter plus exact packed re-rank over LRU-cached shard
//! snapshots, benchmarked against flat packed brute force.
//!
//! Builds a seeded *clustered* corpus (prototypes plus per-element
//! noise — recall through a pre-filter over uniform data only measures
//! `nprobe / shards`), bulk-ingests it through `CorpusBuilder`
//! (reporting the rows/s ingest rate), then answers a seeded query set
//! three ways: flat packed brute force over one `from_codes` array (the
//! exact baseline), the two-tier engine with a cold snapshot cache
//! (every probe compiles), and the same engine hot. Gates:
//!
//! * recall@10 against the flat exact baseline must be >= 0.95, and
//! * the hot two-tier path must be >= 4x (quick) / >= 10x (full)
//!   faster end-to-end than flat packed brute force.
//!
//! With `--save`, archives `results/ext_corpus.txt` and the
//! machine-readable `results/BENCH_corpus.json` (CI uploads the quick
//! variant as an artifact).
//!
//! Usage: `cargo run --release -p tdam-bench --bin ext_corpus [--quick] [--save]`

use std::collections::HashSet;
use std::time::Instant;
use tdam::config::ArrayConfig;
use tdam::corpus::{CorpusBuilder, CorpusConfig, CorpusEngine};
use tdam::packed::PackedArray;
use tdam::tdc::CounterTdc;
use tdam::timing::StageTiming;
use tdam_bench::{quick_mode, rline, JsonMap, Report};

/// SplitMix64 finalizer — the repo-wide seeding discipline.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Clustered corpus: `protos` prototypes plus 10% per-element noise.
fn clustered(rows: usize, stages: usize, protos: u64, levels: u64, seed: u64) -> Vec<Vec<u8>> {
    (0..rows)
        .map(|r| {
            let p = splitmix(seed ^ 0x000A_11CE ^ r as u64) % protos;
            (0..stages)
                .map(|j| {
                    let base = splitmix(seed ^ 0xB0_55 ^ (p << 20 | j as u64)) % levels;
                    let n = splitmix(seed ^ 0x0040_15E0 ^ ((r as u64) << 20 | j as u64));
                    let v = if n % 100 < 10 {
                        (n >> 8) % levels
                    } else {
                        base
                    };
                    v as u8
                })
                .collect()
        })
        .collect()
}

/// Query `i`: a stored row with two elements perturbed.
fn perturbed_query(corpus: &[Vec<u8>], levels: u64, seed: u64, i: u64) -> Vec<u8> {
    let h = splitmix(seed ^ 0xDE_CAF ^ i);
    let mut q = corpus[(h % corpus.len() as u64) as usize].clone();
    for t in 0..2u64 {
        let hh = splitmix(h ^ (0xE0 + t));
        let j = (hh % q.len() as u64) as usize;
        q[j] = (((u64::from(q[j])) + 1 + hh % (levels - 1)) % levels) as u8;
    }
    q
}

/// One timed pass of the two-tier engine over the query set.
fn tier_pass(
    engine: &mut CorpusEngine,
    queries: &[Vec<u8>],
    k: usize,
) -> (Vec<Vec<(usize, usize)>>, f64) {
    let t0 = Instant::now();
    let answers = queries
        .iter()
        .map(|q| engine.search_topk(q, k).expect("tier search"))
        .collect();
    (answers, t0.elapsed().as_secs_f64())
}

#[allow(clippy::too_many_lines)]
fn main() {
    let (rows, protos, shard_rows, nprobe, n_queries) = if quick_mode() {
        (100_000usize, 32u64, 1024usize, 8usize, 32u64)
    } else {
        (1_000_000, 64, 4096, 16, 64)
    };
    let stages = 32usize;
    let k = 10usize;
    let seed = 0xC0_FFEE_u64;
    let array = ArrayConfig::paper_default().with_stages(stages);
    let levels = u64::from(array.encoding.levels());
    let mut rpt = Report::new("ext_corpus");

    rpt.header(&format!(
        "two-tier corpus search: {rows} rows x {stages} stages, {protos} prototypes"
    ));
    let corpus = clustered(rows, stages, protos, levels, seed);

    // Streaming bulk ingestion + build, reported as rows/s.
    let ccfg = CorpusConfig {
        array,
        shard_rows,
        nprobe,
        cache_budget_bytes: 256 << 20,
        seed,
        ..CorpusConfig::paper_default()
    };
    let t0 = Instant::now();
    let mut builder = CorpusBuilder::new(ccfg).expect("config");
    builder.append_rows(&corpus).expect("ingest");
    let mut engine = builder.build().expect("build");
    let build_s = t0.elapsed().as_secs_f64();
    let ingest_rows_per_s = rows as f64 / build_s;
    rline!(
        rpt,
        "ingest + build: {:.2} s  ({:.0} rows/s) into {} shards of {} (nprobe {})",
        build_s,
        ingest_rows_per_s,
        engine.shards(),
        shard_rows,
        nprobe
    );

    // Flat exact baseline: one packed array over the whole corpus,
    // full scan + top-k selection per query.
    let timing = StageTiming::analytic(&array.tech, array.c_load).expect("timing");
    let tdc = CounterTdc::matched(&timing).expect("tdc");
    let mut flat_codes = vec![0u8; rows * stages];
    for (r, row) in corpus.iter().enumerate() {
        flat_codes[r * stages..(r + 1) * stages].copy_from_slice(row);
    }
    let flat = PackedArray::from_codes(array.encoding, stages, &timing, &tdc, &flat_codes);
    let mut scratch = flat.scratch();

    let queries: Vec<Vec<u8>> = (0..n_queries)
        .map(|i| perturbed_query(&corpus, levels, 0x5EED, i))
        .collect();

    let t0 = Instant::now();
    let brute: Vec<Vec<(usize, usize)>> = queries
        .iter()
        .map(|q| {
            flat.expand_query(q, &mut scratch);
            flat.mismatch_counts(&mut scratch);
            let mut ranked: Vec<(usize, usize)> = (0..rows)
                .map(|r| {
                    let (e, o) = flat.counts(&scratch, 0, r);
                    (e + o, r)
                })
                .collect();
            // O(n) selection, then order the survivors — identical
            // results to a full sort + truncate.
            ranked.select_nth_unstable(k - 1);
            ranked.truncate(k);
            ranked.sort_unstable();
            ranked
        })
        .collect();
    let brute_s = t0.elapsed().as_secs_f64();
    rline!(
        rpt,
        "flat packed brute force: {:.3} s  ({:.1} queries/s)",
        brute_s,
        n_queries as f64 / brute_s
    );

    // Two-tier: cold pass (every probed shard compiles its snapshot),
    // then hot (cache resident).
    let (cold_answers, cold_s) = tier_pass(&mut engine, &queries, k);
    let (hot_answers, hot_s) = tier_pass(&mut engine, &queries, k);
    assert_eq!(cold_answers, hot_answers, "cache state changed answers");
    rline!(
        rpt,
        "two-tier cold cache:     {:.3} s  ({:.1} queries/s)",
        cold_s,
        n_queries as f64 / cold_s
    );
    rline!(
        rpt,
        "two-tier hot cache:      {:.3} s  ({:.1} queries/s)",
        hot_s,
        n_queries as f64 / hot_s
    );

    // Recall@k of the two-tier path against the flat exact baseline.
    let (mut hit, mut total) = (0usize, 0usize);
    for (got, want) in hot_answers.iter().zip(&brute) {
        let ids: HashSet<usize> = want.iter().map(|&(_, id)| id).collect();
        hit += got.iter().filter(|&&(_, id)| ids.contains(&id)).count();
        total += want.len();
    }
    let recall = hit as f64 / total as f64;
    let speedup = brute_s / hot_s;
    let status = engine.status();
    rline!(
        rpt,
        "recall@{k}: {recall:.4} ({hit}/{total});  end-to-end speedup {speedup:.1}x"
    );
    rline!(
        rpt,
        "snapshot cache: {} resident ({} MiB of {} MiB), {} hits, {} misses, {} evictions",
        status.resident,
        status.resident_bytes >> 20,
        status.budget_bytes >> 20,
        status.stats.corpus_cache_hits,
        status.stats.corpus_cache_misses,
        status.stats.corpus_cache_evictions
    );

    let speedup_floor = if quick_mode() { 4.0 } else { 10.0 };
    rline!(
        rpt,
        "gates: recall@{k} >= 0.95: {};  speedup >= {speedup_floor:.0}x: {}",
        if recall >= 0.95 { "PASS" } else { "FAIL" },
        if speedup >= speedup_floor {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(recall >= 0.95, "recall gate: {recall:.4}");
    assert!(
        speedup >= speedup_floor,
        "speedup gate: {speedup:.2}x < {speedup_floor:.0}x"
    );
    rpt.finish();

    JsonMap::new()
        .str(
            "scenario",
            &format!("{rows} rows x {stages} stages, {protos} prototypes"),
        )
        .obj(
            "config",
            JsonMap::new()
                .int("rows", rows as i64)
                .int("stages", stages as i64)
                .int("shard_rows", shard_rows as i64)
                .int("nprobe", nprobe as i64)
                .int("shards", engine.shards() as i64)
                .int("queries", n_queries as i64)
                .int("k", k as i64)
                .bool("quick", quick_mode()),
        )
        .num("ingest_rows_per_s", ingest_rows_per_s)
        .num("build_seconds", build_s)
        .obj(
            "qps",
            JsonMap::new()
                .num("flat_brute_force", n_queries as f64 / brute_s)
                .num("two_tier_cold", n_queries as f64 / cold_s)
                .num("two_tier_hot", n_queries as f64 / hot_s),
        )
        .num("speedup_vs_brute_force", speedup)
        .num("recall_at_k", recall)
        .obj(
            "cache",
            JsonMap::new()
                .int("resident", status.resident as i64)
                .int("resident_bytes", status.resident_bytes as i64)
                .int("budget_bytes", status.budget_bytes as i64)
                .int("hits", status.stats.corpus_cache_hits as i64)
                .int("misses", status.stats.corpus_cache_misses as i64)
                .int("evictions", status.stats.corpus_cache_evictions as i64)
                .int("compile_micros", status.stats.corpus_compile_micros as i64),
        )
        .finish("BENCH_corpus");
}
