//! Extension: online mutation under live traffic — incremental repack
//! cost, serving-latency impact of a sustained write mix, and the
//! seeded mutation-chaos correctness campaign.
//!
//! Three experiments against the serving runtime's online-mutation
//! machinery:
//!
//! 1. **Repack cost** — on a 1024-row array, the surgical
//!    `refresh_rows` of a single rewritten row is timed against a
//!    from-scratch `compile_snapshot`. The gate requires the
//!    incremental path to be at least 10x cheaper; the report also
//!    fits the measured per-row cost into the documented
//!    O(rows-touched) model.
//! 2. **Latency under writes** — identical seeded query batches are
//!    served by two identical engines, one read-only and one with
//!    random row rewrites churning between batches (every batch then
//!    crosses an epoch swap). The gate bounds the write-mix p99 at 2x
//!    the read-only p99.
//! 3. **Mutation chaos** — the `run_mutation_chaos` acceptance
//!    campaign (>= 1000 served query slots judged against an
//!    independently replayed reference), once pure-mutation (zero
//!    wrong answers required) and once with injected cell faults on
//!    top (zero *silent* wrong answers required).
//!
//! With `--save`, archives the human-readable run to
//! `results/ext_mutation.txt` and a machine-readable sidecar to
//! `results/BENCH_mutation.json` (the CI artifact).
//!
//! Usage: `cargo run --release -p tdam-bench --bin ext_mutation [--quick] [--save]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tdam::array::TdamArray;
use tdam::config::ArrayConfig;
use tdam::engine::{BatchQuery, SimilarityEngine};
use tdam::resilience::ResilienceConfig;
use tdam::runtime::{
    run_mutation_chaos, MutationChaosConfig, MutationChaosReport, ResilientEngine, RuntimeConfig,
};
use tdam::serve::percentile;
use tdam_bench::{quick_mode, rline, JsonMap, Report};

fn random_row(rng: &mut StdRng, stages: usize, levels: u32) -> Vec<u8> {
    (0..stages)
        .map(|_| rng.gen_range(0..levels) as u8)
        .collect()
}

fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn chaos_json(report: &MutationChaosReport) -> JsonMap {
    JsonMap::new()
        .int("total_queries", report.total_queries as i64)
        .int("answered", report.answered as i64)
        .int("timed_out", report.timed_out as i64)
        .int("failed", report.failed as i64)
        .int("wrong", report.wrong as i64)
        .int("silent_wrong", report.silent_wrong as i64)
        .int("degraded_answers", report.degraded_answers as i64)
        .int("user_writes", report.user_writes as i64)
        .int("physical_writes", report.physical_writes as i64)
        .num("write_amplification", report.write_amplification())
        .int("wear_rotations", report.wear_rotations as i64)
        .int("refresh_rewrites", report.refresh_rewrites as i64)
        .int("faults_injected", report.faults_injected as i64)
        .int(
            "incremental_repacks",
            report.stats.incremental_repacks as i64,
        )
        .int("rows_repacked", report.stats.rows_repacked as i64)
        .int("epoch_swaps", report.stats.epoch_swaps as i64)
        .int(
            "full_recompiles",
            report
                .stats
                .recompiles
                .saturating_sub(report.stats.incremental_repacks) as i64,
        )
}

fn main() {
    let quick = quick_mode();
    let seed = 0x4D55_7A7Eu64;
    let mut rpt = Report::new("ext_mutation");

    // ------------------------------------------------------------------
    // 1. Repack cost: single-row refresh vs from-scratch recompile.
    //    The 1024-row point is the acceptance gate; the grid shows the
    //    ratio growing linearly with rows (the full recompile is
    //    O(rows), the surgical refresh O(rows touched)).
    // ------------------------------------------------------------------
    const GATE_ROWS: usize = 1024;
    const STAGES: usize = 128;
    let (full_reps, single_reps) = if quick { (3, 32) } else { (8, 128) };
    rpt.header(&format!(
        "incremental repack cost: {STAGES}-stage rows, single-row rewrite"
    ));
    rline!(
        rpt,
        "{:>8} {:>16} {:>16} {:>10}",
        "rows",
        "full (ns)",
        "one row (ns)",
        "ratio"
    );
    let mut repack_rows_json = Vec::new();
    let mut gate_ratio = 0.0f64;
    for rows in [256usize, 512, GATE_ROWS] {
        let cfg = ArrayConfig::paper_default()
            .with_stages(STAGES)
            .with_rows(rows);
        let levels = cfg.encoding.levels() as u32;
        let mut rng = StdRng::seed_from_u64(seed ^ rows as u64);
        let mut am = TdamArray::new(cfg).expect("array");
        for row in 0..rows {
            let values = random_row(&mut rng, STAGES, levels);
            am.store(row, &values).expect("store");
        }
        let mut full_ns: Vec<u64> = (0..full_reps)
            .map(|_| {
                let t0 = Instant::now();
                let snap = am.compile_snapshot();
                let dt = t0.elapsed().as_nanos() as u64;
                assert!(snap.generation() > 0);
                dt
            })
            .collect();
        let mut snap = am.compile_snapshot();
        let mut single_ns: Vec<u64> = (0..single_reps)
            .map(|_| {
                // A real rewrite between samples so every refresh does
                // genuine work (untimed: the store is the mutation, the
                // refresh is what serving pays).
                let row = rng.gen_range(0..rows);
                let values = random_row(&mut rng, STAGES, levels);
                am.store(row, &values).expect("store");
                let t0 = Instant::now();
                let repacked = snap.refresh_rows(&am, [row]);
                let dt = t0.elapsed().as_nanos() as u64;
                assert_eq!(repacked, 1);
                dt
            })
            .collect();
        let full = median_ns(&mut full_ns);
        let single = median_ns(&mut single_ns);
        let ratio = full as f64 / single.max(1) as f64;
        if rows == GATE_ROWS {
            gate_ratio = ratio;
        }
        rline!(rpt, "{rows:>8} {full:>16} {single:>16} {ratio:>9.1}x");
        repack_rows_json.push(
            JsonMap::new()
                .int("rows", rows as i64)
                .int("full_recompile_ns", full as i64)
                .int("single_row_refresh_ns", single as i64)
                .num("ratio", ratio),
        );
    }
    rline!(
        rpt,
        "repack-cost gate (single-row refresh >= 10x cheaper at {GATE_ROWS} rows): {} ({gate_ratio:.1}x)",
        if gate_ratio >= 10.0 { "PASS" } else { "FAIL" }
    );
    assert!(
        gate_ratio >= 10.0,
        "single-row refresh only {gate_ratio:.1}x cheaper than a full recompile at {GATE_ROWS} rows"
    );

    // ------------------------------------------------------------------
    // 2. Serving latency under a sustained write mix: identical query
    //    streams against a read-only twin and a churned engine whose
    //    every batch crosses an incremental repack + epoch swap.
    // ------------------------------------------------------------------
    let (rows, stages, batches, batch_size, writes_per_batch) = if quick {
        (128, 64, 48, 32, 2)
    } else {
        (256, 64, 160, 32, 2)
    };
    rpt.header(&format!(
        "latency under writes: {rows}x{stages}, {batches} batches x {batch_size} queries, \
         {writes_per_batch} rewrites/batch"
    ));
    let cfg = ArrayConfig::paper_default()
        .with_stages(stages)
        .with_rows(rows);
    let levels = cfg.encoding.levels() as u32;
    let resilience = ResilienceConfig {
        spare_rows: 8,
        ..Default::default()
    };
    let build = |tag: u64| -> (ResilientEngine, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed ^ tag);
        let mut engine =
            ResilientEngine::new(cfg, resilience, RuntimeConfig::default()).expect("engine");
        for row in 0..rows {
            let values = random_row(&mut rng, stages, levels);
            engine.store(row, &values).expect("store");
        }
        (engine, rng)
    };
    // Same population seed: the engines serve identical contents.
    let (mut read_only, _) = build(0x0A11);
    let (mut churned, mut write_rng) = build(0x0A11);
    let mut query_rng = StdRng::seed_from_u64(seed ^ 0x0B22);
    let mut batches_q = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut batch = BatchQuery::new(stages);
        for _ in 0..batch_size {
            batch
                .push(&random_row(&mut query_rng, stages, levels))
                .expect("push");
        }
        batches_q.push(batch);
    }
    // Warm-up: both engines promote to the compiled tier before timing.
    read_only.serve(&batches_q[0]).expect("warm-up");
    churned.serve(&batches_q[0]).expect("warm-up");

    let mut read_us: Vec<u64> = Vec::with_capacity(batches);
    for batch in &batches_q {
        let t0 = Instant::now();
        let out = read_only.serve(batch).expect("read-only serve");
        read_us.push(t0.elapsed().as_micros() as u64);
        assert_eq!(out.answered(), batch_size);
    }
    let mut write_us: Vec<u64> = Vec::with_capacity(batches);
    for batch in &batches_q {
        for _ in 0..writes_per_batch {
            let row = write_rng.gen_range(0..rows);
            let values = random_row(&mut write_rng, stages, levels);
            churned.store(row, &values).expect("store");
        }
        // The serve pays the repack + epoch swap for the writes above.
        let t0 = Instant::now();
        let out = churned.serve(batch).expect("churned serve");
        write_us.push(t0.elapsed().as_micros() as u64);
        assert_eq!(out.answered(), batch_size);
    }
    let (read_p50, read_p99) = (
        percentile(&mut read_us, 50.0),
        percentile(&mut read_us, 99.0),
    );
    let (write_p50, write_p99) = (
        percentile(&mut write_us, 50.0),
        percentile(&mut write_us, 99.0),
    );
    let p99_ratio = write_p99 as f64 / read_p99.max(1) as f64;
    let churn_stats = *churned.stats();
    rline!(
        rpt,
        "read-only: p50 {read_p50} us, p99 {read_p99} us | under writes: p50 {write_p50} us, \
         p99 {write_p99} us (ratio {p99_ratio:.2}x)"
    );
    rline!(
        rpt,
        "churned engine: {} user writes, {} incremental repacks covering {} rows, \
         {} epoch swaps, {} full recompiles",
        churn_stats.user_writes,
        churn_stats.incremental_repacks,
        churn_stats.rows_repacked,
        churn_stats.epoch_swaps,
        churn_stats
            .recompiles
            .saturating_sub(churn_stats.incremental_repacks)
    );
    rline!(
        rpt,
        "write-latency gate (p99 under writes <= 2x read-only p99): {}",
        if p99_ratio <= 2.0 { "PASS" } else { "FAIL" }
    );
    assert!(
        p99_ratio <= 2.0,
        "p99 under writes ({write_p99} us) exceeded 2x the read-only p99 ({read_p99} us)"
    );
    assert!(
        churn_stats.incremental_repacks > 0,
        "the write mix never exercised the incremental repack path"
    );

    // ------------------------------------------------------------------
    // 3. Mutation chaos: the acceptance campaign, pure and faulted.
    // ------------------------------------------------------------------
    rpt.header("mutation chaos campaign (independently replayed reference judge)");
    let pure_cfg = MutationChaosConfig::paper_default();
    let pure = run_mutation_chaos(&pure_cfg).expect("pure campaign");
    rline!(
        rpt,
        "pure mutation: {} slots, {} answered, {} wrong, {} silent wrong; \
         {} user writes -> {} physical ({:.3}x), {} rotations, {} refresh rewrites",
        pure.total_queries,
        pure.answered,
        pure.wrong,
        pure.silent_wrong,
        pure.user_writes,
        pure.physical_writes,
        pure.write_amplification(),
        pure.wear_rotations,
        pure.refresh_rewrites
    );
    let faulted_cfg = MutationChaosConfig::paper_default().with_faults(0.01);
    let faulted = run_mutation_chaos(&faulted_cfg).expect("faulted campaign");
    rline!(
        rpt,
        "faulted (1% cells): {} slots, {} answered, {} wrong ({} flagged degraded), \
         {} silent wrong, {} faults injected",
        faulted.total_queries,
        faulted.answered,
        faulted.wrong,
        faulted.degraded_answers,
        faulted.silent_wrong,
        faulted.faults_injected
    );
    rline!(
        rpt,
        "chaos gates — >=1000 slots: {} | pure-mutation zero-wrong: {} | faulted zero-silent-wrong: {}",
        if pure.total_queries >= 1000 { "PASS" } else { "FAIL" },
        if pure.wrong == 0 { "PASS" } else { "FAIL" },
        if faulted.silent_wrong == 0 { "PASS" } else { "FAIL" }
    );
    assert!(
        pure.total_queries >= 1000,
        "campaign must cover >= 1000 slots"
    );
    assert_eq!(
        pure.wrong, 0,
        "pure-mutation campaign produced wrong answers"
    );
    assert_eq!(
        faulted.silent_wrong, 0,
        "faulted campaign produced silent wrong answers"
    );
    rpt.finish();

    JsonMap::new()
        .str(
            "scenario",
            "online mutation: repack cost, latency under writes, chaos campaign",
        )
        .obj(
            "config",
            JsonMap::new()
                .int("gate_rows", GATE_ROWS as i64)
                .int("repack_stages", STAGES as i64)
                .int("latency_rows", rows as i64)
                .int("latency_stages", stages as i64)
                .int("batches", batches as i64)
                .int("batch_size", batch_size as i64)
                .int("writes_per_batch", writes_per_batch as i64)
                .bool("quick", quick),
        )
        .arr("repack", repack_rows_json)
        .num("repack_ratio_at_gate", gate_ratio)
        .bool("repack_gate", gate_ratio >= 10.0)
        .obj(
            "latency",
            JsonMap::new()
                .int("read_only_p50_us", read_p50 as i64)
                .int("read_only_p99_us", read_p99 as i64)
                .int("under_writes_p50_us", write_p50 as i64)
                .int("under_writes_p99_us", write_p99 as i64)
                .num("p99_ratio", p99_ratio)
                .bool("p99_gate", p99_ratio <= 2.0)
                .int(
                    "incremental_repacks",
                    churn_stats.incremental_repacks as i64,
                )
                .int("epoch_swaps", churn_stats.epoch_swaps as i64),
        )
        .obj("chaos_pure", chaos_json(&pure))
        .obj("chaos_faulted", chaos_json(&faulted))
        .finish("BENCH_mutation");
}
