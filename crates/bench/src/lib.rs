//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! Each `src/bin/` binary reproduces one evaluation artifact:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig1_fefet_iv` | Fig. 1(c)(d): FeFET I_D–V_G curves, 4 states, 60-device variation |
//! | `fig2_cell_truth` | Fig. 2(d-f): 2-FeFET cell match/mismatch behaviour |
//! | `fig4_waveforms` | Fig. 4: transient edges and delay-vs-mismatch linearity |
//! | `fig5_scaling` | Fig. 5: energy/delay vs array size, load cap, and V_DD |
//! | `fig6_monte_carlo` | Fig. 6: worst-case delay distributions under V_TH variation |
//! | `table1_comparison` | Table I: energy/bit across all six designs |
//! | `fig7_hdc_accuracy` | Fig. 7: HDC accuracy vs precision and dimensionality |
//! | `fig8_gpu_comparison` | Fig. 8: TD-AM vs GPU speedup and energy efficiency |
//! | `ablation_vc_vs_vr` | Design ablation: variable-capacitance vs variable-resistance stages |
//! | `ablation_two_step` | Design ablation: 2-step scheme vs naive single-pass chain |
//! | `ext_fault_campaign` | Extension: fault-rate sweeps with/without detection + spare-row repair |
//! | `ext_batch_throughput` | Extension: batched compiled-LUT serving vs sequential search, plus the pipelined cycle model |
//! | `ext_chaos_availability` | Extension: serving-runtime availability under injected cell faults + worker panics |
//! | `ext_recovery` | Extension: crash-injection campaign over the checkpoint/journal store + warm-start restore |
//!
//! `benches/` contains Criterion micro-benchmarks of the underlying
//! engines (device model, circuit solver, chain evaluation, HDC
//! primitives, batched serving).
//!
//! Pass `--quick` to any binary to run a reduced grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

/// Returns true when `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Returns true when `--save` was passed on the command line:
/// [`Report::finish`] then archives the run's output under `results/`.
pub fn save_mode() -> bool {
    std::env::args().any(|a| a == "--save")
}

/// Collects a benchmark binary's printed lines so the run can be
/// archived under `results/` — written through the same atomic
/// temp-file + rename helper ([`tdam::store::atomic_write`]) the
/// checkpoint store uses, so an interrupted run never leaves a
/// half-written results file.
///
/// Use the [`rline!`](crate::rline) macro to print-and-capture:
///
/// ```
/// use tdam_bench::{rline, Report};
/// let mut rpt = Report::new("doc_example");
/// rline!(rpt, "answered {} of {}", 9, 10);
/// rline!(rpt); // blank line
/// assert_eq!(rpt.text(), "answered 9 of 10\n\n");
/// ```
pub struct Report {
    name: String,
    lines: Vec<String>,
}

impl Report {
    /// Starts a report for the binary `name` (the archive becomes
    /// `results/<name>.txt`).
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            lines: Vec::new(),
        }
    }

    /// Prints one line to stdout and captures it for the archive.
    pub fn line(&mut self, text: impl Into<String>) {
        let text = text.into();
        println!("{text}");
        self.lines.push(text);
    }

    /// Prints and captures a section header.
    pub fn header(&mut self, title: &str) {
        self.line(format!("\n=== {title} ==="));
    }

    /// Prints and captures an aligned series of `(x, y)` pairs.
    pub fn series(&mut self, x_label: &str, y_label: &str, points: &[(f64, f64)]) {
        self.line(format!("{x_label:>16} {y_label:>20}"));
        for (x, y) in points {
            self.line(format!("{x:>16.4} {y:>20.6e}"));
        }
    }

    /// The captured output, one `\n`-terminated line per [`Report::line`].
    pub fn text(&self) -> String {
        let mut text = String::new();
        for line in &self.lines {
            text.push_str(line);
            text.push('\n');
        }
        text
    }

    /// Atomically writes the captured output to `<dir>/<name>.txt`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic writer.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("{}.txt", self.name));
        std::fs::create_dir_all(dir)?;
        tdam::store::atomic_write(&path, self.text().as_bytes())?;
        Ok(path)
    }

    /// Archives the run under `results/` when `--save` was passed.
    pub fn finish(&self) {
        if save_mode() {
            match self.save(Path::new("results")) {
                Ok(path) => eprintln!("archived to {}", path.display()),
                Err(e) => eprintln!("failed to archive results: {e}"),
            }
        }
    }
}

/// Prints a formatted line to stdout *and* captures it into a
/// [`Report`]; with no format arguments, emits a blank line.
#[macro_export]
macro_rules! rline {
    ($report:expr $(,)?) => {
        $report.line("")
    };
    ($report:expr, $($arg:tt)+) => {
        $report.line(format!($($arg)+))
    };
}

/// Formats a quantity in engineering notation with a unit.
pub fn eng(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    let exp = value.abs().log10().floor() as i32;
    let eng_exp = (exp.div_euclid(3)) * 3;
    let scaled = value / 10f64.powi(eng_exp);
    let prefix = match eng_exp {
        -15 => "f",
        -12 => "p",
        -9 => "n",
        -6 => "µ",
        -3 => "m",
        0 => "",
        3 => "k",
        6 => "M",
        9 => "G",
        12 => "T",
        _ => return format!("{value:.3e} {unit}"),
    };
    format!("{scaled:.3} {prefix}{unit}")
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints an aligned series of `(x, y)` pairs with column labels.
pub fn print_series(x_label: &str, y_label: &str, points: &[(f64, f64)]) {
    println!("{x_label:>16} {y_label:>20}");
    for (x, y) in points {
        println!("{x:>16.4} {y:>20.6e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_notation() {
        assert_eq!(eng(0.0, "J"), "0 J");
        assert_eq!(eng(1.5e-15, "J"), "1.500 fJ");
        assert_eq!(eng(2.2e-9, "s"), "2.200 ns");
        assert_eq!(eng(3.1e3, "Hz"), "3.100 kHz");
        assert_eq!(eng(42.0, "V"), "42.000 V");
    }

    #[test]
    fn eng_handles_out_of_range() {
        assert!(eng(1e30, "x").contains('e'));
    }

    #[test]
    fn report_captures_lines_and_saves_atomically() {
        let mut rpt = Report::new("unit_report");
        rpt.header("section");
        rline!(rpt, "x = {}", 42);
        rline!(rpt);
        assert_eq!(rpt.text(), "\n=== section ===\nx = 42\n\n");

        let dir = std::env::temp_dir().join(format!("tdam-bench-report-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = rpt.save(&dir).expect("save");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), rpt.text());
        let tmp_left = std::fs::read_dir(&dir)
            .expect("read_dir")
            .filter_map(|e| e.ok())
            .any(|e| e.path().extension().is_some_and(|x| x == "tmp"));
        assert!(!tmp_left);
        std::fs::remove_dir_all(&dir).ok();
    }
}
