//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! Each `src/bin/` binary reproduces one evaluation artifact:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig1_fefet_iv` | Fig. 1(c)(d): FeFET I_D–V_G curves, 4 states, 60-device variation |
//! | `fig2_cell_truth` | Fig. 2(d-f): 2-FeFET cell match/mismatch behaviour |
//! | `fig4_waveforms` | Fig. 4: transient edges and delay-vs-mismatch linearity |
//! | `fig5_scaling` | Fig. 5: energy/delay vs array size, load cap, and V_DD |
//! | `fig6_monte_carlo` | Fig. 6: worst-case delay distributions under V_TH variation |
//! | `table1_comparison` | Table I: energy/bit across all six designs |
//! | `fig7_hdc_accuracy` | Fig. 7: HDC accuracy vs precision and dimensionality |
//! | `fig8_gpu_comparison` | Fig. 8: TD-AM vs GPU speedup and energy efficiency |
//! | `ablation_vc_vs_vr` | Design ablation: variable-capacitance vs variable-resistance stages |
//! | `ablation_two_step` | Design ablation: 2-step scheme vs naive single-pass chain |
//! | `ext_fault_campaign` | Extension: fault-rate sweeps with/without detection + spare-row repair |
//! | `ext_batch_throughput` | Extension: batched compiled-LUT serving vs sequential search, plus the pipelined cycle model |
//! | `ext_chaos_availability` | Extension: serving-runtime availability under injected cell faults + worker panics |
//! | `ext_recovery` | Extension: crash-injection campaign over the checkpoint/journal store + warm-start restore |
//! | `ext_serve_scale` | Extension: sharded TCP serving front-end — load sweep, guaranteed shedding, warm-standby failover |
//! | `ext_mutation` | Extension: online mutation — incremental repack cost, p99 under a live write mix, mutation-chaos correctness campaign |
//!
//! `benches/` contains Criterion micro-benchmarks of the underlying
//! engines (device model, circuit solver, chain evaluation, HDC
//! primitives, batched serving).
//!
//! Pass `--quick` to any binary to run a reduced grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

/// Returns true when `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Returns true when `--save` was passed on the command line:
/// [`Report::finish`] then archives the run's output under `results/`.
pub fn save_mode() -> bool {
    std::env::args().any(|a| a == "--save")
}

/// Collects a benchmark binary's printed lines so the run can be
/// archived under `results/` — written through the same atomic
/// temp-file + rename helper ([`tdam::store::atomic_write`]) the
/// checkpoint store uses, so an interrupted run never leaves a
/// half-written results file.
///
/// Use the [`rline!`](crate::rline) macro to print-and-capture:
///
/// ```
/// use tdam_bench::{rline, Report};
/// let mut rpt = Report::new("doc_example");
/// rline!(rpt, "answered {} of {}", 9, 10);
/// rline!(rpt); // blank line
/// assert_eq!(rpt.text(), "answered 9 of 10\n\n");
/// ```
pub struct Report {
    name: String,
    lines: Vec<String>,
}

impl Report {
    /// Starts a report for the binary `name` (the archive becomes
    /// `results/<name>.txt`).
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            lines: Vec::new(),
        }
    }

    /// Prints one line to stdout and captures it for the archive.
    pub fn line(&mut self, text: impl Into<String>) {
        let text = text.into();
        println!("{text}");
        self.lines.push(text);
    }

    /// Prints and captures a section header.
    pub fn header(&mut self, title: &str) {
        self.line(format!("\n=== {title} ==="));
    }

    /// Prints and captures an aligned series of `(x, y)` pairs.
    pub fn series(&mut self, x_label: &str, y_label: &str, points: &[(f64, f64)]) {
        self.line(format!("{x_label:>16} {y_label:>20}"));
        for (x, y) in points {
            self.line(format!("{x:>16.4} {y:>20.6e}"));
        }
    }

    /// The captured output, one `\n`-terminated line per [`Report::line`].
    pub fn text(&self) -> String {
        let mut text = String::new();
        for line in &self.lines {
            text.push_str(line);
            text.push('\n');
        }
        text
    }

    /// Atomically writes the captured output to `<dir>/<name>.txt`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic writer.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("{}.txt", self.name));
        std::fs::create_dir_all(dir)?;
        tdam::store::atomic_write(&path, self.text().as_bytes())?;
        Ok(path)
    }

    /// Archives the run under `results/` when `--save` was passed.
    pub fn finish(&self) {
        if save_mode() {
            match self.save(Path::new("results")) {
                Ok(path) => eprintln!("archived to {}", path.display()),
                Err(e) => eprintln!("failed to archive results: {e}"),
            }
        }
    }
}

/// Minimal hand-rolled JSON object builder for machine-readable
/// benchmark sidecars (the harness deliberately has no JSON
/// dependency). Keys keep insertion order; floats render via Rust's
/// shortest round-trip formatting, with non-finite values mapped to
/// `null`.
///
/// ```
/// use tdam_bench::JsonMap;
/// let json = JsonMap::new()
///     .str("scenario", "smoke")
///     .int("rows", 64)
///     .num("qps", 1.5)
///     .obj("nested", JsonMap::new().num("x", f64::NAN));
/// assert_eq!(
///     json.render(),
///     "{\n  \"scenario\": \"smoke\",\n  \"rows\": 64,\n  \"qps\": 1.5,\n  \
///      \"nested\": {\n    \"x\": null\n  }\n}"
/// );
/// ```
#[derive(Default)]
pub struct JsonMap {
    entries: Vec<(String, String)>,
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonMap {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, key: &str, rendered: String) -> Self {
        self.entries.push((json_escape(key), rendered));
        self
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(self, key: &str, value: &str) -> Self {
        let rendered = format!("\"{}\"", json_escape(value));
        self.push(key, rendered)
    }

    /// Adds an integer field.
    #[must_use]
    pub fn int(self, key: &str, value: i64) -> Self {
        self.push(key, value.to_string())
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.push(key, value.to_string())
    }

    /// Adds a number field; NaN and infinities become `null`.
    #[must_use]
    pub fn num(self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.push(key, rendered)
    }

    /// Adds a nested object field.
    #[must_use]
    pub fn obj(self, key: &str, value: JsonMap) -> Self {
        let rendered = value.render();
        self.push(key, rendered)
    }

    /// Adds an array-of-objects field (e.g. a sweep's per-point rows).
    #[must_use]
    pub fn arr(self, key: &str, values: Vec<JsonMap>) -> Self {
        if values.is_empty() {
            return self.push(key, "[]".to_string());
        }
        let mut rendered = String::from("[\n");
        for (i, value) in values.iter().enumerate() {
            let body = value.render().replace('\n', "\n  ");
            rendered.push_str(&format!("  {body}"));
            rendered.push_str(if i + 1 < values.len() { ",\n" } else { "\n" });
        }
        rendered.push(']');
        self.push(key, rendered)
    }

    /// Renders the object with two-space indentation.
    pub fn render(&self) -> String {
        if self.entries.is_empty() {
            return "{}".to_string();
        }
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            // Re-indent nested renders so depth composes.
            let value = value.replace('\n', "\n  ");
            out.push_str(&format!("  \"{key}\": {value}"));
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push('}');
        out
    }

    /// Atomically writes `<dir>/<name>.json` (trailing newline added).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the atomic writer.
    pub fn save(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("{name}.json"));
        std::fs::create_dir_all(dir)?;
        let mut text = self.render();
        text.push('\n');
        tdam::store::atomic_write(&path, text.as_bytes())?;
        Ok(path)
    }

    /// Archives the sidecar to `results/<name>.json` when `--save` was
    /// passed, mirroring [`Report::finish`].
    pub fn finish(&self, name: &str) {
        if save_mode() {
            match self.save(Path::new("results"), name) {
                Ok(path) => eprintln!("archived to {}", path.display()),
                Err(e) => eprintln!("failed to archive JSON sidecar: {e}"),
            }
        }
    }
}

/// Prints a formatted line to stdout *and* captures it into a
/// [`Report`]; with no format arguments, emits a blank line.
#[macro_export]
macro_rules! rline {
    ($report:expr $(,)?) => {
        $report.line("")
    };
    ($report:expr, $($arg:tt)+) => {
        $report.line(format!($($arg)+))
    };
}

/// Formats a quantity in engineering notation with a unit.
pub fn eng(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    let exp = value.abs().log10().floor() as i32;
    let eng_exp = (exp.div_euclid(3)) * 3;
    let scaled = value / 10f64.powi(eng_exp);
    let prefix = match eng_exp {
        -15 => "f",
        -12 => "p",
        -9 => "n",
        -6 => "µ",
        -3 => "m",
        0 => "",
        3 => "k",
        6 => "M",
        9 => "G",
        12 => "T",
        _ => return format!("{value:.3e} {unit}"),
    };
    format!("{scaled:.3} {prefix}{unit}")
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints an aligned series of `(x, y)` pairs with column labels.
pub fn print_series(x_label: &str, y_label: &str, points: &[(f64, f64)]) {
    println!("{x_label:>16} {y_label:>20}");
    for (x, y) in points {
        println!("{x:>16.4} {y:>20.6e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_notation() {
        assert_eq!(eng(0.0, "J"), "0 J");
        assert_eq!(eng(1.5e-15, "J"), "1.500 fJ");
        assert_eq!(eng(2.2e-9, "s"), "2.200 ns");
        assert_eq!(eng(3.1e3, "Hz"), "3.100 kHz");
        assert_eq!(eng(42.0, "V"), "42.000 V");
    }

    #[test]
    fn eng_handles_out_of_range() {
        assert!(eng(1e30, "x").contains('e'));
    }

    #[test]
    fn json_map_escapes_and_nests() {
        let json = JsonMap::new()
            .str("a \"b\"\n", "x\\y")
            .int("n", -3)
            .bool("ok", true)
            .num("inf", f64::INFINITY)
            .obj(
                "inner",
                JsonMap::new().num("pi", 3.5).obj("empty", JsonMap::new()),
            );
        let text = json.render();
        assert!(text.contains("\"a \\\"b\\\"\\n\": \"x\\\\y\""));
        assert!(text.contains("\"n\": -3"));
        assert!(text.contains("\"ok\": true"));
        assert!(text.contains("\"inf\": null"));
        assert!(text.contains("    \"pi\": 3.5"));
        assert!(text.contains("\"empty\": {}"));
    }

    #[test]
    fn json_map_renders_arrays() {
        let json = JsonMap::new().arr("empty", Vec::new()).arr(
            "sweep",
            vec![
                JsonMap::new().int("clients", 1).num("qps", 10.0),
                JsonMap::new().int("clients", 2).num("qps", 19.5),
            ],
        );
        let text = json.render();
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("\"sweep\": [\n    {\n      \"clients\": 1"));
        assert!(text.contains("},\n    {\n      \"clients\": 2"));
        assert!(text.ends_with("  ]\n}"));
    }

    #[test]
    fn json_map_saves_atomically() {
        let dir = std::env::temp_dir().join(format!("tdam-bench-json-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let json = JsonMap::new().num("qps", 125.0);
        let path = json.save(&dir, "BENCH_unit").expect("save");
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text, "{\n  \"qps\": 125\n}\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_captures_lines_and_saves_atomically() {
        let mut rpt = Report::new("unit_report");
        rpt.header("section");
        rline!(rpt, "x = {}", 42);
        rline!(rpt);
        assert_eq!(rpt.text(), "\n=== section ===\nx = 42\n\n");

        let dir = std::env::temp_dir().join(format!("tdam-bench-report-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = rpt.save(&dir).expect("save");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), rpt.text());
        let tmp_left = std::fs::read_dir(&dir)
            .expect("read_dir")
            .filter_map(|e| e.ok())
            .any(|e| e.path().extension().is_some_and(|x| x == "tmp"));
        assert!(!tmp_left);
        std::fs::remove_dir_all(&dir).ok();
    }
}
