use tdam_hdc::datasets::{Dataset, DatasetKind};
use tdam_hdc::encoder::IdLevelEncoder;
use tdam_hdc::mapping::TdamHdcInference;
use tdam_hdc::quantize::QuantizedModel;
use tdam_hdc::train::HdcModel;

fn main() {
    let ds = Dataset::generate(DatasetKind::Isolet, 20, 15, 0xD5EED);
    let enc = IdLevelEncoder::new(512, ds.features(), 32, (0.0, 1.0), 0xF168).unwrap();
    let model = HdcModel::train(&enc, &ds.train, ds.classes(), 2).unwrap();
    let quant = QuantizedModel::from_model(&model, 2).unwrap();
    let hw = TdamHdcInference::new(&quant, 128, 0.6).unwrap();
    let h = enc.encode(&ds.test[0].0).unwrap();
    let q = quant.quantize_query(&h).unwrap();
    let r = hw.classify(&q).unwrap();
    println!("chunks {} classes {}", hw.chunks(), hw.classes());
    println!("distances: {:?}", &r.distances[..8.min(r.distances.len())]);
    println!("energy: {}", r.energy);
    println!("latency: {:.3e}", r.latency);
}
