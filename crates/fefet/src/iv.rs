//! I_D–V_G sweep helpers regenerating Fig. 1(c)(d) of the paper.

use crate::device::{Fefet, FefetParams};
use crate::mosfet::{ids, MosParams};
use crate::programming::{program_state, ProgramConfig, ProgramError};
use crate::variation::VthVariation;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One I_D–V_G curve: paired gate voltages and drain currents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdVgCurve {
    /// Gate voltages, volts.
    pub v_g: Vec<f64>,
    /// Drain currents, amperes.
    pub i_d: Vec<f64>,
    /// The programmed state this curve was measured at, if any.
    pub state: Option<u8>,
}

impl IdVgCurve {
    /// Extracts a constant-current threshold voltage: the gate voltage at
    /// which `i_d` first crosses `i_crit`, linearly interpolated. Returns
    /// `None` if the curve never crosses.
    pub fn extract_vth(&self, i_crit: f64) -> Option<f64> {
        for w in self.v_g.windows(2).zip(self.i_d.windows(2)) {
            let ((v0, v1), (i0, i1)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
            if i0 < i_crit && i1 >= i_crit {
                let frac = (i_crit - i0) / (i1 - i0);
                return Some(v0 + frac * (v1 - v0));
            }
        }
        None
    }
}

impl IdVgCurve {
    /// Extracts the subthreshold swing in mV/decade: the shallowest
    /// log-current slope over the decades below `i_on_threshold`.
    /// Returns `None` for curves without a usable subthreshold region.
    pub fn subthreshold_swing(&self, i_on_threshold: f64) -> Option<f64> {
        let mut best: Option<f64> = None;
        for w in self.v_g.windows(2).zip(self.i_d.windows(2)) {
            let ((v0, v1), (i0, i1)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
            if i0 > 1e-15 && i1 > i0 && i1 < i_on_threshold {
                let decades = (i1 / i0).log10();
                if decades > 1e-6 {
                    let swing = (v1 - v0) / decades * 1e3; // mV/decade
                    best = Some(best.map_or(swing, |b: f64| b.min(swing)));
                }
            }
        }
        best
    }

    /// Peak transconductance `max dI_D/dV_G` over the sweep, siemens.
    /// Returns `None` for degenerate curves.
    pub fn peak_transconductance(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for w in self.v_g.windows(2).zip(self.i_d.windows(2)) {
            let ((v0, v1), (i0, i1)) = ((w.0[0], w.0[1]), (w.1[0], w.1[1]));
            if v1 > v0 {
                let gm = (i1 - i0) / (v1 - v0);
                best = Some(best.map_or(gm, |b: f64| b.max(gm)));
            }
        }
        best
    }

    /// ON/OFF current ratio between the sweep extremes.
    /// Returns `None` when the off current underflows.
    pub fn on_off_ratio(&self) -> Option<f64> {
        let off = *self.i_d.first()?;
        let on = *self.i_d.last()?;
        if off <= 0.0 {
            None
        } else {
            Some(on / off)
        }
    }
}

/// Sweeps the I_D–V_G characteristic of a programmed FeFET at a fixed drain
/// bias.
pub fn sweep_fefet(dev: &Fefet, v_ds: f64, v_g_range: (f64, f64), points: usize) -> IdVgCurve {
    let (lo, hi) = v_g_range;
    let v_g: Vec<f64> = (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points.max(2) - 1) as f64)
        .collect();
    let i_d = v_g.iter().map(|&vg| dev.ids(vg, v_ds).id).collect();
    IdVgCurve {
        v_g,
        i_d,
        state: None,
    }
}

/// Sweeps I_D–V_G for an ideal MOSFET with an explicitly-set threshold
/// voltage (the "simulation model" curves of Fig. 1(d)).
pub fn sweep_mosfet(
    params: &MosParams,
    v_ds: f64,
    v_g_range: (f64, f64),
    points: usize,
) -> IdVgCurve {
    let (lo, hi) = v_g_range;
    let v_g: Vec<f64> = (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points.max(2) - 1) as f64)
        .collect();
    let i_d = v_g.iter().map(|&vg| ids(params, vg, v_ds).id).collect();
    IdVgCurve {
        v_g,
        i_d,
        state: None,
    }
}

/// Generates the device-to-device measurement ensemble of Fig. 1(c):
/// `devices` FeFETs are each programmed to every state (write-verify on a
/// fresh sampled device), read-disturb-free sweeps are taken, and the
/// resulting curves are perturbed per-state with the experimental σ model.
///
/// # Errors
///
/// Propagates [`ProgramError`] if an outlier device cannot be programmed.
pub fn device_to_device_curves<R: Rng + ?Sized>(
    devices: usize,
    v_ds: f64,
    points: usize,
    rng: &mut R,
) -> Result<Vec<IdVgCurve>, ProgramError> {
    let variation = VthVariation::experimental();
    let base = FefetParams {
        preisach: crate::preisach::PreisachParams {
            domains: 256,
            ..Default::default()
        },
        ..FefetParams::default()
    };
    let cfg = ProgramConfig::default();
    let mut curves = Vec::with_capacity(devices * crate::PAPER_STATES);
    for _ in 0..devices {
        for state in 0..crate::PAPER_STATES as u8 {
            let mut dev = Fefet::sampled(base, 0.08, rng);
            program_state(&mut dev, state, &cfg)?;
            // Residual (read-noise + retention) variation per the fitted
            // per-state sigma: shift the effective vth.
            let vth = variation
                .sample_vth(state, rng)
                .expect("state < PAPER_STATES");
            let mos = dev.effective_mos().with_vth(vth);
            let mut curve = sweep_mosfet(&mos, v_ds, (-0.2, 1.8), points);
            curve.state = Some(state);
            curves.push(curve);
        }
    }
    Ok(curves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tdam_num::Summary;

    #[test]
    fn vth_extraction_recovers_programmed_states() {
        let cfg = ProgramConfig::default();
        for (state, &target) in crate::PAPER_VTH.iter().enumerate() {
            let mut dev = Fefet::new(FefetParams {
                preisach: crate::preisach::PreisachParams {
                    domains: 512,
                    ..Default::default()
                },
                ..FefetParams::default()
            });
            program_state(&mut dev, state as u8, &cfg).unwrap();
            let curve = sweep_fefet(&dev, 0.05, (-0.2, 1.8), 400);
            // Constant-current vth extraction lands near (slightly below,
            // due to subthreshold current) the programmed value.
            let vth = curve.extract_vth(1e-7).expect("curve crosses 100 nA");
            assert!(
                (vth - target).abs() < 0.15,
                "state {state}: extracted {vth}, target {target}"
            );
        }
    }

    #[test]
    fn characterization_metrics() {
        let mut dev = Fefet::new(FefetParams::default());
        dev.stack_mut().saturate(); // vth 0.2
        let curve = sweep_fefet(&dev, 1.1, (-0.2, 1.8), 400);
        // Subthreshold swing: n·V_t·ln10 ≈ 1.35 · 25.85 mV · 2.3 ≈ 80 mV/dec.
        let ss = curve.subthreshold_swing(1e-7).expect("subthreshold region");
        assert!(
            (60.0..110.0).contains(&ss),
            "swing {ss} mV/dec should be near n·V_t·ln10 ≈ 80"
        );
        let gm = curve.peak_transconductance().expect("gm");
        assert!(gm > 1e-5, "peak gm {gm}");
        let ratio = curve.on_off_ratio().expect("ratio");
        assert!(ratio > 1e5, "on/off {ratio}");
    }

    #[test]
    fn curves_are_monotone() {
        let dev = Fefet::new(FefetParams::default());
        let curve = sweep_fefet(&dev, 0.05, (-0.2, 1.8), 100);
        for w in curve.i_d.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn extract_vth_none_when_never_crossing() {
        let dev = Fefet::new(FefetParams::default()); // erased: vth 1.4
        let curve = sweep_fefet(&dev, 0.05, (-0.2, 0.2), 50);
        assert_eq!(curve.extract_vth(1e-5), None);
    }

    #[test]
    fn d2d_ensemble_statistics_follow_model() {
        let mut rng = StdRng::seed_from_u64(60);
        let curves = device_to_device_curves(30, 0.05, 300, &mut rng).unwrap();
        assert_eq!(curves.len(), 30 * 4);
        // Extracted vth spread for state 2 should be close to 45 mV.
        let vths: Vec<f64> = curves
            .iter()
            .filter(|c| c.state == Some(2))
            .filter_map(|c| c.extract_vth(1e-7))
            .collect();
        assert_eq!(vths.len(), 30);
        let s = Summary::from_slice(&vths);
        assert!(
            (s.std_dev - 45e-3).abs() < 25e-3,
            "state-2 sigma {} should be near 45 mV",
            s.std_dev
        );
    }

    #[test]
    fn state_separation_in_ensemble() {
        // Even with variation, the four state clusters must not overlap for
        // a healthy 2-bit cell: check worst-case gap between adjacent state
        // means is far larger than intra-state spread.
        let mut rng = StdRng::seed_from_u64(61);
        let curves = device_to_device_curves(20, 0.05, 300, &mut rng).unwrap();
        let mut means = Vec::new();
        for state in 0..4u8 {
            let vths: Vec<f64> = curves
                .iter()
                .filter(|c| c.state == Some(state))
                .filter_map(|c| c.extract_vth(1e-7))
                .collect();
            means.push(Summary::from_slice(&vths).mean);
        }
        for w in means.windows(2) {
            assert!(w[1] - w[0] > 0.25, "adjacent states too close: {means:?}");
        }
    }
}
