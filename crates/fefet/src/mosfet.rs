//! Smooth single-piece MOSFET drain-current model.
//!
//! An EKV-flavoured interpolation covering subthreshold (exponential),
//! triode and saturation (square-law with channel-length modulation) in one
//! continuously differentiable expression:
//!
//! ```text
//! I_D = 2·n·β·V_t² · softplus²((V_GS − V_TH)/(2·n·V_t)) · (1 − e^(−V_DS/V_t)) · (1 + λ·V_DS)
//! ```
//!
//! Smoothness matters: the circuit simulator's Newton iteration needs
//! continuous `g_m` and `g_ds`, which this module returns analytically.

use serde::{Deserialize, Serialize};

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosPolarity {
    /// N-channel: conducts when `V_GS > V_TH`.
    Nmos,
    /// P-channel: conducts when `V_GS < -V_TH` (with `V_TH` given as a
    /// positive magnitude).
    Pmos,
}

/// MOSFET model parameters for a generic 40 nm-class process.
///
/// These stand in for the UMC 40 nm PDK devices the paper simulates with;
/// absolute currents differ from the foundry model but the RC-delay physics
/// the paper's conclusions rest on are preserved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosParams {
    /// Channel polarity.
    pub polarity: MosPolarity,
    /// Threshold-voltage magnitude in volts.
    pub vth: f64,
    /// Transconductance factor `β = µ·C_ox·W/L` in A/V².
    pub beta: f64,
    /// Subthreshold slope factor `n` (dimensionless, ≥ 1).
    pub n: f64,
    /// Channel-length-modulation coefficient `λ` in 1/V.
    pub lambda: f64,
    /// Thermal voltage `kT/q` in volts.
    pub v_t: f64,
}

impl MosParams {
    /// A minimum-size 40 nm-class NMOS (W = 120 nm, L = 40 nm).
    pub fn nmos_40nm() -> Self {
        Self {
            polarity: MosPolarity::Nmos,
            vth: 0.45,
            beta: 600e-6,
            n: 1.35,
            lambda: 0.15,
            v_t: 0.02585,
        }
    }

    /// A minimum-size 40 nm-class PMOS, widened ~2× to balance mobility.
    pub fn pmos_40nm() -> Self {
        Self {
            polarity: MosPolarity::Pmos,
            vth: 0.45,
            beta: 300e-6,
            n: 1.35,
            lambda: 0.18,
            v_t: 0.02585,
        }
    }

    /// Returns a copy with the threshold voltage replaced (used by the
    /// FeFET wrapper, whose `V_TH` is set by polarization).
    pub fn with_vth(mut self, vth: f64) -> Self {
        self.vth = vth;
        self
    }

    /// Returns a copy scaled to `w_mult` times the reference width.
    pub fn with_width_multiple(mut self, w_mult: f64) -> Self {
        self.beta *= w_mult;
        self
    }

    /// Returns a copy retargeted from 300 K to `kelvin`, applying the
    /// standard first-order temperature dependences:
    ///
    /// - thermal voltage `V_t = kT/q` scales linearly,
    /// - mobility (and therefore `β`) scales as `(T/300)^−1.5`,
    /// - the threshold voltage drifts at −0.8 mV/K.
    ///
    /// # Panics
    ///
    /// Panics for non-positive temperatures.
    pub fn at_temperature(mut self, kelvin: f64) -> Self {
        assert!(kelvin > 0.0, "temperature must be positive kelvin");
        let ratio = kelvin / 300.0;
        self.v_t = 0.02585 * ratio;
        self.beta *= ratio.powf(-1.5);
        self.vth -= 0.8e-3 * (kelvin - 300.0);
        self
    }
}

/// Drain current and small-signal conductances at one bias point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosOperatingPoint {
    /// Drain current in amperes (positive into the drain for NMOS with
    /// `V_DS > 0`).
    pub id: f64,
    /// Transconductance `∂I_D/∂V_GS` in siemens.
    pub gm: f64,
    /// Output conductance `∂I_D/∂V_DS` in siemens.
    pub gds: f64,
}

/// Numerically stable `softplus(x) = ln(1 + e^x)` and its derivative
/// (the logistic sigmoid).
fn softplus(x: f64) -> (f64, f64) {
    if x > 30.0 {
        (x, 1.0)
    } else if x < -30.0 {
        (x.exp(), x.exp())
    } else {
        ((1.0 + x.exp()).ln(), 1.0 / (1.0 + (-x).exp()))
    }
}

/// Evaluates the NMOS-convention current for `v_gs`, `v_ds` referenced to
/// the source, with `v_ds >= 0` assumed by the core expression; negative
/// `v_ds` is handled by source/drain symmetry.
fn ids_nmos_core(p: &MosParams, v_gs: f64, v_ds: f64) -> MosOperatingPoint {
    if v_ds < 0.0 {
        // Swap source and drain: I(vgs, vds) = -I(vgs - vds, -vds).
        let sw = ids_nmos_core(p, v_gs - v_ds, -v_ds);
        return MosOperatingPoint {
            id: -sw.id,
            gm: -sw.gm,
            gds: sw.gm + sw.gds,
        };
    }
    let two_n_vt = 2.0 * p.n * p.v_t;
    let x = (v_gs - p.vth) / two_n_vt;
    let (f, sig) = softplus(x);
    let i0 = 2.0 * p.n * p.beta * p.v_t * p.v_t;
    let g = 1.0 - (-v_ds / p.v_t).exp();
    let dg = (-v_ds / p.v_t).exp() / p.v_t;
    let clm = 1.0 + p.lambda * v_ds;
    let id = i0 * f * f * g * clm;
    let gm = i0 * 2.0 * f * sig / two_n_vt * g * clm;
    let gds = i0 * f * f * (dg * clm + g * p.lambda);
    MosOperatingPoint { id, gm, gds }
}

/// Evaluates the drain current and conductances of a MOSFET.
///
/// Conventions: `v_gs` and `v_ds` are gate and drain voltages relative to
/// the source terminal. For PMOS, pass the *actual* (negative-leaning)
/// voltages; the model mirrors internally. The returned `id` is the current
/// flowing drain→source through the channel (negative for a conducting
/// PMOS), and `gm`/`gds` are the raw partial derivatives of that current
/// with respect to `v_gs`/`v_ds`.
///
/// # Examples
///
/// ```
/// use tdam_fefet::mosfet::{ids, MosParams};
///
/// let n = MosParams::nmos_40nm();
/// let on = ids(&n, 1.1, 1.1);
/// let off = ids(&n, 0.0, 1.1);
/// assert!(on.id / off.id > 1e4, "on/off ratio should be large");
/// ```
pub fn ids(p: &MosParams, v_gs: f64, v_ds: f64) -> MosOperatingPoint {
    match p.polarity {
        MosPolarity::Nmos => ids_nmos_core(p, v_gs, v_ds),
        MosPolarity::Pmos => {
            // Mirror: treat as NMOS with negated controls.
            let m = ids_nmos_core(p, -v_gs, -v_ds);
            MosOperatingPoint {
                id: -m.id,
                gm: m.gm,
                gds: m.gds,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn nmos() -> MosParams {
        MosParams::nmos_40nm()
    }

    #[test]
    fn off_current_small_on_current_large() {
        let p = nmos();
        let off = ids(&p, 0.0, 1.1).id;
        let on = ids(&p, 1.1, 1.1).id;
        assert!(off < 1e-7, "off current {off}");
        assert!(on > 1e-5, "on current {on}");
        assert!(on / off > 1e4);
    }

    #[test]
    fn zero_vds_zero_current() {
        let p = nmos();
        let op = ids(&p, 1.0, 0.0);
        assert_eq!(op.id, 0.0);
    }

    #[test]
    fn gm_matches_finite_difference() {
        let p = nmos();
        let h = 1e-7;
        for (vgs, vds) in [(0.3, 0.5), (0.7, 0.1), (1.1, 1.1), (0.5, 0.9)] {
            let op = ids(&p, vgs, vds);
            let fd = (ids(&p, vgs + h, vds).id - ids(&p, vgs - h, vds).id) / (2.0 * h);
            assert!(
                (op.gm - fd).abs() <= 1e-5 * fd.abs().max(1e-12),
                "gm {} vs fd {} at ({vgs},{vds})",
                op.gm,
                fd
            );
        }
    }

    #[test]
    fn gds_matches_finite_difference() {
        let p = nmos();
        let h = 1e-7;
        for (vgs, vds) in [(0.7, 0.5), (1.1, 0.05), (0.9, 1.0)] {
            let op = ids(&p, vgs, vds);
            let fd = (ids(&p, vgs, vds + h).id - ids(&p, vgs, vds - h).id) / (2.0 * h);
            assert!(
                (op.gds - fd).abs() <= 1e-4 * fd.abs().max(1e-12),
                "gds {} vs fd {} at ({vgs},{vds})",
                op.gds,
                fd
            );
        }
    }

    #[test]
    fn temperature_scaling_directions() {
        let p300 = MosParams::nmos_40nm();
        let p398 = MosParams::nmos_40nm().at_temperature(398.0); // 125 C
        let p233 = MosParams::nmos_40nm().at_temperature(233.0); // -40 C
                                                                 // Hot: lower vth, lower mobility, higher thermal voltage.
        assert!(p398.vth < p300.vth);
        assert!(p398.beta < p300.beta);
        assert!(p398.v_t > p300.v_t);
        // Cold: the reverse.
        assert!(p233.vth > p300.vth);
        assert!(p233.beta > p300.beta);
        assert!(p233.v_t < p300.v_t);
        // Strong-inversion drive current drops when hot (mobility wins
        // over the vth reduction at full gate drive).
        let i_hot = ids(&p398, 1.1, 0.55).id;
        let i_nom = ids(&p300, 1.1, 0.55).id;
        assert!(i_hot < i_nom, "hot {i_hot} vs nominal {i_nom}");
        // Subthreshold leakage rises when hot.
        let l_hot = ids(&p398, 0.0, 1.1).id;
        let l_nom = ids(&p300, 0.0, 1.1).id;
        assert!(
            l_hot > 10.0 * l_nom,
            "leakage hot {l_hot} vs nominal {l_nom}"
        );
    }

    #[test]
    #[should_panic(expected = "positive kelvin")]
    fn zero_temperature_panics() {
        let _ = MosParams::nmos_40nm().at_temperature(0.0);
    }

    #[test]
    fn negative_vds_antisymmetric() {
        let p = nmos();
        // Swapping source and drain with the same vgs-referenced-to-"source"
        // means I(vgs, -vds) = -I(vgs + vds, vds).
        let fwd = ids(&p, 1.0 + 0.4, 0.4).id;
        let rev = ids(&p, 1.0, -0.4).id;
        assert!((rev + fwd).abs() < 1e-12 * fwd.abs().max(1.0));
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = nmos();
        let p = MosParams {
            polarity: MosPolarity::Pmos,
            ..n
        };
        let opn = ids(&n, 0.9, 0.6);
        let opp = ids(&p, -0.9, -0.6);
        assert!((opn.id + opp.id).abs() < 1e-15);
        assert!((opn.gm - opp.gm).abs() < 1e-15);
        assert!((opn.gds - opp.gds).abs() < 1e-15);
    }

    #[test]
    fn pmos_conducts_with_negative_vgs() {
        let p = MosParams::pmos_40nm();
        let on = ids(&p, -1.1, -1.1);
        assert!(
            on.id < -1e-6,
            "PMOS on current should be negative: {}",
            on.id
        );
        let off = ids(&p, 0.0, -1.1);
        assert!(off.id.abs() < 1e-7);
    }

    #[test]
    fn subthreshold_slope_is_exponential() {
        // In subthreshold, current should change ~10x per n*vt*ln(10) of vgs.
        let p = nmos();
        let dec = p.n * p.v_t * std::f64::consts::LN_10;
        let i1 = ids(&p, 0.15, 1.0).id;
        let i2 = ids(&p, 0.15 + dec, 1.0).id;
        let ratio = i2 / i1;
        assert!(
            (ratio - 10.0).abs() < 1.5,
            "one decade per subthreshold swing, got {ratio}"
        );
    }

    proptest! {
        #[test]
        fn current_monotone_in_vgs(vgs in 0.0f64..1.5, dv in 0.001f64..0.3, vds in 0.01f64..1.2) {
            let p = nmos();
            let i1 = ids(&p, vgs, vds).id;
            let i2 = ids(&p, vgs + dv, vds).id;
            prop_assert!(i2 >= i1);
        }

        #[test]
        fn current_monotone_in_vds(vgs in 0.0f64..1.5, vds in 0.0f64..1.0, dv in 0.001f64..0.2) {
            let p = nmos();
            let i1 = ids(&p, vgs, vds).id;
            let i2 = ids(&p, vgs, vds + dv).id;
            prop_assert!(i2 >= i1);
        }

        #[test]
        fn conductances_nonnegative_forward(vgs in -0.5f64..1.5, vds in 0.0f64..1.2) {
            let p = nmos();
            let op = ids(&p, vgs, vds);
            prop_assert!(op.gm >= 0.0);
            prop_assert!(op.gds >= 0.0);
        }
    }
}
