//! Multi-domain Preisach FeFET compact device model.
//!
//! This crate reproduces the device layer of the DATE 2024 TD-AM paper:
//! an experimentally-calibrated-style multi-domain Preisach ferroelectric
//! FET model (after Ni et al., VLSI 2018 \[26\]), including:
//!
//! - [`preisach`] — a stack of ferroelectric domains, each an independent
//!   hysteron with its own coercive voltage, giving partial-polarization
//!   (multi-level) behaviour,
//! - [`mosfet`] — a smooth single-piece EKV-style drain-current model used
//!   both for the FeFET's underlying transistor and for plain CMOS devices
//!   in the circuit simulator,
//! - [`device`] — the composite [`Fefet`]: polarization state maps to a
//!   threshold-voltage shift over the programming window,
//! - [`programming`] — the erase-then-write pulse scheme of Reis et al.
//!   (JxCDC 2019 \[36\]) with write-verify, programming the four states
//!   `V_TH0..V_TH3` = 0.2/0.6/1.0/1.4 V used throughout the paper,
//! - [`variation`] — device-to-device threshold-voltage variation using the
//!   per-state standard deviations fitted from measurement in the paper
//!   (σ = 7.1/35/45/40 mV for states 0..3),
//! - [`iv`] — I_D–V_G sweep helpers regenerating Fig. 1(c)(d),
//! - [`retention`] — retention/endurance aging of the memory window (an
//!   extension beyond the paper's time-zero analysis),
//! - [`disturb`] — write-disturb margins of shared-search-line arrays
//!   under V/2 and V/3 inhibit schemes.
//!
//! # Examples
//!
//! ```
//! use tdam_fefet::{Fefet, FefetParams};
//! use tdam_fefet::programming::{program_state, ProgramConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dev = Fefet::new(FefetParams::default());
//! program_state(&mut dev, 2, &ProgramConfig::default())?;
//! let vth = dev.vth();
//! assert!((vth - 1.0).abs() < 0.05, "V_TH2 should be ~1.0 V, got {vth}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod disturb;
pub mod iv;
pub mod mosfet;
pub mod preisach;
pub mod programming;
pub mod retention;
pub mod variation;

pub use device::{Fefet, FefetParams};
pub use mosfet::{MosParams, MosPolarity};
pub use preisach::{DomainStack, PreisachParams};
pub use variation::VthVariation;

/// The number of distinct programmable states used by the paper's 2-bit
/// encoding.
pub const PAPER_STATES: usize = 4;

/// The paper's programmed threshold voltages `V_TH0..V_TH3` in volts.
pub const PAPER_VTH: [f64; PAPER_STATES] = [0.2, 0.6, 1.0, 1.4];

/// The paper's search-line voltages `V_SL0..V_SL3` in volts.
pub const PAPER_VSL: [f64; PAPER_STATES] = [0.0, 0.4, 0.8, 1.2];

/// Per-state device-to-device `V_TH` standard deviations in volts, fitted
/// from the prototype-chip measurements cited by the paper (σ for
/// `V_TH0..V_TH3` = 7.1 mV, 35 mV, 45 mV, 40 mV).
pub const PAPER_VTH_SIGMA: [f64; PAPER_STATES] = [7.1e-3, 35e-3, 45e-3, 40e-3];
