//! Retention and endurance: FeFET non-idealities over device lifetime.
//!
//! The paper's robustness study covers device-to-device variation at
//! time zero; a deployed TD-AM additionally ages:
//!
//! - **retention** — depolarization and charge trapping relax the stored
//!   polarization toward neutral, drifting `V_TH` toward the middle of
//!   the memory window. HfO₂ FeFET literature reports a logarithmic decay
//!   of the window: `ΔV(t) = ΔV₀ · (1 − r·log₁₀(1 + t/t₀))`.
//! - **endurance** — program/erase cycling first slightly *opens* the
//!   window (wake-up), then closes it (fatigue), until the levels can no
//!   longer be separated. Modeled as a wake-up/fatigue factor on the
//!   window amplitude.
//!
//! Both effects shrink the effective gap between adjacent `V_TH` states,
//! which is exactly what the multi-bit cell's sensing margin consumes —
//! [`aged_vth`] feeds directly into [`crate::variation::VthVariation`]
//! to study end-of-life behaviour (see the `ext_lifetime` bench).

use serde::{Deserialize, Serialize};

/// Retention model parameters (log-time window decay).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionParams {
    /// Fractional window loss per decade of time, e.g. `0.01` = 1%/decade.
    pub loss_per_decade: f64,
    /// Reference time where decay begins, seconds.
    pub t0: f64,
}

impl Default for RetentionParams {
    fn default() -> Self {
        // ~1.2%/decade: a 10-year (3.2e8 s) bake keeps >88% of the window,
        // consistent with reported HfO₂ FeFET 10-year extrapolations.
        Self {
            loss_per_decade: 0.012,
            t0: 1.0,
        }
    }
}

impl RetentionParams {
    /// Fraction of the original memory window remaining after `t`
    /// seconds (clamped to `[0, 1]`).
    pub fn window_fraction(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        (1.0 - self.loss_per_decade * (1.0 + t / self.t0).log10()).clamp(0.0, 1.0)
    }
}

/// Endurance model parameters (wake-up then fatigue).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceParams {
    /// Peak wake-up window gain (e.g. `0.05` = +5% at the wake-up peak).
    pub wakeup_gain: f64,
    /// Cycle count at the wake-up peak.
    pub wakeup_cycles: f64,
    /// Cycle count where fatigue has closed half the window.
    pub fatigue_half_cycles: f64,
}

impl Default for EnduranceParams {
    fn default() -> Self {
        // Wake-up peaking around 1e3 cycles, half-window fatigue at 1e10 —
        // the shape reported for HfO₂ FeFET endurance studies.
        Self {
            wakeup_gain: 0.05,
            wakeup_cycles: 1e3,
            fatigue_half_cycles: 1e10,
        }
    }
}

impl EnduranceParams {
    /// Fraction of the pristine window available after `cycles`
    /// program/erase cycles (may exceed 1 slightly during wake-up).
    pub fn window_fraction(&self, cycles: f64) -> f64 {
        if cycles <= 0.0 {
            return 1.0;
        }
        // Wake-up: log-normal-ish bump peaking at wakeup_cycles.
        let x = (cycles / self.wakeup_cycles).log10();
        let wakeup = 1.0 + self.wakeup_gain * (-x * x).exp();
        // Fatigue: logistic closure in log-cycles — ~1 when fresh, 0.5 at
        // the half-window point, → 0 far beyond it.
        let y = (cycles / self.fatigue_half_cycles).log10();
        let fatigue = 1.0 / (1.0 + (2.0 * y).exp());
        (wakeup * fatigue).clamp(0.0, 1.1)
    }
}

/// The effective threshold voltage of a state after aging: states
/// contract linearly toward the window center as the window fraction
/// shrinks.
///
/// `vth_fresh` is the as-programmed threshold, `(v_lo, v_hi)` the fresh
/// window bounds (0.2 / 1.4 V for the paper's ladder).
pub fn aged_vth(vth_fresh: f64, v_lo: f64, v_hi: f64, window_fraction: f64) -> f64 {
    let center = 0.5 * (v_lo + v_hi);
    center + (vth_fresh - center) * window_fraction.clamp(0.0, 1.1)
}

/// Combined lifetime state: cycles endured, then time retained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lifetime {
    /// Program/erase cycles endured.
    pub cycles: f64,
    /// Retention time since the last program, seconds.
    pub seconds: f64,
    /// Retention model.
    pub retention: RetentionParams,
    /// Endurance model.
    pub endurance: EnduranceParams,
}

impl Lifetime {
    /// A fresh device: zero cycles, zero retention time.
    pub fn fresh() -> Self {
        Self {
            cycles: 0.0,
            seconds: 0.0,
            retention: RetentionParams::default(),
            endurance: EnduranceParams::default(),
        }
    }

    /// The combined window fraction (endurance × retention).
    pub fn window_fraction(&self) -> f64 {
        self.endurance.window_fraction(self.cycles) * self.retention.window_fraction(self.seconds)
    }

    /// Ages a fresh threshold voltage through this lifetime (paper
    /// window bounds).
    pub fn age_vth(&self, vth_fresh: f64) -> f64 {
        aged_vth(
            vth_fresh,
            crate::PAPER_VTH[0],
            crate::PAPER_VTH[crate::PAPER_STATES - 1],
            self.window_fraction(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_device_is_unchanged() {
        let life = Lifetime::fresh();
        assert!((life.window_fraction() - 1.0).abs() < 1e-2);
        for &v in &crate::PAPER_VTH {
            assert!((life.age_vth(v) - v).abs() < 0.02);
        }
    }

    #[test]
    fn retention_decays_logarithmically() {
        let r = RetentionParams::default();
        let day = r.window_fraction(86_400.0);
        let year = r.window_fraction(3.15e7);
        let decade = r.window_fraction(3.15e8);
        assert!(day > year && year > decade, "{day} {year} {decade}");
        assert!(decade > 0.85, "10-year retention keeps most of the window");
        // Equal ratios per decade (log-linear).
        let d1 = r.window_fraction(1e3) - r.window_fraction(1e4);
        let d2 = r.window_fraction(1e4) - r.window_fraction(1e5);
        assert!((d1 - d2).abs() < 0.002);
    }

    #[test]
    fn retention_clamps() {
        let r = RetentionParams {
            loss_per_decade: 0.5,
            t0: 1.0,
        };
        assert_eq!(r.window_fraction(1e10), 0.0);
        assert_eq!(r.window_fraction(-5.0), 1.0);
    }

    #[test]
    fn endurance_wakeup_then_fatigue() {
        let e = EnduranceParams::default();
        let fresh = e.window_fraction(1.0);
        let wakeup = e.window_fraction(1e3);
        let mid = e.window_fraction(1e7);
        let worn = e.window_fraction(1e10);
        let dead = e.window_fraction(1e14);
        assert!(wakeup > fresh, "wake-up should open the window");
        assert!(mid > worn, "fatigue closes the window");
        assert!(worn < 0.7 && worn > 0.3, "half-window near 1e10: {worn}");
        assert!(dead < 0.05, "far past fatigue the window is gone: {dead}");
    }

    #[test]
    fn aging_contracts_toward_center() {
        // 50% window: extremes move halfway to 0.8 V.
        let aged_lo = aged_vth(0.2, 0.2, 1.4, 0.5);
        let aged_hi = aged_vth(1.4, 0.2, 1.4, 0.5);
        assert!((aged_lo - 0.5).abs() < 1e-12);
        assert!((aged_hi - 1.1).abs() < 1e-12);
        // The center state never moves.
        assert!((aged_vth(0.8, 0.2, 1.4, 0.3) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn lifetime_combines_both() {
        let mut life = Lifetime::fresh();
        life.cycles = 1e10;
        life.seconds = 3.15e8;
        let combined = life.window_fraction();
        let endurance_only = life.endurance.window_fraction(1e10);
        let retention_only = life.retention.window_fraction(3.15e8);
        assert!((combined - endurance_only * retention_only).abs() < 1e-12);
        assert!(combined < endurance_only && combined < retention_only);
    }

    #[test]
    fn aged_states_remain_ordered() {
        let mut life = Lifetime::fresh();
        life.cycles = 1e9;
        life.seconds = 1e8;
        let aged: Vec<f64> = crate::PAPER_VTH.iter().map(|&v| life.age_vth(v)).collect();
        for w in aged.windows(2) {
            assert!(w[0] < w[1], "aging must preserve state order: {aged:?}");
        }
    }
}
