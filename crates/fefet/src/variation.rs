//! Device-to-device threshold-voltage variation.
//!
//! The paper models "the effect of all FeFET variations as a shift in
//! `V_TH`" and derives per-state standard deviations from measured
//! prototype-chip data (its ref. \[25\], 60 devices): σ(V_TH0..V_TH3) =
//! 7.1 mV, 35 mV, 45 mV, 40 mV. This module provides exactly that
//! abstraction: sample a `V_TH` for a device programmed to a given state,
//! either at the paper's experimental levels or at a uniform sweep level
//! (20/40/60 mV) as used in Fig. 6.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tdam_num::dist::Normal;

/// A per-state threshold-voltage variation model.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use tdam_fefet::VthVariation;
///
/// let model = VthVariation::experimental();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let vth = model.sample_vth(3, &mut rng).expect("state 3 exists");
/// assert!((vth - 1.4).abs() < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VthVariation {
    /// Nominal threshold voltage per state, volts.
    means: Vec<f64>,
    /// Standard deviation per state, volts.
    sigmas: Vec<f64>,
}

/// Error constructing or sampling a [`VthVariation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariationError {
    /// Mean and sigma vectors differ in length or are empty.
    InvalidShape,
    /// A sigma was negative or non-finite.
    InvalidSigma,
    /// The requested state does not exist.
    UnknownState {
        /// The requested state index.
        state: u8,
    },
}

impl core::fmt::Display for VariationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidShape => write!(f, "means and sigmas must be equal-length and non-empty"),
            Self::InvalidSigma => write!(f, "sigma values must be finite and nonnegative"),
            Self::UnknownState { state } => write!(f, "unknown threshold state {state}"),
        }
    }
}

impl std::error::Error for VariationError {}

impl VthVariation {
    /// Builds a model from explicit per-state means and sigmas.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError`] for empty/mismatched vectors or invalid
    /// sigmas.
    pub fn new(means: Vec<f64>, sigmas: Vec<f64>) -> Result<Self, VariationError> {
        if means.is_empty() || means.len() != sigmas.len() {
            return Err(VariationError::InvalidShape);
        }
        if sigmas.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err(VariationError::InvalidSigma);
        }
        Ok(Self { means, sigmas })
    }

    /// The paper's experimentally fitted model: `V_TH` means 0.2/0.6/1.0/
    /// 1.4 V with σ = 7.1/35/45/40 mV.
    pub fn experimental() -> Self {
        Self {
            means: crate::PAPER_VTH.to_vec(),
            sigmas: crate::PAPER_VTH_SIGMA.to_vec(),
        }
    }

    /// A uniform-σ model over the paper's `V_TH` ladder, as swept in Fig. 6
    /// (σ ∈ {20, 40, 60} mV).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn uniform(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be nonnegative"
        );
        Self {
            means: crate::PAPER_VTH.to_vec(),
            sigmas: vec![sigma; crate::PAPER_STATES],
        }
    }

    /// A σ = 0 model: every device sits exactly on the nominal ladder.
    pub fn none() -> Self {
        Self::uniform(0.0)
    }

    /// Number of states in the ladder.
    pub fn states(&self) -> usize {
        self.means.len()
    }

    /// The nominal threshold voltage of `state`.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::UnknownState`] for out-of-range states.
    pub fn nominal_vth(&self, state: u8) -> Result<f64, VariationError> {
        self.means
            .get(state as usize)
            .copied()
            .ok_or(VariationError::UnknownState { state })
    }

    /// Samples a device's threshold voltage when programmed to `state`.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::UnknownState`] for out-of-range states.
    pub fn sample_vth<R: Rng + ?Sized>(
        &self,
        state: u8,
        rng: &mut R,
    ) -> Result<f64, VariationError> {
        let i = state as usize;
        let (Some(&mean), Some(&sigma)) = (self.means.get(i), self.sigmas.get(i)) else {
            return Err(VariationError::UnknownState { state });
        };
        let dist = Normal::new(mean, sigma).expect("validated at construction");
        Ok(dist.sample(rng))
    }

    /// The σ of `state`, volts.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::UnknownState`] for out-of-range states.
    pub fn sigma(&self, state: u8) -> Result<f64, VariationError> {
        self.sigmas
            .get(state as usize)
            .copied()
            .ok_or(VariationError::UnknownState { state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tdam_num::Summary;

    #[test]
    fn experimental_matches_paper_constants() {
        let m = VthVariation::experimental();
        assert_eq!(m.states(), 4);
        assert_eq!(m.nominal_vth(0).unwrap(), 0.2);
        assert_eq!(m.sigma(1).unwrap(), 35e-3);
        assert_eq!(m.sigma(0).unwrap(), 7.1e-3);
    }

    #[test]
    fn unknown_state_error() {
        let m = VthVariation::experimental();
        assert_eq!(
            m.nominal_vth(9).unwrap_err(),
            VariationError::UnknownState { state: 9 }
        );
        let mut rng = StdRng::seed_from_u64(0);
        assert!(m.sample_vth(4, &mut rng).is_err());
    }

    #[test]
    fn invalid_construction_rejected() {
        assert_eq!(
            VthVariation::new(vec![], vec![]).unwrap_err(),
            VariationError::InvalidShape
        );
        assert_eq!(
            VthVariation::new(vec![0.2], vec![0.1, 0.2]).unwrap_err(),
            VariationError::InvalidShape
        );
        assert_eq!(
            VthVariation::new(vec![0.2], vec![-0.1]).unwrap_err(),
            VariationError::InvalidSigma
        );
    }

    #[test]
    fn sampled_moments_match() {
        let m = VthVariation::uniform(40e-3);
        let mut rng = StdRng::seed_from_u64(17);
        let xs: Vec<f64> = (0..100_000)
            .map(|_| m.sample_vth(2, &mut rng).unwrap())
            .collect();
        let s = Summary::from_slice(&xs);
        assert!((s.mean - 1.0).abs() < 1e-3, "mean {}", s.mean);
        assert!((s.std_dev - 40e-3).abs() < 1e-3, "std {}", s.std_dev);
    }

    #[test]
    fn none_model_is_deterministic() {
        let m = VthVariation::none();
        let mut rng = StdRng::seed_from_u64(5);
        for state in 0..4u8 {
            let v = m.sample_vth(state, &mut rng).unwrap();
            assert_eq!(v, crate::PAPER_VTH[state as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn uniform_negative_sigma_panics() {
        let _ = VthVariation::uniform(-1.0);
    }
}
