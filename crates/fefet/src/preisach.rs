//! Multi-domain Preisach hysteresis model of the ferroelectric layer.
//!
//! The ferroelectric (HfO₂) film is modelled as `N` independent domains,
//! each a rectangular hysteron: domain `i` switches *up* (+P_r) when the
//! applied gate voltage exceeds its positive coercive voltage `V_c⁺_i`, and
//! *down* (−P_r) when it falls below `−V_c⁻_i`. Coercive voltages are
//! distributed across domains (normal distribution), which is what gives
//! the device its *partial-switching* — and therefore multi-level —
//! behaviour: a write pulse of intermediate amplitude flips only the
//! fraction of domains whose coercive voltage it exceeds.
//!
//! Pulse-width dependence follows a nucleation-limited-switching flavoured
//! correction: shorter pulses see an effectively higher coercive voltage,
//! `V_c,eff = V_c · (1 + k·ln(t_ref / t_pulse))` for `t_pulse < t_ref`.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tdam_num::dist::Normal;

/// Parameters of the multi-domain Preisach stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreisachParams {
    /// Number of ferroelectric domains. More domains give a smoother
    /// polarization continuum; 128 gives a V_TH granularity of ~9 mV over
    /// the 1.2 V window, comfortably under the write-verify tolerance.
    pub domains: usize,
    /// Mean coercive voltage magnitude in volts (positive branch).
    pub vc_mean: f64,
    /// Domain-to-domain coercive-voltage spread (σ) in volts.
    pub vc_sigma: f64,
    /// Reference write-pulse width in seconds (full switching strength).
    pub t_ref: f64,
    /// Pulse-width sensitivity coefficient `k` of the effective coercive
    /// voltage.
    pub width_coeff: f64,
}

impl Default for PreisachParams {
    fn default() -> Self {
        Self {
            domains: 128,
            vc_mean: 2.4,
            vc_sigma: 0.55,
            t_ref: 500e-9,
            width_coeff: 0.035,
        }
    }
}

/// A stack of ferroelectric domains with per-domain coercive voltages and
/// binary polarization states.
///
/// Normalized polarization [`DomainStack::polarization`] is the mean of the
/// domain states and ranges over `[-1, +1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainStack {
    params: PreisachParams,
    /// Positive-branch coercive voltage per domain (volts).
    vc_plus: Vec<f64>,
    /// Negative-branch coercive voltage magnitude per domain (volts).
    vc_minus: Vec<f64>,
    /// Domain polarization states: `+1.0` (up) or `-1.0` (down).
    states: Vec<f64>,
}

impl DomainStack {
    /// Builds a *nominal* stack whose coercive voltages are evenly spread
    /// quantiles of the configured distribution — deterministic, so two
    /// nominal devices are identical.
    ///
    /// # Panics
    ///
    /// Panics if `params.domains == 0`.
    pub fn nominal(params: PreisachParams) -> Self {
        assert!(params.domains > 0, "domain stack needs at least one domain");
        let n = params.domains;
        // Evenly spaced quantiles of N(vc_mean, vc_sigma) via a rational
        // probit approximation would be overkill; a linear ±2σ ramp covers
        // the same span and keeps the fraction-switched curve monotone.
        let vc_plus: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64; // (0, 1)
                params.vc_mean + params.vc_sigma * (4.0 * u - 2.0)
            })
            .collect();
        let vc_minus = vc_plus.clone();
        Self {
            params,
            vc_plus,
            vc_minus,
            states: vec![-1.0; n],
        }
    }

    /// Builds a stack with randomly perturbed coercive voltages, modelling
    /// one physical device drawn from the process distribution.
    ///
    /// `mismatch_sigma` scales additional per-device jitter on top of the
    /// nominal quantile spread.
    ///
    /// # Panics
    ///
    /// Panics if `params.domains == 0` or `mismatch_sigma` is negative.
    pub fn sampled<R: Rng + ?Sized>(
        params: PreisachParams,
        mismatch_sigma: f64,
        rng: &mut R,
    ) -> Self {
        assert!(mismatch_sigma >= 0.0, "mismatch sigma must be nonnegative");
        let mut stack = Self::nominal(params);
        let jitter = Normal::new(0.0, mismatch_sigma).expect("validated sigma");
        for vc in &mut stack.vc_plus {
            *vc = (*vc + jitter.sample(rng)).max(0.05);
        }
        for vc in &mut stack.vc_minus {
            *vc = (*vc + jitter.sample(rng)).max(0.05);
        }
        stack
    }

    /// The model parameters.
    pub fn params(&self) -> &PreisachParams {
        &self.params
    }

    /// Normalized remnant polarization in `[-1, +1]` (mean domain state).
    pub fn polarization(&self) -> f64 {
        self.states.iter().sum::<f64>() / self.states.len() as f64
    }

    /// Applies a gate write pulse of `amplitude` volts for `width` seconds.
    ///
    /// Positive amplitudes switch domains up; negative amplitudes switch
    /// them down. Amplitudes below every (effective) coercive voltage leave
    /// the stack unchanged, which is what makes low-voltage *read*
    /// operations non-destructive.
    pub fn apply_pulse(&mut self, amplitude: f64, width: f64) {
        let widen = self.width_factor(width);
        if amplitude > 0.0 {
            for (s, vc) in self.states.iter_mut().zip(&self.vc_plus) {
                if amplitude >= vc * widen {
                    *s = 1.0;
                }
            }
        } else if amplitude < 0.0 {
            let a = -amplitude;
            for (s, vc) in self.states.iter_mut().zip(&self.vc_minus) {
                if a >= vc * widen {
                    *s = -1.0;
                }
            }
        }
    }

    /// Fraction of domains currently polarized up.
    pub fn fraction_up(&self) -> f64 {
        self.states.iter().filter(|&&s| s > 0.0).count() as f64 / self.states.len() as f64
    }

    /// Resets every domain down (the erase step of program cycles).
    pub fn erase(&mut self) {
        self.states.fill(-1.0);
    }

    /// Saturates every domain up.
    pub fn saturate(&mut self) {
        self.states.fill(1.0);
    }

    fn width_factor(&self, width: f64) -> f64 {
        if width >= self.params.t_ref || width <= 0.0 {
            1.0
        } else {
            1.0 + self.params.width_coeff * (self.params.t_ref / width).ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stack() -> DomainStack {
        DomainStack::nominal(PreisachParams::default())
    }

    #[test]
    fn starts_fully_down() {
        let s = stack();
        assert_eq!(s.polarization(), -1.0);
        assert_eq!(s.fraction_up(), 0.0);
    }

    #[test]
    fn strong_pulse_saturates() {
        let mut s = stack();
        s.apply_pulse(5.0, 1e-6);
        assert_eq!(s.polarization(), 1.0);
        s.apply_pulse(-5.0, 1e-6);
        assert_eq!(s.polarization(), -1.0);
    }

    #[test]
    fn intermediate_pulse_partial_switch() {
        let mut s = stack();
        let p = s.params().vc_mean; // pulse at mean coercive voltage
        s.apply_pulse(p, s.params().t_ref);
        let f = s.fraction_up();
        assert!(
            (0.3..0.7).contains(&f),
            "mean-Vc pulse should flip roughly half the domains, got {f}"
        );
    }

    #[test]
    fn small_pulse_nondestructive() {
        let mut s = stack();
        s.apply_pulse(4.0, 1e-6);
        let before = s.polarization();
        // Read-like pulses (≤1.4 V, well below min coercive voltage).
        s.apply_pulse(1.4, 1e-9);
        s.apply_pulse(-1.4, 1e-9);
        assert_eq!(s.polarization(), before);
    }

    #[test]
    fn shorter_pulse_switches_less() {
        let p = PreisachParams::default();
        let mut long = DomainStack::nominal(p);
        let mut short = DomainStack::nominal(p);
        long.apply_pulse(p.vc_mean, p.t_ref);
        short.apply_pulse(p.vc_mean, p.t_ref / 100.0);
        assert!(
            short.fraction_up() < long.fraction_up(),
            "short {} vs long {}",
            short.fraction_up(),
            long.fraction_up()
        );
    }

    #[test]
    fn hysteresis_retains_state() {
        let mut s = stack();
        s.apply_pulse(5.0, 1e-6);
        // Zero-amplitude "pulse" (idle) changes nothing.
        s.apply_pulse(0.0, 1e-6);
        assert_eq!(s.polarization(), 1.0);
    }

    #[test]
    fn sampled_devices_differ() {
        let p = PreisachParams::default();
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = DomainStack::sampled(p, 0.2, &mut rng);
        let mut b = DomainStack::sampled(p, 0.2, &mut rng);
        let v = p.vc_mean;
        a.apply_pulse(v, p.t_ref);
        b.apply_pulse(v, p.t_ref);
        assert_ne!(
            a.fraction_up(),
            b.fraction_up(),
            "distinct sampled devices should respond differently at mid amplitude"
        );
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn zero_domains_panics() {
        let p = PreisachParams {
            domains: 0,
            ..PreisachParams::default()
        };
        let _ = DomainStack::nominal(p);
    }

    proptest! {
        #[test]
        fn polarization_bounded(amps in prop::collection::vec(-6.0f64..6.0, 0..30)) {
            let mut s = stack();
            for a in amps {
                s.apply_pulse(a, 100e-9);
                let p = s.polarization();
                prop_assert!((-1.0..=1.0).contains(&p));
            }
        }

        #[test]
        fn fraction_monotone_in_amplitude(a in 0.5f64..5.0, extra in 0.01f64..1.0) {
            let mut s1 = stack();
            let mut s2 = stack();
            s1.apply_pulse(a, 500e-9);
            s2.apply_pulse(a + extra, 500e-9);
            prop_assert!(s2.fraction_up() >= s1.fraction_up());
        }
    }
}
