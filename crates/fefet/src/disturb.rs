//! Write-disturb analysis for shared-search-line arrays.
//!
//! The TD-AM's search lines run vertically through every row, so
//! programming one row's FeFETs applies the write pulses to *every* cell
//! in those columns. Real FeFET arrays solve this with an inhibit bias:
//! unselected rows' sources/bodies are raised so the net gate-stack
//! voltage stays below the coercive window (the Vdd/2 or Vdd/3 inhibit
//! schemes of the FeFET RAM literature, e.g. the paper's write-scheme
//! reference \[36\]). This module quantifies the scheme's safety margin:
//! how much polarization an unselected cell loses per program cycle, and
//! how many cycles of exposure it survives before its stored level drifts
//! out of the sensing margin.

use crate::device::Fefet;
use crate::preisach::PreisachParams;
use serde::{Deserialize, Serialize};

/// An inhibit biasing scheme for unselected rows during programming.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InhibitScheme {
    /// Write-pulse amplitude on the shared search line, volts.
    pub write_amplitude: f64,
    /// Bias applied to unselected rows' channel terminals, volts; the net
    /// stack voltage an unselected cell sees is
    /// `write_amplitude − inhibit_bias`.
    pub inhibit_bias: f64,
    /// Write-pulse width, seconds.
    pub pulse_width: f64,
}

impl InhibitScheme {
    /// The classic V/2 scheme: unselected rows sit at half the write
    /// amplitude.
    pub fn half_select(write_amplitude: f64, pulse_width: f64) -> Self {
        Self {
            write_amplitude,
            inhibit_bias: write_amplitude / 2.0,
            pulse_width,
        }
    }

    /// The V/3 scheme: tighter disturb at the cost of a third bias rail.
    pub fn third_select(write_amplitude: f64, pulse_width: f64) -> Self {
        Self {
            write_amplitude,
            inhibit_bias: 2.0 * write_amplitude / 3.0,
            pulse_width,
        }
    }

    /// Net stack voltage an unselected cell sees during the pulse, volts.
    pub fn disturb_voltage(&self) -> f64 {
        self.write_amplitude - self.inhibit_bias
    }
}

/// Result of a disturb-exposure experiment on one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisturbReport {
    /// Threshold voltage before exposure, volts.
    pub vth_before: f64,
    /// Threshold voltage after exposure, volts.
    pub vth_after: f64,
    /// Disturb pulses applied.
    pub pulses: usize,
}

impl DisturbReport {
    /// The accumulated threshold drift, volts.
    pub fn drift(&self) -> f64 {
        self.vth_after - self.vth_before
    }
}

/// Exposes a programmed device to `pulses` disturb events under `scheme`
/// (positive-polarity pulses, the worst case for a partially-up-polarized
/// state).
pub fn expose(dev: &mut Fefet, scheme: &InhibitScheme, pulses: usize) -> DisturbReport {
    let vth_before = dev.vth();
    let v = scheme.disturb_voltage();
    for _ in 0..pulses {
        dev.write_pulse(v, scheme.pulse_width);
    }
    DisturbReport {
        vth_before,
        vth_after: dev.vth(),
        pulses,
    }
}

/// Whether `scheme` is disturb-free by construction: the net stack voltage
/// stays below the weakest domain's effective coercive voltage, so no
/// domain can ever flip regardless of exposure count.
pub fn is_disturb_free(scheme: &InhibitScheme, preisach: &PreisachParams) -> bool {
    // Weakest domain: mean − 2σ (the nominal quantile ramp's lower edge),
    // tightened by the pulse-width factor for short pulses.
    let vc_min = preisach.vc_mean - 2.0 * preisach.vc_sigma;
    let widen = if scheme.pulse_width >= preisach.t_ref || scheme.pulse_width <= 0.0 {
        1.0
    } else {
        1.0 + preisach.width_coeff * (preisach.t_ref / scheme.pulse_width).ln()
    };
    scheme.disturb_voltage() < vc_min * widen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FefetParams;
    use crate::programming::{program_state, ProgramConfig};

    fn programmed(state: u8) -> Fefet {
        let mut dev = Fefet::new(FefetParams {
            preisach: PreisachParams {
                domains: 512,
                ..PreisachParams::default()
            },
            ..FefetParams::default()
        });
        program_state(&mut dev, state, &ProgramConfig::default()).expect("programs");
        dev
    }

    #[test]
    fn half_select_is_disturb_free_at_default_coercivity() {
        // Write amplitude 5 V → V/2 disturb = 2.5 V; weakest domain sits
        // at 2.4 − 2·0.55 = 1.3 V... so naive V/2 at 5 V is NOT safe.
        let p = PreisachParams::default();
        let unsafe_scheme = InhibitScheme::half_select(5.0, 500e-9);
        assert!(!is_disturb_free(&unsafe_scheme, &p));
        // V/3 at a 3.6 V write keeps the disturb at 1.2 V < 1.3 V: safe.
        let safe_scheme = InhibitScheme::third_select(3.6, 500e-9);
        assert!(is_disturb_free(&safe_scheme, &p));
    }

    #[test]
    fn safe_scheme_causes_zero_drift() {
        let scheme = InhibitScheme::third_select(3.6, 500e-9);
        let mut dev = programmed(1);
        let report = expose(&mut dev, &scheme, 10_000);
        assert_eq!(
            report.drift(),
            0.0,
            "a disturb-free scheme must never move V_TH"
        );
    }

    #[test]
    fn unsafe_scheme_drifts_the_state() {
        // Positive disturb is harmless to states programmed with an equal
        // or larger positive pulse, but the *erased* state 3 (all domains
        // down) loses its weakest domains to 2.5 V pulses and drifts.
        let scheme = InhibitScheme::half_select(5.0, 500e-9);
        let mut dev = programmed(3);
        let report = expose(&mut dev, &scheme, 100);
        assert!(
            report.drift() < -0.05,
            "positive disturb pulses pull the erased state's V_TH down, drift = {}",
            report.drift()
        );
        // A state programmed with a comparable positive pulse is immune to
        // same-polarity disturb — the asymmetry inhibit design exploits.
        let mut low = programmed(1);
        let low_report = expose(&mut low, &scheme, 100);
        assert_eq!(low_report.drift(), 0.0);
    }

    #[test]
    fn disturb_saturates_not_runs_away() {
        // The Preisach hysterons flip once: repeated identical disturb
        // pulses converge instead of destroying the device.
        let scheme = InhibitScheme::half_select(5.0, 500e-9);
        let mut dev = programmed(3);
        let first = expose(&mut dev, &scheme, 100);
        let more = expose(&mut dev, &scheme, 10_000);
        assert!(first.drift().abs() > 0.0);
        assert_eq!(
            more.drift(),
            0.0,
            "all weak domains already flipped; further pulses are harmless"
        );
    }

    #[test]
    fn shorter_pulses_widen_the_safe_window() {
        let p = PreisachParams::default();
        let long = InhibitScheme {
            write_amplitude: 4.2,
            inhibit_bias: 2.8,
            pulse_width: 500e-9,
        };
        // 1.4 V disturb vs 1.3 V weakest domain: unsafe at full width...
        assert!(!is_disturb_free(&long, &p));
        // ...but safe for 10 ns pulses (effective coercivity rises).
        let short = InhibitScheme {
            pulse_width: 10e-9,
            ..long
        };
        assert!(is_disturb_free(&short, &p));
    }
}
