//! Multi-level programming with erase-then-write pulses and write-verify.
//!
//! Follows the scheme of Reis et al. (JxCDC 2019, the paper's ref. \[36\]):
//! each program cycle first erases the device with a strong negative pulse
//! (all domains down, `V_TH = V_TH,high`), then applies a positive write
//! pulse whose amplitude selects how many domains flip — and therefore which
//! threshold state results. A write-verify loop (binary search on pulse
//! amplitude against the *measured* threshold) absorbs device-to-device
//! coercive-voltage variation, exactly like production NVM controllers do.

use crate::device::Fefet;
use serde::{Deserialize, Serialize};

/// Configuration for the erase-then-write-verify programming flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramConfig {
    /// Erase pulse amplitude in volts (applied negative).
    pub erase_amplitude: f64,
    /// Write pulse width in seconds.
    pub pulse_width: f64,
    /// Acceptable `|V_TH − target|` after verify, volts.
    pub verify_tolerance: f64,
    /// Maximum verify iterations before giving up.
    pub max_iterations: usize,
    /// Write-amplitude search window, volts.
    pub amplitude_range: (f64, f64),
    /// Target threshold voltages per state, lowest-state first. Length
    /// defines the number of programmable states.
    pub vth_targets: [f64; crate::PAPER_STATES],
}

impl Default for ProgramConfig {
    fn default() -> Self {
        Self {
            erase_amplitude: 5.0,
            pulse_width: 500e-9,
            verify_tolerance: 10e-3,
            max_iterations: 40,
            amplitude_range: (0.0, 5.0),
            vth_targets: crate::PAPER_VTH,
        }
    }
}

/// Error programming a FeFET to a multi-level state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProgramError {
    /// The requested state index exceeds the configured ladder.
    InvalidState {
        /// The requested state.
        state: u8,
        /// The number of available states.
        available: usize,
    },
    /// Write-verify failed to converge within the iteration budget; carries
    /// the best (closest) threshold voltage reached.
    VerifyFailed {
        /// Target threshold voltage, volts.
        target: f64,
        /// Closest achieved threshold voltage, volts.
        achieved: f64,
    },
}

impl core::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidState { state, available } => {
                write!(
                    f,
                    "state {state} out of range (device has {available} states)"
                )
            }
            Self::VerifyFailed { target, achieved } => write!(
                f,
                "write-verify did not converge: target {target} V, achieved {achieved} V"
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Programs `dev` to multi-level `state` (0 = lowest `V_TH`, most
/// conductive).
///
/// # Errors
///
/// Returns [`ProgramError::InvalidState`] for an out-of-range state and
/// [`ProgramError::VerifyFailed`] when the verify loop cannot reach the
/// target threshold within tolerance (e.g. an extreme process outlier).
///
/// # Examples
///
/// ```
/// use tdam_fefet::{Fefet, FefetParams};
/// use tdam_fefet::programming::{program_state, ProgramConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dev = Fefet::new(FefetParams::default());
/// program_state(&mut dev, 1, &ProgramConfig::default())?;
/// assert!((dev.vth() - 0.6).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn program_state(dev: &mut Fefet, state: u8, cfg: &ProgramConfig) -> Result<(), ProgramError> {
    let n_states = cfg.vth_targets.len();
    let Some(&target) = cfg.vth_targets.get(state as usize) else {
        return Err(ProgramError::InvalidState {
            state,
            available: n_states,
        });
    };
    program_vth(dev, target, cfg)
}

/// Statistics of one program operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramReport {
    /// Erase + write pulse pairs applied.
    pub pulse_pairs: usize,
    /// Total gate-stack programming energy, joules (each pulse switches
    /// the ferroelectric capacitance through the pulse amplitude:
    /// `E ≈ C_FE · V_pulse²` per pulse).
    pub energy: f64,
    /// The achieved threshold voltage, volts.
    pub achieved_vth: f64,
}

/// Ferroelectric gate-stack capacitance used for program-energy
/// accounting, farads.
const C_FE: f64 = 1.5e-15;

/// Programs `dev` to an arbitrary target threshold voltage via
/// erase + write-verify, reporting the pulse count and energy.
///
/// # Errors
///
/// Returns [`ProgramError::VerifyFailed`] when the loop cannot converge.
pub fn program_vth_with_report(
    dev: &mut Fefet,
    target: f64,
    cfg: &ProgramConfig,
) -> Result<ProgramReport, ProgramError> {
    let mut report = ProgramReport {
        pulse_pairs: 0,
        energy: 0.0,
        achieved_vth: dev.vth(),
    };
    let result = program_vth_inner(dev, target, cfg, &mut report);
    report.achieved_vth = dev.vth();
    result.map(|()| report)
}

/// Programs `dev` to an arbitrary target threshold voltage via
/// erase + write-verify.
///
/// # Errors
///
/// Returns [`ProgramError::VerifyFailed`] when the loop cannot converge.
pub fn program_vth(dev: &mut Fefet, target: f64, cfg: &ProgramConfig) -> Result<(), ProgramError> {
    let mut report = ProgramReport {
        pulse_pairs: 0,
        energy: 0.0,
        achieved_vth: 0.0,
    };
    program_vth_inner(dev, target, cfg, &mut report)
}

/// Retry policy for programming marginal devices: each retry escalates
/// the erase amplitude and widens the write-amplitude search window, the
/// knob production NVM controllers turn when a cell verifies slow. The
/// attempt count is a hard bound — there is no path that retries more
/// than `max_attempts` times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum write-verify attempts (including the first), ≥ 1.
    pub max_attempts: usize,
    /// Volts added to the erase amplitude and to the top of the write
    /// amplitude window on each retry.
    pub amplitude_step: f64,
    /// Absolute cap on the escalated amplitudes, volts (gate-oxide
    /// breakdown limit).
    pub max_amplitude: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            amplitude_step: 0.5,
            max_amplitude: 6.5,
        }
    }
}

impl RetryPolicy {
    /// The programming configuration used for `attempt` (0-based):
    /// amplitudes escalate linearly with the attempt index, clamped to
    /// [`RetryPolicy::max_amplitude`].
    pub fn escalate(&self, base: &ProgramConfig, attempt: usize) -> ProgramConfig {
        let boost = self.amplitude_step * attempt as f64;
        let mut cfg = *base;
        cfg.erase_amplitude = (base.erase_amplitude + boost).min(self.max_amplitude);
        cfg.amplitude_range.1 = (base.amplitude_range.1 + boost).min(self.max_amplitude);
        cfg
    }
}

/// Aggregate outcome of a bounded-retry program operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryReport {
    /// The final (successful or best-effort) program report; pulse counts
    /// and energy are summed over every attempt.
    pub report: ProgramReport,
    /// Attempts actually used (`1..=max_attempts`).
    pub attempts: usize,
}

/// Programs `dev` to `target` through write-verify with bounded retries:
/// on a verify failure the pulse amplitudes escalate per `policy` and the
/// flow is retried, up to `policy.max_attempts` total attempts.
///
/// # Errors
///
/// Returns the last [`ProgramError::VerifyFailed`] once the bounded
/// attempt budget is exhausted (the device is left at its best-effort
/// state).
pub fn program_vth_with_retry(
    dev: &mut Fefet,
    target: f64,
    cfg: &ProgramConfig,
    policy: &RetryPolicy,
) -> Result<RetryReport, ProgramError> {
    let attempts_allowed = policy.max_attempts.max(1);
    let mut total = ProgramReport {
        pulse_pairs: 0,
        energy: 0.0,
        achieved_vth: dev.vth(),
    };
    let mut last_err = None;
    for attempt in 0..attempts_allowed {
        let escalated = policy.escalate(cfg, attempt);
        // Accumulate pulse/energy accounting into the running total even
        // for failed attempts — retries are not free.
        let result = program_vth_inner(dev, target, &escalated, &mut total);
        total.achieved_vth = dev.vth();
        match result {
            Ok(()) => {
                return Ok(RetryReport {
                    report: total,
                    attempts: attempt + 1,
                });
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or(ProgramError::VerifyFailed {
        target,
        achieved: dev.vth(),
    }))
}

fn program_vth_inner(
    dev: &mut Fefet,
    target: f64,
    cfg: &ProgramConfig,
    report: &mut ProgramReport,
) -> Result<(), ProgramError> {
    // Binary search on write amplitude. Larger amplitude flips more
    // domains, which *lowers* V_TH, so the search direction is inverted.
    let (mut lo, mut hi) = cfg.amplitude_range;
    let mut best = f64::INFINITY;
    let mut best_err = f64::INFINITY;
    for _ in 0..cfg.max_iterations {
        let amp = 0.5 * (lo + hi);
        dev.write_pulse(-cfg.erase_amplitude, cfg.pulse_width);
        dev.write_pulse(amp, cfg.pulse_width);
        report.pulse_pairs += 1;
        report.energy += C_FE * (cfg.erase_amplitude * cfg.erase_amplitude + amp * amp);
        let vth = dev.vth();
        let err = (vth - target).abs();
        if err < best_err {
            best_err = err;
            best = amp;
        }
        if err <= cfg.verify_tolerance {
            return Ok(());
        }
        if vth > target {
            // Too few domains switched; push harder.
            lo = amp;
        } else {
            hi = amp;
        }
    }
    // Leave the device at its best-found state before reporting failure.
    dev.write_pulse(-cfg.erase_amplitude, cfg.pulse_width);
    dev.write_pulse(best, cfg.pulse_width);
    report.pulse_pairs += 1;
    report.energy += C_FE * (cfg.erase_amplitude * cfg.erase_amplitude + best * best);
    let achieved = dev.vth();
    if (achieved - target).abs() <= cfg.verify_tolerance {
        Ok(())
    } else {
        Err(ProgramError::VerifyFailed { target, achieved })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FefetParams;
    use crate::preisach::PreisachParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fine_params() -> FefetParams {
        // More domains → finer vth granularity → tight verify passes.
        FefetParams {
            preisach: PreisachParams {
                domains: 512,
                ..PreisachParams::default()
            },
            ..FefetParams::default()
        }
    }

    #[test]
    fn programs_all_four_states() {
        let cfg = ProgramConfig::default();
        for (state, &target) in crate::PAPER_VTH.iter().enumerate() {
            let mut dev = Fefet::new(fine_params());
            program_state(&mut dev, state as u8, &cfg).expect("nominal device programs");
            assert!(
                (dev.vth() - target).abs() <= cfg.verify_tolerance + 1e-12,
                "state {state}: vth {} vs target {target}",
                dev.vth()
            );
        }
    }

    #[test]
    fn invalid_state_rejected() {
        let mut dev = Fefet::new(fine_params());
        let err = program_state(&mut dev, 4, &ProgramConfig::default()).unwrap_err();
        assert!(matches!(err, ProgramError::InvalidState { state: 4, .. }));
    }

    #[test]
    fn coarse_stack_fails_tight_verify() {
        // 4 domains → vth granularity of 0.3 V; a 5 mV verify must fail for
        // a mid target.
        let params = FefetParams {
            preisach: PreisachParams {
                domains: 4,
                ..PreisachParams::default()
            },
            ..FefetParams::default()
        };
        let mut dev = Fefet::new(params);
        let cfg = ProgramConfig::default();
        let err = program_vth(&mut dev, 0.75, &cfg).unwrap_err();
        assert!(matches!(err, ProgramError::VerifyFailed { .. }));
    }

    #[test]
    fn verify_absorbs_device_variation() {
        // Sampled devices have jittered coercive voltages, but write-verify
        // still lands each on target.
        let cfg = ProgramConfig::default();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let mut dev = Fefet::sampled(fine_params(), 0.1, &mut rng);
            program_state(&mut dev, 1, &cfg).expect("verify should absorb jitter");
            assert!((dev.vth() - 0.6).abs() <= cfg.verify_tolerance + 1e-12);
        }
    }

    #[test]
    fn report_counts_pulses_and_energy() {
        let mut dev = Fefet::new(fine_params());
        let cfg = ProgramConfig::default();
        let report = program_vth_with_report(&mut dev, 0.6, &cfg).unwrap();
        assert!(report.pulse_pairs >= 1 && report.pulse_pairs <= cfg.max_iterations);
        // Each pulse pair costs at least C_FE * erase².
        assert!(report.energy >= report.pulse_pairs as f64 * 1.5e-15 * 25.0);
        assert!((report.achieved_vth - 0.6).abs() <= cfg.verify_tolerance + 1e-12);
        // Programming costs orders more than a read/search event — the
        // NVM write-rarely assumption.
        assert!(report.energy > 1e-14);
    }

    #[test]
    fn harder_targets_take_more_pulses() {
        let cfg = ProgramConfig::default();
        let mut easy_dev = Fefet::new(fine_params());
        // vth_high is reachable with a single strong erase.
        let easy = program_vth_with_report(&mut easy_dev, 1.4, &cfg).unwrap();
        let mut hard_dev = Fefet::new(fine_params());
        let hard = program_vth_with_report(&mut hard_dev, 0.6123, &cfg).unwrap();
        assert!(hard.pulse_pairs >= easy.pulse_pairs);
    }

    #[test]
    fn retry_succeeds_first_attempt_on_nominal_device() {
        let mut dev = Fefet::new(fine_params());
        let cfg = ProgramConfig::default();
        let r = program_vth_with_retry(&mut dev, 0.6, &cfg, &RetryPolicy::default()).unwrap();
        assert_eq!(r.attempts, 1);
        assert!((r.report.achieved_vth - 0.6).abs() <= cfg.verify_tolerance + 1e-12);
    }

    #[test]
    fn retry_is_bounded_and_escalation_capped() {
        // A 4-domain stack can never hit a 10 mV verify on a mid target —
        // the retry loop must stop at exactly max_attempts, and every
        // escalated amplitude must respect the cap.
        let params = FefetParams {
            preisach: PreisachParams {
                domains: 4,
                ..PreisachParams::default()
            },
            ..FefetParams::default()
        };
        let mut dev = Fefet::new(params);
        let cfg = ProgramConfig::default();
        let policy = RetryPolicy {
            max_attempts: 4,
            amplitude_step: 1.0,
            max_amplitude: 6.0,
        };
        let err = program_vth_with_retry(&mut dev, 0.75, &cfg, &policy).unwrap_err();
        assert!(matches!(err, ProgramError::VerifyFailed { .. }));
        for attempt in 0..policy.max_attempts {
            let esc = policy.escalate(&cfg, attempt);
            assert!(esc.erase_amplitude <= policy.max_amplitude + 1e-12);
            assert!(esc.amplitude_range.1 <= policy.max_amplitude + 1e-12);
        }
        // Escalation actually escalates below the cap.
        assert!(policy.escalate(&cfg, 1).erase_amplitude > cfg.erase_amplitude);
    }

    #[test]
    fn states_are_ordered_after_programming() {
        let cfg = ProgramConfig::default();
        let mut vths = Vec::new();
        for state in 0..4u8 {
            let mut dev = Fefet::new(fine_params());
            program_state(&mut dev, state, &cfg).unwrap();
            vths.push(dev.vth());
        }
        for w in vths.windows(2) {
            assert!(w[0] < w[1], "vth ladder must be increasing: {vths:?}");
        }
    }
}
