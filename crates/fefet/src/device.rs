//! The composite FeFET device: Preisach ferroelectric stack over a MOSFET.
//!
//! The remnant polarization of the ferroelectric layer shifts the underlying
//! transistor's threshold voltage linearly across the programming window:
//! fully *up*-polarized ⇒ lowest `V_TH` (`V_TH0` = 0.2 V with default
//! parameters), fully *down*-polarized ⇒ highest (`V_TH3` = 1.4 V).

use crate::mosfet::{ids, MosOperatingPoint, MosParams, MosPolarity};
use crate::preisach::{DomainStack, PreisachParams};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Full parameter set of a FeFET device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FefetParams {
    /// Ferroelectric-stack parameters.
    pub preisach: PreisachParams,
    /// Underlying transistor parameters; `vth` here is ignored (it is set
    /// by polarization), everything else is used as-is.
    pub mosfet: MosParams,
    /// Threshold voltage when fully up-polarized (lowest state), volts.
    pub vth_low: f64,
    /// Threshold voltage when fully down-polarized (highest state), volts.
    pub vth_high: f64,
    /// Gate capacitance presented to the driving node, farads.
    pub c_gate: f64,
}

impl Default for FefetParams {
    fn default() -> Self {
        Self {
            preisach: PreisachParams::default(),
            mosfet: MosParams::nmos_40nm(),
            vth_low: crate::PAPER_VTH[0],
            vth_high: crate::PAPER_VTH[crate::PAPER_STATES - 1],
            c_gate: 0.12e-15,
        }
    }
}

/// A FeFET: non-volatile multi-level memory transistor.
///
/// # Examples
///
/// ```
/// use tdam_fefet::{Fefet, FefetParams};
///
/// let mut dev = Fefet::new(FefetParams::default());
/// assert!((dev.vth() - 1.4).abs() < 1e-9, "erased device sits at V_TH3");
/// dev.stack_mut().saturate();
/// assert!((dev.vth() - 0.2).abs() < 1e-9, "saturated device sits at V_TH0");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fefet {
    params: FefetParams,
    stack: DomainStack,
}

impl Fefet {
    /// Creates a nominal (process-typical) device, erased to the highest
    /// threshold state.
    pub fn new(params: FefetParams) -> Self {
        Self {
            stack: DomainStack::nominal(params.preisach),
            params,
        }
    }

    /// Creates one device instance sampled from the process distribution:
    /// per-domain coercive-voltage jitter of `mismatch_sigma` volts.
    pub fn sampled<R: Rng + ?Sized>(params: FefetParams, mismatch_sigma: f64, rng: &mut R) -> Self {
        Self {
            stack: DomainStack::sampled(params.preisach, mismatch_sigma, rng),
            params,
        }
    }

    /// The device parameters.
    pub fn params(&self) -> &FefetParams {
        &self.params
    }

    /// Immutable access to the ferroelectric domain stack.
    pub fn stack(&self) -> &DomainStack {
        &self.stack
    }

    /// Mutable access to the domain stack (e.g. for direct erase/saturate).
    pub fn stack_mut(&mut self) -> &mut DomainStack {
        &mut self.stack
    }

    /// Current threshold voltage, set linearly by polarization:
    /// `V_TH = V_TH,high − f_up · (V_TH,high − V_TH,low)`.
    pub fn vth(&self) -> f64 {
        let f_up = self.stack.fraction_up();
        self.params.vth_high - f_up * (self.params.vth_high - self.params.vth_low)
    }

    /// Applies a gate write pulse (amplitude volts, width seconds),
    /// updating the stored polarization.
    pub fn write_pulse(&mut self, amplitude: f64, width: f64) {
        self.stack.apply_pulse(amplitude, width);
    }

    /// Drain current and conductances at the given read bias. Read biases
    /// are far below coercive voltages, so this is non-destructive and the
    /// polarization state is not consulted beyond its `V_TH` effect.
    pub fn ids(&self, v_gs: f64, v_ds: f64) -> MosOperatingPoint {
        let p = self.params.mosfet.with_vth(self.vth());
        ids(&p, v_gs, v_ds)
    }

    /// The effective MOSFET parameters (polarization folded into `vth`).
    pub fn effective_mos(&self) -> MosParams {
        self.params.mosfet.with_vth(self.vth())
    }

    /// Gate capacitance in farads.
    pub fn c_gate(&self) -> f64 {
        self.params.c_gate
    }

    /// Channel polarity of the underlying transistor.
    pub fn polarity(&self) -> MosPolarity {
        self.params.mosfet.polarity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vth_tracks_polarization_extremes() {
        let mut dev = Fefet::new(FefetParams::default());
        assert!((dev.vth() - 1.4).abs() < 1e-12);
        dev.stack_mut().saturate();
        assert!((dev.vth() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn strong_pulses_program_extremes() {
        let mut dev = Fefet::new(FefetParams::default());
        dev.write_pulse(5.0, 1e-6);
        assert!((dev.vth() - 0.2).abs() < 1e-12);
        dev.write_pulse(-5.0, 1e-6);
        assert!((dev.vth() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn vth_monotone_decreasing_in_write_amplitude() {
        let mut prev = f64::INFINITY;
        for amp in [1.8, 2.2, 2.6, 3.0, 3.4, 3.8] {
            let mut dev = Fefet::new(FefetParams::default());
            dev.write_pulse(amp, 500e-9);
            let vth = dev.vth();
            assert!(vth <= prev, "vth {vth} should not exceed previous {prev}");
            prev = vth;
        }
    }

    #[test]
    fn conducting_depends_on_state() {
        let mut dev = Fefet::new(FefetParams::default());
        // Erased (vth=1.4): a 0.8 V gate read must keep it off.
        let off = dev.ids(0.8, 1.1).id;
        // Programmed low (vth=0.2): the same read turns it on.
        dev.stack_mut().saturate();
        let on = dev.ids(0.8, 1.1).id;
        assert!(on / off > 1e3, "on {on} / off {off}");
    }

    #[test]
    fn sampled_devices_have_distinct_vth_after_identical_pulse() {
        let params = FefetParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = Fefet::sampled(params, 0.2, &mut rng);
        let mut b = Fefet::sampled(params, 0.2, &mut rng);
        let mid = params.preisach.vc_mean;
        a.write_pulse(mid, 500e-9);
        b.write_pulse(mid, 500e-9);
        assert_ne!(a.vth(), b.vth());
    }

    #[test]
    fn read_does_not_disturb_state() {
        let mut dev = Fefet::new(FefetParams::default());
        dev.write_pulse(5.0, 1e-6);
        let vth_before = dev.vth();
        for _ in 0..100 {
            let _ = dev.ids(1.2, 1.1);
        }
        // Read gate voltages in the array never exceed V_SL3 = 1.2 V, far
        // below the minimum coercive voltage, so vth must be untouched.
        assert_eq!(dev.vth(), vth_before);
    }
}
