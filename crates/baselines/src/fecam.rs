//! The 2-FeFET TCAM of Ni et al., Nature Electronics 2019 (voltage
//! domain, non-quantitative).
//!
//! Two FeFETs replace the 16-transistor CMOS cell, shrinking both the cell
//! and the match-line capacitance; search behaviour is the same NOR-type
//! match-line scheme as [`crate::tcam16t`], so the design still cannot
//! report distances — only exact matches (or a handful of mismatching
//! cells via sense-margin tricks, which the paper's Table I still counts
//! as non-quantitative).

use crate::validate_bits;
use serde::{Deserialize, Serialize};
use tdam::engine::{BatchQuery, BatchResult, SearchMetrics, SimilarityEngine};
use tdam::TdamError;

/// Structural parameters of the 2-FeFET TCAM model (45 nm class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FecamParams {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Match-line capacitance per cell, farads (2 FeFET drains + wire —
    /// much smaller than a 16T cell).
    pub c_ml_per_cell: f64,
    /// Search-line capacitance per cell per line, farads (FeFET gates).
    pub c_sl_per_cell: f64,
    /// Search latency, seconds.
    pub t_search: f64,
}

impl Default for FecamParams {
    fn default() -> Self {
        Self {
            vdd: 1.0,
            c_ml_per_cell: 0.28e-15,
            c_sl_per_cell: 0.06e-15,
            t_search: 0.6e-9,
        }
    }
}

/// A functional 2-FeFET TCAM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fecam {
    params: FecamParams,
    width: usize,
    data: Vec<Vec<u8>>,
}

impl Fecam {
    /// Creates a 2-FeFET TCAM with `rows` words of `width` bits.
    pub fn new(rows: usize, width: usize, params: FecamParams) -> Self {
        Self {
            params,
            width,
            data: vec![vec![0; width]; rows],
        }
    }

    /// Read-only search body shared by the single-query and batched paths.
    fn search_ref(&self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        if query.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.width,
            });
        }
        validate_bits(query)?;
        let p = &self.params;
        let v2 = p.vdd * p.vdd;
        let mut best = None;
        let mut distances = Vec::with_capacity(self.data.len());
        let mut ml_energy = 0.0;
        for (i, row) in self.data.iter().enumerate() {
            let mismatch = row.iter().zip(query).any(|(a, b)| a != b);
            if mismatch {
                ml_energy += self.width as f64 * p.c_ml_per_cell * v2;
                distances.push(None);
            } else {
                if best.is_none() {
                    best = Some(i);
                }
                distances.push(Some(0));
            }
        }
        let sl_energy = 2.0 * self.width as f64 * self.data.len() as f64 * p.c_sl_per_cell * v2;
        Ok(SearchMetrics {
            best_row: best,
            distances,
            energy: ml_energy + sl_energy,
            latency: p.t_search,
        })
    }
}

impl SimilarityEngine for Fecam {
    fn name(&self) -> &str {
        "2FeFET TCAM (Nat. Electron.'19)"
    }

    fn is_quantitative(&self) -> bool {
        false
    }

    fn rows(&self) -> usize {
        self.data.len()
    }

    fn width(&self) -> usize {
        self.width
    }

    fn bits_per_element(&self) -> u8 {
        1
    }

    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
        if row >= self.data.len() {
            return Err(TdamError::RowOutOfBounds {
                row,
                rows: self.data.len(),
            });
        }
        if values.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: values.len(),
                expected: self.width,
            });
        }
        validate_bits(values)?;
        self.data[row] = values.to_vec();
        Ok(())
    }

    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        self.search_ref(query)
    }

    fn search_batch(&mut self, batch: &BatchQuery) -> Result<BatchResult, TdamError> {
        crate::parallel_batch(self.width, batch, |q| self.search_ref(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denser_than_16t() {
        // Same workload: the FeFET CAM must beat the CMOS TCAM on energy.
        let mut fe = Fecam::new(16, 64, FecamParams::default());
        let mut cmos = crate::tcam16t::Tcam16t::new(16, 64, Default::default());
        let q = vec![1u8; 64];
        let e_fe = fe.search(&q).unwrap().energy;
        let e_cmos = cmos.search(&q).unwrap().energy;
        assert!(e_fe < e_cmos, "FeFET {e_fe:e} vs CMOS {e_cmos:e}");
    }

    #[test]
    fn energy_per_bit_in_paper_range() {
        // Table I reports 0.40 fJ/bit.
        let mut c = Fecam::new(16, 64, FecamParams::default());
        let m = c.search(&[1; 64]).unwrap();
        let epb = m.energy_per_bit(c.total_bits()).unwrap();
        assert!(
            (0.2e-15..0.7e-15).contains(&epb),
            "energy/bit {epb:e} should be near the paper's 0.40 fJ"
        );
    }

    #[test]
    fn batch_matches_sequential() {
        let mut c = Fecam::new(2, 4, FecamParams::default());
        c.store(1, &[1, 1, 0, 0]).unwrap();
        let rows = vec![vec![1, 1, 0, 0], vec![0, 0, 0, 0], vec![1, 1, 0, 1]];
        let batch = BatchQuery::from_rows(&rows).unwrap();
        let batched = c.search_batch(&batch).unwrap();
        for (i, q) in rows.iter().enumerate() {
            assert_eq!(batched.queries[i], c.search(q).unwrap());
        }
    }

    #[test]
    fn finds_exact_match_only() {
        let mut c = Fecam::new(2, 4, FecamParams::default());
        c.store(1, &[1, 1, 0, 0]).unwrap();
        assert_eq!(c.search(&[1, 1, 0, 0]).unwrap().best_row, Some(1));
        assert_eq!(c.search(&[1, 1, 0, 1]).unwrap().best_row, None);
    }

    #[test]
    fn input_validation() {
        let mut c = Fecam::new(2, 4, FecamParams::default());
        assert!(c.store(0, &[2, 0, 0, 0]).is_err());
        assert!(c.search(&[0, 0, 0]).is_err());
    }
}
