//! The 16-transistor CMOS TCAM baseline (voltage domain,
//! non-quantitative).
//!
//! Classic NOR-type match-line TCAM: every row's match line is precharged,
//! then any mismatching cell discharges it. The design only reports
//! *match / no-match* per row — it cannot count mismatches, which is
//! exactly the limitation the TD-AM removes. Energy is dominated by
//! match-line and search-line switching: on a typical search almost every
//! row mismatches, so nearly all match lines discharge and must be
//! re-precharged.

use crate::validate_bits;
use serde::{Deserialize, Serialize};
use tdam::engine::{BatchQuery, BatchResult, SearchMetrics, SimilarityEngine};
use tdam::TdamError;

/// Structural parameters of the 16T TCAM model (45 nm class, per Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tcam16tParams {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Match-line capacitance contributed per cell, farads (16T cells are
    /// large: two pull-down paths plus wire).
    pub c_ml_per_cell: f64,
    /// Search-line capacitance per cell per line (two lines), farads.
    pub c_sl_per_cell: f64,
    /// Match-line sense + precharge latency, seconds.
    pub t_search: f64,
}

impl Default for Tcam16tParams {
    fn default() -> Self {
        Self {
            vdd: 1.0,
            c_ml_per_cell: 0.35e-15,
            c_sl_per_cell: 0.12e-15,
            t_search: 0.5e-9,
        }
    }
}

/// A functional 16T CMOS TCAM.
///
/// # Examples
///
/// ```
/// use tdam_baselines::tcam16t::Tcam16t;
/// use tdam::engine::SimilarityEngine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cam = Tcam16t::new(4, 8, Default::default());
/// cam.store(0, &[1, 0, 1, 0, 1, 0, 1, 0])?;
/// let m = cam.search(&[1, 0, 1, 0, 1, 0, 1, 0])?;
/// assert_eq!(m.best_row, Some(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tcam16t {
    params: Tcam16tParams,
    width: usize,
    data: Vec<Vec<u8>>,
}

impl Tcam16t {
    /// Creates a TCAM with `rows` words of `width` bits, zero-initialized.
    pub fn new(rows: usize, width: usize, params: Tcam16tParams) -> Self {
        Self {
            params,
            width,
            data: vec![vec![0; width]; rows],
        }
    }

    /// Read-only search body shared by the single-query and batched paths.
    fn search_ref(&self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        if query.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.width,
            });
        }
        validate_bits(query)?;
        let p = &self.params;
        let v2 = p.vdd * p.vdd;
        let mut best = None;
        let mut distances = Vec::with_capacity(self.data.len());
        let mut ml_energy = 0.0;
        for (i, row) in self.data.iter().enumerate() {
            let mismatch = row.iter().zip(query).any(|(a, b)| a != b);
            if mismatch {
                // Match line discharges and must be re-precharged: full
                // C_ML swing.
                ml_energy += self.width as f64 * p.c_ml_per_cell * v2;
                distances.push(None);
            } else {
                if best.is_none() {
                    best = Some(i);
                }
                distances.push(Some(0));
            }
        }
        // Two differential search lines per column, each loading every row.
        let sl_energy = 2.0 * self.width as f64 * self.data.len() as f64 * p.c_sl_per_cell * v2;
        Ok(SearchMetrics {
            best_row: best,
            distances,
            energy: ml_energy + sl_energy,
            latency: p.t_search,
        })
    }
}

impl SimilarityEngine for Tcam16t {
    fn name(&self) -> &str {
        "16T TCAM (JSSC'06)"
    }

    fn is_quantitative(&self) -> bool {
        false
    }

    fn rows(&self) -> usize {
        self.data.len()
    }

    fn width(&self) -> usize {
        self.width
    }

    fn bits_per_element(&self) -> u8 {
        1
    }

    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
        if row >= self.data.len() {
            return Err(TdamError::RowOutOfBounds {
                row,
                rows: self.data.len(),
            });
        }
        if values.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: values.len(),
                expected: self.width,
            });
        }
        validate_bits(values)?;
        self.data[row] = values.to_vec();
        Ok(())
    }

    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        self.search_ref(query)
    }

    fn search_batch(&mut self, batch: &BatchQuery) -> Result<BatchResult, TdamError> {
        crate::parallel_batch(self.width, batch, |q| self.search_ref(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Tcam16t {
        let mut c = Tcam16t::new(3, 8, Tcam16tParams::default());
        c.store(0, &[0, 0, 0, 0, 1, 1, 1, 1]).unwrap();
        c.store(1, &[1, 1, 1, 1, 0, 0, 0, 0]).unwrap();
        c.store(2, &[1, 0, 1, 0, 1, 0, 1, 0]).unwrap();
        c
    }

    #[test]
    fn exact_match_found() {
        let mut c = cam();
        let m = c.search(&[1, 1, 1, 1, 0, 0, 0, 0]).unwrap();
        assert_eq!(m.best_row, Some(1));
        assert_eq!(m.distances[1], Some(0));
        assert_eq!(m.distances[0], None);
    }

    #[test]
    fn near_match_is_invisible() {
        // One bit off: a TCAM reports nothing — the non-quantitative
        // limitation Table I lists.
        let mut c = cam();
        let m = c.search(&[1, 1, 1, 1, 0, 0, 0, 1]).unwrap();
        assert_eq!(m.best_row, None);
        assert!(m.distances.iter().all(Option::is_none));
    }

    #[test]
    fn energy_higher_when_all_rows_miss() {
        let mut c = cam();
        let all_miss = c.search(&[0, 1, 0, 1, 0, 1, 0, 1]).unwrap();
        let one_hit = c.search(&[1, 0, 1, 0, 1, 0, 1, 0]).unwrap();
        assert!(all_miss.energy > one_hit.energy);
    }

    #[test]
    fn energy_per_bit_in_paper_range() {
        // Table I reports 0.59 fJ/bit for this design.
        let mut c = Tcam16t::new(16, 64, Tcam16tParams::default());
        let m = c.search(&[1; 64]).unwrap();
        let epb = m.energy_per_bit(c.total_bits()).unwrap();
        assert!(
            (0.3e-15..1.0e-15).contains(&epb),
            "energy/bit {epb:e} should be near the paper's 0.59 fJ"
        );
    }

    #[test]
    fn batch_matches_sequential() {
        let mut c = cam();
        let rows = vec![
            vec![1, 1, 1, 1, 0, 0, 0, 0],
            vec![0, 1, 0, 1, 0, 1, 0, 1],
            vec![1, 0, 1, 0, 1, 0, 1, 0],
        ];
        let batch = BatchQuery::from_rows(&rows).unwrap();
        let batched = c.search_batch(&batch).unwrap();
        for (i, q) in rows.iter().enumerate() {
            assert_eq!(batched.queries[i], c.search(q).unwrap());
        }
    }

    #[test]
    fn rejects_bad_input() {
        let mut c = cam();
        assert!(c.store(9, &[0; 8]).is_err());
        assert!(c.store(0, &[0; 7]).is_err());
        assert!(c.store(0, &[2; 8]).is_err());
        assert!(c.search(&[0; 7]).is_err());
        assert!(c.search(&[3; 8]).is_err());
    }
}
