//! TIMAQ-style SRAM time-domain compute-in-memory (JSSC'21, CMOS,
//! quantitative).
//!
//! Each delay stage is a 20T+4MUX SRAM-based cell — large, and every
//! stage's full capacitance toggles per operation, which is why Table I
//! shows 2.2 fJ/bit, 13.8× the TD-AM. The model is functional: it stores
//! binary vectors and computes exact Hamming distances through per-row
//! delay accumulation, exactly like the TD-AM but with CMOS-stage costs.

use crate::validate_bits;
use serde::{Deserialize, Serialize};
use tdam::engine::{BatchQuery, BatchResult, SearchMetrics, SimilarityEngine};
use tdam::TdamError;

/// Structural parameters of the TIMAQ-style stage (28 nm class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimaqParams {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Switched capacitance per 20T+4MUX stage per search, farads.
    pub c_stage: f64,
    /// Intrinsic stage delay, seconds.
    pub d_stage: f64,
    /// Extra delay per mismatch, seconds.
    pub d_penalty: f64,
}

impl Default for TimaqParams {
    fn default() -> Self {
        Self {
            vdd: 0.9,
            c_stage: 2.7e-15,
            d_stage: 25e-12,
            d_penalty: 60e-12,
        }
    }
}

/// A functional TIMAQ-style TD-CIM storing binary vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timaq {
    params: TimaqParams,
    width: usize,
    data: Vec<Vec<u8>>,
}

impl Timaq {
    /// Creates an engine with `rows` words of `width` bits.
    pub fn new(rows: usize, width: usize, params: TimaqParams) -> Self {
        Self {
            params,
            width,
            data: vec![vec![0; width]; rows],
        }
    }

    /// Read-only search body shared by the single-query and batched paths.
    fn search_ref(&self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        if query.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.width,
            });
        }
        validate_bits(query)?;
        let p = &self.params;
        let v2 = p.vdd * p.vdd;
        let mut distances = Vec::with_capacity(self.data.len());
        let mut worst_delay: f64 = 0.0;
        for row in &self.data {
            let d = row.iter().zip(query).filter(|(a, b)| a != b).count();
            distances.push(Some(d));
            worst_delay = worst_delay.max(self.width as f64 * p.d_stage + d as f64 * p.d_penalty);
        }
        // Every SRAM TD stage toggles per search, in every row.
        let energy = self.data.len() as f64 * self.width as f64 * p.c_stage * v2;
        let best_row = distances
            .iter()
            .enumerate()
            .min_by_key(|(_, d)| d.unwrap_or(usize::MAX))
            .map(|(i, _)| i);
        Ok(SearchMetrics {
            best_row,
            distances,
            energy,
            latency: worst_delay,
        })
    }
}

impl SimilarityEngine for Timaq {
    fn name(&self) -> &str {
        "TIMAQ-style CMOS TD-CIM (JSSC'21)"
    }

    fn is_quantitative(&self) -> bool {
        true
    }

    fn rows(&self) -> usize {
        self.data.len()
    }

    fn width(&self) -> usize {
        self.width
    }

    fn bits_per_element(&self) -> u8 {
        1
    }

    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
        if row >= self.data.len() {
            return Err(TdamError::RowOutOfBounds {
                row,
                rows: self.data.len(),
            });
        }
        if values.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: values.len(),
                expected: self.width,
            });
        }
        validate_bits(values)?;
        self.data[row] = values.to_vec();
        Ok(())
    }

    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        self.search_ref(query)
    }

    fn search_batch(&mut self, batch: &BatchQuery) -> Result<BatchResult, TdamError> {
        crate::parallel_batch(self.width, batch, |q| self.search_ref(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantitative_distances() {
        let mut e = Timaq::new(2, 8, TimaqParams::default());
        e.store(0, &[1, 1, 1, 1, 0, 0, 0, 0]).unwrap();
        e.store(1, &[0, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        let m = e.search(&[1, 1, 1, 0, 0, 0, 0, 0]).unwrap();
        assert_eq!(m.distances, vec![Some(1), Some(3)]);
        assert_eq!(m.best_row, Some(0));
    }

    #[test]
    fn energy_per_bit_near_paper_value() {
        // Table I: 2.2 fJ/bit.
        let mut e = Timaq::new(16, 64, TimaqParams::default());
        let m = e.search(&[1; 64]).unwrap();
        let epb = m.energy_per_bit(e.total_bits()).unwrap();
        assert!(
            (1.5e-15..3.0e-15).contains(&epb),
            "energy/bit {epb:e} should be near 2.2 fJ"
        );
    }

    #[test]
    fn batch_matches_sequential() {
        let mut e = Timaq::new(2, 8, TimaqParams::default());
        e.store(0, &[1, 1, 1, 1, 0, 0, 0, 0]).unwrap();
        let rows = vec![vec![1u8; 8], vec![0u8; 8], vec![1, 1, 1, 0, 0, 0, 0, 0]];
        let batch = BatchQuery::from_rows(&rows).unwrap();
        let batched = e.search_batch(&batch).unwrap();
        for (i, q) in rows.iter().enumerate() {
            assert_eq!(batched.queries[i], e.search(q).unwrap());
        }
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut e = Timaq::new(1, 8, TimaqParams::default());
        e.store(0, &[0; 8]).unwrap();
        let near = e.search(&[0; 8]).unwrap().latency;
        let far = e.search(&[1; 8]).unwrap().latency;
        assert!(far > near);
    }
}
