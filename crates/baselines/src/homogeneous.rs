//! The 3T-2FeFET homogeneous time-domain fabric of the paper's ref.
//! \[24\] (binary variable-capacitance stages, quantitative).
//!
//! Architecturally the closest prior work: the same
//! variable-capacitance delay-chain idea, but with *binary* cells — each
//! stage compares one bit, so an equal-content vector needs twice the
//! stages of the 2-bit TD-AM and pays the stage overhead per bit instead
//! of per two bits. That structural difference is what Table I's 1.47×
//! energy ratio comes from.

use crate::validate_bits;
use serde::{Deserialize, Serialize};
use tdam::engine::{BatchQuery, BatchResult, SearchMetrics, SimilarityEngine};
use tdam::TdamError;

/// Structural parameters of the 3T-2FeFET binary TD stage (40 nm class,
/// same node as the TD-AM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HomogeneousTdParams {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Per-stage intrinsic switched capacitance, farads. The 3T cell is
    /// lean, but without the TD-AM's 2-step even/odd scheme this design
    /// needs buffer insertion to keep edges sharp, raising the effective
    /// switched capacitance per stage.
    pub c_stage: f64,
    /// Search-line capacitance per cell per line, farads.
    pub c_sl_per_cell: f64,
    /// Load capacitance switched per mismatch, farads.
    pub c_load: f64,
    /// Fraction of the load capacitance actually swung per mismatch event
    /// in this design's single-step (no even/odd split) operation.
    pub load_activity: f64,
    /// Intrinsic stage delay, seconds.
    pub d_stage: f64,
    /// Extra delay per mismatch, seconds.
    pub d_penalty: f64,
}

impl Default for HomogeneousTdParams {
    fn default() -> Self {
        Self {
            vdd: 0.6,
            c_stage: 0.85e-15,
            c_sl_per_cell: 0.12e-15,
            c_load: 6e-15,
            load_activity: 1.0,
            d_stage: 8e-12,
            d_penalty: 45e-12,
        }
    }
}

/// A functional 3T-2FeFET binary TD engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HomogeneousTd {
    params: HomogeneousTdParams,
    width: usize,
    data: Vec<Vec<u8>>,
}

impl HomogeneousTd {
    /// Creates an engine with `rows` words of `width` bits.
    pub fn new(rows: usize, width: usize, params: HomogeneousTdParams) -> Self {
        Self {
            params,
            width,
            data: vec![vec![0; width]; rows],
        }
    }

    /// Read-only search body shared by the single-query and batched paths.
    fn search_ref(&self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        if query.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.width,
            });
        }
        validate_bits(query)?;
        let p = &self.params;
        let v2 = p.vdd * p.vdd;
        let mut distances = Vec::with_capacity(self.data.len());
        let mut worst: f64 = 0.0;
        let mut energy = 0.0;
        for row in &self.data {
            let d = row.iter().zip(query).filter(|(a, b)| a != b).count();
            distances.push(Some(d));
            worst = worst.max(self.width as f64 * p.d_stage + d as f64 * p.d_penalty);
            energy +=
                self.width as f64 * p.c_stage * v2 + d as f64 * p.load_activity * p.c_load * v2;
        }
        energy += 2.0 * self.width as f64 * p.c_sl_per_cell * v2;
        let best_row = distances
            .iter()
            .enumerate()
            .min_by_key(|(_, d)| d.unwrap_or(usize::MAX))
            .map(|(i, _)| i);
        Ok(SearchMetrics {
            best_row,
            distances,
            energy,
            latency: worst,
        })
    }
}

impl SimilarityEngine for HomogeneousTd {
    fn name(&self) -> &str {
        "3T-2FeFET TD fabric [24]"
    }

    fn is_quantitative(&self) -> bool {
        true
    }

    fn rows(&self) -> usize {
        self.data.len()
    }

    fn width(&self) -> usize {
        self.width
    }

    fn bits_per_element(&self) -> u8 {
        1
    }

    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
        if row >= self.data.len() {
            return Err(TdamError::RowOutOfBounds {
                row,
                rows: self.data.len(),
            });
        }
        if values.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: values.len(),
                expected: self.width,
            });
        }
        validate_bits(values)?;
        self.data[row] = values.to_vec();
        Ok(())
    }

    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        self.search_ref(query)
    }

    fn search_batch(&mut self, batch: &BatchQuery) -> Result<BatchResult, TdamError> {
        crate::parallel_batch(self.width, batch, |q| self.search_ref(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantitative_binary_search() {
        let mut e = HomogeneousTd::new(2, 8, HomogeneousTdParams::default());
        e.store(0, &[1, 0, 1, 0, 1, 0, 1, 0]).unwrap();
        e.store(1, &[1; 8]).unwrap();
        let m = e.search(&[1; 8]).unwrap();
        assert_eq!(m.distances, vec![Some(4), Some(0)]);
        assert_eq!(m.best_row, Some(1));
    }

    #[test]
    fn energy_per_bit_near_paper_value() {
        // Table I: 0.234 fJ/bit at low mismatch activity. Use an exact
        // match (best case, mirroring the TD-AM's best-case figure).
        let mut e = HomogeneousTd::new(16, 64, HomogeneousTdParams::default());
        for r in 0..16 {
            e.store(r, &[1; 64]).unwrap();
        }
        let m = e.search(&[1; 64]).unwrap();
        let epb = m.energy_per_bit(e.total_bits()).unwrap();
        assert!(
            (0.1e-15..0.5e-15).contains(&epb),
            "best-case energy/bit {epb:e} (structural model; see EXPERIMENTS.md)"
        );
    }

    #[test]
    fn batch_matches_sequential() {
        let mut e = HomogeneousTd::new(2, 8, HomogeneousTdParams::default());
        e.store(0, &[1, 0, 1, 0, 1, 0, 1, 0]).unwrap();
        e.store(1, &[1; 8]).unwrap();
        let rows = vec![vec![1u8; 8], vec![0u8; 8], vec![1, 0, 1, 0, 1, 0, 1, 0]];
        let batch = BatchQuery::from_rows(&rows).unwrap();
        let batched = e.search_batch(&batch).unwrap();
        for (i, q) in rows.iter().enumerate() {
            assert_eq!(batched.queries[i], e.search(q).unwrap());
        }
    }

    #[test]
    fn energy_grows_with_mismatch_count() {
        let mut e = HomogeneousTd::new(1, 16, HomogeneousTdParams::default());
        e.store(0, &[0; 16]).unwrap();
        let e0 = e.search(&[0; 16]).unwrap().energy;
        let e1 = e.search(&[1; 16]).unwrap().energy;
        assert!(e1 > e0);
    }
}
