//! The Fe-FinFET time-domain CIM of IEDM'21 (14 nm, variable-*resistance*
//! stages, quantitative).
//!
//! This design puts the FeFET directly in each stage's pull-down path and
//! uses it as a tunable resistor. That is extremely energy-efficient
//! (advanced 14 nm node, tiny capacitances — Table I lists 0.039 fJ/bit)
//! but has the two weaknesses the TD-AM paper calls out:
//!
//! 1. the stage delay depends *exponentially* on the FeFET threshold
//!    voltage, so V_TH variation is amplified into large delay errors
//!    (see [`FeFinFet::stage_delay_with_vth_shift`], exercised by the
//!    VC-vs-VR ablation bench), and
//! 2. an OFF-state FeFET can interrupt signal propagation entirely.

use crate::validate_bits;
use serde::{Deserialize, Serialize};
use tdam::engine::{BatchQuery, BatchResult, SearchMetrics, SimilarityEngine};
use tdam::TdamError;
use tdam_fefet::mosfet::{ids, MosParams, MosPolarity};

/// Structural parameters of the Fe-FinFET TD stage (14 nm class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeFinFetParams {
    /// Supply voltage, volts (advanced node, aggressively scaled).
    pub vdd: f64,
    /// Switched capacitance per 2T-1FeFET stage per search, farads.
    pub c_stage: f64,
    /// Stage node capacitance discharged through the FeFET, farads (sets
    /// the variable-resistance delay).
    pub c_node: f64,
    /// Nominal FeFET threshold in the low-resistance state, volts.
    pub vth_on: f64,
    /// Gate drive applied during evaluation, volts.
    pub v_gate: f64,
    /// Intrinsic stage delay, seconds.
    pub d_stage: f64,
}

impl Default for FeFinFetParams {
    fn default() -> Self {
        Self {
            vdd: 0.55,
            c_stage: 0.13e-15,
            c_node: 0.5e-15,
            vth_on: 0.25,
            v_gate: 0.55,
            d_stage: 8e-12,
        }
    }
}

/// A functional Fe-FinFET variable-resistance TD-CIM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeFinFet {
    params: FeFinFetParams,
    width: usize,
    data: Vec<Vec<u8>>,
}

impl FeFinFet {
    /// Creates an engine with `rows` words of `width` bits.
    pub fn new(rows: usize, width: usize, params: FeFinFetParams) -> Self {
        Self {
            params,
            width,
            data: vec![vec![0; width]; rows],
        }
    }

    /// The 14 nm-class FeFET device used as the stage's tunable resistor.
    fn stage_device(&self) -> MosParams {
        MosParams {
            polarity: MosPolarity::Nmos,
            vth: self.params.vth_on,
            beta: 900e-6,
            n: 1.25,
            lambda: 0.1,
            v_t: 0.02585,
        }
    }

    /// Stage discharge delay when the FeFET's threshold is shifted by
    /// `dvth` from nominal: `t ≈ C_node · (V_DD/2) / I_D(V_G, V_TH+ΔV)`.
    ///
    /// This is the variation-amplification mechanism: in subthreshold or
    /// near-threshold operation the current — and therefore the delay —
    /// moves exponentially with `ΔV_TH`. Compare with the TD-AM, where the
    /// FeFET only gates a switch and the delay is set by a CMOS-driven RC.
    pub fn stage_delay_with_vth_shift(&self, dvth: f64) -> f64 {
        let dev = MosParams {
            vth: self.params.vth_on + dvth,
            ..self.stage_device()
        };
        let i = ids(&dev, self.params.v_gate, self.params.vdd / 2.0)
            .id
            .max(1e-15);
        self.params.c_node * (self.params.vdd / 2.0) / i
    }

    /// Read-only search body shared by the single-query and batched paths.
    fn search_ref(&self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        if query.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.width,
            });
        }
        validate_bits(query)?;
        let p = &self.params;
        let v2 = p.vdd * p.vdd;
        let d_mismatch = self.stage_delay_with_vth_shift(0.0);
        let mut distances = Vec::with_capacity(self.data.len());
        let mut worst: f64 = 0.0;
        for row in &self.data {
            let d = row.iter().zip(query).filter(|(a, b)| a != b).count();
            distances.push(Some(d));
            worst = worst.max(self.width as f64 * p.d_stage + d as f64 * d_mismatch);
        }
        let energy = self.data.len() as f64 * self.width as f64 * p.c_stage * v2;
        let best_row = distances
            .iter()
            .enumerate()
            .min_by_key(|(_, d)| d.unwrap_or(usize::MAX))
            .map(|(i, _)| i);
        Ok(SearchMetrics {
            best_row,
            distances,
            energy,
            latency: worst,
        })
    }
}

impl SimilarityEngine for FeFinFet {
    fn name(&self) -> &str {
        "Fe-FinFET TD-CIM (IEDM'21)"
    }

    fn is_quantitative(&self) -> bool {
        true
    }

    fn rows(&self) -> usize {
        self.data.len()
    }

    fn width(&self) -> usize {
        self.width
    }

    fn bits_per_element(&self) -> u8 {
        1
    }

    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
        if row >= self.data.len() {
            return Err(TdamError::RowOutOfBounds {
                row,
                rows: self.data.len(),
            });
        }
        if values.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: values.len(),
                expected: self.width,
            });
        }
        validate_bits(values)?;
        self.data[row] = values.to_vec();
        Ok(())
    }

    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        self.search_ref(query)
    }

    fn search_batch(&mut self, batch: &BatchQuery) -> Result<BatchResult, TdamError> {
        crate::parallel_batch(self.width, batch, |q| self.search_ref(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremely_low_energy_per_bit() {
        // Table I: 0.039 fJ/bit — below the TD-AM, thanks to the 14 nm
        // node and measurement configuration.
        let mut e = FeFinFet::new(16, 64, FeFinFetParams::default());
        let m = e.search(&[1; 64]).unwrap();
        let epb = m.energy_per_bit(e.total_bits()).unwrap();
        assert!(
            (0.02e-15..0.07e-15).contains(&epb),
            "energy/bit {epb:e} should be near 0.039 fJ"
        );
    }

    #[test]
    fn vth_variation_amplified_into_delay() {
        // The paper's criticism: a small vth shift causes a large relative
        // delay error in VR designs. ±45 mV must move the delay by more
        // than ±25%.
        let e = FeFinFet::new(1, 8, FeFinFetParams::default());
        let nominal = e.stage_delay_with_vth_shift(0.0);
        let slow = e.stage_delay_with_vth_shift(45e-3);
        let fast = e.stage_delay_with_vth_shift(-45e-3);
        assert!(
            slow / nominal > 1.25,
            "+45 mV should slow by >25%, got {}",
            slow / nominal
        );
        assert!(fast / nominal < 0.8);
    }

    #[test]
    fn off_state_interrupts_propagation() {
        // A FeFET stuck in the high-vth state makes the stage delay blow
        // up — the "computation failure" failure mode.
        let e = FeFinFet::new(1, 8, FeFinFetParams::default());
        let nominal = e.stage_delay_with_vth_shift(0.0);
        let stuck_off = e.stage_delay_with_vth_shift(0.6);
        assert!(
            stuck_off > 100.0 * nominal,
            "off-state delay {stuck_off:e} vs nominal {nominal:e}"
        );
    }

    #[test]
    fn distances_are_exact() {
        let mut e = FeFinFet::new(1, 6, FeFinFetParams::default());
        e.store(0, &[1, 0, 1, 0, 1, 0]).unwrap();
        let m = e.search(&[1, 1, 1, 1, 1, 1]).unwrap();
        assert_eq!(m.distances[0], Some(3));
    }

    #[test]
    fn batch_matches_sequential() {
        let mut e = FeFinFet::new(2, 6, FeFinFetParams::default());
        e.store(0, &[1, 0, 1, 0, 1, 0]).unwrap();
        let rows = vec![vec![1u8; 6], vec![0u8; 6], vec![1, 0, 1, 0, 1, 0]];
        let batch = BatchQuery::from_rows(&rows).unwrap();
        let batched = e.search_batch(&batch).unwrap();
        for (i, q) in rows.iter().enumerate() {
            assert_eq!(batched.queries[i], e.search(q).unwrap());
        }
    }
}
