//! Baseline similarity-computation engines and the GPU cost model.
//!
//! Table I of the paper compares the proposed TD-AM against five prior
//! designs; Fig. 8 benchmarks it against an NVIDIA RTX 4070. None of those
//! artifacts exist here, so this crate implements each comparator as a
//! *functional* model: every engine really stores vectors and answers
//! queries (so the comparison workloads are actually executed), and its
//! energy/latency figures come from a structural switched-capacitance
//! model (`C·V_DD²` per switching event, transistor counts and per-design
//! capacitances from the cited publications) — the same methodology used
//! for the TD-AM itself in [`tdam`].
//!
//! Implemented designs:
//!
//! - [`tcam16t`] — the classic 16-transistor CMOS TCAM (Pagiamtzis &
//!   Sheikholeslami, JSSC'06 tutorial baseline), voltage domain,
//!   non-quantitative,
//! - [`fecam`] — the 2-FeFET TCAM of Ni et al. (Nat. Electron.'19),
//!   voltage domain, non-quantitative,
//! - [`timaq`] — a TIMAQ-style SRAM time-domain CIM (JSSC'21),
//!   quantitative,
//! - [`fefinfet`] — the Fe-FinFET time-domain CIM of IEDM'21 (14 nm,
//!   *variable-resistance* delay stages), quantitative,
//! - [`homogeneous`] — the 3T-2FeFET time-domain fabric of the paper's
//!   ref. \[24\] (binary cells, variable-capacitance), quantitative,
//! - [`crossbar`] — the 1-FeFET current-domain crossbar CAM of the
//!   paper's ref. \[25\], with its ADC/static-power costs made explicit,
//! - [`gpu`] — an analytic RTX 4070-class cost model for Fig. 8.
//!
//! [`comparison`] drives all engines (plus the TD-AM) through an identical
//! workload and regenerates Table I.
//!
//! Every engine implements [`tdam::SimilarityEngine`], including the
//! batched [`search_batch`](tdam::SimilarityEngine::search_batch) serving
//! path: baseline searches are read-only over the stored data, so each
//! engine fans a batch out across the worker pool of [`tdam::parallel`]
//! and returns per-query results bit-identical to a sequential loop.
//!
//! # Examples
//!
//! Store rows into a quantitative baseline, answer a batch, read each
//! query's best row:
//!
//! ```
//! use tdam::engine::{BatchQuery, SimilarityEngine};
//! use tdam_baselines::timaq::Timaq;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut engine = Timaq::new(2, 4, Default::default());
//! engine.store(0, &[0, 0, 1, 1])?;
//! engine.store(1, &[1, 1, 0, 0])?;
//! let mut batch = BatchQuery::new(4);
//! batch.push(&[0, 0, 1, 0])?; // one bit from row 0
//! batch.push(&[1, 1, 0, 0])?; // exactly row 1
//! let result = engine.search_batch(&batch)?;
//! assert_eq!(result.best_rows(), vec![Some(0), Some(1)]);
//! assert_eq!(result.queries[1].distances[1], Some(0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
pub mod crossbar;
pub mod fecam;
pub mod fefinfet;
pub mod gpu;
pub mod homogeneous;
pub mod tcam16t;
pub mod timaq;

pub use comparison::{comparison_table, ComparisonRow};
pub use gpu::{GpuModel, GpuWorkload};

use tdam::engine::{BatchQuery, BatchResult, SearchMetrics};
use tdam::TdamError;

/// Validates a binary (0/1) vector for the bit-oriented CAM baselines.
pub(crate) fn validate_bits(v: &[u8]) -> Result<(), TdamError> {
    for &x in v {
        if x > 1 {
            return Err(TdamError::ValueOutOfRange {
                value: x,
                levels: 2,
            });
        }
    }
    Ok(())
}

/// Shared batched-search override for the baseline engines: every engine's
/// search path is read-only over its stored data, so a batch fans out
/// across the worker pool of [`tdam::parallel`] with per-query results
/// collected in batch order — bit-identical to the sequential loop.
pub(crate) fn parallel_batch<F>(
    width: usize,
    batch: &BatchQuery,
    search_ref: F,
) -> Result<BatchResult, TdamError>
where
    F: Fn(&[u8]) -> Result<SearchMetrics, TdamError> + Sync,
{
    if batch.width() != width {
        return Err(TdamError::LengthMismatch {
            got: batch.width(),
            expected: width,
        });
    }
    let queries = tdam::parallel::run_chunked(batch.len(), None, |i| search_ref(batch.get(i)))?;
    Ok(BatchResult { queries })
}

#[cfg(test)]
mod tests {
    use crate::tcam16t::Tcam16t;
    use crate::timaq::Timaq;
    use tdam::engine::{BatchQuery, SimilarityEngine};
    use tdam::runtime::{DeadlinePolicy, Guarded, QueryOutcome, RuntimeConfig};
    use tdam::{ErrorClass, TdamError};

    // The serving runtime's engine-agnostic wrapper must hold its contract
    // over the baseline engines too, not just the TD-AM: bit-identical
    // answers on a healthy engine, per-slot taxonomy errors, and deadline
    // partials.

    #[test]
    fn guarded_baseline_is_bit_identical_to_bare_engine() {
        let mut bare = Timaq::new(2, 4, Default::default());
        bare.store(0, &[0, 0, 1, 1]).unwrap();
        bare.store(1, &[1, 1, 0, 0]).unwrap();
        let mut batch = BatchQuery::new(4);
        batch.push(&[0, 0, 1, 0]).unwrap();
        batch.push(&[1, 1, 0, 0]).unwrap();
        let expected = bare.search_batch(&batch).unwrap();

        let mut guarded = Guarded::new(bare, RuntimeConfig::default());
        let outcome = guarded.serve(&batch);
        assert_eq!(outcome.availability(), 1.0);
        for (slot, want) in outcome.slots.iter().zip(&expected.queries) {
            assert_eq!(slot.ok(), Some(want));
        }
    }

    #[test]
    fn guarded_baseline_surfaces_permanent_errors_per_slot() {
        let mut cam = Tcam16t::new(2, 4, Default::default());
        cam.store(0, &[0, 1, 0, 1]).unwrap();
        cam.store(1, &[1, 0, 1, 0]).unwrap();
        let mut batch = BatchQuery::new(4);
        batch.push(&[0, 1, 0, 1]).unwrap();
        batch.push(&[0, 9, 0, 0]).unwrap(); // not a bit — binary CAM rejects it
        batch.push(&[1, 0, 1, 0]).unwrap();
        let mut guarded = Guarded::new(cam, RuntimeConfig::default());
        let outcome = guarded.serve(&batch);
        assert_eq!(outcome.slots[0].ok().and_then(|m| m.best_row), Some(0));
        assert_eq!(outcome.slots[2].ok().and_then(|m| m.best_row), Some(1));
        match &outcome.slots[1] {
            QueryOutcome::Failed { error, class } => {
                assert_eq!(
                    error,
                    &TdamError::ValueOutOfRange {
                        value: 9,
                        levels: 2
                    }
                );
                assert_eq!(*class, ErrorClass::Permanent);
            }
            other => panic!("expected a failed slot, got {other:?}"),
        }
    }

    #[test]
    fn guarded_baseline_honors_query_budget() {
        let mut cam = Tcam16t::new(2, 4, Default::default());
        cam.store(0, &[0, 1, 0, 1]).unwrap();
        let rows = vec![vec![0u8, 1, 0, 1]; 5];
        let batch = BatchQuery::from_rows(&rows).unwrap();
        let cfg = RuntimeConfig {
            deadline: DeadlinePolicy::QueryBudget(2),
            ..Default::default()
        };
        let mut guarded = Guarded::new(cam, cfg);
        let outcome = guarded.serve(&batch);
        assert!(outcome.slots[..2].iter().all(QueryOutcome::is_ok));
        assert!(outcome.slots[2..]
            .iter()
            .all(|s| matches!(s, QueryOutcome::TimedOut)));
        assert_eq!(outcome.availability(), 0.4);
    }
}
