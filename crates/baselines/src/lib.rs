//! Baseline similarity-computation engines and the GPU cost model.
//!
//! Table I of the paper compares the proposed TD-AM against five prior
//! designs; Fig. 8 benchmarks it against an NVIDIA RTX 4070. None of those
//! artifacts exist here, so this crate implements each comparator as a
//! *functional* model: every engine really stores vectors and answers
//! queries (so the comparison workloads are actually executed), and its
//! energy/latency figures come from a structural switched-capacitance
//! model (`C·V_DD²` per switching event, transistor counts and per-design
//! capacitances from the cited publications) — the same methodology used
//! for the TD-AM itself in [`tdam`].
//!
//! Implemented designs:
//!
//! - [`tcam16t`] — the classic 16-transistor CMOS TCAM (Pagiamtzis &
//!   Sheikholeslami, JSSC'06 tutorial baseline), voltage domain,
//!   non-quantitative,
//! - [`fecam`] — the 2-FeFET TCAM of Ni et al. (Nat. Electron.'19),
//!   voltage domain, non-quantitative,
//! - [`timaq`] — a TIMAQ-style SRAM time-domain CIM (JSSC'21),
//!   quantitative,
//! - [`fefinfet`] — the Fe-FinFET time-domain CIM of IEDM'21 (14 nm,
//!   *variable-resistance* delay stages), quantitative,
//! - [`homogeneous`] — the 3T-2FeFET time-domain fabric of the paper's
//!   ref. \[24\] (binary cells, variable-capacitance), quantitative,
//! - [`crossbar`] — the 1-FeFET current-domain crossbar CAM of the
//!   paper's ref. \[25\], with its ADC/static-power costs made explicit,
//! - [`gpu`] — an analytic RTX 4070-class cost model for Fig. 8.
//!
//! [`comparison`] drives all engines (plus the TD-AM) through an identical
//! workload and regenerates Table I.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
pub mod crossbar;
pub mod fecam;
pub mod fefinfet;
pub mod gpu;
pub mod homogeneous;
pub mod tcam16t;
pub mod timaq;

pub use comparison::{comparison_table, ComparisonRow};
pub use gpu::{GpuModel, GpuWorkload};

use tdam::TdamError;

/// Validates a binary (0/1) vector for the bit-oriented CAM baselines.
pub(crate) fn validate_bits(v: &[u8]) -> Result<(), TdamError> {
    for &x in v {
        if x > 1 {
            return Err(TdamError::ValueOutOfRange {
                value: x,
                levels: 2,
            });
        }
    }
    Ok(())
}
