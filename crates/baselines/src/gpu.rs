//! Analytic GPU cost model (RTX 4070 class) for the Fig. 8 comparison.
//!
//! The paper benchmarks HDC inference on a physical NVIDIA GeForce
//! RTX 4070 under PyTorch. No GPU exists here, so this model captures the
//! two effects Fig. 8's shape rests on:
//!
//! - **latency** is dominated by a dimension-independent kernel-launch +
//!   framework overhead floor (tens of µs); the actual similarity compute
//!   is bandwidth/ALU-bound and only matters at very large
//!   `classes × dims`. This is why small dimensionalities show two-plus
//!   orders of magnitude TD-AM speedup that attenuates as `D` grows.
//! - **energy per query** amortizes the overhead across the framework's
//!   effective batching, so it is much lower than `power × latency` but
//!   still orders of magnitude above switched-capacitor in-memory search.

use serde::{Deserialize, Serialize};

/// An HDC associative-search workload for the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuWorkload {
    /// Hypervector dimensionality.
    pub dims: usize,
    /// Number of stored class hypervectors.
    pub classes: usize,
    /// Bytes per vector element as laid out on the GPU.
    pub bytes_per_element: f64,
}

/// A GPU cost model.
///
/// # Examples
///
/// ```
/// use tdam_baselines::gpu::{GpuModel, GpuWorkload};
///
/// let gpu = GpuModel::rtx_4070();
/// let w = GpuWorkload { dims: 2048, classes: 26, bytes_per_element: 4.0 };
/// assert!(gpu.query_latency(&w) > 1e-6, "launch overhead dominates");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Kernel-launch + framework overhead per unbatched inference, seconds.
    pub launch_overhead: f64,
    /// Effective memory bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Effective compute throughput, operations/second.
    pub compute_throughput: f64,
    /// Average board power while active, watts.
    pub power: f64,
    /// Effective batch size the framework amortizes launch overhead and
    /// weight loading over when measuring energy per query (PyTorch-style
    /// batched inference).
    pub energy_batch: f64,
}

impl GpuModel {
    /// An RTX 4070-class model: ~29 TFLOPS fp32, ~504 GB/s, 200 W, with a
    /// 30 µs per-call framework floor.
    pub fn rtx_4070() -> Self {
        Self {
            launch_overhead: 30e-6,
            mem_bandwidth: 504e9,
            compute_throughput: 29e12 * 0.35, // achievable fraction on GEMV
            power: 200.0,
            energy_batch: 2048.0,
        }
    }

    /// Pure kernel time for the similarity compute (no overhead), seconds.
    pub fn kernel_time(&self, w: &GpuWorkload) -> f64 {
        let ops = 2.0 * w.dims as f64 * w.classes as f64;
        let bytes = w.dims as f64 * (w.classes as f64 + 1.0) * w.bytes_per_element;
        (ops / self.compute_throughput).max(bytes / self.mem_bandwidth)
    }

    /// Latency of one interactive (unbatched) query, seconds.
    pub fn query_latency(&self, w: &GpuWorkload) -> f64 {
        self.launch_overhead + self.kernel_time(w)
    }

    /// Latency of serving `batch` queries in a single batched launch,
    /// seconds: one launch overhead plus the per-query kernel time for
    /// every query. Returns `0.0` for an empty batch.
    pub fn batch_latency(&self, w: &GpuWorkload, batch: usize) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        self.launch_overhead + batch as f64 * self.kernel_time(w)
    }

    /// Sustained queries per second under batched serving. Returns `0.0`
    /// for an empty batch.
    pub fn batch_qps(&self, w: &GpuWorkload, batch: usize) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        batch as f64 / self.batch_latency(w, batch)
    }

    /// Energy of one query under batched inference, joules: launch
    /// overhead and class-weight loading amortize across the batch, while
    /// the per-query similarity compute does not.
    pub fn query_energy(&self, w: &GpuWorkload) -> f64 {
        let ops = 2.0 * w.dims as f64 * w.classes as f64;
        let weight_bytes = w.dims as f64 * w.classes as f64 * w.bytes_per_element;
        let per_query_time = ops / self.compute_throughput
            + weight_bytes / (self.mem_bandwidth * self.energy_batch)
            + self.launch_overhead / self.energy_batch;
        self.power * per_query_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(dims: usize) -> GpuWorkload {
        GpuWorkload {
            dims,
            classes: 26,
            bytes_per_element: 4.0,
        }
    }

    #[test]
    fn small_dims_overhead_dominated() {
        let gpu = GpuModel::rtx_4070();
        let t = gpu.query_latency(&wl(512));
        assert!(
            (t - gpu.launch_overhead) / gpu.launch_overhead < 0.05,
            "512-dim latency {t:e} should be ~overhead"
        );
    }

    #[test]
    fn latency_flat_then_grows() {
        let gpu = GpuModel::rtx_4070();
        let t_small = gpu.query_latency(&wl(512));
        let t_large = gpu.query_latency(&wl(10240));
        // 20x dims but far less than 20x latency: the flat-overhead regime.
        assert!(t_large / t_small < 2.0);
        // Yet the kernel itself does scale.
        assert!(gpu.kernel_time(&wl(10240)) > 10.0 * gpu.kernel_time(&wl(512)));
    }

    #[test]
    fn energy_orders_of_magnitude() {
        // Per-query energy should sit in the tens-of-µJ region — the level
        // implied by the paper's ~5000x efficiency ratios against nJ-scale
        // TD-AM searches.
        let gpu = GpuModel::rtx_4070();
        let e = gpu.query_energy(&wl(2048));
        assert!(
            (1e-6..1e-3).contains(&e),
            "query energy {e:e} out of expected range"
        );
    }

    #[test]
    fn energy_monotone_in_dims() {
        let gpu = GpuModel::rtx_4070();
        assert!(gpu.query_energy(&wl(10240)) > gpu.query_energy(&wl(512)));
    }

    #[test]
    fn batching_amortizes_launch_overhead() {
        let gpu = GpuModel::rtx_4070();
        let w = wl(2048);
        assert_eq!(gpu.batch_latency(&w, 0), 0.0);
        assert_eq!(gpu.batch_latency(&w, 1), gpu.query_latency(&w));
        // Single-query QPS is overhead-bound; a large batch pays the
        // launch once and approaches kernel-limited throughput.
        let single_qps = 1.0 / gpu.query_latency(&w);
        let batched_qps = gpu.batch_qps(&w, 4096);
        assert!(
            batched_qps > 5.0 * single_qps,
            "batched {batched_qps:e} vs single {single_qps:e}"
        );
        assert!(batched_qps <= 1.0 / gpu.kernel_time(&w));
    }
}
