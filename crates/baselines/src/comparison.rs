//! Table I regeneration: drive every design through an identical
//! associative-search workload and compare energy per bit.
//!
//! The workload mirrors the paper's reporting convention: each engine
//! stores the same 16 × 64-bit content (the 2-bit TD-AM packs it into
//! 32 cells per row), then serves a batch of queries whose mismatch
//! activity is low (associative searches are dominated by near-matches),
//! and reports average energy per searched bit.

use crate::fecam::{Fecam, FecamParams};
use crate::fefinfet::{FeFinFet, FeFinFetParams};
use crate::homogeneous::{HomogeneousTd, HomogeneousTdParams};
use crate::tcam16t::{Tcam16t, Tcam16tParams};
use crate::timaq::{Timaq, TimaqParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tdam::array::TdamArray;
use tdam::config::ArrayConfig;
use tdam::engine::SimilarityEngine;
use tdam::TdamError;

/// One row of the Table I comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Design name.
    pub design: String,
    /// Signal domain ("Voltage" / "Time").
    pub signal_domain: &'static str,
    /// Device technology ("CMOS" / "FeFET").
    pub device: &'static str,
    /// Cell or stage composition.
    pub cell: &'static str,
    /// Similarity-computation type.
    pub sc_type: &'static str,
    /// Process node, nanometres.
    pub technology_nm: u32,
    /// Measured energy per bit, joules.
    pub energy_per_bit: f64,
    /// Ratio relative to the TD-AM ("this work"); 1.0 for the TD-AM row.
    pub ratio: f64,
}

/// The standard workload: 16 stored words of 64 bits clustered around a
/// common template (each row flips ~5% of the template's bits), queried
/// with the template itself. This reproduces the associative near-match
/// regime the cited papers report their energy figures in — every row
/// sees low mismatch activity rather than the ~50% of random data.
const ROWS: usize = 16;
const BITS: usize = 64;
const FLIP_P: f64 = 0.05;

fn run_binary_engine<E: SimilarityEngine>(
    engine: &mut E,
    queries: usize,
    seed: u64,
) -> Result<f64, TdamError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let template: Vec<u8> = (0..BITS).map(|_| rng.gen_range(0..2u8)).collect();
    for i in 0..ROWS {
        let mut row = template.clone();
        for bit in row.iter_mut() {
            if rng.gen_bool(FLIP_P) {
                *bit ^= 1;
            }
        }
        engine.store(i, &row)?;
    }
    let mut total_energy = 0.0;
    for _ in 0..queries {
        total_energy += engine.search(&template)?.energy;
    }
    Ok(total_energy / (queries * engine.total_bits()) as f64)
}

fn run_tdam(queries: usize, seed: u64, vdd: f64) -> Result<f64, TdamError> {
    // 64 bits = 32 two-bit cells per row, clustered near-match content
    // (the same ~5% per-bit activity as the binary engines: on 2-bit
    // elements a bit flip changes one element, so flip elements at the
    // combined per-element probability ~2·FLIP_P).
    let cfg = ArrayConfig::paper_default()
        .with_stages(BITS / 2)
        .with_rows(ROWS)
        .with_vdd(vdd);
    let mut am = TdamArray::new(cfg)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let template: Vec<u8> = (0..BITS / 2).map(|_| rng.gen_range(0..4u8)).collect();
    for i in 0..ROWS {
        let mut row = template.clone();
        for el in row.iter_mut() {
            if rng.gen_bool(2.0 * FLIP_P) {
                *el = (*el + 1 + rng.gen_range(0..3u8)) % 4;
            }
        }
        SimilarityEngine::store(&mut am, i, &row)?;
    }
    let total_bits = am.total_bits();
    let mut total_energy = 0.0;
    for _ in 0..queries {
        total_energy += TdamArray::search(&am, &template)?.energy.total();
    }
    Ok(total_energy / (queries * total_bits) as f64)
}

/// Regenerates Table I: every design's energy per bit on the standard
/// workload, with ratios against the TD-AM at its best operating point
/// (V_DD = 0.6 V).
///
/// # Errors
///
/// Propagates engine errors (none are expected with the fixed workload).
pub fn comparison_table(queries: usize, seed: u64) -> Result<Vec<ComparisonRow>, TdamError> {
    let tdam_epb = run_tdam(queries, seed, 0.6)?;
    let mut rows = Vec::new();

    let mut tcam = Tcam16t::new(ROWS, BITS, Tcam16tParams::default());
    rows.push(ComparisonRow {
        design: tcam.name().to_owned(),
        signal_domain: "Voltage",
        device: "CMOS",
        cell: "16T",
        sc_type: "Hamming, non-quantitative",
        technology_nm: 45,
        energy_per_bit: run_binary_engine(&mut tcam, queries, seed)?,
        ratio: 0.0,
    });

    let mut fecam = Fecam::new(ROWS, BITS, FecamParams::default());
    rows.push(ComparisonRow {
        design: fecam.name().to_owned(),
        signal_domain: "Voltage",
        device: "FeFET",
        cell: "2FeFET",
        sc_type: "Hamming, non-quantitative",
        technology_nm: 45,
        energy_per_bit: run_binary_engine(&mut fecam, queries, seed)?,
        ratio: 0.0,
    });

    let mut timaq = Timaq::new(ROWS, BITS, TimaqParams::default());
    rows.push(ComparisonRow {
        design: timaq.name().to_owned(),
        signal_domain: "Time",
        device: "CMOS",
        cell: "20T+4MUX",
        sc_type: "MAC/Cosine, quantitative",
        technology_nm: 28,
        energy_per_bit: run_binary_engine(&mut timaq, queries, seed)?,
        ratio: 0.0,
    });

    let mut fefin = FeFinFet::new(ROWS, BITS, FeFinFetParams::default());
    rows.push(ComparisonRow {
        design: fefin.name().to_owned(),
        signal_domain: "Time",
        device: "FeFET",
        cell: "2T-1FeFET",
        sc_type: "MAC/Cosine, quantitative",
        technology_nm: 14,
        energy_per_bit: run_binary_engine(&mut fefin, queries, seed)?,
        ratio: 0.0,
    });

    let mut homo = HomogeneousTd::new(ROWS, BITS, HomogeneousTdParams::default());
    rows.push(ComparisonRow {
        design: homo.name().to_owned(),
        signal_domain: "Time",
        device: "FeFET",
        cell: "3T-2FeFET",
        sc_type: "MAC/Hamming, quantitative",
        technology_nm: 40,
        energy_per_bit: run_binary_engine(&mut homo, queries, seed)?,
        ratio: 0.0,
    });

    rows.push(ComparisonRow {
        design: "This work (4T-2FeFET TD-AM)".to_owned(),
        signal_domain: "Time",
        device: "FeFET",
        cell: "4T-2FeFET",
        sc_type: "Hamming, quantitative",
        technology_nm: 40,
        energy_per_bit: tdam_epb,
        ratio: 1.0,
    });

    for row in &mut rows {
        row.ratio = row.energy_per_bit / tdam_epb;
    }
    Ok(rows)
}

/// The Table I comparison extended with the current-domain crossbar CAM
/// (the paper discusses it in Sec. II-B but leaves it out of Table I) and
/// a cell-area column from the F² model.
///
/// # Errors
///
/// Propagates engine errors.
pub fn extended_comparison_table(
    queries: usize,
    seed: u64,
) -> Result<Vec<(ComparisonRow, f64)>, TdamError> {
    use crate::crossbar::{CrossbarCam, CrossbarParams};
    let mut rows = comparison_table(queries, seed)?;
    let tdam_epb = rows
        .iter()
        .find(|r| r.design.contains("This work"))
        .ok_or(TdamError::InvalidConfig {
            what: "comparison table is missing the reference design row",
        })?
        .energy_per_bit;
    let mut cb = CrossbarCam::new(ROWS, BITS, CrossbarParams::default());
    let epb = run_binary_engine(&mut cb, queries, seed)?;
    rows.push(ComparisonRow {
        design: cb.name().to_owned(),
        signal_domain: "Current",
        device: "FeFET",
        cell: "1FeFET",
        sc_type: "Hamming, quantitative",
        technology_nm: 40,
        energy_per_bit: epb,
        ratio: epb / tdam_epb,
    });
    // Per-bit cell area from the F² model, matched by design order.
    let areas = tdam::area::table1_area_per_bit(6e-15);
    let area_for = |design: &str| -> f64 {
        let needle = if design.contains("16T") {
            "16T TCAM"
        } else if design.contains("Nat. Electron.") {
            "2FeFET TCAM"
        } else if design.contains("TIMAQ") {
            "20T+4MUX"
        } else if design.contains("[24]") {
            "3T-2FeFET"
        } else if design.contains("This work") {
            "This work"
        } else {
            return f64::NAN; // Fe-FinFET (14 nm) and crossbar not modelled
        };
        areas
            .iter()
            .find(|(n, _)| n.contains(needle))
            .map(|(_, a)| *a)
            .unwrap_or(f64::NAN)
    };
    Ok(rows
        .into_iter()
        .map(|r| {
            let a = area_for(&r.design);
            (r, a)
        })
        .collect())
}

/// Renders the comparison as an aligned text table (the Table I layout).
pub fn render_table(rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:<8} {:<6} {:<11} {:<28} {:>14} {:>8} {:>6}\n",
        "Design", "Domain", "Device", "Cell/Stage", "SC Type", "E/bit (fJ)", "Ratio", "Tech"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<34} {:<8} {:<6} {:<11} {:<28} {:>14.3} {:>7.2}x {:>4}nm\n",
            r.design,
            r.signal_domain,
            r.device,
            r.cell,
            r.sc_type,
            r.energy_per_bit * 1e15,
            r.ratio,
            r.technology_nm
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_six_designs() {
        let rows = comparison_table(20, 7).unwrap();
        assert_eq!(rows.len(), 6);
        let this_work = rows.last().unwrap();
        assert_eq!(this_work.ratio, 1.0);
    }

    #[test]
    fn ordering_matches_paper() {
        // The qualitative ordering Table I reports: TIMAQ (CMOS TD) worst,
        // Fe-FinFET best, TD-AM beats the CAMs and the 3T-2FeFET fabric.
        let rows = comparison_table(50, 7).unwrap();
        let by_name = |needle: &str| {
            rows.iter()
                .find(|r| r.design.contains(needle))
                .unwrap_or_else(|| panic!("{needle} missing"))
        };
        let timaq = by_name("TIMAQ");
        let fefin = by_name("Fe-FinFET");
        let tcam = by_name("16T");
        let fecam = by_name("Nat. Electron.");
        let homo = by_name("[24]");
        let ours = by_name("This work");
        assert!(
            timaq.ratio > 5.0,
            "CMOS TD should be many x worse: {}",
            timaq.ratio
        );
        assert!(fefin.ratio < 1.0, "14nm Fe-FinFET reports lower E/bit");
        assert!(tcam.ratio > 1.0);
        assert!(fecam.ratio > 1.0);
        assert!(
            homo.ratio > 1.0,
            "binary TD fabric worse per bit: {}",
            homo.ratio
        );
        assert!(tcam.energy_per_bit > fecam.energy_per_bit);
        assert!(ours.energy_per_bit < fecam.energy_per_bit);
    }

    #[test]
    fn render_is_wellformed() {
        let rows = comparison_table(10, 7).unwrap();
        let text = render_table(&rows);
        assert_eq!(text.lines().count(), 7);
        assert!(text.contains("This work"));
    }

    #[test]
    fn extended_table_adds_crossbar_and_area() {
        let rows = extended_comparison_table(20, 7).unwrap();
        assert_eq!(rows.len(), 7);
        let (crossbar, _) = rows
            .iter()
            .find(|(r, _)| r.design.contains("crossbar"))
            .expect("crossbar present");
        // The crossbar is quantitative but pays ADC + DC-current costs:
        // worse per bit than the TD-AM.
        assert!(crossbar.ratio > 1.0, "crossbar ratio {}", crossbar.ratio);
        // Area column present for the modelled designs.
        let (_, tdam_area) = rows
            .iter()
            .find(|(r, _)| r.design.contains("This work"))
            .expect("this work");
        assert!(tdam_area.is_finite() && *tdam_area > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = comparison_table(10, 3).unwrap();
        let b = comparison_table(10, 3).unwrap();
        assert_eq!(a, b);
    }
}
