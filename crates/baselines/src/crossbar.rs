//! The 1-FeFET crossbar multi-bit CAM (the paper's ref. \[25\],
//! Adv. Intell. Syst. 2023): current-domain quantitative similarity.
//!
//! Each cell's FeFET conducts a mismatch current onto a shared sense
//! line; the *analog sum* of mismatch currents encodes the Hamming
//! distance, which an ADC digitizes. The paper's Sec. II-B criticism is
//! made explicit here: the design is quantitative, but
//!
//! 1. **static power** — every mismatching cell conducts DC current for
//!    the entire evaluation window, so energy scales with
//!    `N_mis × I_cell × V × t_eval` instead of switched `C·V²`, and
//! 2. **the ADC** — resolving `N` distance levels needs a `log₂N`-bit
//!    conversion whose energy (Walden-style figure of merit) dwarfs a
//!    counter readout.

use crate::validate_bits;
use serde::{Deserialize, Serialize};
use tdam::engine::{BatchQuery, BatchResult, SearchMetrics, SimilarityEngine};
use tdam::TdamError;

/// Structural parameters of the crossbar CAM (40 nm class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarParams {
    /// Sense voltage across conducting cells, volts.
    pub v_sense: f64,
    /// Mismatch current per cell, amperes.
    pub i_cell: f64,
    /// Evaluation window the currents must settle for, seconds.
    pub t_eval: f64,
    /// Search-line switched capacitance per cell per line, farads.
    pub c_sl_per_cell: f64,
    /// ADC energy per conversion step (Walden FoM), joules per
    /// level-resolving step.
    pub adc_fom: f64,
}

impl Default for CrossbarParams {
    fn default() -> Self {
        Self {
            v_sense: 0.8,
            i_cell: 2e-6,
            t_eval: 2e-9,
            c_sl_per_cell: 0.12e-15,
            adc_fom: 50e-15,
        }
    }
}

/// A functional 1-FeFET crossbar CAM storing binary vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarCam {
    params: CrossbarParams,
    width: usize,
    data: Vec<Vec<u8>>,
}

impl CrossbarCam {
    /// Creates a crossbar with `rows` words of `width` bits.
    pub fn new(rows: usize, width: usize, params: CrossbarParams) -> Self {
        Self {
            params,
            width,
            data: vec![vec![0; width]; rows],
        }
    }

    /// Energy of one row's ADC conversion (resolving `width + 1` distance
    /// levels).
    pub fn adc_energy(&self) -> f64 {
        let levels = (self.width + 1) as f64;
        self.params.adc_fom * levels.log2().ceil()
    }

    /// Read-only search body shared by the single-query and batched paths.
    fn search_ref(&self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        if query.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.width,
            });
        }
        validate_bits(query)?;
        let p = &self.params;
        let mut distances = Vec::with_capacity(self.data.len());
        let mut energy = 0.0;
        for row in &self.data {
            let d = row.iter().zip(query).filter(|(a, b)| a != b).count();
            distances.push(Some(d));
            // DC mismatch current for the whole evaluation window.
            energy += d as f64 * p.i_cell * p.v_sense * p.t_eval;
            energy += self.adc_energy();
        }
        energy += 2.0
            * self.width as f64
            * self.data.len() as f64
            * p.c_sl_per_cell
            * p.v_sense
            * p.v_sense;
        let best_row = distances
            .iter()
            .enumerate()
            .min_by_key(|(_, d)| d.unwrap_or(usize::MAX))
            .map(|(i, _)| i);
        Ok(SearchMetrics {
            best_row,
            distances,
            energy,
            latency: p.t_eval,
        })
    }
}

impl SimilarityEngine for CrossbarCam {
    fn name(&self) -> &str {
        "1-FeFET crossbar CAM [25]"
    }

    fn is_quantitative(&self) -> bool {
        true
    }

    fn rows(&self) -> usize {
        self.data.len()
    }

    fn width(&self) -> usize {
        self.width
    }

    fn bits_per_element(&self) -> u8 {
        1
    }

    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
        if row >= self.data.len() {
            return Err(TdamError::RowOutOfBounds {
                row,
                rows: self.data.len(),
            });
        }
        if values.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: values.len(),
                expected: self.width,
            });
        }
        validate_bits(values)?;
        self.data[row] = values.to_vec();
        Ok(())
    }

    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        self.search_ref(query)
    }

    fn search_batch(&mut self, batch: &BatchQuery) -> Result<BatchResult, TdamError> {
        crate::parallel_batch(self.width, batch, |q| self.search_ref(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdam::array::TdamArray;
    use tdam::config::ArrayConfig;

    #[test]
    fn quantitative_distances() {
        let mut cb = CrossbarCam::new(2, 8, CrossbarParams::default());
        cb.store(0, &[1, 1, 0, 0, 1, 1, 0, 0]).unwrap();
        let m = cb.search(&[1, 1, 1, 1, 1, 1, 1, 1]).unwrap();
        assert_eq!(m.distances[0], Some(4));
        assert_eq!(m.distances[1], Some(8), "row 1 holds its all-zero init");
        assert_eq!(m.best_row, Some(0));
    }

    #[test]
    fn static_current_dominates_energy() {
        // At high mismatch counts the DC-current term should dwarf the
        // SL switching term — the paper's "high static power" criticism.
        let p = CrossbarParams::default();
        let mut cb = CrossbarCam::new(1, 64, p);
        cb.store(0, &[0; 64]).unwrap();
        let e_match = cb.search(&[0; 64]).unwrap().energy;
        let e_miss = cb.search(&[1; 64]).unwrap().energy;
        let dc_term = 64.0 * p.i_cell * p.v_sense * p.t_eval;
        assert!(
            (e_miss - e_match - dc_term).abs() < 0.01 * dc_term,
            "mismatch energy delta should be the DC term"
        );
        // And the sensing cost the paper says was "not discussed": the ADC
        // alone dwarfs the switched search-line energy.
        let sl_term = 2.0 * 64.0 * p.c_sl_per_cell * p.v_sense * p.v_sense;
        assert!(
            cb.adc_energy() > 10.0 * sl_term,
            "ADC {:e} should dominate SL switching {:e}",
            cb.adc_energy(),
            sl_term
        );
    }

    #[test]
    fn batch_matches_sequential() {
        let mut cb = CrossbarCam::new(2, 8, CrossbarParams::default());
        cb.store(0, &[1, 1, 0, 0, 1, 1, 0, 0]).unwrap();
        let rows = vec![vec![1u8; 8], vec![0u8; 8], vec![1, 1, 0, 0, 1, 1, 0, 0]];
        let batch = BatchQuery::from_rows(&rows).unwrap();
        let batched = cb.search_batch(&batch).unwrap();
        for (i, q) in rows.iter().enumerate() {
            assert_eq!(batched.queries[i], cb.search(q).unwrap());
        }
    }

    #[test]
    fn adc_energy_grows_with_word_width() {
        let small = CrossbarCam::new(1, 16, CrossbarParams::default());
        let big = CrossbarCam::new(1, 256, CrossbarParams::default());
        assert!(big.adc_energy() > small.adc_energy());
        // log2(17).ceil() = 5 bits; log2(257).ceil() = 9 bits.
        assert!((small.adc_energy() - 5.0 * 50e-15).abs() < 1e-18);
        assert!((big.adc_energy() - 9.0 * 50e-15).abs() < 1e-18);
    }

    #[test]
    fn tdam_beats_crossbar_per_bit_on_typical_search() {
        // Same 16x64-bit near-match workload methodology as Table I.
        let mut cb = CrossbarCam::new(16, 64, CrossbarParams::default());
        for r in 0..16 {
            cb.store(r, &[0; 64]).unwrap();
        }
        let mut q = vec![0u8; 64];
        for b in q.iter_mut().take(6) {
            *b = 1;
        }
        let m = cb.search(&q).unwrap();
        let crossbar_epb = m.energy_per_bit(cb.total_bits()).unwrap();

        let cfg = ArrayConfig::paper_default()
            .with_stages(32)
            .with_rows(16)
            .with_vdd(0.6);
        let am = TdamArray::new(cfg).unwrap();
        let mut tq = vec![0u8; 32];
        for el in tq.iter_mut().take(3) {
            *el = 1;
        }
        let outcome = TdamArray::search(&am, &tq).unwrap();
        let tdam_epb = outcome.energy.total() / am.total_bits() as f64;
        assert!(
            crossbar_epb > 2.0 * tdam_epb,
            "crossbar {crossbar_epb:e} should exceed TD-AM {tdam_epb:e}"
        );
    }
}
