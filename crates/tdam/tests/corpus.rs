//! Integration pins for the two-tier corpus engine: the recall gate on
//! a CI-sized clustered corpus, LRU-eviction bit-identity, kernel-rung
//! equivalence of the exact re-rank tier, and the serve stats endpoint
//! surfacing the snapshot-cache counters.
//!
//! The full-sized (1M-row) versions of the recall and speedup gates
//! live in `ext_corpus` (see EXPERIMENTS.md); these tests pin the same
//! contracts at a size the ordinary test suite can afford.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use tdam::corpus::{CorpusBuilder, CorpusConfig, CorpusEngine, ProbedTopK};
use tdam::packed::PackedKernel;
use tdam::serve::{
    brute_force_topk, seeded_corpus, FrontEnd, ServeClient, ServeConfig, ShardedService,
};
use tdam::ArrayConfig;

/// SplitMix64 finalizer — the repo-wide seeding discipline.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Clustered synthetic corpus: `protos` prototypes plus `noise_pct`%
/// per-element noise, pure in the seed. Clustered — not uniform —
/// because recall through a coarse pre-filter over uniform data only
/// measures `nprobe / shards`; the engine must recover structure.
fn clustered(
    rows: usize,
    stages: usize,
    protos: u64,
    noise_pct: u64,
    levels: u64,
    seed: u64,
) -> Vec<Vec<u8>> {
    (0..rows)
        .map(|r| {
            let p = splitmix(seed ^ 0x000A_11CE ^ r as u64) % protos;
            (0..stages)
                .map(|j| {
                    let base = splitmix(seed ^ 0xB0_55 ^ (p << 20 | j as u64)) % levels;
                    let n = splitmix(seed ^ 0x0040_15E0 ^ ((r as u64) << 20 | j as u64));
                    let v = if n % 100 < noise_pct {
                        (n >> 8) % levels
                    } else {
                        base
                    };
                    v as u8
                })
                .collect()
        })
        .collect()
}

/// Query `i`: a stored row with two elements perturbed.
fn perturbed_query(corpus: &[Vec<u8>], levels: u64, seed: u64, i: u64) -> Vec<u8> {
    let h = splitmix(seed ^ 0xDE_CAF ^ i);
    let mut q = corpus[(h % corpus.len() as u64) as usize].clone();
    for t in 0..2u64 {
        let hh = splitmix(h ^ (0xE0 + t));
        let j = (hh % q.len() as u64) as usize;
        q[j] = (((u64::from(q[j])) + 1 + hh % (levels - 1)) % levels) as u8;
    }
    q
}

fn build_engine(cfg: CorpusConfig, corpus: &[Vec<u8>]) -> CorpusEngine {
    let mut builder = CorpusBuilder::new(cfg).expect("config validates");
    builder.append_rows(corpus).expect("rows ingest");
    builder.build().expect("build")
}

/// The ISSUE's CI-sized recall gate: a seeded 100k-row clustered corpus
/// must reach recall@10 >= 0.95 against full brute force while probing
/// only `nprobe` of the shards.
#[test]
fn recall_at_10_exceeds_095_on_ci_sized_corpus() {
    let stages = 32;
    let array = ArrayConfig::paper_default().with_stages(stages);
    let levels = u64::from(array.encoding.levels());
    let rows = 100_000;
    let corpus = clustered(rows, stages, 32, 10, levels, 0xC0_FFEE);
    let cfg = CorpusConfig {
        array,
        shard_rows: 4096,
        nprobe: 12,
        train_iters: 3,
        train_sample: 1 << 14,
        cache_budget_bytes: 64 << 20,
        seed: 42,
        threads: Some(4),
    };
    let mut engine = build_engine(cfg, &corpus);
    assert!(
        engine.shards() > cfg.nprobe * 2,
        "gate must actually prune: {} shards, nprobe {}",
        engine.shards(),
        cfg.nprobe
    );

    let k = 10;
    let (mut hit, mut total) = (0usize, 0usize);
    for i in 0..32u64 {
        let q = perturbed_query(&corpus, levels, 0x5EED, i);
        let got = engine.search_topk(&q, k).expect("search");
        let want = brute_force_topk(&corpus, array.encoding, &q, k).expect("oracle");
        let ids: HashSet<usize> = want.iter().map(|&(_, id)| id).collect();
        hit += got.iter().filter(|&&(_, id)| ids.contains(&id)).count();
        total += want.len();
    }
    let recall = hit as f64 / total as f64;
    assert!(recall >= 0.95, "recall@10 = {recall:.3} ({hit}/{total})");
}

/// Evicted shards must recompile bit-identically: a cache starved down
/// to one resident snapshot returns the same full ranking as a cache
/// that never evicts, across repeated passes.
#[test]
fn evicted_shards_recompile_bit_identically() {
    let stages = 16;
    let array = ArrayConfig::paper_default().with_stages(stages);
    let levels = u64::from(array.encoding.levels());
    let rows = 2048;
    let corpus = clustered(rows, stages, 8, 10, levels, 0xE71C);
    let cfg = CorpusConfig {
        array,
        shard_rows: 256,
        nprobe: 64, // exhaustive: every shard scanned on every query
        train_iters: 2,
        train_sample: 512,
        cache_budget_bytes: 64 << 20,
        seed: 9,
        threads: Some(2),
    };
    let mut roomy = build_engine(cfg, &corpus);
    let mut starved = build_engine(
        CorpusConfig {
            cache_budget_bytes: 1,
            ..cfg
        },
        &corpus,
    );

    for pass in 0..2 {
        for i in 0..4u64 {
            let q = perturbed_query(&corpus, levels, 0xAB ^ i, i);
            // Full ranking: every row's exact distance is compared, so
            // a single bit of recompile drift would surface.
            let a = roomy.search_topk(&q, rows).expect("roomy search");
            let b = starved.search_topk(&q, rows).expect("starved search");
            assert_eq!(a, b, "pass {pass} query {i}: eviction changed the ranking");
        }
    }
    assert_eq!(roomy.status().stats.corpus_cache_evictions, 0);
    let starved_status = starved.status();
    assert!(
        starved_status.stats.corpus_cache_evictions > 0,
        "starved cache never evicted"
    );
    assert_eq!(
        starved_status.resident, 1,
        "budget of 1 byte keeps one snapshot"
    );
}

/// The exact re-rank tier is bit-identical across all available
/// dispatch-ladder rungs, and every rung matches brute force restricted
/// to the probed shards — the ISSUE's equivalence contract.
#[test]
fn rerank_matches_restricted_brute_force_on_every_kernel_rung() {
    let stages = 16;
    let array = ArrayConfig::paper_default().with_stages(stages);
    let levels = u64::from(array.encoding.levels());
    let rows = 4096;
    let corpus = clustered(rows, stages, 16, 10, levels, 0x3A11);
    let cfg = CorpusConfig {
        array,
        shard_rows: 256,
        nprobe: 4,
        train_iters: 2,
        train_sample: 1024,
        cache_budget_bytes: 8 << 20,
        seed: 5,
        threads: Some(2),
    };

    let rungs = [
        PackedKernel::Scalar,
        PackedKernel::Unrolled,
        PackedKernel::Simd,
    ];
    let mut reference: Option<Vec<ProbedTopK>> = None;
    for rung in rungs {
        if !rung.is_available() {
            continue;
        }
        let mut engine = build_engine(cfg, &corpus);
        assert!(engine.set_kernel(rung), "{rung:?} reported available");
        let mut answers = Vec::new();
        for i in 0..16u64 {
            let q = perturbed_query(&corpus, levels, 0xF00D, i);
            let (got, probed) = engine.search_topk_probed(&q, 8).expect("search");
            let mut expected = Vec::new();
            for &c in &probed {
                for &id in engine.shard_ids(c) {
                    let id = id as usize;
                    let d = array.encoding.hamming(&corpus[id], &q).expect("oracle");
                    expected.push((d, id));
                }
            }
            expected.sort_unstable();
            expected.truncate(8);
            assert_eq!(
                got, expected,
                "{rung:?} query {i}: re-rank diverged from restricted brute force"
            );
            answers.push((got, probed));
        }
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(&answers, r, "{rung:?} diverged from the first rung"),
        }
    }
    assert!(reference.is_some(), "no kernel rung available");
}

/// The serve stats endpoint surfaces the corpus tier's snapshot-cache
/// counters over the wire (the ISSUE's observability criterion).
#[test]
fn serve_stats_endpoint_surfaces_snapshot_cache_counters() {
    let mut cfg = ServeConfig::paper_default();
    cfg.array = ArrayConfig::paper_default().with_stages(8);
    cfg.rows_per_shard = 16;
    let corpus = seeded_corpus(64, 8, 4, 91);
    let mut service = ShardedService::new(&cfg, &corpus, None).expect("service");
    // A 1-byte budget forces an eviction on every second snapshot
    // compile, so all three counters move within a handful of queries.
    service.install_corpus_tier(2, 1).expect("corpus tier");
    let service = Arc::new(service);
    let mut front = FrontEnd::start(Arc::clone(&service), &cfg, "127.0.0.1:0").expect("front-end");
    let mut client = ServeClient::connect(front.addr()).expect("client");

    // Healthy path: the tier only prunes (per-shard engines answer), so
    // its snapshot cache stays cold.
    let mut answered = client
        .query(&corpus[0], 3, Duration::from_millis(500))
        .expect("healthy query");
    assert!(!answered.degraded, "healthy serve must not be degraded");

    // Crash every shard: probed shards are now answered from the tier's
    // exact snapshot cache (degraded, never partial for probed shards).
    for s in 0..service.map().shards() {
        service.inject_crash(s);
    }
    for i in 0..6 {
        let q = corpus[i * 9].clone();
        answered = client
            .query(&q, 3, Duration::from_millis(500))
            .expect("tier-served query");
        assert!(answered.degraded, "tier-served answers are degraded");
        assert!(!answered.neighbors.is_empty());
    }

    let stats = client.stats().expect("stats");
    let tier = stats.corpus.expect("corpus tier status on the wire");
    assert_eq!(tier.rows, 64);
    assert_eq!(tier.nprobe, 2);
    assert!(tier.stats.corpus_cache_misses > 0, "no compiles counted");
    assert!(
        tier.stats.corpus_cache_evictions > 0,
        "starved cache never evicted"
    );
    assert!(tier.resident_bytes > 0);
    front.shutdown();
}
