//! Source lint: no real clock, real disk, or real sockets on simulated
//! paths.
//!
//! The deterministic simulation only works if every time, disk, and
//! network touch goes through the injectable abstractions ([`Clock`],
//! `Storage`, `Transport`). Real-world call sites are allowed only on
//! the explicitly marked production islands:
//!
//! - `// [real-time ok]`  — the wall arm of the clock abstraction
//! - `// [real-disk ok]`  — the OS storage backend / scratch dirs
//! - `// [real-net ok]`   — the TCP transport and front-end
//!
//! Anything else that calls `Instant::now`, sleeps a real thread, opens
//! a real file, or binds a real socket is a determinism leak this test
//! rejects. Code under `#[cfg(test)]` is exempt (tests may use real
//! scratch directories).

use std::fs;
use std::path::Path;

/// Forbidden substrings: direct wall-clock reads, real sleeps, real
/// sockets, and real filesystem access.
const FORBIDDEN: &[&str] = &[
    "Instant::now(",
    "SystemTime::now(",
    "thread::sleep(",
    "TcpStream::connect",
    "TcpListener::bind",
    "set_read_timeout",
    "set_write_timeout",
    "fs::read",
    "fs::write",
    "fs::File",
    "fs::rename",
    "fs::remove",
    "fs::create_dir",
    "OpenOptions::new(",
];

/// Island markers that bless a real-world call site.
const MARKERS: &[&str] = &["[real-time ok]", "[real-disk ok]", "[real-net ok]"];

fn scan_file(path: &Path, violations: &mut Vec<String>) {
    let src = fs::read_to_string(path).expect("source readable");
    let mut in_tests = false;
    let mut blessed_next = false;
    for (i, line) in src.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            // Repo convention: the test module is the tail of the file.
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        if MARKERS.iter().any(|m| line.contains(m)) {
            // A trailing marker blesses its own line; a standalone
            // marker comment blesses the line after it (rustfmt moves
            // trailing comments off multi-line statements).
            blessed_next = line.trim_start().starts_with("//");
            continue;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue; // prose may name the patterns it bans
        }
        if std::mem::take(&mut blessed_next) {
            continue;
        }
        for pat in FORBIDDEN {
            if line.contains(pat) {
                violations.push(format!(
                    "{}:{}: unmarked `{}`: {}",
                    path.display(),
                    i + 1,
                    pat,
                    line.trim()
                ));
            }
        }
    }
}

/// Every `src/` file of this crate must be free of unmarked real-time /
/// real-disk / real-net call sites.
#[test]
fn no_unmarked_real_world_call_sites() {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for entry in fs::read_dir(&src_dir).expect("src dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            scan_file(&path, &mut violations);
            scanned += 1;
        }
    }
    assert!(scanned > 10, "scanned only {scanned} files — wrong dir?");
    assert!(
        violations.is_empty(),
        "determinism leaks (route through Clock/Storage/Transport or mark the island):\n{}",
        violations.join("\n")
    );
}

/// The markers themselves must stay confined to the known islands — a
/// marker sprayed across new files silently widens the exemption.
#[test]
fn real_world_islands_stay_small() {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let allowed: &[&str] = &["clock.rs", "store.rs", "serve.rs"];
    for entry in fs::read_dir(&src_dir).expect("src dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let name = path.file_name().unwrap().to_str().unwrap().to_owned();
        if allowed.contains(&name.as_str()) {
            continue;
        }
        let src = fs::read_to_string(&path).expect("source readable");
        for m in MARKERS {
            assert!(
                !src.contains(m),
                "{name} uses island marker {m} but is not a known island file"
            );
        }
    }
}
