//! Deterministic full-system simulation: seed-replayable chaos
//! campaigns over the whole deployment (sharded serving, durable track,
//! device aging) on virtual time.
//!
//! Everything here is seed-pure: a failing seed replays bit-identically
//! with `tdam-sim simulate --seed N`, and the shrinker reduces its fault
//! schedule to a minimal reproducer before it is reported.

use tdam::clock::{Clock, SimClock};
use tdam::resilience::{ResilienceConfig, ResilientArray};
use tdam::runtime::QueryOutcome;
use tdam::sim::{generate_schedule, run_sim_campaign, run_with_schedule, simulate, SimConfig};
use tdam::store::{decode_checkpoint, encode_checkpoint};
use tdam::{ArrayConfig, BatchQuery, ResilientEngine, RuntimeConfig};
use tdam_fefet::retention::{Lifetime, RetentionParams};

use std::time::Duration;

/// The retention curve used to drive an array into the heal band:
/// window fraction 0.70, past the margin-monitor tolerance but short of
/// an outer-level decode flip (window 2/3).
fn heal_band_lifetime() -> Lifetime {
    Lifetime {
        seconds: 1e10,
        retention: RetentionParams {
            loss_per_decade: 0.03,
            t0: 1.0,
        },
        ..Lifetime::fresh()
    }
}

/// An 8-row, 8-stage resilient array holding a ramp corpus.
fn ramp_array() -> ResilientArray {
    let cfg = ArrayConfig::paper_default().with_stages(8).with_rows(8);
    let mut ra = ResilientArray::new(cfg, ResilienceConfig::default()).unwrap();
    for r in 0..8 {
        let v: Vec<u8> = (0..8).map(|j| ((j + r) % 4) as u8).collect();
        ra.store(r, &v).unwrap();
    }
    ra
}

/// The flagship campaign: 1000 independently seeded worlds, each
/// composing network faults, admission bursts, live mutations, shard
/// crashes, slow shards, device aging, deep margin drift, disk faults,
/// and durable-track power losses — with every complete answer judged
/// against a brute-force replay of the shadow corpus. Zero silent wrong
/// answers tolerated.
#[test]
fn campaign_1000_worlds_zero_silent_wrong_answers() {
    let report = run_sim_campaign(&SimConfig::quick(0), 0xC0FFEE, 1000).expect("campaign runs");
    assert!(
        report.failing_seeds.is_empty(),
        "failing seeds: {:?}",
        report.failing_seeds
    );
    // The campaign must actually compose the fault classes it claims to
    // (a counter stuck at zero means a whole family silently went dark).
    assert!(report.judged > 10_000, "judged: {}", report.judged);
    assert!(report.transport_errors > 0, "no transport faults landed");
    assert!(report.protocol_errors > 0, "no protocol faults landed");
    assert!(report.shed > 0, "no admission sheds");
    assert!(report.mutations > 0, "no live mutations");
    assert!(report.shard_crashes > 0, "no shard crashes");
    assert!(report.failovers > 0, "no standby failovers");
    assert!(report.ages > 0, "no aging events");
    assert!(report.drifts > 0, "no deep-drift events");
    assert!(report.scrub_heals > 0, "no scrub heals");
    assert!(report.durable_crashes > 0, "no durable power losses");
}

/// The same seed must produce the bit-identical report twice: the world
/// is a pure function of `(config, schedule)`, with no real time, real
/// disk, or real scheduler anywhere on the simulated path.
#[test]
fn same_seed_replays_bit_identically() {
    for seed in [1u64, 42, 0xDEAD_BEEF, 9_876_543_210] {
        let cfg = SimConfig::quick(seed);
        let schedule = generate_schedule(&cfg);
        let a = run_with_schedule(&cfg, &schedule).expect("first run");
        let b = run_with_schedule(&cfg, &schedule).expect("second run");
        assert_eq!(a, b, "seed {seed} diverged between replays");
    }
}

/// Schedule generation is itself seed-pure.
#[test]
fn schedule_generation_is_deterministic() {
    let cfg = SimConfig::paper_default(77);
    assert_eq!(generate_schedule(&cfg), generate_schedule(&cfg));
}

/// Sabotage self-test: a deliberately corrupted answer must be caught
/// by the judge, replay consistently, and shrink to a minimal schedule.
/// This validates the failure pipeline end to end — if the harness
/// cannot catch its own injected lie, its green campaigns mean nothing.
#[test]
fn sabotage_is_caught_replayed_and_shrunk() {
    let mut cfg = SimConfig::quick(7);
    cfg.sabotage = true;
    let outcome = simulate(&cfg).expect("world runs");
    let failure = outcome.failure.expect("sabotage must be caught");
    assert!(
        failure.first_failure.what.contains("silent wrong answer"),
        "unexpected failure kind: {}",
        failure.first_failure.what
    );
    assert!(
        failure.replay_consistent,
        "failing seed must replay bit-identically"
    );
    assert!(
        failure.original_events >= 4,
        "want a non-trivial schedule to shrink, got {} events",
        failure.original_events
    );
    assert!(
        failure.minimized.events.len() * 4 <= failure.original_events,
        "shrink too weak: {} of {} events survived",
        failure.minimized.events.len(),
        failure.original_events
    );
    // The artifact must be directly actionable: seed + schedule text.
    assert_eq!(failure.seed, cfg.seed);
    assert!(!failure.minimized.describe().is_empty());
}

/// Background retention scrub on virtual time: age an engine into the
/// heal band, advance the sim clock past the scrub interval, and the
/// next serve must heal the margin-drifted rows — while still answering
/// the stored-row query exactly (the scrub fires *before* a decode
/// flips, that is its entire point).
#[test]
fn scrub_heals_margin_drifted_rows_on_virtual_time() {
    let clock = SimClock::new();
    let rcfg = RuntimeConfig {
        scrub_interval: Some(Duration::from_millis(5)),
        ..RuntimeConfig::default()
    };
    let mut engine = ResilientEngine::wrap(ramp_array(), rcfg).with_clock(Clock::sim(&clock));

    let query: Vec<u8> = (0..8).map(|j| ((j + 2) % 4) as u8).collect();
    let mut batch = BatchQuery::new(8);
    batch.push(&query).unwrap();

    // First serve arms the scrub timer and must answer exactly.
    let out = engine.serve(&batch).expect("fresh serve");
    let QueryOutcome::Ok(m) = &out.slots[0] else {
        panic!("fresh slot failed: {:?}", out.slots[0]);
    };
    assert_eq!(m.distances.iter().flatten().min(), Some(&0));
    assert_eq!(engine.stats().scrub_heals, 0);

    // Retention bake into the heal band, then let the scrub come due.
    engine.array_mut().age(&heal_band_lifetime()).expect("age");
    clock.advance(Duration::from_millis(10));

    let out = engine.serve(&batch).expect("aged serve");
    let QueryOutcome::Ok(m) = &out.slots[0] else {
        panic!("aged slot failed: {:?}", out.slots[0]);
    };
    assert_eq!(
        m.distances.iter().flatten().min(),
        Some(&0),
        "stored-row query must still answer exactly after the heal scrub"
    );
    let stats = engine.stats();
    assert!(stats.scrub_ticks >= 1, "scrub never ticked");
    assert!(stats.scrub_probes > 0, "scrub probed nothing");
    assert!(
        stats.scrub_heals > 0,
        "aging to window 0.70 must trip the margin monitors and heal"
    );
}

/// Aged-state durability: a checkpoint taken *after* retention drift
/// must round-trip the drifted V_TH bit-exactly through the framed
/// checkpoint codec, and the restored engine's margin monitors must
/// still flag the drift — a warm start is not allowed to launder an
/// aged array into a healthy-looking one.
#[test]
fn aged_checkpoint_restores_vth_bit_exact_and_monitors_still_flag() {
    let mut engine = ResilientEngine::wrap(ramp_array(), RuntimeConfig::default());
    engine.array_mut().age(&heal_band_lifetime()).expect("age");

    let state = engine.checkpoint();
    let bytes = encode_checkpoint(&state);
    let decoded = decode_checkpoint(&bytes).expect("codec round-trip");
    let mut restored =
        ResilientEngine::restore(&decoded, RuntimeConfig::default()).expect("warm start");

    let after = restored.checkpoint();
    assert_eq!(state.rows.len(), after.rows.len());
    for (r, (a, b)) in state.rows.iter().zip(after.rows.iter()).enumerate() {
        assert_eq!(a.values, b.values, "row {r} levels changed across restore");
        assert_eq!(a.vth.len(), b.vth.len());
        for (s, (va, vb)) in a.vth.iter().zip(b.vth.iter()).enumerate() {
            assert_eq!(
                (va.0.to_bits(), va.1.to_bits()),
                (vb.0.to_bits(), vb.1.to_bits()),
                "row {r} stage {s}: aged V_TH not bit-exact across restore ({va:?} vs {vb:?})"
            );
        }
    }

    // The restored array still carries the drift; a margin scrub on the
    // warm-started engine must find and heal rows, same as on the
    // original.
    let report = restored.array_mut().scrub_margins().expect("scrub");
    assert!(report.probed > 0);
    assert!(
        !report.healed.is_empty(),
        "margin monitors went blind after warm start"
    );
    assert_eq!(
        report.failed, 0,
        "drift must not have crossed a decode flip"
    );
}

/// The corpus side-track (`--corpus-rows`): every step runs one
/// pre-filtered two-tier search judged against brute force restricted
/// to the probed shards, and live mutations churn the tier (snapshot
/// invalidation + shard growth past packed capacity). The judge is the
/// ISSUE contract — the exact re-rank must stay bit-identical under
/// cache eviction, recompile, and mutation.
#[test]
fn corpus_track_campaign_judges_restricted_rerank_exactly() {
    let mut cfg = SimConfig::quick(3);
    cfg.corpus_rows = 48;
    let report = run_sim_campaign(&cfg, 0xBEEF, 50).expect("campaign runs");
    assert!(
        report.failing_seeds.is_empty(),
        "failing seeds: {:?}",
        report.failing_seeds
    );
    assert!(
        report.corpus_judged >= 50 * 16,
        "corpus judge went dark: {}",
        report.corpus_judged
    );
    assert!(report.corpus_mutations > 0, "no corpus mutations landed");
    // With the side-track disabled, its counters must stay at zero.
    cfg.corpus_rows = 0;
    let off = run_sim_campaign(&cfg, 0xBEEF, 2).expect("campaign runs");
    assert_eq!(off.corpus_judged, 0);
    assert_eq!(off.corpus_mutations, 0);
}

/// Corpus-enabled worlds replay bit-identically too: the side-track's
/// build, queries, and mutations are all pure in `(seed, step)`.
#[test]
fn corpus_track_replays_bit_identically() {
    let mut cfg = SimConfig::quick(11);
    cfg.corpus_rows = 48;
    let schedule = generate_schedule(&cfg);
    let a = run_with_schedule(&cfg, &schedule).expect("first run");
    assert!(!a.failed(), "failures: {:?}", a.failures);
    assert!(a.corpus_judged >= cfg.steps, "judged: {}", a.corpus_judged);
    let b = run_with_schedule(&cfg, &schedule).expect("second run");
    assert_eq!(a, b);
}

/// A bigger world than the campaign's: the paper-default geometry with
/// a dense schedule, run twice for determinism and judged throughout.
#[test]
fn paper_default_world_is_clean_and_deterministic() {
    let cfg = SimConfig::paper_default(0x5EED);
    let schedule = generate_schedule(&cfg);
    let a = run_with_schedule(&cfg, &schedule).expect("first run");
    assert!(!a.failed(), "failures: {:?}", a.failures);
    assert!(a.requests >= cfg.steps);
    let b = run_with_schedule(&cfg, &schedule).expect("second run");
    assert_eq!(a, b);
}
