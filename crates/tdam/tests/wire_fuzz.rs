//! Wire-protocol robustness fuzz: every decoder on the serve path and
//! the checkpoint codec must reject arbitrary or mutated bytes with an
//! `Err` — never a panic, and never an allocation past the frame cap.
//!
//! These are the exact surfaces the deterministic simulation's network
//! faults exercise (truncation, bit-flips); the fuzz sweeps the same
//! decoders far wider than any one schedule can.

use proptest::prelude::*;
use std::io::Cursor;
use tdam::serve::{read_frame, write_frame, Reply, Request, ShedReason, TopK, MAX_FRAME};
use tdam::store::decode_checkpoint;
use tdam::ErrorClass;

/// Builds one of the well-formed request variants from fuzz
/// ingredients (the vendored proptest subset has no `prop_oneof`, so
/// variant selection happens here).
fn build_request(kind: u8, query: Vec<u8>, k: usize, deadline_us: u64) -> Request {
    match kind % 3 {
        0 => Request::Query {
            query,
            k,
            deadline_us,
        },
        1 => Request::Stats,
        _ => Request::Info,
    }
}

/// Builds one of the well-formed reply variants from fuzz ingredients.
fn build_reply(kind: u8, neighbors: Vec<(usize, usize)>, flags: u8, msg: String) -> Reply {
    match kind % 4 {
        0 => Reply::TopK(TopK {
            neighbors,
            partial: flags & 1 != 0,
            degraded: flags & 2 != 0,
            shards_answered: (flags as usize >> 2) & 7,
            shards_total: ((flags as usize >> 5) & 7).max(1),
        }),
        1 => Reply::Overloaded(if flags & 1 != 0 {
            ShedReason::QueueFull
        } else {
            ShedReason::DeadlineExpired
        }),
        2 => Reply::Error {
            class: match flags % 3 {
                0 => ErrorClass::Transient,
                1 => ErrorClass::Degraded,
                _ => ErrorClass::Permanent,
            },
            msg,
        },
        _ => Reply::TopK(TopK {
            neighbors: Vec::new(),
            partial: false,
            degraded: false,
            shards_answered: 0,
            shards_total: 1,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes through the request decoder: `Err` or a valid
    /// request, never a panic.
    #[test]
    fn request_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
    }

    /// Arbitrary bytes through the reply decoder.
    #[test]
    fn reply_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Reply::decode(&bytes);
    }

    /// Arbitrary bytes through the checkpoint codec.
    #[test]
    fn checkpoint_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_checkpoint(&bytes);
    }

    /// Arbitrary bytes through the frame reader: clean EOF, a frame, or
    /// an error — never a panic.
    #[test]
    fn read_frame_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_frame(&mut Cursor::new(bytes.as_slice()));
    }

    /// A header declaring any over-limit length must be refused up
    /// front — regardless of how much payload follows — so a hostile
    /// header can never force an over-allocation past [`MAX_FRAME`].
    #[test]
    fn oversize_frame_header_is_refused(
        len in (MAX_FRAME as u32 + 1)..=u32::MAX,
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&tail);
        let got = read_frame(&mut Cursor::new(bytes.as_slice()));
        prop_assert!(got.is_err(), "length {} must be refused, got {:?}", len, got);
    }

    /// Well-formed requests survive a frame+codec round trip.
    #[test]
    fn request_roundtrip(
        kind in 0u8..3,
        query in prop::collection::vec(0u8..4, 0..64),
        k in 0usize..32,
        deadline_us in 0u64..5_000_000,
    ) {
        let req = build_request(kind, query, k, deadline_us);
        let mut frame = Vec::new();
        write_frame(&mut frame, &req.encode()).expect("Vec sink");
        let payload = read_frame(&mut Cursor::new(frame.as_slice()))
            .expect("frame reads")
            .expect("frame present");
        prop_assert_eq!(Request::decode(&payload).expect("decodes"), req);
    }

    /// Well-formed replies survive a frame+codec round trip.
    #[test]
    fn reply_roundtrip(
        kind in 0u8..4,
        dists in prop::collection::vec(0usize..1024, 0..16),
        rows in prop::collection::vec(0usize..4096, 0..16),
        flags in any::<u8>(),
        msg in "[ -~]{0,64}",
    ) {
        let neighbors: Vec<(usize, usize)> = dists.into_iter().zip(rows).collect();
        let reply = build_reply(kind, neighbors, flags, msg);
        let mut frame = Vec::new();
        write_frame(&mut frame, &reply.encode()).expect("Vec sink");
        let payload = read_frame(&mut Cursor::new(frame.as_slice()))
            .expect("frame reads")
            .expect("frame present");
        prop_assert_eq!(Reply::decode(&payload).expect("decodes"), reply);
    }

    /// Mutated valid requests: truncate anywhere and flip any byte; the
    /// decoder must stay panic-free on the near-valid neighborhood,
    /// which is where naive length-prefixed decoders break.
    #[test]
    fn mutated_request_never_panics(
        kind in 0u8..3,
        query in prop::collection::vec(0u8..4, 0..64),
        k in 0usize..32,
        cut in 0usize..128,
        pos in 0usize..128,
        flip in 1u8..=255,
    ) {
        let mut bytes = build_request(kind, query, k, 1000).encode();
        let limit = cut.min(bytes.len());
        bytes.truncate(limit);
        if !bytes.is_empty() {
            let p = pos % bytes.len();
            bytes[p] ^= flip;
        }
        let _ = Request::decode(&bytes);
    }

    /// Mutated valid replies, same contract.
    #[test]
    fn mutated_reply_never_panics(
        kind in 0u8..4,
        dists in prop::collection::vec(0usize..1024, 0..16),
        rows in prop::collection::vec(0usize..4096, 0..16),
        flags in any::<u8>(),
        cut in 0usize..256,
        pos in 0usize..256,
        flip in 1u8..=255,
    ) {
        let neighbors: Vec<(usize, usize)> = dists.into_iter().zip(rows).collect();
        let mut bytes = build_reply(kind, neighbors, flags, "x".into()).encode();
        let limit = cut.min(bytes.len());
        bytes.truncate(limit);
        if !bytes.is_empty() {
            let p = pos % bytes.len();
            bytes[p] ^= flip;
        }
        let _ = Reply::decode(&bytes);
    }
}
