//! Multi-bit element encoding and the Hamming-distance metric.
//!
//! The TD-AM stores vectors whose elements are `n`-bit values (the paper
//! demonstrates 2-bit cells and argues 3–4-bit feasibility). "Hamming
//! distance" throughout follows the paper's definition: the number of
//! *element positions* where query and stored value differ — each cell
//! contributes zero or one mismatch regardless of bit width.

use crate::TdamError;
use serde::{Deserialize, Serialize};

/// An `n`-bit-per-element encoding, `1 ≤ n ≤ 4`.
///
/// # Examples
///
/// ```
/// use tdam::Encoding;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let enc = Encoding::new(2)?;
/// assert_eq!(enc.levels(), 4);
/// assert_eq!(enc.hamming(&[0, 1, 2, 3], &[0, 1, 3, 3])?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Encoding {
    bits: u8,
}

impl Encoding {
    /// Creates an encoding with `bits` bits per element.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::InvalidConfig`] unless `1 ≤ bits ≤ 4` (the
    /// range supported by the 4-state — extensible to 16-state — FeFET
    /// ladder).
    pub fn new(bits: u8) -> Result<Self, TdamError> {
        if !(1..=4).contains(&bits) {
            return Err(TdamError::InvalidConfig {
                what: "bits per element must be between 1 and 4",
            });
        }
        Ok(Self { bits })
    }

    /// The paper's 2-bit encoding.
    pub fn paper_default() -> Self {
        Self { bits: 2 }
    }

    /// Bits per element.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of representable levels (`2^bits`).
    pub fn levels(&self) -> u8 {
        1 << self.bits
    }

    /// Validates that every element of `v` fits the encoding.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::ValueOutOfRange`] for the first offending
    /// element.
    pub fn validate(&self, v: &[u8]) -> Result<(), TdamError> {
        let levels = self.levels();
        for &x in v {
            if x >= levels {
                return Err(TdamError::ValueOutOfRange { value: x, levels });
            }
        }
        Ok(())
    }

    /// Element-wise Hamming distance between two equal-length vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] for unequal lengths and
    /// [`TdamError::ValueOutOfRange`] for out-of-range elements.
    pub fn hamming(&self, a: &[u8], b: &[u8]) -> Result<usize, TdamError> {
        if a.len() != b.len() {
            return Err(TdamError::LengthMismatch {
                got: b.len(),
                expected: a.len(),
            });
        }
        self.validate(a)?;
        self.validate(b)?;
        Ok(a.iter().zip(b).filter(|(x, y)| x != y).count())
    }

    /// Packs a wide-precision value into elements of this encoding
    /// (little-endian chunks), for mapping `w`-bit data onto `bits`-bit
    /// cells.
    pub fn split_value(&self, value: u32, total_bits: u8) -> Vec<u8> {
        let mask = (self.levels() - 1) as u32;
        let chunks = total_bits.div_ceil(self.bits);
        (0..chunks)
            .map(|i| ((value >> (i * self.bits)) & mask) as u8)
            .collect()
    }
}

impl Default for Encoding {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_bounds() {
        assert!(Encoding::new(0).is_err());
        assert!(Encoding::new(5).is_err());
        for b in 1..=4 {
            assert_eq!(Encoding::new(b).unwrap().bits(), b);
        }
    }

    #[test]
    fn levels_power_of_two() {
        assert_eq!(Encoding::new(1).unwrap().levels(), 2);
        assert_eq!(Encoding::new(2).unwrap().levels(), 4);
        assert_eq!(Encoding::new(3).unwrap().levels(), 8);
        assert_eq!(Encoding::new(4).unwrap().levels(), 16);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let enc = Encoding::new(2).unwrap();
        assert!(enc.validate(&[0, 3]).is_ok());
        assert_eq!(
            enc.validate(&[4]),
            Err(TdamError::ValueOutOfRange {
                value: 4,
                levels: 4
            })
        );
    }

    #[test]
    fn hamming_counts_element_mismatches() {
        let enc = Encoding::new(2).unwrap();
        assert_eq!(enc.hamming(&[], &[]).unwrap(), 0);
        assert_eq!(enc.hamming(&[1, 2, 3], &[1, 2, 3]).unwrap(), 0);
        assert_eq!(enc.hamming(&[0, 0, 0], &[3, 3, 3]).unwrap(), 3);
        // Multi-bit difference still counts once per element.
        assert_eq!(enc.hamming(&[0], &[3]).unwrap(), 1);
    }

    #[test]
    fn hamming_length_mismatch() {
        let enc = Encoding::default();
        assert!(matches!(
            enc.hamming(&[0, 1], &[0]),
            Err(TdamError::LengthMismatch {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn split_value_roundtrip() {
        let enc = Encoding::new(2).unwrap();
        let parts = enc.split_value(0b11_01_10, 6);
        assert_eq!(parts, vec![0b10, 0b01, 0b11]);
        let rebuilt: u32 = parts
            .iter()
            .enumerate()
            .map(|(i, &p)| (p as u32) << (2 * i as u32))
            .sum();
        assert_eq!(rebuilt, 0b11_01_10);
    }

    proptest! {
        #[test]
        fn hamming_is_metric_like(a in prop::collection::vec(0u8..4, 0..64),
                                  b in prop::collection::vec(0u8..4, 0..64)) {
            let enc = Encoding::new(2).unwrap();
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            let d_ab = enc.hamming(a, b).unwrap();
            let d_ba = enc.hamming(b, a).unwrap();
            prop_assert_eq!(d_ab, d_ba);
            prop_assert!(d_ab <= n);
            prop_assert_eq!(enc.hamming(a, a).unwrap(), 0);
        }

        #[test]
        fn split_respects_levels(v in 0u32..65536, bits in 1u8..=4) {
            let enc = Encoding::new(bits).unwrap();
            for part in enc.split_value(v, 16) {
                prop_assert!(part < enc.levels());
            }
        }
    }
}
