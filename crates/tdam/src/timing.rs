//! Stage timing and energy model.
//!
//! Every array-scale experiment (Fig. 5 sweeps, Fig. 6 Monte Carlo, the
//! HDC benchmarks) would be intractable if each search ran full transient
//! circuit simulation, so the TD-AM uses a *calibrated* stage model: the
//! intrinsic stage delay `d_INV`, the mismatch penalty `d_C`, and the
//! per-event energies are either derived analytically from the device
//! models ([`StageTiming::analytic`]) or extracted from single-stage
//! circuit simulation ([`StageTiming::from_circuit`], see
//! [`crate::stage`]). Integration tests verify the two agree.

use crate::config::TechParams;
use crate::TdamError;
use serde::{Deserialize, Serialize};
use tdam_fefet::mosfet::ids;

/// Calibrated per-stage delay and energy figures at one operating point
/// (`V_DD`, `C_load`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Intrinsic stage (inverter) delay, seconds.
    pub d_inv: f64,
    /// Extra delay when the load capacitor is attached (mismatch), seconds.
    pub d_c: f64,
    /// Inverter switching energy per full pulse cycle, joules.
    pub e_inv: f64,
    /// Load-capacitor energy per mismatch event, joules.
    pub e_c: f64,
    /// Match-node precharge energy per discharged cell, joules.
    pub e_mn: f64,
    /// Search-line switching energy per cell per search, joules.
    pub e_sl: f64,
    /// Operating supply voltage, volts.
    pub vdd: f64,
    /// Load capacitance this calibration is for, farads.
    pub c_load: f64,
}

impl StageTiming {
    /// Derives stage timing analytically from the technology parameters.
    ///
    /// Delays follow the switched-capacitor estimate `t ≈ C·(V_DD/2)/I_eff`
    /// with `I_eff` the average of the NMOS and PMOS drive currents at
    /// `V_GS = V_DD`, `V_DS = V_DD/2`, plus an `ln 2·R_switch·C_load` term
    /// for the PMOS switch in the mismatch path. The load-capacitor drive
    /// term carries a 0.35 *tracking factor*: the capacitor only follows
    /// the stage output partially before the 50% crossing (the switch
    /// decouples below its overdrive), a constant fit against
    /// [`StageTiming::from_circuit`] extraction across V_DD ∈ 0.6–1.1 V
    /// and C_load ∈ 6–320 fF (agreement within ~1.3×; the paper-shape
    /// claims only need proportionality). Energies are `C·V_DD²`
    /// switched-capacitance terms and carry no such factor — the capacitor
    /// eventually completes its swing every cycle.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::InvalidConfig`] for a non-positive load
    /// capacitance or a supply so low the drive current vanishes.
    pub fn analytic(tech: &TechParams, c_load: f64) -> Result<Self, TdamError> {
        if !c_load.is_finite() || c_load <= 0.0 {
            return Err(TdamError::InvalidConfig {
                what: "load capacitance must be positive and finite",
            });
        }
        let vdd = tech.vdd;
        let i_n = ids(&tech.nmos, vdd, vdd / 2.0).id;
        let i_p = ids(&tech.pmos, -vdd, -vdd / 2.0).id.abs();
        let i_eff = 0.5 * (i_n + i_p);
        if i_eff < 1e-12 {
            return Err(TdamError::InvalidConfig {
                what: "drive current vanishes at this supply voltage",
            });
        }
        let c_stage = tech.c_self + tech.c_gate;
        let d_inv = c_stage * (vdd / 2.0) / i_eff;
        // 0.35 = capacitor tracking factor (see doc comment).
        let d_c = 0.35 * c_load * (vdd / 2.0) / i_eff
            + core::f64::consts::LN_2 * tech.r_switch() * c_load;
        // Mean search-line level over the ladder is ~vdd/2-ish; use the
        // full-swing bound (conservative).
        let e_sl = 2.0 * tech.c_sl_per_cell * vdd * vdd;
        Ok(Self {
            d_inv,
            d_c,
            e_inv: c_stage * vdd * vdd,
            e_c: c_load * vdd * vdd,
            e_mn: tech.c_mn * vdd * vdd,
            e_sl,
            vdd,
            c_load,
        })
    }

    /// Extracts stage timing from transient circuit simulation of a single
    /// delay stage in match and mismatch configuration (see
    /// [`crate::stage::calibrate_from_circuit`], which this delegates to).
    ///
    /// # Errors
    ///
    /// Propagates circuit-simulation failures as [`TdamError::Circuit`].
    pub fn from_circuit(tech: &TechParams, c_load: f64) -> Result<Self, TdamError> {
        crate::stage::calibrate_from_circuit(tech, c_load)
    }

    /// Total nominal chain delay for the 2-step scheme:
    /// `2·N·d_INV + N_mis·d_C`.
    pub fn chain_delay(&self, stages: usize, mismatches: usize) -> f64 {
        2.0 * stages as f64 * self.d_inv + mismatches as f64 * self.d_c
    }

    /// The sensing margin: to resolve adjacent mismatch counts the total
    /// delay error must stay below half of `d_C`.
    pub fn sensing_margin(&self) -> f64 {
        self.d_c / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TechParams;

    #[test]
    fn analytic_orders_of_magnitude() {
        let t = TechParams::nominal_40nm();
        let st = StageTiming::analytic(&t, 6e-15).unwrap();
        // 40 nm inverter: few ps intrinsic delay; mismatch penalty tens of ps.
        assert!(
            st.d_inv > 0.5e-12 && st.d_inv < 20e-12,
            "d_inv {:e}",
            st.d_inv
        );
        assert!(st.d_c > 5e-12 && st.d_c < 200e-12, "d_c {:e}", st.d_c);
        assert!(
            st.d_c > st.d_inv,
            "mismatch penalty dominates intrinsic delay"
        );
        // Load energy ~ C·V² = 6 fF · 1.21 V² ≈ 7.3 fJ.
        assert!((st.e_c - 6e-15 * 1.1 * 1.1).abs() < 1e-18);
    }

    #[test]
    fn d_c_linear_in_c_load() {
        let t = TechParams::nominal_40nm();
        let a = StageTiming::analytic(&t, 6e-15).unwrap();
        let b = StageTiming::analytic(&t, 60e-15).unwrap();
        let ratio = b.d_c / a.d_c;
        assert!(
            (ratio - 10.0).abs() < 0.01,
            "d_c must scale linearly, got {ratio}"
        );
    }

    #[test]
    fn vdd_scaling_tradeoff() {
        // Lower VDD: less energy, more delay — the Fig. 5(c)(d) trend.
        let hi = StageTiming::analytic(&TechParams::nominal_40nm(), 6e-15).unwrap();
        let lo = StageTiming::analytic(&TechParams::nominal_40nm().with_vdd(0.7), 6e-15).unwrap();
        assert!(lo.e_c < hi.e_c * 0.5, "energy must drop with VDD²");
        assert!(lo.d_c > hi.d_c, "delay must grow as drive weakens");
    }

    #[test]
    fn chain_delay_formula() {
        let st = StageTiming::analytic(&TechParams::nominal_40nm(), 6e-15).unwrap();
        let d0 = st.chain_delay(32, 0);
        let d5 = st.chain_delay(32, 5);
        assert!((d0 - 64.0 * st.d_inv).abs() < 1e-18);
        assert!((d5 - d0 - 5.0 * st.d_c).abs() < 1e-18);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let t = TechParams::nominal_40nm();
        assert!(StageTiming::analytic(&t, 0.0).is_err());
        assert!(StageTiming::analytic(&t, f64::NAN).is_err());
    }

    #[test]
    fn sensing_margin_is_half_dc() {
        let st = StageTiming::analytic(&TechParams::nominal_40nm(), 6e-15).unwrap();
        assert!((st.sensing_margin() - st.d_c / 2.0).abs() < 1e-20);
    }
}
