//! Deterministic full-system simulation: one seed, one virtual world.
//!
//! FoundationDB/TigerBeetle-style simulation testing for the TD-AM
//! serving stack. A `SimWorld` runs a whole deployment — a sharded
//! [`ShardedService`] with warm standbys on in-memory checkpoint
//! stores, a [`DurableEngine`] write-ahead track on a fault-injecting
//! [`MemStorage`], clients, mutation writers, and device aging — as a
//! **single-threaded** program on a [`SimClock`]. Every source of
//! nondeterminism is owned by the harness:
//!
//! - **time** is virtual: deadlines, group-commit flush windows, scrub
//!   cadence, and injected stalls all read the same [`SimClock`];
//! - **the network** is a byte-level frame pipeline (the production
//!   [`Request`]/[`Reply`] codec and frame framing, run over `Vec<u8>`
//!   instead of a socket) with seed-scheduled truncation, bit-flips,
//!   duplication, reordering, resets, and slow-loris stalls;
//! - **the disk** is a [`MemStorage`] with seed-scheduled torn
//!   appends, lying fsyncs, disk-full errors, and power losses.
//!
//! All faults come from one [`FaultSchedule`] drawn from one seed, so
//! any run replays **bit-identically** — and when a run fails, the
//! schedule is shrunk by greedy event deletion to a minimal reproducer
//! (`tdam-sim simulate --seed N` replays it).
//!
//! ## The judges
//!
//! Two independent oracles watch the world:
//!
//! - **answer judge** — every *complete* (non-partial, non-degraded)
//!   top-k answer a client decodes must be bit-identical to
//!   [`brute_force_topk`] over a shadow corpus the harness maintains
//!   by hand. Partial/degraded answers are honestly flagged by the
//!   service and exempt; silently wrong answers are the one
//!   unforgivable failure.
//! - **durability judge** — after every injected power loss, the
//!   recovered durable engine must hold exactly a *prefix* of the
//!   mutation history (checkpoint base + replayed journal ops),
//!   bit-exact per row. Recovering a state the application never
//!   passed through is silent corruption.

use std::collections::HashMap;
use std::io::Cursor;
use std::sync::Arc;
use std::time::Duration;

use crate::clock::{Clock, SimClock};
use crate::config::ArrayConfig;
use crate::corpus::{CorpusBuilder, CorpusConfig, CorpusEngine};
use crate::encoding::Encoding;
use crate::runtime::{DeadlinePolicy, RuntimeConfig};
use crate::serve::{
    brute_force_topk, read_frame, write_frame, InfoReply, Reply, Request, ServeConfig, ServeError,
    ShardedService, ShedReason, StatsReply,
};
use crate::store::{CheckpointStore, DiskFault, DurableEngine, MemStorage};
use tdam_fefet::retention::{Lifetime, RetentionParams};

// ---------------------------------------------------------------------------
// Seeded randomness
// ---------------------------------------------------------------------------

/// SplitMix64 finalizer: one 64-bit hop of the schedule/query streams.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Minimal deterministic RNG (SplitMix64 stream) for schedule drawing.
#[derive(Debug, Clone)]
struct SimRng {
    state: u64,
}

impl SimRng {
    fn new(seed: u64) -> Self {
        Self {
            state: splitmix(seed ^ 0xD1F4_7E57_0000_5EED),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = splitmix(self.state);
        self.state
    }

    /// Uniform draw in `[0, n)` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `percent / 100`.
    fn chance(&mut self, percent: u32) -> bool {
        self.below(100) < u64::from(percent)
    }
}

// ---------------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------------

/// A fault applied to one wire frame (request or reply direction), at
/// the byte level — below the codec, exactly where a hostile or broken
/// network operates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Keep only a `keep_num/256` prefix of the request frame bytes.
    TruncateRequest {
        /// Prefix fraction numerator (denominator 256).
        keep_num: u8,
    },
    /// Keep only a `keep_num/256` prefix of the reply frame bytes.
    TruncateReply {
        /// Prefix fraction numerator (denominator 256).
        keep_num: u8,
    },
    /// Flip one bit of the request frame (position `bit` modulo length).
    BitflipRequest {
        /// Bit index before reduction modulo the frame bit-length.
        bit: u32,
    },
    /// Flip one bit of the reply frame.
    BitflipReply {
        /// Bit index before reduction modulo the frame bit-length.
        bit: u32,
    },
    /// Deliver the request twice (at-least-once network).
    DuplicateRequest,
    /// Drop the reply on the floor (connection reset from the client's
    /// point of view).
    DropReply,
    /// Slow-loris: the peer stalls this long mid-frame. Stalls past the
    /// server's I/O budget cut the connection; shorter ones just burn
    /// the request's deadline budget.
    Stall {
        /// Stall length, virtual milliseconds.
        millis: u32,
    },
    /// Defer this step's request and deliver it after the next one
    /// (reordering). Judged against the shadow corpus at actual serve
    /// time.
    Reorder,
}

/// One scheduled world event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Apply a byte-level fault to this step's wire traffic.
    Net(FrameFault),
    /// Hard-crash one serving shard (failover path).
    CrashShard(
        /// Shard index (reduced modulo the shard count).
        usize,
    ),
    /// Make one shard serve slowly until cleared (breaker path).
    SlowShard {
        /// Shard index (reduced modulo the shard count).
        shard: usize,
        /// Injected per-request service delay, virtual milliseconds.
        millis: u32,
    },
    /// Clear a shard's slow-serve injection.
    ClearSlow(
        /// Shard index (reduced modulo the shard count).
        usize,
    ),
    /// Age every shard's device array (retention drift).
    AgeShards {
        /// Retention bake time, seconds of device lifetime.
        seconds: u32,
    },
    /// Force one retention-scrub pass on every shard now.
    Scrub,
    /// Retention drift on one shard deep enough to trip the margin
    /// monitors (window fraction ≈ 0.7, past the 0.6 × sensing-margin
    /// tolerance but short of a decode flip), immediately followed by a
    /// scrub pass so drifted rows heal before the next query lands.
    Drift(
        /// Shard index (reduced modulo the shard count).
        usize,
    ),
    /// Live mutation: overwrite one corpus row with derived values (and
    /// mirror it on the durable track when in range).
    Mutate,
    /// Admission burst: this many requests are queued ahead of this
    /// step's request.
    Burst(
        /// Queued requests ahead.
        u32,
    ),
    /// Arm one disk fault on the durable track's storage.
    Disk(DiskFault),
    /// Checkpoint the durable track (journal rotation).
    Checkpoint,
    /// Power-lose the durable track and recover it (durability judge).
    CrashDurable,
    /// Self-test: corrupt the next complete answer before judging. The
    /// judge **must** catch this — used to validate the failure
    /// pipeline (replay + shrink), never drawn by the generator.
    Sabotage,
}

/// The unified, seed-derived fault plan: `(step, event)` pairs applied
/// in order at the start of each step.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    /// Scheduled events, sorted by step.
    pub events: Vec<(usize, FaultEvent)>,
}

impl FaultSchedule {
    /// Renders the schedule as one line per event (failure artifacts).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (step, ev) in &self.events {
            out.push_str(&format!("  step {step:>4}: {ev:?}\n"));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration of one simulated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// World seed: corpus, queries, and the fault schedule all derive
    /// from it.
    pub seed: u64,
    /// Client request steps to run.
    pub steps: usize,
    /// Corpus rows served.
    pub rows: usize,
    /// Elements per row (stages per chain).
    pub stages: usize,
    /// Rows per shard (shard count = `rows / rows_per_shard`, rounded
    /// up).
    pub rows_per_shard: usize,
    /// Rows mirrored on the durable write-ahead track.
    pub durable_rows: usize,
    /// Percent chance per step of drawing one fault event.
    pub fault_density: u32,
    /// Arm the sabotage self-test (judge validation).
    pub sabotage: bool,
    /// Rows in the two-tier corpus side-track (0 = disabled). When
    /// enabled, every step also runs one pre-filtered corpus search
    /// judged by brute force restricted to the probed shards, and live
    /// mutations additionally churn the corpus tier (update + append)
    /// so the snapshot cache sees invalidation under faults.
    pub corpus_rows: usize,
}

impl SimConfig {
    /// A small world for campaigns: 12 rows over 3 shards, 16 steps.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            steps: 16,
            rows: 12,
            stages: 6,
            rows_per_shard: 4,
            durable_rows: 6,
            fault_density: 45,
            sabotage: false,
            corpus_rows: 0,
        }
    }

    /// A deeper world for single-seed investigation: 24 rows over 3
    /// shards, 64 steps, denser faults.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            seed,
            steps: 64,
            rows: 24,
            stages: 8,
            rows_per_shard: 8,
            durable_rows: 8,
            fault_density: 55,
            sabotage: false,
            corpus_rows: 0,
        }
    }

    /// Shard count implied by the geometry.
    pub fn shards(&self) -> usize {
        self.rows.div_ceil(self.rows_per_shard.max(1))
    }

    /// The serving configuration of the simulated deployment.
    fn serve_config(&self) -> ServeConfig {
        let mut cfg = ServeConfig::paper_default();
        cfg.array = ArrayConfig::paper_default().with_stages(self.stages);
        cfg.rows_per_shard = self.rows_per_shard;
        cfg.queue_capacity = 32;
        cfg.default_deadline = Duration::from_millis(20);
        cfg.io_timeout = Duration::from_millis(200);
        // Background retention scrub on virtual time: one pass every
        // 8 virtual milliseconds of serving.
        cfg.runtime.scrub_interval = Some(Duration::from_millis(8));
        cfg
    }

    /// The corpus side-track's configuration: tiny shards and a
    /// deliberately small snapshot-cache budget, so even a short
    /// campaign exercises cache hits, misses, and evictions.
    fn corpus_config(&self) -> CorpusConfig {
        CorpusConfig {
            array: ArrayConfig::paper_default().with_stages(self.stages),
            shard_rows: 8,
            nprobe: 2,
            train_iters: 2,
            train_sample: 128,
            cache_budget_bytes: 16 << 10,
            seed: self.seed,
            threads: Some(1),
        }
    }

    /// The durable track's runtime configuration (no deadline, no
    /// background scrub — the journal replays must stay cheap).
    fn durable_runtime(&self) -> RuntimeConfig {
        RuntimeConfig {
            deadline: DeadlinePolicy::None,
            threads: Some(1),
            ..RuntimeConfig::default()
        }
    }
}

/// Per-request client deadline, virtual time.
const REQUEST_DEADLINE: Duration = Duration::from_millis(20);
/// Virtual time between client request steps.
const STEP_TICK: Duration = Duration::from_millis(1);
/// Modeled queue residency per request queued ahead (burst events).
const QUEUE_TICK: Duration = Duration::from_micros(250);
/// Cap on aging events per schedule: with the paper's 4-level ladder
/// (0.4 V spacing) three compounded ~1e5 s bakes contract the window to
/// ~84%, drifting extreme states ~0.1 V — margin monitors flag long
/// before the 0.2 V decode-flip point, so the scrub has room to heal.
const MAX_AGE_EVENTS: usize = 3;

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// One judged failure: the step it surfaced at and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFailure {
    /// Step index the failure surfaced at.
    pub step: usize,
    /// Deterministic description of the violation.
    pub what: String,
}

/// Integer-only outcome of one world run. Two runs of the same seed
/// and schedule must compare equal — the replay check is `==`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimReport {
    /// Steps executed.
    pub steps: usize,
    /// Requests delivered to the server (duplicates included).
    pub requests: usize,
    /// Complete answers (judged bit-exact against the shadow corpus).
    pub complete: usize,
    /// Answers honestly flagged partial.
    pub partial: usize,
    /// Answers honestly flagged degraded.
    pub degraded: usize,
    /// Requests shed by admission control (queue full / deadline).
    pub shed: usize,
    /// Wire-level delivery failures (truncation, resets, stalls past
    /// the I/O budget).
    pub transport_errors: usize,
    /// Frames that decoded as protocol violations.
    pub protocol_errors: usize,
    /// Frames delivered with undetectable tampering (bit-flips):
    /// served/decoded without panic, excluded from the answer judge.
    pub tampered: usize,
    /// Classified error replies the client received (shard failures,
    /// availability gaps).
    pub server_errors: usize,
    /// Live corpus mutations applied.
    pub mutations: usize,
    /// Serving shards hard-crashed.
    pub shard_crashes: usize,
    /// Durable-track power losses survived.
    pub durable_crashes: usize,
    /// Aging events applied to the device arrays.
    pub ages: usize,
    /// Forced scrub passes (on top of the clock-driven cadence).
    pub scrubs: usize,
    /// Deep margin-drift events (age past tolerance + paired heal
    /// scrub).
    pub drifts: usize,
    /// Disk faults armed on the durable track.
    pub disk_faults: usize,
    /// Durable checkpoints committed.
    pub checkpoints: usize,
    /// Requests deferred by reordering.
    pub reorders: usize,
    /// Standby failovers the service performed.
    pub failovers: usize,
    /// Retention-scrub heals across all shard engines.
    pub scrub_heals: usize,
    /// Answers judged against the brute-force oracle.
    pub judged: usize,
    /// Corpus-tier answers judged against brute force restricted to
    /// the probed shards.
    pub corpus_judged: usize,
    /// Corpus-tier mutations applied (row updates + appends).
    pub corpus_mutations: usize,
    /// Judged violations (must be zero outside sabotage runs).
    pub failures: Vec<SimFailure>,
}

impl SimReport {
    /// Whether any judge recorded a violation.
    pub fn failed(&self) -> bool {
        !self.failures.is_empty()
    }
}

/// Failure artifact: everything needed to reproduce and fix a failing
/// seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureArtifact {
    /// The world seed.
    pub seed: u64,
    /// Events in the original (full) schedule.
    pub original_events: usize,
    /// The greedily minimized schedule that still reproduces the
    /// failure.
    pub minimized: FaultSchedule,
    /// First recorded violation under the minimized schedule.
    pub first_failure: SimFailure,
    /// Whether two full-schedule runs produced identical reports
    /// (determinism check; `false` would itself be a harness bug).
    pub replay_consistent: bool,
}

/// Outcome of [`simulate`]: the report, the schedule it ran, and a
/// minimized failure artifact when a judge fired.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Full-schedule run report.
    pub report: SimReport,
    /// The generated schedule.
    pub schedule: FaultSchedule,
    /// Present iff the run failed.
    pub failure: Option<FailureArtifact>,
}

// ---------------------------------------------------------------------------
// Schedule generation
// ---------------------------------------------------------------------------

/// Draws the unified fault schedule for a configuration — pure in the
/// seed, so the same seed always produces the same world.
pub fn generate_schedule(cfg: &SimConfig) -> FaultSchedule {
    let mut rng = SimRng::new(cfg.seed);
    let shards = cfg.shards() as u64;
    let mut events = Vec::new();
    let mut ages = 0usize;
    let mut drifted = false;
    for step in 0..cfg.steps {
        if !rng.chance(cfg.fault_density) {
            continue;
        }
        let ev = match rng.below(100) {
            // Network faults: the biggest family, split across kinds.
            0..=4 => FaultEvent::Net(FrameFault::TruncateRequest {
                keep_num: rng.below(256) as u8,
            }),
            5..=9 => FaultEvent::Net(FrameFault::TruncateReply {
                keep_num: rng.below(256) as u8,
            }),
            10..=14 => FaultEvent::Net(FrameFault::BitflipRequest {
                bit: rng.below(1 << 16) as u32,
            }),
            15..=18 => FaultEvent::Net(FrameFault::BitflipReply {
                bit: rng.below(1 << 16) as u32,
            }),
            19..=22 => FaultEvent::Net(FrameFault::DuplicateRequest),
            23..=26 => FaultEvent::Net(FrameFault::DropReply),
            27..=31 => FaultEvent::Net(FrameFault::Stall {
                // Mix short budget-burning stalls with ones past the
                // 200 ms I/O budget (connection cut).
                millis: if rng.chance(50) {
                    2 + rng.below(6) as u32
                } else {
                    250 + rng.below(100) as u32
                },
            }),
            32..=35 => FaultEvent::Net(FrameFault::Reorder),
            // Overload + live mutation.
            36..=43 => FaultEvent::Burst(rng.below(64) as u32),
            44..=53 => FaultEvent::Mutate,
            // Crash-restart (service level).
            54..=59 => FaultEvent::CrashShard(rng.below(shards) as usize),
            60..=64 => FaultEvent::SlowShard {
                shard: rng.below(shards) as usize,
                millis: 25 + rng.below(20) as u32,
            },
            65..=67 => FaultEvent::ClearSlow(rng.below(shards) as usize),
            // Device drift / aging.
            68..=73 => {
                if ages < MAX_AGE_EVENTS {
                    ages += 1;
                    FaultEvent::AgeShards {
                        seconds: 20_000 + rng.below(80_000) as u32,
                    }
                } else {
                    FaultEvent::Scrub
                }
            }
            74..=75 => FaultEvent::Scrub,
            // One deep margin-drift per schedule: heal scrub + refresh
            // clean up all contraction on the drifted shard, so a single
            // occurrence exercises the heal path without leaving residue
            // for later events to compound.
            76..=77 => {
                if drifted {
                    FaultEvent::Scrub
                } else {
                    drifted = true;
                    FaultEvent::Drift(rng.below(shards) as usize)
                }
            }
            // Durable-track faults.
            78..=81 => FaultEvent::Disk(match rng.below(3) {
                0 => DiskFault::TornAppend {
                    keep_num: rng.below(256) as u8,
                },
                1 => DiskFault::FsyncLie,
                _ => DiskFault::Full,
            }),
            82..=88 => FaultEvent::Checkpoint,
            89..=93 => FaultEvent::CrashDurable,
            _ => FaultEvent::Mutate,
        };
        events.push((step, ev));
    }
    if cfg.sabotage {
        events.push((cfg.steps / 2, FaultEvent::Sabotage));
        events.sort_by_key(|(step, _)| *step);
    }
    FaultSchedule { events }
}

// ---------------------------------------------------------------------------
// The world
// ---------------------------------------------------------------------------

/// The two-tier corpus side-track: a [`CorpusEngine`] on virtual time
/// plus its own flat shadow (the restricted-judge oracle).
struct CorpusTrack {
    engine: CorpusEngine,
    /// `shadow[id]` mirrors the engine's row `id`, including updates
    /// and appends.
    shadow: Vec<Vec<u8>>,
}

/// The simulated deployment: service, durable track, shadow oracles,
/// and the judged report under construction.
struct SimWorld {
    cfg: SimConfig,
    clock: Arc<SimClock>,
    service: ShardedService,
    /// Independent shadow of the served corpus (the answer oracle).
    shadow: Vec<Vec<u8>>,
    encoding: Encoding,
    io_timeout: Duration,
    queue_capacity: usize,
    /// Durable write-ahead track on fault-injecting in-memory storage.
    durable: DurableEngine,
    disk: MemStorage,
    /// Durable rows at sim start (the replay base of generation 0).
    base_rows: Vec<Vec<u8>>,
    /// Every durable mutation issued, in journal order.
    history: Vec<(usize, Vec<u8>)>,
    /// `history` length at each committed checkpoint generation.
    ops_at_gen: HashMap<u64, usize>,
    /// Corrupt the next complete answer (sabotage self-test).
    sabotage_armed: bool,
    /// A request deferred by a reorder fault, plus its arrival time.
    deferred: Option<(Vec<u8>, crate::clock::Timestamp)>,
    /// Two-tier corpus side-track (`cfg.corpus_rows > 0`).
    corpus: Option<CorpusTrack>,
    report: SimReport,
}

impl SimWorld {
    fn new(cfg: &SimConfig) -> Result<Self, ServeError> {
        let clock = SimClock::new();
        let serve_cfg = cfg.serve_config();
        let corpus = derive_corpus(cfg, serve_cfg.array.encoding);
        let (service, _shard_disks) =
            ShardedService::new_sim(&serve_cfg, &corpus, Clock::sim(&clock))?;

        let durable_rows = cfg.durable_rows.min(cfg.rows).max(1);
        let disk = MemStorage::new();
        let store = CheckpointStore::open_with("/sim/durable", Arc::new(disk.clone()))?;
        let array = ArrayConfig::paper_default()
            .with_stages(cfg.stages)
            .with_rows(durable_rows);
        let mut engine = crate::runtime::ResilientEngine::new(
            array,
            crate::resilience::ResilienceConfig::default(),
            cfg.durable_runtime(),
        )
        .map_err(ServeError::Sim)?
        .with_clock(Clock::sim(&clock));
        let base_rows: Vec<Vec<u8>> = corpus[..durable_rows].to_vec();
        for (row, values) in base_rows.iter().enumerate() {
            engine.store(row, values).map_err(ServeError::Sim)?;
        }
        let durable = DurableEngine::new(store, engine).map_err(ServeError::Store)?;
        let mut ops_at_gen = HashMap::new();
        ops_at_gen.insert(durable.generation(), 0);

        let corpus_track = if cfg.corpus_rows > 0 {
            let rows = derive_clustered_rows(cfg, serve_cfg.array.encoding);
            let mut builder = CorpusBuilder::new(cfg.corpus_config()).map_err(ServeError::Sim)?;
            builder.append_rows(&rows).map_err(ServeError::Sim)?;
            let engine = builder
                .build_with_clock(Clock::sim(&clock))
                .map_err(ServeError::Sim)?;
            Some(CorpusTrack {
                engine,
                shadow: rows,
            })
        } else {
            None
        };

        Ok(Self {
            cfg: *cfg,
            clock,
            service,
            shadow: corpus,
            encoding: serve_cfg.array.encoding,
            io_timeout: serve_cfg.io_timeout,
            queue_capacity: serve_cfg.queue_capacity,
            durable,
            disk,
            base_rows,
            history: Vec::new(),
            ops_at_gen,
            sabotage_armed: false,
            deferred: None,
            corpus: corpus_track,
            report: SimReport::default(),
        })
    }

    fn fail(&mut self, step: usize, what: String) {
        self.report.failures.push(SimFailure { step, what });
    }

    /// Applies one scheduled event at the start of a step.
    fn apply_event(&mut self, step: usize, ev: FaultEvent, net: &mut Vec<FrameFault>) {
        let shards = self.cfg.shards();
        match ev {
            FaultEvent::Net(f) => net.push(f),
            FaultEvent::CrashShard(s) => {
                self.service.inject_crash(s % shards);
                self.report.shard_crashes += 1;
            }
            FaultEvent::SlowShard { shard, millis } => {
                self.service.inject_slow(
                    shard % shards,
                    Some(Duration::from_millis(u64::from(millis))),
                );
            }
            FaultEvent::ClearSlow(s) => self.service.inject_slow(s % shards, None),
            FaultEvent::AgeShards { seconds } => {
                let lifetime = Lifetime {
                    seconds: f64::from(seconds),
                    ..Lifetime::fresh()
                };
                for s in 0..shards {
                    if let Err(e) = self.service.age_shard(s, &lifetime) {
                        self.fail(step, format!("aging shard {s} failed: {e}"));
                    }
                }
                self.report.ages += 1;
            }
            FaultEvent::Scrub => {
                if let Err(e) = self.service.scrub_all() {
                    self.fail(step, format!("forced scrub failed: {e}"));
                }
                self.report.scrubs += 1;
            }
            FaultEvent::Drift(s) => {
                // Harsh retention curve: 0.03 V/decade over 1e10 s bakes
                // the window to 0.70 — inside the heal band (monitors
                // trip, decode usually still correct). The paired scrub
                // heals every row whose margin trips; the refresh below
                // rewrites the rest, because programming variation puts
                // some outer cells close enough to the decode boundary
                // that margin-ok residue is not safe to keep serving.
                let shard = s % shards;
                let lifetime = Lifetime {
                    seconds: 1e10,
                    retention: RetentionParams {
                        loss_per_decade: 0.03,
                        t0: 1.0,
                    },
                    ..Lifetime::fresh()
                };
                if let Err(e) = self.service.age_shard(shard, &lifetime) {
                    self.fail(step, format!("drifting shard {shard} failed: {e}"));
                }
                if let Err(e) = self.service.scrub_all() {
                    self.fail(step, format!("post-drift scrub failed: {e}"));
                }
                // Operator-style refresh of the alarmed shard: re-store
                // its rows from the shadow so no contracted residue is
                // left answering queries. Values are unchanged, so the
                // shadow, durable track, and history stay untouched.
                let lo = shard * self.cfg.rows_per_shard;
                let hi = ((shard + 1) * self.cfg.rows_per_shard).min(self.cfg.rows);
                for row in lo..hi {
                    let values = self.shadow[row].clone();
                    if let Err(e) = self.service.store_row(row, &values) {
                        self.fail(step, format!("post-drift refresh of row {row} failed: {e}"));
                    }
                }
                let _ = self.service.commit_shard(shard);
                self.report.drifts += 1;
                self.report.scrubs += 1;
            }
            FaultEvent::Mutate => self.apply_mutation(step),
            FaultEvent::Burst(_) => {} // consumed by the request path
            FaultEvent::Disk(fault) => {
                self.disk.inject(fault);
                self.report.disk_faults += 1;
            }
            FaultEvent::Checkpoint => {
                // An injected disk fault may refuse the commit; the old
                // generation stays authoritative — not a violation.
                if let Ok(gen) = self.durable.checkpoint() {
                    self.ops_at_gen.insert(gen, self.history.len());
                    self.report.checkpoints += 1;
                }
            }
            FaultEvent::CrashDurable => self.crash_durable(step),
            FaultEvent::Sabotage => self.sabotage_armed = true,
        }
    }

    /// One live mutation: values derived from `(seed, step)` so the
    /// mutation stream is schedule-independent (stable under shrink).
    fn apply_mutation(&mut self, step: usize) {
        let levels = u64::from(self.encoding.levels());
        let h = splitmix(self.cfg.seed ^ 0x4D55_7473 ^ ((step as u64) << 1));
        let row = (h % self.cfg.rows as u64) as usize;
        let values: Vec<u8> = (0..self.cfg.stages)
            .map(|j| (splitmix(h ^ (j as u64 + 1)) % levels) as u8)
            .collect();
        if let Err(e) = self.service.store_row(row, &values) {
            self.fail(step, format!("live mutation of row {row} failed: {e}"));
            return;
        }
        // Keep the mutated shard's standby checkpoint current, so a
        // later failover can still pass its known-answer probes.
        let (shard, _) = self.service.map().locate(row);
        let _ = self.service.commit_shard(shard);
        self.shadow[row] = values.clone();
        self.report.mutations += 1;
        if row < self.base_rows.len() {
            // Mirror on the durable track (group-committed WAL write).
            // A one-shot injected disk fault may surface here; the
            // record stays buffered and lands on the next flush, so it
            // is still part of the issued history.
            let _ = self.durable.store_buffered(row, &values);
            self.history.push((row, values));
        }
        self.mutate_corpus(step, h);
    }

    /// Churns the corpus side-track under the same mutation event: one
    /// row update plus one append, derived from the mutation's hash
    /// stream and mirrored in the track's shadow. Updates invalidate
    /// (surgically repack) resident snapshots; appends can grow a shard
    /// past its packed capacity and force a recompile — both paths the
    /// restricted judge must then re-verify.
    fn mutate_corpus(&mut self, step: usize, h: u64) {
        let Some(mut track) = self.corpus.take() else {
            return;
        };
        let levels = u64::from(self.encoding.levels());
        let hc = splitmix(h ^ 0xC0_4412);
        let id = (hc % track.shadow.len() as u64) as usize;
        let updated: Vec<u8> = (0..self.cfg.stages)
            .map(|j| (splitmix(hc ^ (j as u64 + 1)) % levels) as u8)
            .collect();
        let appended: Vec<u8> = (0..self.cfg.stages)
            .map(|j| (splitmix(hc ^ 0xA9 ^ (j as u64 + 1)) % levels) as u8)
            .collect();
        let mut faults = Vec::new();
        match track.engine.update_row(id, &updated) {
            Ok(()) => track.shadow[id] = updated,
            Err(e) => faults.push(format!("corpus update of row {id} failed: {e}")),
        }
        match track.engine.append_row(&appended) {
            Ok(_) => track.shadow.push(appended),
            Err(e) => faults.push(format!("corpus append failed: {e}")),
        }
        self.corpus = Some(track);
        self.report.corpus_mutations += 1;
        for what in faults {
            self.fail(step, what);
        }
    }

    /// One corpus-tier step: a pre-filtered search judged by brute
    /// force restricted to the probed shards — the exact re-rank
    /// contract, held under snapshot-cache churn and live mutation.
    fn corpus_step(&mut self, step: usize) {
        let Some(mut track) = self.corpus.take() else {
            return;
        };
        let levels = u64::from(self.encoding.levels());
        let (query, k) = derive_corpus_query(&self.cfg, &track.shadow, step, levels);
        let outcome = corpus_judge(self.encoding, &mut track, &query, k);
        self.corpus = Some(track);
        self.report.corpus_judged += 1;
        if let Err(what) = outcome {
            self.fail(step, what);
        }
    }

    /// Power loss + recovery of the durable track, then the durability
    /// judge: the recovered state must be a bit-exact prefix of the
    /// issued history.
    fn crash_durable(&mut self, step: usize) {
        self.disk.crash();
        let store = match CheckpointStore::open_with("/sim/durable", Arc::new(self.disk.clone())) {
            Ok(s) => s,
            Err(e) => {
                self.fail(step, format!("durable store reopen failed: {e}"));
                return;
            }
        };
        let recovered =
            DurableEngine::recover_with(store, self.cfg.durable_runtime(), Clock::sim(&self.clock));
        let (engine, rep) = match recovered {
            Ok(pair) => pair,
            Err(e) => {
                self.fail(step, format!("durable recovery failed: {e}"));
                return;
            }
        };
        let Some(&offset) = self.ops_at_gen.get(&rep.generation) else {
            self.fail(
                step,
                format!("recovered unknown checkpoint generation {}", rep.generation),
            );
            return;
        };
        let n = offset + rep.ops_replayed;
        if n > self.history.len() {
            self.fail(
                step,
                format!(
                    "recovery replayed {n} ops but only {} were issued",
                    self.history.len()
                ),
            );
            return;
        }
        let mut expected = self.base_rows.clone();
        for (row, values) in &self.history[..n] {
            expected[*row] = values.clone();
        }
        for (row, want) in expected.iter().enumerate() {
            let got = engine
                .engine()
                .array()
                .physical_row(row)
                .and_then(|phys| engine.engine().array().array().stored(phys));
            match got {
                Ok(got) if &got == want => {}
                Ok(got) => self.fail(
                    step,
                    format!("durable row {row} recovered as {got:?}, expected {want:?}"),
                ),
                Err(e) => self.fail(step, format!("durable row {row} unreadable: {e}")),
            }
        }
        // Ops past the replayed prefix were never durable: they are
        // permanently lost, and the oracle forgets them with the world.
        self.history.truncate(n);
        let len = self.history.len();
        self.ops_at_gen.retain(|_, &mut at| at <= len);
        self.durable = engine;
        self.report.durable_crashes += 1;
    }

    /// Runs one client request step: draw the query, push it through
    /// the byte-level wire pipeline (with this step's network faults),
    /// serve, and judge the decoded answer.
    fn run_step_with_faults(&mut self, step: usize, net: &[FrameFault], burst: u32) {
        // A request deferred by an earlier reorder is delivered first,
        // fault-free, and judged against the *current* shadow.
        if let Some((frame, arrived)) = self.deferred.take() {
            self.deliver(step, frame, arrived, false, 0, &[]);
        }

        let levels = u64::from(self.encoding.levels());
        let (query, k) = derive_query(&self.cfg, &self.shadow, step, levels);
        let request = Request::Query {
            query,
            k,
            deadline_us: REQUEST_DEADLINE.as_micros() as u64,
        };
        let mut frame = Vec::new();
        write_frame(&mut frame, &request.encode()).expect("Vec sink cannot fail");

        let mut tampered = false;
        let mut duplicate = false;
        for ev in net {
            match *ev {
                FrameFault::TruncateRequest { keep_num } => {
                    let keep = frame.len() * usize::from(keep_num) / 256;
                    frame.truncate(keep);
                }
                FrameFault::BitflipRequest { bit } => {
                    if !frame.is_empty() {
                        let b = bit as usize % (frame.len() * 8);
                        frame[b / 8] ^= 1 << (b % 8);
                        tampered = true;
                    }
                }
                FrameFault::DuplicateRequest => duplicate = true,
                FrameFault::Stall { millis } => {
                    let stall = Duration::from_millis(u64::from(millis));
                    self.clock.advance(stall);
                    if stall >= self.io_timeout {
                        // The server cuts a peer that stalls past its
                        // I/O budget: the frame never arrives.
                        self.report.transport_errors += 1;
                        return;
                    }
                }
                FrameFault::Reorder => {
                    self.deferred = Some((frame, self.clock.now()));
                    self.report.reorders += 1;
                    return;
                }
                // Reply-direction faults are applied in deliver().
                FrameFault::TruncateReply { .. }
                | FrameFault::BitflipReply { .. }
                | FrameFault::DropReply => {}
            }
        }

        let arrived = self.clock.now();
        self.deliver(step, frame.clone(), arrived, tampered, burst, net);
        if duplicate {
            self.deliver(step, frame, arrived, tampered, burst, net);
        }
    }

    /// Server + client halves of one delivery: frame decode, admission,
    /// scatter-gather, reply encode, reply faults, client decode, judge.
    #[allow(clippy::too_many_lines)]
    fn deliver(
        &mut self,
        step: usize,
        frame: Vec<u8>,
        arrived: crate::clock::Timestamp,
        tampered: bool,
        queued_ahead: u32,
        net: &[FrameFault],
    ) {
        self.report.requests += 1;
        if tampered {
            self.report.tampered += 1;
        }
        // -- server: frame + codec ------------------------------------
        let payload = match read_frame(&mut Cursor::new(frame.as_slice())) {
            // A truncation that ate the whole header reads as a clean
            // EOF: the connection just closed.
            Ok(Some(p)) => p,
            Ok(None) | Err(ServeError::Io(_)) => {
                self.report.transport_errors += 1;
                return;
            }
            Err(_) => {
                self.report.protocol_errors += 1;
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(_) => {
                self.report.protocol_errors += 1;
                return;
            }
        };
        let (query, k, deadline) = match request {
            Request::Query {
                query,
                k,
                deadline_us,
            } => {
                let deadline = if deadline_us == 0 {
                    REQUEST_DEADLINE
                } else {
                    Duration::from_micros(deadline_us)
                };
                (query, k, deadline)
            }
            // A bit-flip can lawfully turn a query into a stats/info
            // request; serve it through the real codec (must not
            // panic), nothing to judge.
            Request::Stats => {
                let reply = Reply::Stats(Box::new(StatsReply {
                    front: Default::default(),
                    service: self.service.service_stats(),
                    shards: self.service.shard_statuses(),
                    corpus: self.service.corpus_status(),
                }));
                let bytes = reply.encode();
                if Reply::decode(&bytes).is_err() {
                    self.fail(step, "stats reply failed its own roundtrip".into());
                }
                return;
            }
            Request::Info => {
                let reply = Reply::Info(InfoReply {
                    stages: self.service.stages(),
                    levels: usize::from(self.encoding.levels()),
                    rows: self.shadow.len(),
                    shards: self.service.map().shards(),
                });
                if Reply::decode(&reply.encode()).is_err() {
                    self.fail(step, "info reply failed its own roundtrip".into());
                }
                return;
            }
        };

        // -- server: admission (queue residency burns the budget) -----
        if queued_ahead as usize >= self.queue_capacity {
            self.reply_to_client(
                step,
                Reply::Overloaded(ShedReason::QueueFull),
                None,
                true,
                net,
            );
            return;
        }
        if queued_ahead > 0 {
            self.clock.advance(QUEUE_TICK * queued_ahead);
        }
        let queued = self.clock.now().saturating_duration_since(arrived);
        let Some(remaining) = deadline.checked_sub(queued).filter(|r| !r.is_zero()) else {
            self.reply_to_client(
                step,
                Reply::Overloaded(ShedReason::DeadlineExpired),
                None,
                true,
                net,
            );
            return;
        };

        // -- server: scatter-gather -----------------------------------
        let reply = match self.service.search_topk(&query, k, remaining) {
            Ok(mut topk) => {
                let complete =
                    !topk.partial && !topk.degraded && topk.shards_answered == topk.shards_total;
                if complete && self.sabotage_armed {
                    // Self-test: corrupt a winning distance. The answer
                    // judge MUST flag this.
                    self.sabotage_armed = false;
                    if let Some(first) = topk.neighbors.first_mut() {
                        first.0 += 1;
                    }
                }
                Reply::TopK(topk)
            }
            Err(ServeError::Overloaded(reason)) => Reply::Overloaded(reason),
            Err(e) => Reply::Error {
                class: e.class(),
                msg: e.to_string(),
            },
        };
        self.reply_to_client(step, reply, Some((query, k)), tampered, net);
    }

    /// Reply path: encode, apply reply-direction faults, client decode,
    /// then the answer judge on complete top-k answers.
    fn reply_to_client(
        &mut self,
        step: usize,
        reply: Reply,
        judged_query: Option<(Vec<u8>, usize)>,
        tampered: bool,
        net: &[FrameFault],
    ) {
        let mut frame = Vec::new();
        write_frame(&mut frame, &reply.encode()).expect("Vec sink cannot fail");
        let mut reply_tampered = tampered;
        for fault in net {
            match *fault {
                FrameFault::TruncateReply { keep_num } => {
                    let keep = frame.len() * usize::from(keep_num) / 256;
                    frame.truncate(keep);
                }
                FrameFault::BitflipReply { bit } if !frame.is_empty() => {
                    let b = bit as usize % (frame.len() * 8);
                    frame[b / 8] ^= 1 << (b % 8);
                    reply_tampered = true;
                }
                FrameFault::DropReply => {
                    self.report.transport_errors += 1;
                    return;
                }
                _ => {}
            }
        }

        // -- client ----------------------------------------------------
        let payload = match read_frame(&mut Cursor::new(frame.as_slice())) {
            Ok(Some(p)) => p,
            Ok(None) | Err(ServeError::Io(_)) => {
                self.report.transport_errors += 1;
                return;
            }
            Err(_) => {
                self.report.protocol_errors += 1;
                return;
            }
        };
        let decoded = match Reply::decode(&payload) {
            Ok(r) => r,
            Err(_) => {
                self.report.protocol_errors += 1;
                return;
            }
        };
        match decoded {
            Reply::TopK(topk) => {
                if topk.partial {
                    self.report.partial += 1;
                } else if topk.degraded {
                    self.report.degraded += 1;
                } else {
                    self.report.complete += 1;
                }
                let complete =
                    !topk.partial && !topk.degraded && topk.shards_answered == topk.shards_total;
                if complete && !reply_tampered {
                    if let Some((query, k)) = judged_query {
                        self.judge(step, &query, k, &topk.neighbors);
                    }
                }
            }
            Reply::Overloaded(_) => self.report.shed += 1,
            Reply::Error { .. } => self.report.server_errors += 1,
            Reply::Stats(_) | Reply::Info(_) => {}
        }
    }

    /// The answer judge: a complete answer must match brute force over
    /// the shadow corpus bit-for-bit.
    fn judge(&mut self, step: usize, query: &[u8], k: usize, got: &[(usize, usize)]) {
        self.report.judged += 1;
        let expected = match brute_force_topk(&self.shadow, self.encoding, query, k) {
            Ok(e) => e,
            Err(e) => {
                self.fail(step, format!("oracle rejected the query: {e}"));
                return;
            }
        };
        if got != expected.as_slice() {
            self.fail(
                step,
                format!(
                    "silent wrong answer: served {got:?}, brute force says {expected:?} \
                     (query {query:?}, k={k})"
                ),
            );
        }
    }

    fn finish(mut self) -> SimReport {
        self.report.failovers = self.service.service_stats().failovers;
        self.report.scrub_heals = self
            .service
            .shard_statuses()
            .iter()
            .map(|s| s.stats.scrub_heals)
            .sum();
        self.report
    }
}

/// Derives the initial corpus from the seed: `rows × stages` elements
/// uniform over the encoding's levels.
fn derive_corpus(cfg: &SimConfig, encoding: Encoding) -> Vec<Vec<u8>> {
    let levels = u64::from(encoding.levels());
    (0..cfg.rows)
        .map(|r| {
            (0..cfg.stages)
                .map(|j| {
                    (splitmix(cfg.seed ^ 0xC0_5EED ^ ((r as u64) << 20 | j as u64)) % levels) as u8
                })
                .collect()
        })
        .collect()
}

/// Derives step `step`'s query (a perturbed shadow row) and `k` — pure
/// in `(seed, step)`, so shrinking the schedule never changes the
/// client workload.
fn derive_query(cfg: &SimConfig, shadow: &[Vec<u8>], step: usize, levels: u64) -> (Vec<u8>, usize) {
    let h = splitmix(cfg.seed ^ 0x9_0E21 ^ (step as u64));
    let row = (h % shadow.len() as u64) as usize;
    let mut query = shadow[row].clone();
    let tweaks = (splitmix(h) % 3) as usize;
    for t in 0..tweaks {
        let hh = splitmix(h ^ (0xA0 + t as u64));
        let j = (hh % query.len() as u64) as usize;
        query[j] = ((u64::from(query[j]) + 1 + hh % (levels - 1)) % levels) as u8;
    }
    let k = 1 + (splitmix(h ^ 0xB0) % 4) as usize;
    (query, k)
}

/// Derives the corpus side-track's rows from the seed: clustered
/// (prototype plus per-element noise) rather than uniform, so the
/// coarse quantizer has real structure to find and the probed shards
/// actually concentrate the near neighbors.
fn derive_clustered_rows(cfg: &SimConfig, encoding: Encoding) -> Vec<Vec<u8>> {
    let levels = u64::from(encoding.levels());
    let protos = (cfg.corpus_rows / 8).max(2) as u64;
    (0..cfg.corpus_rows)
        .map(|r| {
            let p = splitmix(cfg.seed ^ 0xC1 ^ (r as u64)) % protos;
            (0..cfg.stages)
                .map(|j| {
                    let base = splitmix(cfg.seed ^ 0x9807_0770 ^ (p << 20 | j as u64)) % levels;
                    let n = splitmix(cfg.seed ^ 0x0020_715E ^ ((r as u64) << 20 | j as u64));
                    let v = if n % 100 < 20 {
                        (n >> 8) % levels
                    } else {
                        base
                    };
                    v as u8
                })
                .collect()
        })
        .collect()
}

/// Derives step `step`'s corpus-tier query (a perturbed stored row)
/// and `k` — pure in `(seed, step)`, like [`derive_query`], so the
/// side-track's workload is stable under schedule shrinking.
fn derive_corpus_query(
    cfg: &SimConfig,
    shadow: &[Vec<u8>],
    step: usize,
    levels: u64,
) -> (Vec<u8>, usize) {
    let h = splitmix(cfg.seed ^ 0xC0_9E21 ^ (step as u64));
    let row = (h % shadow.len() as u64) as usize;
    let mut query = shadow[row].clone();
    let tweaks = (splitmix(h) % 3) as usize;
    for t in 0..tweaks {
        let hh = splitmix(h ^ (0xC0 + t as u64));
        let j = (hh % query.len() as u64) as usize;
        query[j] = ((u64::from(query[j]) + 1 + hh % (levels - 1)) % levels) as u8;
    }
    let k = 1 + (splitmix(h ^ 0xD0) % 4) as usize;
    (query, k)
}

/// The corpus-tier judge: the two-tier answer must equal brute force
/// restricted to the probed shards, bit-for-bit. Returns the violation
/// description on mismatch.
fn corpus_judge(
    encoding: Encoding,
    track: &mut CorpusTrack,
    query: &[u8],
    k: usize,
) -> Result<(), String> {
    let (got, probed) = track
        .engine
        .search_topk_probed(query, k)
        .map_err(|e| format!("corpus search failed: {e}"))?;
    let mut expected = Vec::new();
    for &c in &probed {
        for &id in track.engine.shard_ids(c) {
            let id = id as usize;
            let d = encoding
                .hamming(&track.shadow[id], query)
                .map_err(|e| format!("corpus oracle rejected row {id}: {e}"))?;
            expected.push((d, id));
        }
    }
    expected.sort_unstable();
    expected.truncate(k);
    if got == expected {
        Ok(())
    } else {
        Err(format!(
            "corpus tier answered {got:?}, restricted brute force says {expected:?} \
             (probed shards {probed:?}, k={k})"
        ))
    }
}

// ---------------------------------------------------------------------------
// Run / replay / shrink
// ---------------------------------------------------------------------------

/// Runs one world under an explicit schedule. Pure: the same
/// `(cfg, schedule)` always returns the same report.
///
/// # Errors
///
/// [`ServeError`] only for world-construction failures (bad geometry);
/// judged violations land in the report's `failures`, not here.
pub fn run_with_schedule(
    cfg: &SimConfig,
    schedule: &FaultSchedule,
) -> Result<SimReport, ServeError> {
    let mut world = SimWorld::new(cfg)?;
    for step in 0..cfg.steps {
        let mut net = Vec::new();
        let mut burst = 0u32;
        for (at, ev) in &schedule.events {
            if *at == step {
                if let FaultEvent::Burst(extra) = ev {
                    burst = *extra;
                }
                world.apply_event(step, *ev, &mut net);
            }
        }
        world.clock.advance(STEP_TICK);
        world.report.steps += 1;
        world.run_step_with_faults(step, &net, burst);
        world.corpus_step(step);
    }
    Ok(world.finish())
}

/// Runs one world from its seed (schedule generated internally).
///
/// # Errors
///
/// As [`run_with_schedule`].
pub fn run_sim(cfg: &SimConfig) -> Result<SimReport, ServeError> {
    run_with_schedule(cfg, &generate_schedule(cfg))
}

/// Greedy event-deletion shrinking (ddmin-style): repeatedly delete
/// chunks of events, keeping any deletion that still reproduces a
/// failure, until single-event deletions stop helping.
///
/// # Errors
///
/// As [`run_with_schedule`].
pub fn shrink(cfg: &SimConfig, schedule: &FaultSchedule) -> Result<FaultSchedule, ServeError> {
    let mut events = schedule.events.clone();
    let mut chunk = (events.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < events.len() {
            let mut candidate = events.clone();
            let end = (i + chunk).min(candidate.len());
            candidate.drain(i..end);
            let trial = FaultSchedule { events: candidate };
            if run_with_schedule(cfg, &trial)?.failed() {
                events = trial.events;
                reduced = true;
            } else {
                i += chunk;
            }
        }
        if chunk > 1 {
            chunk = (chunk / 2).max(1);
        } else if !reduced {
            break;
        }
    }
    Ok(FaultSchedule { events })
}

/// The top-level entry point behind `tdam-sim simulate --seed N`: run
/// the seed's world, and on failure verify determinism (replay twice)
/// and emit a minimized schedule artifact.
///
/// # Errors
///
/// As [`run_with_schedule`].
pub fn simulate(cfg: &SimConfig) -> Result<SimOutcome, ServeError> {
    let schedule = generate_schedule(cfg);
    let report = run_with_schedule(cfg, &schedule)?;
    if !report.failed() {
        return Ok(SimOutcome {
            report,
            schedule,
            failure: None,
        });
    }
    let replay = run_with_schedule(cfg, &schedule)?;
    let replay_consistent = replay == report;
    let minimized = shrink(cfg, &schedule)?;
    let minimized_report = run_with_schedule(cfg, &minimized)?;
    let first_failure = minimized_report
        .failures
        .first()
        .cloned()
        .unwrap_or_else(|| report.failures[0].clone());
    Ok(SimOutcome {
        failure: Some(FailureArtifact {
            seed: cfg.seed,
            original_events: schedule.events.len(),
            minimized,
            first_failure,
            replay_consistent,
        }),
        report,
        schedule,
    })
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// Aggregate outcome of a multi-seed campaign.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimCampaignReport {
    /// Scenarios run.
    pub scenarios: usize,
    /// Total requests delivered.
    pub requests: usize,
    /// Complete, judged-exact answers.
    pub complete: usize,
    /// Honestly flagged partial/degraded answers.
    pub flagged: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Wire-level delivery failures.
    pub transport_errors: usize,
    /// Protocol violations detected by the codec.
    pub protocol_errors: usize,
    /// Live mutations applied.
    pub mutations: usize,
    /// Serving-shard crashes injected.
    pub shard_crashes: usize,
    /// Durable power losses survived.
    pub durable_crashes: usize,
    /// Aging events applied.
    pub ages: usize,
    /// Deep margin-drift events applied (age + paired heal scrub).
    pub drifts: usize,
    /// Standby failovers performed.
    pub failovers: usize,
    /// Retention-scrub heals.
    pub scrub_heals: usize,
    /// Answers judged against brute force.
    pub judged: usize,
    /// Corpus-tier answers judged against restricted brute force.
    pub corpus_judged: usize,
    /// Corpus-tier mutations applied.
    pub corpus_mutations: usize,
    /// Seeds whose run recorded a violation (must be empty).
    pub failing_seeds: Vec<u64>,
}

/// Runs `scenarios` independent worlds with seeds derived from
/// `base_seed`, aggregating their reports. Every failing seed is
/// recorded for replay via [`simulate`].
///
/// # Errors
///
/// As [`run_with_schedule`].
pub fn run_sim_campaign(
    template: &SimConfig,
    base_seed: u64,
    scenarios: usize,
) -> Result<SimCampaignReport, ServeError> {
    let mut agg = SimCampaignReport::default();
    for i in 0..scenarios {
        let mut cfg = *template;
        cfg.seed = splitmix(base_seed ^ (i as u64));
        let report = run_sim(&cfg)?;
        agg.scenarios += 1;
        agg.requests += report.requests;
        agg.complete += report.complete;
        agg.flagged += report.partial + report.degraded;
        agg.shed += report.shed;
        agg.transport_errors += report.transport_errors;
        agg.protocol_errors += report.protocol_errors;
        agg.mutations += report.mutations;
        agg.shard_crashes += report.shard_crashes;
        agg.durable_crashes += report.durable_crashes;
        agg.ages += report.ages;
        agg.drifts += report.drifts;
        agg.failovers += report.failovers;
        agg.scrub_heals += report.scrub_heals;
        agg.judged += report.judged;
        agg.corpus_judged += report.corpus_judged;
        agg.corpus_mutations += report.corpus_mutations;
        if report.failed() {
            agg.failing_seeds.push(cfg.seed);
        }
    }
    Ok(agg)
}
