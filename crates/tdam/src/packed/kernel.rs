//! Portable block kernels of the packed mismatch counter: the plain
//! scalar reference and the hand-unrolled multi-row variant, plus the
//! dispatch point that routes a row block to the selected
//! [`PackedKernel`] rung.
//!
//! All kernels compute the same pure integer function over the
//! row-transposed lane layout (see the [module docs](super)): for every
//! row `r` in `[r0, r1)` and the one query whose bit planes are in `q`,
//!
//! ```text
//! diff_w  = OR over bits b of (lanes[(w·bits + b)·rows_pad + r] XOR q[b·words + w])
//! even[r] = Σ_w popcount(diff_w AND even_mask[w])
//! odd[r]  = Σ_w popcount(diff_w AND odd_mask[w])
//! ```
//!
//! Because the outputs are exact integer popcounts, every rung of the
//! ladder is **bit-identical** by construction — the rungs differ only
//! in how many rows they carry per loop iteration (1, 4, or a full
//! SIMD register). `tests/packed_equiv.rs` pins this across the ladder.

use super::PackedKernel;

/// Row-group granularity of the lane layout: `rows_pad` is always a
/// multiple of this, so every kernel may assume it can read `LANES`
/// consecutive rows of any `(word, bit)` plane without a tail check.
/// Sized for the widest register path (AVX-512: eight 64-bit lanes).
pub(super) const LANES: usize = 8;

/// Borrowed geometry + storage of one packed array, handed to the block
/// kernels so their signatures stay flat.
///
/// Invariants the kernels rely on (upheld by [`super::PackedArray::build`]):
/// `lanes.len() == bits·words·rows_pad`, `rows_pad % LANES == 0`, and
/// `even_mask.len() == odd_mask.len() == words`. Lane words of padding
/// rows (`rows >= real rows`) are zero and their counts are never read.
pub(super) struct KernelArgs<'a> {
    pub lanes: &'a [u64],
    pub even_mask: &'a [u64],
    pub odd_mask: &'a [u64],
    pub bits: usize,
    pub words: usize,
    pub rows_pad: usize,
}

/// Routes one `[r0, r1)` row block (both multiples of [`LANES`]) of one
/// query to the selected kernel rung. A `Simd` selection on a build
/// without the `simd` feature (or a non-x86_64 target) degrades to the
/// unrolled rung — [`PackedKernel::detect`] never selects it there, but
/// a deserialized or forced selection must stay safe.
pub(super) fn mismatch_block(
    kernel: PackedKernel,
    args: &KernelArgs<'_>,
    q: &[u64],
    r0: usize,
    r1: usize,
    even: &mut [u32],
    odd: &mut [u32],
) {
    debug_assert!(r0.is_multiple_of(LANES) && r1.is_multiple_of(LANES) && r1 <= args.rows_pad);
    debug_assert_eq!(q.len(), args.bits * args.words);
    match kernel {
        PackedKernel::Scalar => scalar_block(args, q, r0, r1, even, odd),
        PackedKernel::Unrolled => unrolled_block(args, q, r0, r1, even, odd),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        PackedKernel::Simd => super::simd::block(args, q, r0, r1, even, odd),
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        PackedKernel::Simd => unrolled_block(args, q, r0, r1, even, odd),
    }
}

/// Plain scalar rung: one row per iteration, the direct transcription of
/// the counting function above. This is the shape the PR-5 kernel ran
/// for every row and the reference the wider rungs are benched against.
pub(super) fn scalar_block(
    args: &KernelArgs<'_>,
    q: &[u64],
    r0: usize,
    r1: usize,
    even: &mut [u32],
    odd: &mut [u32],
) {
    let KernelArgs {
        lanes,
        even_mask,
        odd_mask,
        bits,
        words,
        rows_pad,
    } = *args;
    for r in r0..r1 {
        let mut e = 0u32;
        let mut o = 0u32;
        for w in 0..words {
            let mut diff = 0u64;
            for b in 0..bits {
                diff |= lanes[(w * bits + b) * rows_pad + r] ^ q[b * words + w];
            }
            e += (diff & even_mask[w]).count_ones();
            o += (diff & odd_mask[w]).count_ones();
        }
        even[r] = e;
        odd[r] = o;
    }
}

/// Hand-unrolled rung: four rows per iteration with independent
/// accumulators, so the XOR/OR/popcount chains of neighboring rows
/// overlap in the pipeline instead of serializing on one accumulator.
/// Works on any target; this is the fallback when the `simd` feature is
/// off or the CPU offers no wide path.
pub(super) fn unrolled_block(
    args: &KernelArgs<'_>,
    q: &[u64],
    r0: usize,
    r1: usize,
    even: &mut [u32],
    odd: &mut [u32],
) {
    let KernelArgs {
        lanes,
        even_mask,
        odd_mask,
        bits,
        words,
        rows_pad,
    } = *args;
    // LANES == 8 keeps r1 - r0 a multiple of 4; no scalar tail needed.
    let mut r = r0;
    while r < r1 {
        let (mut e0, mut e1, mut e2, mut e3) = (0u32, 0u32, 0u32, 0u32);
        let (mut o0, mut o1, mut o2, mut o3) = (0u32, 0u32, 0u32, 0u32);
        for w in 0..words {
            let (mut d0, mut d1, mut d2, mut d3) = (0u64, 0u64, 0u64, 0u64);
            for b in 0..bits {
                let base = (w * bits + b) * rows_pad + r;
                let qw = q[b * words + w];
                d0 |= lanes[base] ^ qw;
                d1 |= lanes[base + 1] ^ qw;
                d2 |= lanes[base + 2] ^ qw;
                d3 |= lanes[base + 3] ^ qw;
            }
            let em = even_mask[w];
            let om = odd_mask[w];
            e0 += (d0 & em).count_ones();
            e1 += (d1 & em).count_ones();
            e2 += (d2 & em).count_ones();
            e3 += (d3 & em).count_ones();
            o0 += (d0 & om).count_ones();
            o1 += (d1 & om).count_ones();
            o2 += (d2 & om).count_ones();
            o3 += (d3 & om).count_ones();
        }
        even[r] = e0;
        even[r + 1] = e1;
        even[r + 2] = e2;
        even[r + 3] = e3;
        odd[r] = o0;
        odd[r + 1] = o1;
        odd[r + 2] = o2;
        odd[r + 3] = o3;
        r += 4;
    }
}
