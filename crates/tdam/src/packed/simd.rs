//! Explicit wide-register rung of the packed kernel (x86_64, `simd`
//! feature): AVX-512 with native 64-bit popcount when the CPU has it,
//! AVX2 with a byte-shuffle popcount otherwise.
//!
//! `std::simd` is still nightly-only, so the portable-SIMD shape the
//! roadmap sketched is realized with stable `core::arch` intrinsics
//! plus runtime dispatch instead: [`available`]/[`name`] consult
//! `is_x86_feature_detected!` (a cached atomic read), and the ladder
//! ([`super::PackedKernel`]) only routes here when a wide path exists.
//!
//! # Safety
//!
//! The `unsafe` in this module is exactly the two `#[target_feature]`
//! block kernels and their helpers. The invariants that make every call
//! sound:
//!
//! - **ISA**: [`block`] calls a `#[target_feature]` function only after
//!   the matching `is_x86_feature_detected!` check on this process.
//! - **Bounds**: callers pass `r0`/`r1` as multiples of
//!   [`LANES`](super::kernel::LANES) with `r1 <= rows_pad`, and
//!   [`KernelArgs`] guarantees `lanes.len() == bits·words·rows_pad` —
//!   so every `LANES`-row load `lanes[(w·bits + b)·rows_pad + r ..]`
//!   stays in bounds, as do the `count` stores into `even`/`odd`
//!   (length `rows_pad`). Debug builds re-assert both.
//! - **Alignment**: none assumed — all accesses use `loadu`/`storeu`.
//!
//! Both paths compute the same exact integer popcounts as the scalar
//! rung (`tests/packed_equiv.rs` pins bit-identity across the ladder).

#![cfg(all(feature = "simd", target_arch = "x86_64"))]
// The one sanctioned exception to the crate's `deny(unsafe_code)`: the
// `#[target_feature]` kernels below, governed by the safety contract in
// the module docs above.
#![allow(unsafe_code)]

use super::kernel::KernelArgs;
use std::arch::is_x86_feature_detected;
use std::arch::x86_64::*;

/// Whether this CPU offers a wide path (AVX-512 VPOPCNTDQ or AVX2).
pub(super) fn available() -> bool {
    (is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq"))
        || is_x86_feature_detected!("avx2")
}

/// Human-readable name of the wide path the dispatcher would take.
pub(super) fn name() -> &'static str {
    if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq") {
        "avx512"
    } else if is_x86_feature_detected!("avx2") {
        "avx2"
    } else {
        "simd-unavailable"
    }
}

/// Dispatches one row block to the widest available path; degrades to
/// the unrolled scalar rung if neither is detected (unreachable through
/// [`super::PackedKernel::detect`], but a forced selection must not be
/// undefined behavior).
pub(super) fn block(
    args: &KernelArgs<'_>,
    q: &[u64],
    r0: usize,
    r1: usize,
    even: &mut [u32],
    odd: &mut [u32],
) {
    if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq") {
        // SAFETY: ISA presence just checked; bounds per the module-level
        // safety contract (LANES-aligned r0/r1 within rows_pad).
        unsafe { block_avx512(args, q, r0, r1, even, odd) }
    } else if is_x86_feature_detected!("avx2") {
        // SAFETY: as above, for the AVX2 path.
        unsafe { block_avx2(args, q, r0, r1, even, odd) }
    } else {
        super::kernel::unrolled_block(args, q, r0, r1, even, odd);
    }
}

/// AVX-512 path: eight rows per iteration, one `VPOPCNTQ` per parity
/// mask per word. Counts accumulate per-lane as 64-bit integers and are
/// narrowed to the `u32` output buffers with `VPMOVQD`.
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn block_avx512(
    args: &KernelArgs<'_>,
    q: &[u64],
    r0: usize,
    r1: usize,
    even: &mut [u32],
    odd: &mut [u32],
) {
    let KernelArgs {
        lanes,
        even_mask,
        odd_mask,
        bits,
        words,
        rows_pad,
    } = *args;
    debug_assert!(r0.is_multiple_of(8) && r1.is_multiple_of(8) && r1 <= rows_pad);
    debug_assert!(lanes.len() == bits * words * rows_pad);
    debug_assert!(even.len() >= rows_pad && odd.len() >= rows_pad);
    let lanes_ptr = lanes.as_ptr();
    let mut r = r0;
    while r < r1 {
        let mut acc_e = _mm512_setzero_si512();
        let mut acc_o = _mm512_setzero_si512();
        for w in 0..words {
            let mut diff = _mm512_setzero_si512();
            for b in 0..bits {
                let v =
                    _mm512_loadu_si512(lanes_ptr.add((w * bits + b) * rows_pad + r) as *const _);
                let qv = _mm512_set1_epi64(q[b * words + w] as i64);
                diff = _mm512_or_si512(diff, _mm512_xor_si512(v, qv));
            }
            let em = _mm512_set1_epi64(even_mask[w] as i64);
            let om = _mm512_set1_epi64(odd_mask[w] as i64);
            acc_e = _mm512_add_epi64(acc_e, _mm512_popcnt_epi64(_mm512_and_si512(diff, em)));
            acc_o = _mm512_add_epi64(acc_o, _mm512_popcnt_epi64(_mm512_and_si512(diff, om)));
        }
        _mm256_storeu_si256(
            even.as_mut_ptr().add(r) as *mut _,
            _mm512_cvtepi64_epi32(acc_e),
        );
        _mm256_storeu_si256(
            odd.as_mut_ptr().add(r) as *mut _,
            _mm512_cvtepi64_epi32(acc_o),
        );
        r += 8;
    }
}

/// AVX2 path: four rows per iteration; 64-bit popcount built from the
/// classic nibble-lookup byte shuffle (`PSHUFB` against a 0..=4 table)
/// folded to per-lane sums with `PSADBW`.
#[target_feature(enable = "avx2")]
unsafe fn block_avx2(
    args: &KernelArgs<'_>,
    q: &[u64],
    r0: usize,
    r1: usize,
    even: &mut [u32],
    odd: &mut [u32],
) {
    let KernelArgs {
        lanes,
        even_mask,
        odd_mask,
        bits,
        words,
        rows_pad,
    } = *args;
    debug_assert!(r0.is_multiple_of(4) && r1.is_multiple_of(4) && r1 <= rows_pad);
    debug_assert!(lanes.len() == bits * words * rows_pad);
    debug_assert!(even.len() >= rows_pad && odd.len() >= rows_pad);
    let lanes_ptr = lanes.as_ptr();
    let mut r = r0;
    while r < r1 {
        let mut acc_e = _mm256_setzero_si256();
        let mut acc_o = _mm256_setzero_si256();
        for w in 0..words {
            let mut diff = _mm256_setzero_si256();
            for b in 0..bits {
                let v =
                    _mm256_loadu_si256(lanes_ptr.add((w * bits + b) * rows_pad + r) as *const _);
                let qv = _mm256_set1_epi64x(q[b * words + w] as i64);
                diff = _mm256_or_si256(diff, _mm256_xor_si256(v, qv));
            }
            let em = _mm256_set1_epi64x(even_mask[w] as i64);
            let om = _mm256_set1_epi64x(odd_mask[w] as i64);
            acc_e = _mm256_add_epi64(acc_e, popcnt_epi64(_mm256_and_si256(diff, em)));
            acc_o = _mm256_add_epi64(acc_o, popcnt_epi64(_mm256_and_si256(diff, om)));
        }
        let mut tmp = [0u64; 4];
        _mm256_storeu_si256(tmp.as_mut_ptr() as *mut _, acc_e);
        for (l, &c) in tmp.iter().enumerate() {
            even[r + l] = c as u32;
        }
        _mm256_storeu_si256(tmp.as_mut_ptr() as *mut _, acc_o);
        for (l, &c) in tmp.iter().enumerate() {
            odd[r + l] = c as u32;
        }
        r += 4;
    }
}

/// Per-64-bit-lane popcount without `VPOPCNTQ`: split each byte into
/// nibbles, look both up in a 16-entry popcount table with `PSHUFB`,
/// and sum the per-byte counts into each 64-bit lane with `PSADBW`.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn popcnt_epi64(v: __m256i) -> __m256i {
    let lookup = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low_mask);
    let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
    let counts = _mm256_add_epi8(
        _mm256_shuffle_epi8(lookup, lo),
        _mm256_shuffle_epi8(lookup, hi),
    );
    _mm256_sad_epu8(counts, _mm256_setzero_si256())
}
