//! Bit-sliced packed serving kernel: XOR/popcount mismatch counting with
//! count-indexed delay reconstruction, executed by a dispatch ladder of
//! explicit-SIMD, unrolled, and scalar block kernels over a cache-blocked
//! row-transposed layout.
//!
//! The TD-AM's serving decision reduces to counting per-parity code
//! mismatches per row: a matching stage contributes `d_INV` to its step,
//! a mismatching stage `d_INV + d_C` (see [`crate::chain`]). The scalar
//! compiled path ([`crate::chain::CompiledChain`]) walks ~`stages`
//! dependent f64 LUT loads per row to rediscover that count. This module
//! replaces the walk with a bit-sliced compare:
//!
//! 1. **Packing** — each stored row's ≤4-bit level codes are bit-plane-
//!    packed into `u64` words: bit `j mod 64` of plane word
//!    `planes[row][b][j / 64]` is bit `b` of the level code stored at
//!    stage `j`. A 128-stage 2-bit row shrinks from a 4 KiB f64 LUT to
//!    four words.
//! 2. **Query broadcast** — one query (or a tile of them) expands once
//!    per batch-worker into the same plane layout
//!    ([`PackedArray::expand_query`] / [`PackedArray::expand_tile`]),
//!    then every row reuses the expanded planes.
//! 3. **Kernel** — per row and word: `XOR` the query planes against the
//!    stored planes, `OR` the per-bit differences together (any differing
//!    bit of the level code is one element mismatch), then `count_ones()`
//!    under the even/odd stage-parity masks to get the step-I and step-II
//!    mismatch counts directly ([`PackedArray::mismatch_counts`], or the
//!    single-row reference [`PackedArray::row_mismatches`]).
//! 4. **Reconstruction** — delays, TDC digitization, and energies are
//!    rebuilt from the `(even, odd)` counts via count-indexed tables
//!    built by the same repeated-addition discipline as the scalar path's
//!    cumulative energy tables (`PackedArray::digest`).
//!
//! # Execution: the dispatch ladder and the lane layout
//!
//! Step 3 is the hot loop of the whole serving stack, and it runs on one
//! of three interchangeable **block kernels**, selected per
//! [`PackedArray`] by [`PackedKernel::detect`] (overridable via
//! [`PackedArray::set_kernel`] or the `TDAM_PACKED_KERNEL` environment
//! variable — `simd`, `unrolled`, or `scalar`):
//!
//! 1. [`PackedKernel::Simd`] — explicit wide registers (requires the
//!    `simd` cargo feature; on x86_64 this is AVX-512 `VPOPCNTQ` or AVX2
//!    with a byte-shuffle popcount, chosen by runtime CPU detection).
//!    Carries 8 (AVX-512) or 4 (AVX2) rows per loop iteration.
//! 2. [`PackedKernel::Unrolled`] — portable hand-unrolled scalar, 4 rows
//!    per iteration with independent accumulators.
//! 3. [`PackedKernel::Scalar`] — one row at a time; the reference rung
//!    and the shape the original (PR 5) kernel executed.
//!
//! All rungs compute the same exact integer function, so **every rung is
//! bit-identical** — the dispatch is a pure performance choice, pinned by
//! `tests/packed_equiv.rs`.
//!
//! To let one register carry several *rows*, [`PackedArray::build`] keeps
//! a second, row-transposed copy of the planes (the **lane layout**):
//! `lane_planes[(w·bits + b)·rows_pad + r]`, where `rows_pad` is the row
//! count rounded up to a multiple of 8 (padding rows read as all-zero and
//! their counts are never consumed). For a fixed plane word `(w, b)`,
//! consecutive rows are contiguous, so an 8-row group is one unaligned
//! 512-bit load.
//!
//! Batch serving additionally blocks the loop nest for cache residency
//! (**query-major tiling**): the batch paths
//! ([`CompiledArray::search_batch`](crate::array::CompiledArray::search_batch),
//! [`CompiledArray::decide_batch`](crate::array::CompiledArray::decide_batch))
//! expand a tile of up to 8 queries per work item, and
//! [`PackedArray::mismatch_counts`] walks row blocks (sized to ~16 KiB of
//! lane words, i.e. L1-resident) in the outer loop with the tile's
//! queries in the inner loop — each row block is loaded from memory once
//! per tile instead of once per query. See ARCHITECTURE.md ("SIMD packed
//! kernel") for the tiling diagram and the roofline model that predicts
//! when this matters.
//!
//! # Examples
//!
//! Counting mismatches directly through the packed view (the serving
//! paths normally drive this via `CompiledArray`/`CompiledSnapshot`):
//!
//! ```
//! use std::collections::BTreeSet;
//! use tdam::array::TdamArray;
//! use tdam::config::ArrayConfig;
//! use tdam::engine::SimilarityEngine;
//! use tdam::packed::PackedArray;
//!
//! let cfg = ArrayConfig::paper_default().with_stages(8).with_rows(2);
//! let mut am = TdamArray::new(cfg).unwrap();
//! am.store(0, &[0, 1, 2, 3, 0, 1, 2, 3]).unwrap();
//! am.store(1, &[3, 2, 1, 0, 3, 2, 1, 0]).unwrap();
//!
//! let packed = PackedArray::build(&am, &BTreeSet::new());
//! let mut scratch = packed.scratch();
//! packed.expand_query(&[0, 1, 2, 3, 3, 2, 1, 0], &mut scratch);
//! packed.mismatch_counts(&mut scratch);
//!
//! // Row 0 matches the first four stages and differs in the last four.
//! let (even, odd) = packed.counts(&scratch, 0, 0);
//! assert_eq!((even + odd, even, odd), (4, 2, 2));
//! // Whatever kernel rung ran, the single-row reference agrees exactly.
//! assert_eq!(packed.row_mismatches(0, &scratch), (even, odd));
//! ```
//!
//! # Equivalence contract
//!
//! For rows the behavioral model treats as nominal, the packed kernel's
//! mismatch counts (`mismatches`, `even_mismatches`, `odd_mismatches`),
//! the decoded per-row distances, and therefore the winner selection are
//! **exactly identical** to [`crate::chain::DelayChain::evaluate`] — the
//! counts are integers recovered by exact bitwise arithmetic.
//!
//! The analog delay figures are reconstructed, not accumulated in stage
//! order, so they are **ulp-bounded** rather than bit-identical: the
//! behavioral path sums `N` addends drawn from `{d_INV, d_INV + d_C}` in
//! stage order, which is position-dependent in f64, while the packed path
//! replays one canonical order (all `d_INV` first, then `k` times
//! `d_C`). Both are correctly-rounded sums of the same `N + k` positive
//! terms, so the relative difference is bounded by `2·(N + k)·ε` with
//! `ε = 2⁻⁵²` — about `6e-14` for a 128-stage chain, versus a sensing
//! margin of `d_C / 2` (a relative margin of roughly `1e-2`). The TDC's
//! round-to-nearest decode ([`crate::tdc::CounterTdc::decode_mismatches`])
//! is therefore immune to the reconstruction noise, which is what keeps
//! the decoded distances exact. `tests/packed_equiv.rs` pins the bound.
//!
//! Rows holding variation-perturbed cells cannot be packed (their delay
//! is not a pure function of the mismatch pattern) and keep the full
//! behavioral fallback, exactly like the scalar compiled path.
//!
//! # Masked stages
//!
//! [`PackedArray::build`] accepts a set of masked stages (the digital
//! column masks of [`crate::resilience`]): a masked stage is packed as
//! **always-match** — its bit is cleared from both parity masks, so it
//! contributes zero mismatches and `d_INV` per step regardless of the
//! stored or queried code. A row whose only non-nominal cells sit in
//! masked columns becomes packable again, which is how a stuck column
//! rejoins the fast path after repair masks it off.

use crate::array::RowResult;
use crate::chain::ChainResult;
use crate::encoding::Encoding;
use crate::energy::EnergyBreakdown;
use crate::tdc::CounterTdc;
use crate::timing::StageTiming;
use crate::TdamArray;
use std::collections::BTreeSet;

mod kernel;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd;

use kernel::{KernelArgs, LANES};

/// Cap on the precomputed `(even, odd)` digest table. Above this the
/// digests are computed per row instead — the table would outgrow the
/// cache and lose the point. `(N/2 + 1)²` entries stay under the cap for
/// chains up to 510 stages.
const DIGEST_TABLE_CAP: usize = 1 << 16;

/// Row-block budget of the cache-blocked kernel loop: lane words of one
/// row block stay within roughly half a typical L1d so the block
/// survives being re-walked once per query of a tile.
const ROW_BLOCK_BYTES: usize = 16 * 1024;

/// One rung of the packed kernel's dispatch ladder. See the
/// [module docs](self) — every rung computes bit-identical mismatch
/// counts; they differ only in how many rows one loop iteration carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedKernel {
    /// Explicit wide registers: AVX-512 `VPOPCNTQ` (8 rows/iteration) or
    /// AVX2 with a byte-shuffle popcount (4 rows/iteration), chosen by
    /// runtime CPU detection. Only available when the crate is built
    /// with the `simd` feature on x86_64 **and** the CPU has a wide path
    /// (`std::simd` is nightly-only, so the wide rung is stable
    /// `core::arch` intrinsics behind runtime detection instead).
    Simd,
    /// Portable hand-unrolled scalar: 4 rows per iteration with
    /// independent accumulators. Always available; the default when the
    /// wide rung is not.
    Unrolled,
    /// Plain one-row-at-a-time scalar — the reference rung (and the
    /// shape of the original PR-5 kernel), kept selectable for tests and
    /// benchmarks.
    Scalar,
}

impl PackedKernel {
    /// Whether this rung can execute in this build on this CPU.
    /// [`PackedKernel::Scalar`] and [`PackedKernel::Unrolled`] always
    /// can; [`PackedKernel::Simd`] requires the `simd` feature, x86_64,
    /// and a runtime-detected wide path (AVX-512 VPOPCNTDQ or AVX2).
    pub fn is_available(self) -> bool {
        match self {
            PackedKernel::Scalar | PackedKernel::Unrolled => true,
            PackedKernel::Simd => simd_available(),
        }
    }

    /// Selects the fastest available rung: `Simd` when available, else
    /// `Unrolled`. The `TDAM_PACKED_KERNEL` environment variable
    /// (`simd` / `unrolled` / `scalar`, case-insensitive) overrides the
    /// choice when it names an available rung, and is ignored otherwise —
    /// selection can therefore never fail, only degrade.
    pub fn detect() -> Self {
        if let Ok(forced) = std::env::var("TDAM_PACKED_KERNEL") {
            let forced = match forced.to_ascii_lowercase().as_str() {
                "simd" => Some(PackedKernel::Simd),
                "unrolled" => Some(PackedKernel::Unrolled),
                "scalar" => Some(PackedKernel::Scalar),
                _ => None,
            };
            if let Some(k) = forced {
                if k.is_available() {
                    return k;
                }
            }
        }
        if PackedKernel::Simd.is_available() {
            PackedKernel::Simd
        } else {
            PackedKernel::Unrolled
        }
    }

    /// Diagnostic name of the code path this rung executes **here**:
    /// `"scalar"`, `"unrolled"`, or — for the SIMD rung — the concrete
    /// ISA runtime detection resolved to (`"avx512"` / `"avx2"`, or
    /// `"simd-unavailable"` when the rung cannot run).
    pub fn name(self) -> &'static str {
        match self {
            PackedKernel::Scalar => "scalar",
            PackedKernel::Unrolled => "unrolled",
            PackedKernel::Simd => simd_name(),
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn simd_available() -> bool {
    simd::available()
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn simd_available() -> bool {
    false
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn simd_name() -> &'static str {
    simd::name()
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn simd_name() -> &'static str {
    "simd-unavailable"
}

/// Per-worker scratch for the packed kernel: the broadcast bit planes of
/// a tile of up to `capacity` queries, plus the per-row `(even, odd)`
/// count buffers the block kernels fill. Created once per batch worker
/// ([`PackedArray::scratch`] for single-query use,
/// [`PackedArray::tile_scratch`] for query-major tiles) and refilled per
/// query/tile, so the batch loop performs no per-query heap allocation.
///
/// Every expansion overwrites all plane words of the slots it fills and
/// every [`PackedArray::mismatch_counts`] overwrites the count buffers
/// of those slots, so a scratch remains safe to reuse even if a previous
/// item's evaluation panicked mid-flight (the contract
/// [`run_chunked_scratch`](crate::parallel::run_chunked_scratch)
/// requires).
#[derive(Debug, Clone)]
pub struct PackedScratch {
    /// `q_planes[t · bits · words ..][b · words + w]`: query `t`'s bit
    /// `b` plane word `w`, same layout as one stored row's planes.
    q_planes: Vec<u64>,
    /// `even[t · rows_pad + r]` / `odd[..]`: query `t`'s per-row counts,
    /// valid for `t < filled` after `mismatch_counts`.
    even: Vec<u32>,
    odd: Vec<u32>,
    capacity: usize,
    filled: usize,
}

impl PackedScratch {
    /// How many queries this scratch can hold per tile.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many queries are currently expanded into the scratch.
    pub fn filled(&self) -> usize {
        self.filled
    }
}

/// One query's digitized decision: the view the hardware exports off-array
/// (the TDC's decoded per-row distances and the winner they select),
/// without materializing the per-row analog reconstruction of a full
/// [`SearchOutcome`](crate::array::SearchOutcome).
///
/// Produced by the decision-only batch paths
/// ([`CompiledArray::decide_batch`](crate::array::CompiledArray::decide_batch)),
/// whose fields are **exactly identical** to
/// [`SearchOutcome::best_row`](crate::array::SearchOutcome::best_row) and
/// [`SearchOutcome::decoded`](crate::array::SearchOutcome::decoded) on the
/// same query — the decision layer of the equivalence contract above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedDecision {
    /// Winner row: lowest decoded distance, ties broken toward the lowest
    /// row index (`None` for an empty array).
    pub best_row: Option<usize>,
    /// Per-row decoded mismatch distances (the TDC output codes).
    pub distances: Vec<usize>,
}

/// One row's digitized outcome as a pure function of its `(even, odd)`
/// mismatch counts: reconstructed step delays plus the TDC view of the
/// total.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RowDigest {
    rising: f64,
    falling: f64,
    total: f64,
    count: u64,
    decoded: usize,
    tdc_energy: f64,
}

/// The bit-sliced packed view of a [`TdamArray`]: stored bit planes,
/// parity masks, and the count-indexed reconstruction tables.
///
/// Built by [`PackedArray::build`] (callers usually go through
/// [`TdamArray::compile`](crate::TdamArray::compile) /
/// [`TdamArray::compile_snapshot`](crate::TdamArray::compile_snapshot),
/// which carry a packed view alongside the scalar tables).
#[derive(Debug, Clone)]
pub struct PackedArray {
    stages: usize,
    bits: usize,
    words: usize,
    rows: usize,
    /// Rows rounded up to a multiple of [`LANES`]; the row stride of the
    /// lane layout. Padding rows hold all-zero lane words and their
    /// counts are computed but never consumed.
    rows_pad: usize,
    /// `planes[(row * bits + b) * words + w]`: bit `b` of the codes
    /// stored at stages `64·w .. 64·w + 63` of `row` — the row-major
    /// view the single-row reference kernel
    /// ([`PackedArray::row_mismatches`]) reads.
    planes: Vec<u64>,
    /// Row-transposed copy of `planes` for the block kernels:
    /// `lane_planes[(w * bits + b) * rows_pad + r]`. For a fixed plane
    /// word `(w, b)` consecutive rows are contiguous, so one wide
    /// register (or one unrolled iteration) carries a whole row group.
    /// Invariant: `lane_planes.len() == bits * words * rows_pad`.
    lane_planes: Vec<u64>,
    /// The dispatch-ladder rung executing the block kernels (see
    /// [`PackedKernel`]); chosen by [`PackedKernel::detect`] at build.
    kernel: PackedKernel,
    /// Which rows are served by the kernel (the rest fall back to the
    /// behavioral model).
    packable: Vec<bool>,
    /// The masked-stage set the view was built with, retained so per-row
    /// surgical repacks ([`PackedArray::repack_row`]) re-judge
    /// packability under the same mask the parity masks encode.
    masked: BTreeSet<usize>,
    even_mask: Vec<u64>,
    odd_mask: Vec<u64>,
    /// `step_delay[k]`: one step's delay with `k` active-stage
    /// mismatches — `N` repeated additions of `d_INV` followed by `k`
    /// repeated additions of `d_C` (the canonical accumulation order).
    step_delay: Vec<f64>,
    /// Flattened `(even, odd)` digest table, or empty when the row count
    /// of the table would exceed [`DIGEST_TABLE_CAP`].
    digests: Vec<RowDigest>,
    /// Dense decoded-distance companion to `digests` (same indexing,
    /// same emptiness): 4 bytes per entry instead of 48, so the
    /// decision-only serving path stays cache-resident.
    decoded_table: Vec<u32>,
    max_even: usize,
    max_odd: usize,
    /// Cumulative load-cap / match-node energies by total mismatch
    /// count, built by repeated addition exactly like the scalar path.
    cum_cap_energy: Vec<f64>,
    cum_mn_energy: Vec<f64>,
    inverter_energy: f64,
    search_line_energy: f64,
    timing: StageTiming,
    tdc: CounterTdc,
}

impl PackedArray {
    /// Packs every nominal row of `array` into bit planes; stages listed
    /// in `masked` are packed as always-match (see the module docs). Rows
    /// with non-nominal cells outside the mask are flagged for the
    /// behavioral fallback. A degenerate calibration where `d_INV + d_C`
    /// is indistinguishable from `d_INV` refuses to pack any row, like
    /// [`DelayChain::compile`](crate::chain::DelayChain::compile).
    pub fn build(array: &TdamArray, masked: &BTreeSet<usize>) -> Self {
        let config = array.config();
        let stages = config.stages;
        let bits = config.encoding.bits() as usize;
        let rows = array.chains().len();
        let mut packed = Self::skeleton(
            stages,
            bits,
            rows,
            masked.clone(),
            *array.timing(),
            *array.tdc(),
        );
        for row in 0..rows {
            packed.repack_row(array, row);
        }
        packed.fill_digest_tables();
        packed
    }

    /// Packs a corpus of (pre-validated, ideal) level codes directly into
    /// bit planes — the cell-free constructor the [`crate::corpus`] tier
    /// builds its per-shard snapshots with. `codes` is row-major flat
    /// (`rows · stages` bytes); every row is packable (codes carry no
    /// device variation) unless the calibration is degenerate, and no
    /// stages are masked.
    ///
    /// The result is **bit-identical** to [`PackedArray::build`] on a
    /// [`TdamArray`] holding the same codes through nominal cells: the
    /// planes are pure functions of the stored codes and every
    /// reconstruction table is a pure function of geometry, timing, and
    /// TDC calibration (pinned by an in-module test). Unlike `build`,
    /// no per-cell behavioral state exists, so a million-row corpus costs
    /// `rows · stages · bits / 8` plane bytes rather than gigabytes of
    /// cell structs.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is zero or `codes.len()` is not a multiple of
    /// `stages` — corpus callers size the slab, so a ragged slab is a
    /// caller bug, not an input error.
    pub fn from_codes(
        encoding: Encoding,
        stages: usize,
        timing: &StageTiming,
        tdc: &CounterTdc,
        codes: &[u8],
    ) -> Self {
        assert!(stages > 0, "from_codes needs at least one stage");
        assert_eq!(
            codes.len() % stages,
            0,
            "codes slab must be a whole number of rows"
        );
        let rows = codes.len() / stages;
        let bits = encoding.bits() as usize;
        let mut packed = Self::skeleton(stages, bits, rows, BTreeSet::new(), *timing, *tdc);
        for row in 0..rows {
            packed.repack_row_codes(row, &codes[row * stages..(row + 1) * stages]);
        }
        packed.fill_digest_tables();
        packed
    }

    /// The geometry/calibration shell shared by [`PackedArray::build`]
    /// and [`PackedArray::from_codes`]: parity masks, zeroed plane
    /// layouts, and every count-indexed reconstruction table — everything
    /// except the per-row plane contents.
    fn skeleton(
        stages: usize,
        bits: usize,
        rows: usize,
        masked: BTreeSet<usize>,
        timing: StageTiming,
        tdc: CounterTdc,
    ) -> Self {
        let words = stages.div_ceil(64);

        // Parity masks with the tail beyond `stages` and every masked
        // column cleared: a bit that survives neither mask can never be
        // counted as a mismatch.
        let mut even_mask = vec![0u64; words];
        let mut odd_mask = vec![0u64; words];
        for j in 0..stages {
            if masked.contains(&j) {
                continue;
            }
            let target = if j % 2 == 0 {
                &mut even_mask
            } else {
                &mut odd_mask
            };
            target[j / 64] |= 1u64 << (j % 64);
        }

        let rows_pad = rows.div_ceil(LANES) * LANES;
        let planes = vec![0u64; rows * bits * words];
        let lane_planes = vec![0u64; bits * words * rows_pad];
        let packable = vec![false; rows];

        // Count-indexed reconstruction tables, all built by repeated
        // addition — the same discipline as the scalar compiled path's
        // cumulative energy tables, so the energy figures stay bitwise
        // equal to the behavioral accumulation of identical addends.
        let max_even = stages.div_ceil(2);
        let max_odd = stages / 2;
        let max_k = max_even.max(max_odd);
        let mut step_delay = Vec::with_capacity(max_k + 1);
        let mut base_step = 0.0f64;
        for _ in 0..stages {
            base_step += timing.d_inv;
        }
        step_delay.push(base_step);
        for k in 1..=max_k {
            step_delay.push(step_delay[k - 1] + timing.d_c);
        }
        let mut cum_cap = Vec::with_capacity(stages + 1);
        let mut cum_mn = Vec::with_capacity(stages + 1);
        let (mut cap, mut mn) = (0.0f64, 0.0f64);
        cum_cap.push(cap);
        cum_mn.push(mn);
        for _ in 0..stages {
            cap += timing.e_c;
            mn += timing.e_mn;
            cum_cap.push(cap);
            cum_mn.push(mn);
        }

        Self {
            stages,
            bits,
            words,
            rows,
            rows_pad,
            planes,
            lane_planes,
            kernel: PackedKernel::detect(),
            packable,
            masked,
            even_mask,
            odd_mask,
            step_delay,
            digests: Vec::new(),
            decoded_table: Vec::new(),
            max_even,
            max_odd,
            cum_cap_energy: cum_cap,
            cum_mn_energy: cum_mn,
            inverter_energy: stages as f64 * timing.e_inv,
            search_line_energy: stages as f64 * timing.e_sl,
            timing,
            tdc,
        }
    }

    /// Fills the count-indexed digest table (and its dense decoded
    /// companion) when `(max_even + 1)·(max_odd + 1)` fits under
    /// [`DIGEST_TABLE_CAP`]; larger geometries compute digests per row.
    fn fill_digest_tables(&mut self) {
        let table = (self.max_even + 1) * (self.max_odd + 1);
        if table <= DIGEST_TABLE_CAP {
            let mut digests = Vec::with_capacity(table);
            for even in 0..=self.max_even {
                for odd in 0..=self.max_odd {
                    digests.push(self.compute_digest(even, odd));
                }
            }
            self.decoded_table = digests.iter().map(|d| d.decoded as u32).collect();
            self.digests = digests;
        }
    }

    /// Surgically re-packs one row in place after its stored contents
    /// changed: clears and rebuilds the row's bit planes in both the
    /// row-major and the row-transposed lane layouts and re-judges its
    /// packability under the mask the view was built with. The parity
    /// masks and every count-indexed reconstruction table (step delays,
    /// digests, decoded distances, cumulative energies) are pure
    /// functions of geometry, timing, and the mask — never of row
    /// contents — so they are deliberately untouched.
    ///
    /// Cost is O(`bits · words`) ≈ O(stages), independent of the row
    /// count: this is the O(rows touched) half of the online-mutation
    /// path (see ARCHITECTURE.md, "online mutation").
    ///
    /// `array` must have the same geometry the view was built from; only
    /// row contents may differ.
    pub(crate) fn repack_row(&mut self, array: &TdamArray, row: usize) {
        debug_assert!(row < self.rows);
        let chain = &array.chains()[row];
        let degenerate = self.timing.d_inv + self.timing.d_c == self.timing.d_inv;
        self.packable[row] = !degenerate
            && chain
                .cells()
                .iter()
                .enumerate()
                .all(|(j, c)| c.is_nominal() || self.masked.contains(&j));
        let (bits, words) = (self.bits, self.words);
        let base = row * bits * words;
        self.planes[base..base + bits * words].fill(0);
        for w in 0..words {
            for b in 0..bits {
                self.lane_planes[(w * bits + b) * self.rows_pad + row] = 0;
            }
        }
        for (j, cell) in chain.cells().iter().enumerate() {
            let code = cell.stored();
            for b in 0..bits {
                if (code >> b) & 1 == 1 {
                    let (w, shift) = (j / 64, j % 64);
                    self.planes[base + b * words + w] |= 1u64 << shift;
                    self.lane_planes[(w * bits + b) * self.rows_pad + row] |= 1u64 << shift;
                }
            }
        }
    }

    /// Surgically re-packs one row from a (pre-validated, ideal) level
    /// code — the code-slab counterpart of `repack_row`,
    /// used by the [`crate::corpus`] tier's streaming ingest and online
    /// updates. Same cost (O(stages), independent of the row count) and
    /// the same invariant: reconstruction tables are untouched because
    /// they never depend on row contents. The row is packable unless the
    /// calibration is degenerate, exactly as in
    /// [`PackedArray::from_codes`].
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) when `row` is out of bounds or
    /// `code.len() != stages`.
    pub fn repack_row_codes(&mut self, row: usize, code: &[u8]) {
        debug_assert!(row < self.rows);
        debug_assert_eq!(code.len(), self.stages);
        let degenerate = self.timing.d_inv + self.timing.d_c == self.timing.d_inv;
        self.packable[row] = !degenerate;
        let (bits, words) = (self.bits, self.words);
        let base = row * bits * words;
        self.planes[base..base + bits * words].fill(0);
        for w in 0..words {
            for b in 0..bits {
                self.lane_planes[(w * bits + b) * self.rows_pad + row] = 0;
            }
        }
        for (j, &code) in code.iter().enumerate() {
            for b in 0..bits {
                if (code >> b) & 1 == 1 {
                    let (w, shift) = (j / 64, j % 64);
                    self.planes[base + b * words + w] |= 1u64 << shift;
                    self.lane_planes[(w * bits + b) * self.rows_pad + row] |= 1u64 << shift;
                }
            }
        }
    }

    /// Heap bytes this packed view keeps resident: both plane layouts,
    /// the digest and decoded tables, and the count-indexed
    /// reconstruction tables. The figure the corpus tier's snapshot
    /// cache charges against its resident-byte budget.
    pub fn resident_bytes(&self) -> usize {
        (self.planes.len() + self.lane_planes.len()) * 8
            + self.digests.len() * std::mem::size_of::<RowDigest>()
            + self.decoded_table.len() * 4
            + (self.step_delay.len() + self.cum_cap_energy.len() + self.cum_mn_energy.len()) * 8
            + (self.even_mask.len() + self.odd_mask.len()) * 8
            + self.packable.len()
    }

    /// Number of rows in the packed view.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of stages per row.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// `u64` words per bit plane (`stages / 64`, rounded up).
    pub fn words(&self) -> usize {
        self.words
    }

    /// Whether `row` is served by the kernel (false: behavioral fallback).
    pub fn is_packed(&self, row: usize) -> bool {
        self.packable.get(row).copied().unwrap_or(false)
    }

    /// How many rows the kernel serves.
    pub fn packed_rows(&self) -> usize {
        self.packable.iter().filter(|&&p| p).count()
    }

    /// The dispatch-ladder rung this view's block kernels execute.
    pub fn kernel(&self) -> PackedKernel {
        self.kernel
    }

    /// Forces a specific dispatch-ladder rung (tests, benchmarks, and
    /// operational pinning). Returns `false` — leaving the current rung
    /// in place — when the requested rung is not
    /// [available](PackedKernel::is_available) in this build/CPU, so a
    /// forced selection can degrade but never produce an unsound path.
    pub fn set_kernel(&mut self, kernel: PackedKernel) -> bool {
        if kernel.is_available() {
            self.kernel = kernel;
            true
        } else {
            false
        }
    }

    /// Allocates a per-worker single-query scratch (a tile of one; see
    /// [`PackedArray::tile_scratch`]).
    pub fn scratch(&self) -> PackedScratch {
        self.tile_scratch(1)
    }

    /// Allocates a per-worker scratch holding up to `capacity` queries'
    /// broadcast planes and per-row count buffers. The batch paths use
    /// query-major tiles (capacity 8) so each L1-blocked row group is
    /// walked once per tile rather than once per query.
    pub fn tile_scratch(&self, capacity: usize) -> PackedScratch {
        let capacity = capacity.max(1);
        PackedScratch {
            q_planes: vec![0u64; capacity * self.bits * self.words],
            even: vec![0u32; capacity * self.rows_pad],
            odd: vec![0u32; capacity * self.rows_pad],
            capacity,
            filled: 0,
        }
    }

    /// Broadcasts one (pre-validated) query into `scratch`'s slot-0 bit
    /// planes, making it a filled tile of one. Every plane word of the
    /// slot is overwritten, so a scratch can be reused across queries —
    /// and remains safe to reuse even if a previous query's evaluation
    /// panicked mid-flight.
    pub fn expand_query(&self, query: &[u8], scratch: &mut PackedScratch) {
        scratch.filled = 1;
        let planes = self.bits * self.words;
        self.expand_into(query, &mut scratch.q_planes[..planes]);
    }

    /// Broadcasts a tile of (pre-validated) queries into `scratch`,
    /// overwriting every plane word of the filled slots. At most
    /// [`PackedScratch::capacity`] queries; the batch drivers slice
    /// their batches accordingly.
    pub fn expand_tile<'q>(
        &self,
        queries: impl ExactSizeIterator<Item = &'q [u8]>,
        scratch: &mut PackedScratch,
    ) {
        debug_assert!(queries.len() <= scratch.capacity);
        let planes = self.bits * self.words;
        scratch.filled = queries.len();
        for (t, query) in queries.enumerate() {
            self.expand_into(query, &mut scratch.q_planes[t * planes..(t + 1) * planes]);
        }
    }

    /// Word-chunked, branchless query broadcast into one slot's planes:
    /// accumulate each plane word in a register, then store every word
    /// unconditionally (which is what keeps a reused — or torn — scratch
    /// fully overwritten).
    fn expand_into(&self, query: &[u8], out: &mut [u64]) {
        debug_assert_eq!(query.len(), self.stages);
        debug_assert_eq!(out.len(), self.bits * self.words);
        let words = self.words;
        for (w, chunk) in query.chunks(64).enumerate() {
            let mut acc = [0u64; 4];
            for (j, &q) in chunk.iter().enumerate() {
                let mut v = q as u64;
                for a in acc.iter_mut().take(self.bits) {
                    *a |= (v & 1) << j;
                    v >>= 1;
                }
            }
            for (b, &a) in acc.iter().enumerate().take(self.bits) {
                out[b * words + w] = a;
            }
        }
    }

    /// Runs the block kernel for every expanded query of the tile,
    /// filling `scratch`'s per-row `(even, odd)` count buffers — the
    /// ladder-dispatched, cache-blocked form of the kernel.
    ///
    /// The loop nest is row-block-major: row blocks sized to
    /// `ROW_BLOCK_BYTES` (16 KiB) of lane words (L1-resident) in the outer
    /// loop, the tile's queries inner — so each block is pulled from
    /// memory once per tile, not once per query. Counts are exact
    /// integers on every rung; read them back with
    /// [`PackedArray::counts`]. Rows where [`PackedArray::is_packed`] is
    /// false get counts too, but callers must route them to the
    /// behavioral model instead of consuming those.
    pub fn mismatch_counts(&self, scratch: &mut PackedScratch) {
        let PackedScratch {
            q_planes,
            even,
            odd,
            filled,
            ..
        } = scratch;
        let args = KernelArgs {
            lanes: &self.lane_planes,
            even_mask: &self.even_mask,
            odd_mask: &self.odd_mask,
            bits: self.bits,
            words: self.words,
            rows_pad: self.rows_pad,
        };
        let planes = self.bits * self.words;
        let block = self.row_block();
        let mut r0 = 0;
        while r0 < self.rows_pad {
            let r1 = (r0 + block).min(self.rows_pad);
            for t in 0..*filled {
                kernel::mismatch_block(
                    self.kernel,
                    &args,
                    &q_planes[t * planes..(t + 1) * planes],
                    r0,
                    r1,
                    &mut even[t * self.rows_pad..(t + 1) * self.rows_pad],
                    &mut odd[t * self.rows_pad..(t + 1) * self.rows_pad],
                );
            }
            r0 = r1;
        }
    }

    /// Rows per cache block: as many [`LANES`]-row groups as keep the
    /// block's lane words within [`ROW_BLOCK_BYTES`], at least one group.
    fn row_block(&self) -> usize {
        let row_bytes = (self.bits * self.words * 8).max(1);
        let rows = ROW_BLOCK_BYTES / row_bytes;
        (rows / LANES * LANES).max(LANES)
    }

    /// Reads query `t`'s `(even_mismatches, odd_mismatches)` for `row`
    /// from a tile filled by [`PackedArray::mismatch_counts`].
    #[inline]
    pub fn counts(&self, scratch: &PackedScratch, t: usize, row: usize) -> (usize, usize) {
        debug_assert!(t < scratch.filled && row < self.rows);
        let slot = t * self.rows_pad + row;
        (scratch.even[slot] as usize, scratch.odd[slot] as usize)
    }

    /// The single-row reference kernel: `(even_mismatches,
    /// odd_mismatches)` of `row` against the query expanded into
    /// `scratch`'s slot 0. `XOR` per bit plane, `OR` across planes,
    /// `count_ones()` under each parity mask — a handful of word ops per
    /// 64 stages in place of 64 dependent f64 loads. Reads the row-major
    /// plane copy, independent of the lane layout and the dispatch
    /// ladder, which is what makes it the anchor the ladder rungs are
    /// pinned against in `tests/packed_equiv.rs`.
    ///
    /// Only meaningful for rows where [`PackedArray::is_packed`] holds;
    /// callers route other rows to the behavioral model.
    pub fn row_mismatches(&self, row: usize, scratch: &PackedScratch) -> (usize, usize) {
        debug_assert!(row < self.rows);
        let base = row * self.bits * self.words;
        let words = self.words;
        let mut even = 0usize;
        let mut odd = 0usize;
        for w in 0..words {
            let mut diff = 0u64;
            for b in 0..self.bits {
                diff |= self.planes[base + b * words + w] ^ scratch.q_planes[b * words + w];
            }
            even += (diff & self.even_mask[w]).count_ones() as usize;
            odd += (diff & self.odd_mask[w]).count_ones() as usize;
        }
        (even, odd)
    }

    /// Reconstructs the full [`ChainResult`] from the per-parity counts.
    pub fn reconstruct(&self, even: usize, odd: usize) -> ChainResult {
        let d = self.digest(even, odd);
        self.chain_result(even, odd, &d)
    }

    /// Digitizes `(even, odd)` into the per-row search outcome — the
    /// packed equivalent of the array's TDC/decode step — returning the
    /// row result and its TDC conversion energy (accumulated separately
    /// at array scope).
    pub(crate) fn digitize(&self, even: usize, odd: usize) -> (RowResult, f64) {
        let d = self.digest(even, odd);
        (
            RowResult {
                chain: self.chain_result(even, odd, &d),
                count: d.count,
                decoded_mismatches: d.decoded,
            },
            d.tdc_energy,
        )
    }

    /// The decoded distance for `(even, odd)` mismatch counts — the
    /// digest's TDC decode alone, served from the dense companion table
    /// so the decision-only path touches 4 bytes per row, not 48.
    pub(crate) fn decoded(&self, even: usize, odd: usize) -> usize {
        debug_assert!(even <= self.max_even && odd <= self.max_odd);
        if self.decoded_table.is_empty() {
            self.compute_digest(even, odd).decoded
        } else {
            self.decoded_table[even * (self.max_odd + 1) + odd] as usize
        }
    }

    fn chain_result(&self, even: usize, odd: usize, d: &RowDigest) -> ChainResult {
        let mismatches = even + odd;
        ChainResult {
            rising_delay: d.rising,
            falling_delay: d.falling,
            total_delay: d.total,
            mismatches,
            even_mismatches: even,
            odd_mismatches: odd,
            energy: EnergyBreakdown {
                inverters: self.inverter_energy,
                load_caps: self.cum_cap_energy[mismatches],
                match_nodes: self.cum_mn_energy[mismatches],
                search_lines: self.search_line_energy,
                ..EnergyBreakdown::default()
            },
        }
    }

    fn digest(&self, even: usize, odd: usize) -> RowDigest {
        debug_assert!(even <= self.max_even && odd <= self.max_odd);
        if self.digests.is_empty() {
            self.compute_digest(even, odd)
        } else {
            self.digests[even * (self.max_odd + 1) + odd]
        }
    }

    fn compute_digest(&self, even: usize, odd: usize) -> RowDigest {
        let rising = self.step_delay[even];
        let falling = self.step_delay[odd];
        let total = rising + falling;
        RowDigest {
            rising,
            falling,
            total,
            count: self.tdc.convert(total),
            decoded: self.tdc.decode_mismatches(&self.timing, self.stages, total),
            tdc_energy: self.tdc.conversion_energy(total),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrayConfig;
    use crate::encoding::Encoding;
    use crate::engine::SimilarityEngine;

    fn seeded_array(bits: u8, stages: usize, rows: usize, seed: u64) -> TdamArray {
        let cfg = ArrayConfig::paper_default()
            .with_encoding(Encoding::new(bits).unwrap())
            .with_stages(stages)
            .with_rows(rows);
        let mut am = TdamArray::new(cfg).unwrap();
        let levels = cfg.encoding.levels() as u64;
        let mut state = seed | 1;
        let mut next = || {
            // SplitMix64 — deterministic row contents without rand.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for row in 0..rows {
            let values: Vec<u8> = (0..stages).map(|_| (next() % levels) as u8).collect();
            am.store(row, &values).unwrap();
        }
        am
    }

    /// The ulp bound the reconstruction documents: `2·(N + k)·ε`
    /// relative, with room for the final `rising + falling` addition.
    fn delay_close(a: f64, b: f64, stages: usize) -> bool {
        let bound = 2.0 * (stages as f64 + stages as f64 / 2.0 + 2.0) * f64::EPSILON * a.abs();
        (a - b).abs() <= bound
    }

    #[test]
    fn counts_exactly_match_behavioral_across_encodings_and_widths() {
        for bits in 1..=4u8 {
            // Widths straddling the word boundary: 1 word exact, 1 word
            // ragged, multi-word ragged.
            for stages in [3usize, 64, 65, 100, 130] {
                let am = seeded_array(
                    bits,
                    stages,
                    5,
                    0xC0FFEE ^ (bits as u64) << 8 ^ stages as u64,
                );
                let packed = PackedArray::build(&am, &BTreeSet::new());
                assert_eq!(packed.packed_rows(), 5);
                let mut scratch = packed.scratch();
                let levels = 1u64 << bits;
                for k in 0..7u64 {
                    let q: Vec<u8> = (0..stages)
                        .map(|j| ((j as u64 * 31 + k * 7) % levels) as u8)
                        .collect();
                    packed.expand_query(&q, &mut scratch);
                    for row in 0..5 {
                        let reference = am.chains()[row].evaluate(&q).unwrap();
                        let (even, odd) = packed.row_mismatches(row, &scratch);
                        assert_eq!(even, reference.even_mismatches, "{bits}b {stages}st");
                        assert_eq!(odd, reference.odd_mismatches, "{bits}b {stages}st");
                        let rebuilt = packed.reconstruct(even, odd);
                        assert_eq!(rebuilt.mismatches, reference.mismatches);
                        assert!(delay_close(
                            rebuilt.rising_delay,
                            reference.rising_delay,
                            stages
                        ));
                        assert!(delay_close(
                            rebuilt.falling_delay,
                            reference.falling_delay,
                            stages
                        ));
                        assert!(delay_close(
                            rebuilt.total_delay,
                            reference.total_delay,
                            stages
                        ));
                        // Energies follow the repeated-addition discipline
                        // exactly, so they are bitwise equal.
                        assert_eq!(rebuilt.energy, reference.energy);
                    }
                }
            }
        }
    }

    #[test]
    fn masked_stages_pack_as_always_match() {
        let stages = 70;
        let am = seeded_array(2, stages, 3, 0xFACE);
        let masked: BTreeSet<usize> = [0usize, 13, 64, 69].into_iter().collect();
        let packed = PackedArray::build(&am, &masked);
        let mut scratch = packed.scratch();
        // A query mismatching everywhere only counts unmasked stages.
        for row in 0..3 {
            let stored = am.stored(row).unwrap();
            let q: Vec<u8> = stored.iter().map(|&v| v ^ 1).collect();
            packed.expand_query(&q, &mut scratch);
            let (even, odd) = packed.row_mismatches(row, &scratch);
            // The behavioral reference on a query where masked stages are
            // forced to match must agree exactly.
            let mut forced = q.clone();
            for &j in &masked {
                forced[j] = stored[j];
            }
            let reference = am.chains()[row].evaluate(&forced).unwrap();
            assert_eq!(even, reference.even_mismatches);
            assert_eq!(odd, reference.odd_mismatches);
            assert_eq!(even + odd, stages - masked.len());
        }
    }

    #[test]
    fn masked_columns_readmit_faulty_rows_to_the_fast_path() {
        let mut am = seeded_array(2, 16, 2, 0xB0B);
        // Row 1 takes a perturbed cell at stage 5: unpackable as-is.
        let mut cells: Vec<crate::cell::Cell> = am.chains()[1].cells().to_vec();
        cells[5] = crate::cell::Cell::with_vth(1, am.config().encoding, 0.63, 1.02).unwrap();
        am.store_cells(1, cells).unwrap();
        let unmasked = PackedArray::build(&am, &BTreeSet::new());
        assert!(!unmasked.is_packed(1));
        assert_eq!(unmasked.packed_rows(), 1);
        // Masking the damaged column restores kernel service for the row.
        let masked: BTreeSet<usize> = [5usize].into_iter().collect();
        let repacked = PackedArray::build(&am, &masked);
        assert!(repacked.is_packed(1));
        assert_eq!(repacked.packed_rows(), 2);
    }

    #[test]
    fn degenerate_timing_refuses_to_pack() {
        let am = seeded_array(2, 8, 2, 1);
        // Forge a calibration where d_C vanishes under d_INV in f64: the
        // mismatch count is no longer recoverable from delay, so no row
        // may be packed (mirroring DelayChain::compile's refusal).
        let mut timing = *am.timing();
        timing.d_c = timing.d_inv * f64::EPSILON * 0.25;
        let degenerate = TdamArray::with_timing(*am.config(), timing).unwrap();
        let packed = PackedArray::build(&degenerate, &BTreeSet::new());
        assert_eq!(packed.packed_rows(), 0);
    }

    #[test]
    fn digest_table_and_on_the_fly_paths_agree() {
        let am = seeded_array(2, 33, 2, 7);
        let mut packed = PackedArray::build(&am, &BTreeSet::new());
        assert!(!packed.digests.is_empty(), "33 stages fits the table");
        let table = packed.clone();
        packed.digests.clear();
        for even in 0..=packed.max_even {
            for odd in 0..=packed.max_odd {
                assert_eq!(packed.digest(even, odd), table.digest(even, odd));
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let am = seeded_array(3, 65, 2, 0xDEAD);
        let packed = PackedArray::build(&am, &BTreeSet::new());
        let q1: Vec<u8> = (0..65).map(|j| (j % 8) as u8).collect();
        let q2: Vec<u8> = (0..65).map(|j| (7 - j % 8) as u8).collect();
        let mut reused = packed.scratch();
        packed.expand_query(&q1, &mut reused);
        packed.expand_query(&q2, &mut reused);
        let mut fresh = packed.scratch();
        packed.expand_query(&q2, &mut fresh);
        for row in 0..2 {
            assert_eq!(
                packed.row_mismatches(row, &reused),
                packed.row_mismatches(row, &fresh)
            );
        }
    }

    #[test]
    fn repack_row_is_bit_identical_to_full_rebuild() {
        let mut am = seeded_array(2, 70, 6, 0xAB);
        let masked: BTreeSet<usize> = [3usize, 64].into_iter().collect();
        let mut packed = PackedArray::build(&am, &masked);
        let levels = am.config().encoding.levels() as u64;
        for (round, &row) in [1usize, 4, 1, 5, 0].iter().enumerate() {
            let values: Vec<u8> = (0..70)
                .map(|j| ((j as u64 * 13 + round as u64 * 5 + 3) % levels) as u8)
                .collect();
            am.store(row, &values).unwrap();
            packed.repack_row(&am, row);
        }
        let rebuilt = PackedArray::build(&am, &masked);
        assert_eq!(packed.planes, rebuilt.planes);
        assert_eq!(packed.lane_planes, rebuilt.lane_planes);
        assert_eq!(packed.packable, rebuilt.packable);
    }

    #[test]
    fn from_codes_is_bit_identical_to_cell_backed_build() {
        for bits in [1u8, 2, 4] {
            for stages in [3usize, 64, 65, 130] {
                let rows = 6;
                let am = seeded_array(
                    bits,
                    stages,
                    rows,
                    0x5EED ^ (bits as u64) << 8 ^ stages as u64,
                );
                let mut codes = Vec::with_capacity(rows * stages);
                for row in 0..rows {
                    codes.extend_from_slice(&am.stored(row).unwrap());
                }
                let enc = am.config().encoding;
                let direct = PackedArray::from_codes(enc, stages, am.timing(), am.tdc(), &codes);
                let reference = PackedArray::build(&am, &BTreeSet::new());
                assert_eq!(direct.planes, reference.planes, "{bits}b {stages}st");
                assert_eq!(direct.lane_planes, reference.lane_planes);
                assert_eq!(direct.packable, reference.packable);
                assert_eq!(direct.even_mask, reference.even_mask);
                assert_eq!(direct.odd_mask, reference.odd_mask);
                assert_eq!(direct.decoded_table, reference.decoded_table);
                // Surgical code repack matches a fresh slab build too.
                let mut patched = direct.clone();
                let levels = enc.levels() as u64;
                let new_row: Vec<u8> = (0..stages)
                    .map(|j| ((j as u64 * 17 + 5) % levels) as u8)
                    .collect();
                patched.repack_row_codes(2, &new_row);
                let mut new_codes = codes.clone();
                new_codes[2 * stages..3 * stages].copy_from_slice(&new_row);
                let reslabbed =
                    PackedArray::from_codes(enc, stages, am.timing(), am.tdc(), &new_codes);
                assert_eq!(patched.planes, reslabbed.planes);
                assert_eq!(patched.lane_planes, reslabbed.lane_planes);
                assert!(patched.resident_bytes() > 0);
            }
        }
    }

    #[test]
    fn from_codes_refuses_degenerate_timing() {
        let am = seeded_array(2, 8, 2, 1);
        let mut timing = *am.timing();
        timing.d_c = timing.d_inv * f64::EPSILON * 0.25;
        let codes = vec![0u8; 16];
        let packed = PackedArray::from_codes(am.config().encoding, 8, &timing, am.tdc(), &codes);
        assert_eq!(packed.packed_rows(), 0);
    }

    #[test]
    fn repack_row_tracks_packability_transitions() {
        let mut am = seeded_array(2, 16, 3, 0x51);
        let mut packed = PackedArray::build(&am, &BTreeSet::new());
        assert!(packed.is_packed(1));
        // A perturbed cell lands at stage 5: the row must leave the fast
        // path on repack...
        let mut cells: Vec<crate::cell::Cell> = am.chains()[1].cells().to_vec();
        cells[5] = crate::cell::Cell::with_vth(1, am.config().encoding, 0.63, 1.02).unwrap();
        am.store_cells(1, cells).unwrap();
        packed.repack_row(&am, 1);
        assert!(!packed.is_packed(1));
        // ...and rejoin it once nominal values are rewritten.
        am.store(1, &[0; 16]).unwrap();
        packed.repack_row(&am, 1);
        assert!(packed.is_packed(1));
        let rebuilt = PackedArray::build(&am, &BTreeSet::new());
        assert_eq!(packed.planes, rebuilt.planes);
        assert_eq!(packed.lane_planes, rebuilt.lane_planes);
    }

    #[test]
    fn packing_tracks_delay_chain_compile_refusals() {
        // Whatever refuses DelayChain::compile also refuses packing (and
        // vice versa) when no mask is in play, so the scalar and packed
        // tiers always agree on which rows are fast-path.
        let mut am = seeded_array(2, 12, 3, 42);
        let cells = (0..12)
            .map(|_| crate::cell::Cell::with_vth(1, am.config().encoding, 0.65, 1.05).unwrap())
            .collect();
        am.store_cells(2, cells).unwrap();
        let packed = PackedArray::build(&am, &BTreeSet::new());
        for (row, chain) in am.chains().iter().enumerate() {
            assert_eq!(
                packed.is_packed(row),
                chain.compile().is_some(),
                "row {row}"
            );
        }
    }
}
