//! Array-scale resilience: fault detection, repair, and graceful
//! degradation for the TD-AM.
//!
//! The paper's robustness story (Fig. 6) ends at V_TH-variation Monte
//! Carlo inside the sensing margin. A production associative memory must
//! keep answering queries when cells break, devices drift, and writes
//! fail. This module turns the cell-level fault machinery of
//! [`crate::faults`], the aging models of [`tdam_fefet::retention`], and
//! the write-verify flow of [`tdam_fefet::programming`] into one
//! detect → retry → repair → degrade-gracefully subsystem:
//!
//! 1. **Fault model** — beyond the stuck/drift cell faults, chain-level
//!    faults (a broken stage that severs a row, a stuck shared search
//!    line that afflicts one column across *all* rows) and transient
//!    faults ([`TransientFaults`]: TDC miscounts, SL driver glitches).
//! 2. **Detection** — known-answer *reference rows* and per-row margin
//!    monitors ([`ResilientArray::check`]). Every row is probed with its
//!    own stored vector (expected distance 0) and its complement
//!    (expected distance N); the delay of each probe must also sit near
//!    its decode bin center, which flags drift long before it flips a
//!    count. Reference rows additionally localize *column* faults by a
//!    march-style single-position probe sweep; a column is only indicted
//!    when every reference row implicates it, which is the stuck-SL
//!    signature (cell faults are row-local).
//! 3. **Repair** — [`ResilientArray::repair`] re-programs suspect rows
//!    through write-verify with the bounded, amplitude-escalating
//!    [`RetryPolicy`] (drift is erased by a fresh write; retries are
//!    hard-capped), then remaps persistently failing rows to a
//!    configurable spare-row pool. Indicted columns are masked out of
//!    the distance arithmetic. Rows that exhaust every option degrade
//!    gracefully instead of corrupting results: a row that only
//!    under-counts (stuck-match) is kept and flagged, a row that cannot
//!    match is reported at maximum distance and excluded from ranking.
//! 4. **Campaigns** — [`run_campaign`] sweeps fault rate × fault kind
//!    over seeded Monte Carlo trials (parallelized with
//!    [`std::thread::scope`]) and reports retrieval/decode accuracy with
//!    and without repair. Campaigns are bit-identical under a fixed
//!    seed: every trial derives its own RNG stream from the campaign
//!    seed and integer statistics are merged in trial order.
//!
//! The stuck-column model is a driver stuck at the conducting level:
//! every cell in the column discharges its match node regardless of
//! data, so the column adds a constant +1 to every row's raw count.
//! Masking subtracts that known bias, which both restores decodes and
//! removes the dimension from the metric (its hardware cannot
//! distinguish values any more).

use std::collections::BTreeSet;

use crate::array::TdamArray;
use crate::config::ArrayConfig;
use crate::energy::EnergyBreakdown;
use crate::engine::{SearchMetrics, SimilarityEngine};
use crate::faults::{faulty_row, FaultKind, FaultMap};
use crate::TdamError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tdam_fefet::disturb::InhibitScheme;
use tdam_fefet::preisach::PreisachParams;
use tdam_fefet::programming::RetryPolicy;
use tdam_fefet::retention::EnduranceParams;

/// Wear-aware write-leveling policy: when to rotate a hot logical row
/// onto a fresh spare, and when accumulated program disturb forces a
/// refresh-rewrite of a sibling row.
///
/// Both thresholds are grounded in the `fefet` lifetime models: rotation
/// budgets program/erase cycles against the endurance fatigue curve
/// ([`EnduranceParams`]), and disturb accumulation follows the shared-
/// search-line exposure model ([`tdam_fefet::disturb`]) — an inhibit
/// scheme that is disturb-free by construction
/// ([`tdam_fefet::disturb::is_disturb_free`]) never charges sibling rows
/// at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearPolicy {
    /// Program cycles one physical row absorbs before the next write to
    /// its logical row rotates onto a fresh spare (`0` disables
    /// rotation). The default budgets 1% of the endurance model's
    /// half-window fatigue point, far below any margin impact.
    pub rotate_after_writes: u64,
    /// Disturb exposures (writes to *other* rows under a non-disturb-free
    /// inhibit scheme) a row absorbs before it is refresh-rewritten from
    /// its stored values (`0` disables disturb tracking).
    pub refresh_after_disturbs: u64,
    /// The inhibit biasing scheme the write driver uses. Determines —
    /// through the Preisach coercivity model — whether unselected rows
    /// accumulate disturb at all.
    pub inhibit: InhibitScheme,
}

impl Default for WearPolicy {
    fn default() -> Self {
        // V/3 inhibit at a 3.6 V write is disturb-free against the
        // default coercivity (no sibling exposure), and the rotation
        // budget of 1% of the fatigue half-window point (1e8 cycles) is
        // unreachable in any test or campaign — the default policy is
        // behaviorally inert, which keeps crash-chaos replay and every
        // pre-existing campaign bit-identical.
        Self {
            rotate_after_writes: (EnduranceParams::default().fatigue_half_cycles / 100.0) as u64,
            refresh_after_disturbs: 0,
            inhibit: InhibitScheme::third_select(3.6, 500e-9),
        }
    }
}

impl WearPolicy {
    /// A deliberately hot policy for wear-path campaigns and benches:
    /// rows rotate after a handful of writes and the naive V/2 inhibit
    /// (not disturb-free at 5 V) charges sibling rows, so short seeded
    /// campaigns actually exercise rotation and refresh-rewrites.
    pub fn aggressive() -> Self {
        Self {
            rotate_after_writes: 6,
            refresh_after_disturbs: 48,
            inhibit: InhibitScheme::half_select(5.0, 500e-9),
        }
    }

    /// Whether the configured inhibit scheme is disturb-free by
    /// construction against the default Preisach coercivity (see
    /// [`tdam_fefet::disturb::is_disturb_free`]).
    pub fn is_disturb_free(&self) -> bool {
        tdam_fefet::disturb::is_disturb_free(&self.inhibit, &PreisachParams::default())
    }
}

/// Configuration of the resilience machinery around a data array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Spare physical rows available for remapping failed data rows.
    pub spare_rows: usize,
    /// Known-answer reference rows used for health checks and column
    /// localization. Two or more lets column indictment require
    /// agreement between independent rows, suppressing false positives
    /// from cell faults on a reference row itself.
    pub reference_rows: usize,
    /// In-place re-program attempts per suspect row before falling back
    /// to a spare. A hard bound; each attempt itself uses the bounded
    /// [`RetryPolicy`] per device.
    pub repair_attempts: usize,
    /// Margin-monitor sensitivity: a probe whose delay sits further than
    /// this fraction of the sensing margin (`d_C/2`) from its decode bin
    /// center flags the row, catching drift before it flips a count.
    pub margin_threshold: f64,
    /// Device-level write-verify retry/escalation policy used by repair.
    pub retry: RetryPolicy,
    /// Wear-aware write-leveling policy (the default never triggers).
    pub wear: WearPolicy,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            spare_rows: 4,
            reference_rows: 2,
            repair_attempts: 1,
            margin_threshold: 0.6,
            retry: RetryPolicy::default(),
            wear: WearPolicy::default(),
        }
    }
}

/// Health of one logical data row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowHealth {
    /// Passing every probe.
    Healthy,
    /// Failed a probe, then passed after in-place re-programming.
    Repaired,
    /// Moved to a spare physical row that passes every probe.
    Remapped,
    /// Still under-counts mismatches (stuck-match damage) but matches
    /// exactly — usable for retrieval, distances may read low.
    Degraded,
    /// Cannot answer queries; reported at maximum distance and excluded
    /// from ranking.
    Dead,
}

/// Overall degradation level reported with every search result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DegradationLevel {
    /// Every row healthy, no masked columns.
    Nominal,
    /// Some rows were re-programmed in place.
    Repaired,
    /// Some rows answer from spare rows.
    Remapped,
    /// Masked columns, under-counting rows, or dead rows: results are
    /// still ranked but the metric has lost fidelity.
    Degraded,
}

/// Degradation accounting attached to every [`ResilientOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationSummary {
    /// The overall level (worst applicable).
    pub level: DegradationLevel,
    /// Rows healed in place.
    pub repaired_rows: usize,
    /// Rows answering from spares.
    pub remapped_rows: usize,
    /// Rows kept despite under-counting.
    pub degraded_rows: usize,
    /// Rows excluded from ranking.
    pub dead_rows: usize,
    /// Columns masked out of the distance metric.
    pub masked_stages: usize,
}

/// Per-row outcome of a resilient search, in *logical* row order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilientRow {
    /// Mismatch count after bias correction and dead-row handling.
    pub decoded: usize,
    /// The uncorrected count the TDC decoded.
    pub raw_decoded: usize,
    /// The raw TDC count.
    pub count: u64,
    /// The row's accumulated chain delay, seconds.
    pub delay: f64,
    /// The row's health at search time.
    pub health: RowHealth,
}

/// Outcome of a search through the resilience layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilientOutcome {
    /// Per-logical-row results.
    pub rows: Vec<ResilientRow>,
    /// Total search energy (spare and reference rows stay powered and
    /// are included — resilience is not free).
    pub energy: EnergyBreakdown,
    /// Full search-cycle latency, seconds.
    pub latency: f64,
    /// Degradation accounting at search time.
    pub degradation: DegradationSummary,
}

impl ResilientOutcome {
    /// The non-dead row with the smallest corrected distance (ties to the
    /// lowest index); `None` if every row is dead.
    pub fn best_row(&self) -> Option<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.health != RowHealth::Dead)
            .min_by_key(|(_, r)| r.decoded)
            .map(|(i, _)| i)
    }

    /// Corrected distances per logical row.
    pub fn decoded(&self) -> Vec<usize> {
        self.rows.iter().map(|r| r.decoded).collect()
    }

    /// Flattens to the engine-level [`SearchMetrics`] view: dead rows
    /// report no distance and never rank.
    pub fn metrics(&self) -> SearchMetrics {
        SearchMetrics {
            best_row: self.best_row(),
            distances: self
                .rows
                .iter()
                .map(|r| {
                    if r.health == RowHealth::Dead {
                        None
                    } else {
                        Some(r.decoded)
                    }
                })
                .collect(),
            energy: self.energy.total(),
            latency: self.latency,
        }
    }
}

/// Transient (non-persistent) fault rates applied at search time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TransientFaults {
    /// Probability, per row per search, that the counter TDC slips one
    /// count up or down (metastability at the latch window).
    pub tdc_miscount_rate: f64,
    /// Probability, per search, that one shared SL driver pair glitches
    /// during the launch window, adding a spurious mismatch at one
    /// column for every row that matched there.
    pub sl_glitch_rate: f64,
}

impl TransientFaults {
    /// No transient faults.
    pub fn none() -> Self {
        Self::default()
    }
}

/// Outcome of detection ([`ResilientArray::check`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Logical data rows failing a known-answer or margin probe.
    pub suspect_rows: Vec<usize>,
    /// Columns implicated by *every* (diagnosable) reference row — the
    /// stuck-shared-SL signature.
    pub suspect_stages: Vec<usize>,
    /// Whether every reference row passed its probes.
    pub reference_ok: bool,
}

impl DetectionReport {
    /// Whether nothing was flagged.
    pub fn all_clear(&self) -> bool {
        self.suspect_rows.is_empty() && self.suspect_stages.is_empty() && self.reference_ok
    }
}

/// Outcome of a repair pass ([`ResilientArray::repair`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairOutcome {
    /// Logical rows healed in place by re-programming.
    pub reprogrammed: Vec<usize>,
    /// Logical rows remapped, with their new physical row.
    pub remapped: Vec<(usize, usize)>,
    /// Logical rows kept in a degraded (under-counting) state.
    pub tolerated: Vec<usize>,
    /// Logical rows given up on.
    pub dead: Vec<usize>,
    /// Columns newly masked out of the metric.
    pub newly_masked: Vec<usize>,
    /// Reference rows re-programmed in place.
    pub refs_reprogrammed: Vec<usize>,
    /// Total programming cost of the pass (failed attempts included).
    pub pulse_pairs: usize,
    /// Total programming energy, joules.
    pub program_energy: f64,
    /// Worst per-device write-verify attempt count seen anywhere in the
    /// pass — provably bounded by the policy's `max_attempts`.
    pub max_write_attempts: usize,
}

/// Accounting for one logical-row write through the wear-aware store
/// path ([`ResilientArray::store`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteReport {
    /// The physical row the values landed in (after any rotation).
    pub physical: usize,
    /// Whether the write first rotated the logical row onto a fresh
    /// spare because its old physical row hit the wear budget.
    pub rotated: bool,
    /// Physical rows refresh-rewritten because this write pushed their
    /// accumulated program disturb past the policy budget.
    pub refreshed: Vec<usize>,
}

impl WriteReport {
    /// Physical program operations this one logical write cost (the
    /// write itself plus every triggered refresh-rewrite) — the
    /// write-amplification numerator.
    pub fn physical_writes(&self) -> usize {
        1 + self.refreshed.len()
    }
}

/// Results of one background margin-scrub pass
/// ([`ResilientArray::scrub_margins`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Live physical rows whose margins were probed.
    pub probed: usize,
    /// Physical rows refresh-rewritten because their probe delays had
    /// drifted off the decode-bin center (decode still correct).
    pub healed: Vec<usize>,
    /// Drifted rows whose healing rewrite failed write-verify — left
    /// for the full detection + repair machinery to escalate.
    pub failed: usize,
}

/// Internal status of one physical row's known-answer probes.
#[derive(Debug, Clone, Copy)]
struct ProbeStatus {
    match_ok: bool,
    complement_ok: bool,
    margin_ok: bool,
}

impl ProbeStatus {
    fn healthy(&self) -> bool {
        self.match_ok && self.complement_ok && self.margin_ok
    }
}

/// A TD-AM array wrapped with spare rows, reference rows, fault
/// bookkeeping, detection, repair, and graceful degradation.
///
/// Physical row layout: `[0, data)` data rows, `[data, data+spares)`
/// spares, `[data+spares, data+spares+refs)` reference rows. Logical
/// (caller-visible) rows are the data rows, indirect through a remap
/// table so repair can move them onto spares transparently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilientArray {
    pub(crate) array: TdamArray,
    pub(crate) cfg: ResilienceConfig,
    pub(crate) data_rows: usize,
    /// Logical row → physical row.
    pub(crate) remap: Vec<usize>,
    pub(crate) spare_used: Vec<bool>,
    pub(crate) health: Vec<RowHealth>,
    /// Injected cell faults, in *physical* coordinates.
    pub(crate) faults: FaultMap,
    /// Physical rows with a severed chain (a broken stage): the pulse
    /// never reaches the TDC, which counts to its cap.
    pub(crate) broken: BTreeSet<usize>,
    /// Columns masked out of the distance arithmetic.
    pub(crate) masked: BTreeSet<usize>,
    /// Program cycles absorbed per physical row (wear leveling input).
    /// Runtime-only accounting: deliberately not persisted in
    /// checkpoints — a restored array starts with fresh counters, on
    /// both the recovery and the expected-state replay path alike.
    pub(crate) writes: Vec<u64>,
    /// Disturb exposures accumulated per physical row since its last
    /// (re)write, under a non-disturb-free inhibit scheme. Runtime-only,
    /// like `writes`.
    pub(crate) disturbs: Vec<u64>,
}

impl ResilientArray {
    /// Wraps `data` (whose `rows` field is the number of *logical* data
    /// rows) with `cfg.spare_rows` spares and `cfg.reference_rows`
    /// known-answer reference rows.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from [`TdamArray::new`].
    pub fn new(data: ArrayConfig, cfg: ResilienceConfig) -> Result<Self, TdamError> {
        let data_rows = data.rows;
        let physical = data.with_rows(data_rows + cfg.spare_rows + cfg.reference_rows);
        let mut array = TdamArray::new(physical)?;
        let levels = physical.encoding.levels() as usize;
        for k in 0..cfg.reference_rows {
            // A rotating ramp: every level appears in every reference row,
            // and no two reference rows agree at any column (for >= 2
            // levels), so a column fault perturbs all of them.
            let pattern: Vec<u8> = (0..physical.stages)
                .map(|j| ((j + k) % levels) as u8)
                .collect();
            SimilarityEngine::store(&mut array, data_rows + cfg.spare_rows + k, &pattern)?;
        }
        let physical_rows = data_rows + cfg.spare_rows + cfg.reference_rows;
        Ok(Self {
            array,
            cfg,
            data_rows,
            remap: (0..data_rows).collect(),
            spare_used: vec![false; cfg.spare_rows],
            health: vec![RowHealth::Healthy; data_rows],
            faults: FaultMap::new(),
            broken: BTreeSet::new(),
            masked: BTreeSet::new(),
            writes: vec![0; physical_rows],
            disturbs: vec![0; physical_rows],
        })
    }

    /// Number of logical data rows.
    pub fn data_rows(&self) -> usize {
        self.data_rows
    }

    /// The resilience configuration.
    pub fn resilience_config(&self) -> &ResilienceConfig {
        &self.cfg
    }

    /// The underlying physical array (data + spares + references).
    pub fn array(&self) -> &TdamArray {
        &self.array
    }

    /// Per-logical-row health.
    pub fn health(&self) -> &[RowHealth] {
        &self.health
    }

    /// The physical row currently backing a logical row.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::RowOutOfBounds`] for invalid logical rows.
    pub fn physical_row(&self, logical: usize) -> Result<usize, TdamError> {
        self.remap
            .get(logical)
            .copied()
            .ok_or(TdamError::RowOutOfBounds {
                row: logical,
                rows: self.data_rows,
            })
    }

    /// Columns currently masked out of the metric, ascending.
    pub fn masked_stages(&self) -> Vec<usize> {
        self.masked.iter().copied().collect()
    }

    /// Builds a bit-sliced packed view ([`crate::packed`]) of the
    /// physical array with the currently-masked columns applied: masked
    /// stages pack as **always-match**, so a row whose only damage sits
    /// in masked columns regains kernel service (a stuck column rejoins
    /// the fast path once repair masks it off).
    ///
    /// Note the semantic difference from the decode-level correction of
    /// [`ResilientArray::resolve_outcome`]: `corrected_decode` subtracts
    /// the mask count from the *raw* decode (assuming every masked column
    /// mismatched, which holds for the stuck columns masking exists for),
    /// while the packed view excludes masked columns from the compare
    /// itself. For stuck-mismatch columns the two agree exactly —
    /// `tests/packed_equiv.rs` pins this.
    pub fn packed_view(&self) -> crate::packed::PackedArray {
        crate::packed::PackedArray::build(&self.array, &self.masked)
    }

    /// The injected cell faults (physical coordinates).
    pub fn faults(&self) -> &FaultMap {
        &self.faults
    }

    fn spare_phys(&self, spare: usize) -> usize {
        self.data_rows + spare
    }

    fn ref_phys(&self, k: usize) -> usize {
        self.data_rows + self.cfg.spare_rows + k
    }

    fn physical_rows(&self) -> usize {
        self.data_rows + self.cfg.spare_rows + self.cfg.reference_rows
    }

    /// Stores a vector at a logical row (through any injected faults),
    /// with wear-aware write leveling per the configured [`WearPolicy`]:
    ///
    /// 1. **Rotation** — if the row's current physical backing has
    ///    absorbed its program-cycle budget, the logical row first
    ///    rotates onto a fresh spare (always leaving at least one spare
    ///    free for fault repair; with no spare to give, the write lands
    ///    in place).
    /// 2. **Disturb accounting** — under a non-disturb-free inhibit
    ///    scheme every *other* live row absorbs one shared-search-line
    ///    exposure per write; a row whose accumulated exposure crosses
    ///    the policy budget is refresh-rewritten from its stored values
    ///    before its decode margin can collapse, and its counter resets.
    ///
    /// The default policy never triggers either mechanism, so plain
    /// stores behave exactly as before. The returned [`WriteReport`]
    /// carries the rotation/refresh accounting (the serving runtime
    /// aggregates it into [`crate::runtime::RuntimeStats`]).
    ///
    /// # Errors
    ///
    /// Returns bounds/shape/range errors as [`TdamArray::store_cells`].
    pub fn store(&mut self, logical: usize, values: &[u8]) -> Result<WriteReport, TdamError> {
        let mut phys = self.physical_row(logical)?;
        let policy = self.cfg.wear;
        let mut rotated = false;
        if policy.rotate_after_writes > 0
            && self.writes[phys] >= policy.rotate_after_writes
            && self.health[logical] != RowHealth::Dead
        {
            // Rotate-before-write: a hot physical row hands its logical
            // row to a fresh spare before absorbing another cycle. The
            // last free spare is reserved for fault repair.
            let mut free = (0..self.cfg.spare_rows).filter(|&s| !self.spare_used[s]);
            if let (Some(spare), Some(_)) = (free.next(), free.next()) {
                self.spare_used[spare] = true;
                phys = self.spare_phys(spare);
                self.remap[logical] = phys;
                rotated = true;
            }
        }
        let cells = faulty_row(phys, values, self.array.config().encoding, &self.faults)?;
        self.array.store_cells(phys, cells)?;
        self.writes[phys] += 1;
        self.disturbs[phys] = 0;

        let mut refreshed = Vec::new();
        if policy.refresh_after_disturbs > 0 && !policy.is_disturb_free() {
            for other in 0..self.physical_rows() {
                if other == phys {
                    continue;
                }
                self.disturbs[other] += 1;
                if self.disturbs[other] >= policy.refresh_after_disturbs {
                    // Margin-restoring rewrite from the stored values; a
                    // refresh is a program cycle for the refreshed row
                    // but (being schedulable under full inhibit) does
                    // not re-expose its siblings.
                    self.rebuild_row(other)?;
                    self.writes[other] += 1;
                    self.disturbs[other] = 0;
                    refreshed.push(other);
                }
            }
        }
        Ok(WriteReport {
            physical: phys,
            rotated,
            refreshed,
        })
    }

    /// Program cycles absorbed so far by the physical row backing
    /// `logical` (wear-leveling telemetry).
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::RowOutOfBounds`] for invalid logical rows.
    pub fn row_wear(&self, logical: usize) -> Result<u64, TdamError> {
        Ok(self.writes[self.physical_row(logical)?])
    }

    /// Rebuilds a physical row's cells from its stored values and the
    /// current fault map.
    fn rebuild_row(&mut self, phys: usize) -> Result<(), TdamError> {
        let values = self.array.stored(phys)?;
        let cells = faulty_row(phys, &values, self.array.config().encoding, &self.faults)?;
        self.array.store_cells(phys, cells)
    }

    /// Injects a cell fault at *physical* `(row, stage)` and re-realizes
    /// the row.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::RowOutOfBounds`] for invalid physical rows.
    pub fn inject(&mut self, row: usize, stage: usize, kind: FaultKind) -> Result<(), TdamError> {
        if row >= self.physical_rows() {
            return Err(TdamError::RowOutOfBounds {
                row,
                rows: self.physical_rows(),
            });
        }
        self.faults.inject(row, stage, kind);
        self.rebuild_row(row)
    }

    /// Severs the chain of a physical row at `stage`: the search pulse
    /// never reaches the TDC, so the row reads maximum distance.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::RowOutOfBounds`] for invalid physical rows.
    pub fn break_stage(&mut self, row: usize, stage: usize) -> Result<(), TdamError> {
        if row >= self.physical_rows() || stage >= self.array.config().stages {
            return Err(TdamError::RowOutOfBounds {
                row,
                rows: self.physical_rows(),
            });
        }
        self.broken.insert(row);
        Ok(())
    }

    /// Sticks the shared search-line drivers of one column at the
    /// conducting level: every cell in the column — data, spare, and
    /// reference rows alike — behaves as a mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::RowOutOfBounds`] for invalid stages.
    pub fn stuck_column(&mut self, stage: usize) -> Result<(), TdamError> {
        if stage >= self.array.config().stages {
            return Err(TdamError::RowOutOfBounds {
                row: stage,
                rows: self.array.config().stages,
            });
        }
        for row in 0..self.physical_rows() {
            self.faults.inject(row, stage, FaultKind::StuckMismatch);
            self.rebuild_row(row)?;
        }
        Ok(())
    }

    /// Ages every physical row — data, spares, and reference rows alike —
    /// through the given lifetime (see [`TdamArray::age`]). Reference
    /// rows age with the data they guard, so the known-answer health
    /// probes exercise end-of-life margins rather than fresh-device ones.
    ///
    /// # Errors
    ///
    /// Propagates cell-construction errors from [`TdamArray::age`].
    pub fn age(&mut self, lifetime: &tdam_fefet::retention::Lifetime) -> Result<(), TdamError> {
        self.array.age(lifetime)
    }

    /// The corrected decode for a physical row: broken chains read
    /// maximum distance; masked columns' constant bias is subtracted.
    fn corrected_decode(&self, phys: usize, raw: usize) -> usize {
        if self.broken.contains(&phys) {
            return self.array.config().stages;
        }
        raw.saturating_sub(self.masked.len())
    }

    /// Probes one physical row: `(corrected, raw, delay)`.
    fn probe(&self, phys: usize, query: &[u8]) -> Result<(usize, usize, f64), TdamError> {
        let out = self.array.search(query)?;
        let r = &out.rows[phys];
        let raw = r.decoded_mismatches;
        Ok((self.corrected_decode(phys, raw), raw, r.chain.total_delay))
    }

    /// Known-answer + margin probes of one physical row.
    fn probe_status(&self, phys: usize) -> Result<ProbeStatus, TdamError> {
        let stages = self.array.config().stages;
        let levels = self.array.config().encoding.levels() as usize;
        let timing = *self.array.timing();
        let values = self.array.stored(phys)?;
        let complement: Vec<u8> = values
            .iter()
            .map(|&v| ((v as usize + 1) % levels) as u8)
            .collect();

        let (d_match, raw_match, t_match) = self.probe(phys, &values)?;
        let (d_comp, raw_comp, t_comp) = self.probe(phys, &complement)?;

        // Margin monitor: each probe's delay must sit near the center of
        // the decode bin it landed in. Drift moves delays off-center long
        // before a count flips.
        let tolerance = self.cfg.margin_threshold * timing.sensing_margin();
        let off_center =
            |delay: f64, raw: usize| (delay - timing.chain_delay(stages, raw)).abs() > tolerance;
        let margin_ok = self.broken.contains(&phys)
            || (!off_center(t_match, raw_match) && !off_center(t_comp, raw_comp));

        Ok(ProbeStatus {
            match_ok: d_match == 0,
            complement_ok: d_comp == stages.saturating_sub(self.masked.len()),
            margin_ok,
        })
    }

    /// Runs detection: known-answer and margin probes on every reference
    /// and data row, plus march-style column localization through the
    /// reference rows.
    ///
    /// # Errors
    ///
    /// Propagates search errors.
    pub fn check(&self) -> Result<DetectionReport, TdamError> {
        let stages = self.array.config().stages;
        let levels = self.array.config().encoding.levels() as usize;

        let mut reference_ok = true;
        let mut any_ref_suspect = false;
        for k in 0..self.cfg.reference_rows {
            if !self.probe_status(self.ref_phys(k))?.healthy() {
                reference_ok = false;
                any_ref_suspect = true;
            }
        }

        // Column localization: probe each reference row with its pattern
        // complemented at a single position. A healthy position responds
        // with +1; a position that cannot distinguish (stuck either way)
        // does not. A column is indicted only when every diagnosable
        // reference row implicates it.
        let mut suspect_stages = Vec::new();
        if any_ref_suspect && self.cfg.reference_rows > 0 {
            let mut sets: Vec<BTreeSet<usize>> = Vec::new();
            for k in 0..self.cfg.reference_rows {
                let phys = self.ref_phys(k);
                let pattern = self.array.stored(phys)?;
                let (_, base_raw, _) = self.probe(phys, &pattern)?;
                if base_raw >= stages || self.broken.contains(&phys) {
                    // A dead reference row carries no column information.
                    continue;
                }
                let mut flags = BTreeSet::new();
                for j in 0..stages {
                    if self.masked.contains(&j) {
                        continue;
                    }
                    let mut q = pattern.clone();
                    q[j] = ((q[j] as usize + 1) % levels) as u8;
                    let (_, raw, _) = self.probe(phys, &q)?;
                    if raw <= base_raw {
                        flags.insert(j);
                    }
                }
                sets.push(flags);
            }
            if let Some(first) = sets.first() {
                suspect_stages = first
                    .iter()
                    .copied()
                    .filter(|j| sets.iter().all(|s| s.contains(j)))
                    .collect();
            }
        }

        let mut suspect_rows = Vec::new();
        for logical in 0..self.data_rows {
            if self.health[logical] == RowHealth::Dead {
                continue;
            }
            if !self.probe_status(self.remap[logical])?.healthy() {
                suspect_rows.push(logical);
            }
        }

        Ok(DetectionReport {
            suspect_rows,
            suspect_stages,
            reference_ok,
        })
    }

    /// Re-programs a physical row in place through bounded-retry
    /// write-verify. Soft (drift) faults are erased by the fresh write;
    /// hard faults are re-realized on top of the achieved thresholds.
    fn reprogram(
        &mut self,
        phys: usize,
        values: &[u8],
        out: &mut RepairOutcome,
    ) -> Result<bool, TdamError> {
        let retry = self.cfg.retry;
        match self.array.program_row_with_retry(phys, values, &retry) {
            Ok((report, attempts)) => {
                out.pulse_pairs += report.pulse_pairs;
                out.program_energy += report.energy;
                out.max_write_attempts = out.max_write_attempts.max(attempts);
                self.writes[phys] += 1;
                self.disturbs[phys] = 0;
                self.faults.clear_soft(phys);
                let hard: Vec<(usize, FaultKind)> = self.faults.row_faults(phys).collect();
                if !hard.is_empty() {
                    let enc = self.array.config().encoding;
                    let mut cells = self.array.row_cells(phys)?.to_vec();
                    for (stage, kind) in hard {
                        cells[stage] = crate::faults::faulty_cell(values[stage], enc, Some(kind))?;
                    }
                    self.array.store_cells(phys, cells)?;
                }
                Ok(true)
            }
            // A device that exhausts its bounded escalation is a failed
            // attempt, not a fatal error — the caller moves on to spares.
            Err(TdamError::WriteVerify { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Repairs one suspect logical row: bounded in-place re-programming,
    /// then (if allowed) remapping through the spare pool, then graceful
    /// degradation.
    fn repair_row(
        &mut self,
        logical: usize,
        allow_spare: bool,
        out: &mut RepairOutcome,
    ) -> Result<(), TdamError> {
        let attempts = self.cfg.repair_attempts.max(1);
        for _ in 0..attempts {
            let phys = self.remap[logical];
            let values = self.array.stored(phys)?;
            if self.reprogram(phys, &values, out)? && self.probe_status(phys)?.healthy() {
                self.health[logical] = RowHealth::Repaired;
                out.reprogrammed.push(logical);
                return Ok(());
            }
        }

        let old_phys = self.remap[logical];
        let values = self.array.stored(old_phys)?;
        if allow_spare {
            for spare in 0..self.cfg.spare_rows {
                if self.spare_used[spare] {
                    continue;
                }
                let phys = self.spare_phys(spare);
                // Consumed either way: a spare that fails its probe is
                // itself defective and never offered again.
                self.spare_used[spare] = true;
                if !self.reprogram(phys, &values, out)? {
                    continue;
                }
                let status = self.probe_status(phys)?;
                if status.match_ok && status.margin_ok {
                    self.remap[logical] = phys;
                    self.health[logical] = if status.healthy() {
                        RowHealth::Remapped
                    } else {
                        RowHealth::Degraded
                    };
                    out.remapped.push((logical, phys));
                    return Ok(());
                }
            }
        }

        // No spare worked (or none allowed). A row that still *matches*
        // exactly only under-counts true mismatches: keep it, flagged.
        let status = self.probe_status(self.remap[logical])?;
        if status.match_ok {
            self.health[logical] = RowHealth::Degraded;
            out.tolerated.push(logical);
        } else {
            self.health[logical] = RowHealth::Dead;
            out.dead.push(logical);
        }
        Ok(())
    }

    /// Runs a repair pass over a detection report: indicted columns are
    /// masked, suspect reference rows re-programmed, and suspect data
    /// rows repaired in priority order (rows that cannot match first —
    /// they compete for spares; under-counting rows are tolerated rather
    /// than given a spare).
    ///
    /// # Errors
    ///
    /// Propagates search and non-verify programming errors. A device
    /// failing write-verify is handled (the row escalates to a spare or
    /// degrades), never an error here.
    pub fn repair(&mut self, detection: &DetectionReport) -> Result<RepairOutcome, TdamError> {
        let mut out = RepairOutcome::default();

        for &stage in &detection.suspect_stages {
            if self.masked.insert(stage) {
                out.newly_masked.push(stage);
            }
        }

        // Heal drifted reference rows so future checks keep a trustworthy
        // yardstick (reference rows cannot be remapped).
        for k in 0..self.cfg.reference_rows {
            let phys = self.ref_phys(k);
            if !self.probe_status(phys)?.healthy() {
                let pattern = self.array.stored(phys)?;
                if self.reprogram(phys, &pattern, &mut out)? {
                    out.refs_reprogrammed.push(k);
                }
            }
        }

        // Triage the suspects now that columns are masked: masking alone
        // may have restored some rows.
        let mut cannot_match = Vec::new();
        let mut under_counting = Vec::new();
        for &logical in &detection.suspect_rows {
            let status = self.probe_status(self.remap[logical])?;
            if status.healthy() {
                if self.health[logical] == RowHealth::Healthy {
                    continue;
                }
                self.health[logical] = RowHealth::Healthy;
                continue;
            }
            if status.match_ok && status.complement_ok {
                // Margin-only suspicion: drift caught early.
                cannot_match.push(logical);
            } else if status.match_ok {
                under_counting.push(logical);
            } else {
                cannot_match.push(logical);
            }
        }
        for &logical in &cannot_match {
            self.repair_row(logical, true, &mut out)?;
        }
        for &logical in &under_counting {
            self.repair_row(logical, false, &mut out)?;
        }
        Ok(out)
    }

    /// One background margin-scrub pass: probes every *live* physical
    /// row (data backings and reference rows) and refresh-rewrites the
    /// ones whose probe delays have drifted off the decode-bin center
    /// while the decode itself is still correct — healing retention
    /// drift *before* a count flips, which is exactly the window the
    /// margin monitor exists to catch.
    ///
    /// Rows already mis-decoding (a flipped count, a broken chain) are
    /// deliberately left alone: those need the full detection + repair
    /// triage, not a quiet rewrite that would hide them from it.
    ///
    /// # Errors
    ///
    /// Propagates search and non-verify programming errors; a device
    /// failing write-verify during its healing rewrite is counted in
    /// [`ScrubReport::failed`], never an error.
    pub fn scrub_margins(&mut self) -> Result<ScrubReport, TdamError> {
        let mut rows: Vec<usize> = self.remap.clone();
        rows.extend((0..self.cfg.reference_rows).map(|k| self.ref_phys(k)));
        let mut report = ScrubReport::default();
        for phys in rows {
            if self.broken.contains(&phys) {
                continue;
            }
            report.probed += 1;
            let status = self.probe_status(phys)?;
            if status.match_ok && status.complement_ok && !status.margin_ok {
                let values = self.array.stored(phys)?;
                let mut scratch = RepairOutcome::default();
                if self.reprogram(phys, &values, &mut scratch)? {
                    report.healed.push(phys);
                } else {
                    report.failed += 1;
                }
            }
        }
        Ok(report)
    }

    /// The current degradation accounting.
    pub fn degradation(&self) -> DegradationSummary {
        let mut repaired = 0;
        let mut remapped = 0;
        let mut degraded = 0;
        let mut dead = 0;
        for h in &self.health {
            match h {
                RowHealth::Healthy => {}
                RowHealth::Repaired => repaired += 1,
                RowHealth::Remapped => remapped += 1,
                RowHealth::Degraded => degraded += 1,
                RowHealth::Dead => dead += 1,
            }
        }
        let masked = self.masked.len();
        let level = if dead > 0 || degraded > 0 || masked > 0 {
            DegradationLevel::Degraded
        } else if remapped > 0 {
            DegradationLevel::Remapped
        } else if repaired > 0 {
            DegradationLevel::Repaired
        } else {
            DegradationLevel::Nominal
        };
        DegradationSummary {
            level,
            repaired_rows: repaired,
            remapped_rows: remapped,
            degraded_rows: degraded,
            dead_rows: dead,
            masked_stages: masked,
        }
    }

    /// Searches a query through the resilience layer: remapped rows
    /// answer from their spares, masked columns' bias is subtracted,
    /// dead rows read maximum distance and are excluded from ranking,
    /// and the result carries a degradation summary.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] or
    /// [`TdamError::ValueOutOfRange`] for malformed queries.
    pub fn search(&self, query: &[u8]) -> Result<ResilientOutcome, TdamError> {
        let out = self.array.search(query)?;
        Ok(self.resolve_outcome(&out))
    }

    /// Applies the resilience corrections (remap indirection, masked-
    /// column bias subtraction, dead-row handling, degradation summary)
    /// to a raw physical [`crate::array::SearchOutcome`].
    ///
    /// This is the second half of [`ResilientArray::search`], exposed so
    /// alternative physical search paths — notably the compiled-LUT
    /// snapshot used by the serving runtime ([`crate::runtime`]) — can
    /// produce results bit-identical to the behavioral path.
    pub fn resolve_outcome(&self, out: &crate::array::SearchOutcome) -> ResilientOutcome {
        let stages = self.array.config().stages;
        let mut rows = Vec::with_capacity(self.data_rows);
        for logical in 0..self.data_rows {
            let phys = self.remap[logical];
            let r = &out.rows[phys];
            let raw = r.decoded_mismatches;
            let decoded = if self.health[logical] == RowHealth::Dead {
                stages
            } else {
                self.corrected_decode(phys, raw)
            };
            rows.push(ResilientRow {
                decoded,
                raw_decoded: raw,
                count: r.count,
                delay: r.chain.total_delay,
                health: self.health[logical],
            });
        }
        ResilientOutcome {
            rows,
            energy: out.energy,
            latency: out.latency,
            degradation: self.degradation(),
        }
    }

    /// Fast known-answer health probe: checks only the reference rows
    /// (match + complement + margin probes), skipping the per-data-row
    /// sweep and column localization of [`ResilientArray::check`].
    /// Returns `true` when every reference row answers correctly.
    ///
    /// This is the probe the serving runtime replays between batches; a
    /// `false` here is the trigger for a full [`ResilientArray::check`] +
    /// [`ResilientArray::repair`] cycle.
    ///
    /// # Errors
    ///
    /// Propagates search errors.
    pub fn check_references(&self) -> Result<bool, TdamError> {
        for k in 0..self.cfg.reference_rows {
            if !self.probe_status(self.ref_phys(k))?.healthy() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// As [`ResilientArray::search`], with transient faults sampled from
    /// `rng`: an SL glitch adds a spurious mismatch at one column for
    /// every row that matched there; a TDC miscount slips one row's
    /// count by ±1.
    ///
    /// # Errors
    ///
    /// As [`ResilientArray::search`].
    pub fn search_with_transients(
        &self,
        query: &[u8],
        transients: &TransientFaults,
        rng: &mut StdRng,
    ) -> Result<ResilientOutcome, TdamError> {
        let mut out = self.search(query)?;
        let stages = self.array.config().stages;

        if transients.sl_glitch_rate > 0.0 && rng.gen_bool(transients.sl_glitch_rate.min(1.0)) {
            let glitch = rng.gen_range(0..stages);
            for (logical, row) in out.rows.iter_mut().enumerate() {
                if row.health == RowHealth::Dead {
                    continue;
                }
                let stored = self.array.stored(self.remap[logical])?;
                if stored[glitch] == query[glitch] {
                    row.decoded = (row.decoded + 1).min(stages);
                }
            }
        }
        if transients.tdc_miscount_rate > 0.0 {
            for row in out.rows.iter_mut() {
                if row.health == RowHealth::Dead {
                    continue;
                }
                if rng.gen_bool(transients.tdc_miscount_rate.min(1.0)) {
                    if rng.gen_bool(0.5) {
                        row.decoded = (row.decoded + 1).min(stages);
                        row.count += 1;
                    } else {
                        row.decoded = row.decoded.saturating_sub(1);
                        row.count = row.count.saturating_sub(1);
                    }
                }
            }
        }
        Ok(out)
    }
}

impl SimilarityEngine for ResilientArray {
    fn name(&self) -> &str {
        "Resilient TD-AM (spares + masking)"
    }

    fn is_quantitative(&self) -> bool {
        true
    }

    fn rows(&self) -> usize {
        self.data_rows
    }

    fn width(&self) -> usize {
        self.array.config().stages
    }

    fn bits_per_element(&self) -> u8 {
        self.array.config().encoding.bits()
    }

    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
        ResilientArray::store(self, row, values).map(|_| ())
    }

    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
        let outcome = ResilientArray::search(self, query)?;
        Ok(outcome.metrics())
    }
}

/// A fault kind swept by a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CampaignFault {
    /// Per-cell Bernoulli faults, half stuck-mismatch, half stuck-match.
    StuckMix,
    /// Per-cell stuck-mismatch faults.
    StuckMismatch,
    /// Per-cell stuck-match faults.
    StuckMatch,
    /// Per-cell V_TH drift to this remaining window fraction.
    Drift {
        /// Remaining fraction of the fresh memory window.
        window_fraction: f64,
    },
    /// Per-column stuck shared search lines (afflicts every row).
    StuckColumn,
    /// Per-cell-site chain breaks (each severs its whole row).
    BrokenStage,
    /// Transient per-row TDC ±1 miscounts at the swept rate.
    TdcMiscount,
    /// Transient SL driver glitches at the swept rate.
    SlGlitch,
}

impl CampaignFault {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Self::StuckMix => "stuck-mix",
            Self::StuckMismatch => "stuck-mismatch",
            Self::StuckMatch => "stuck-match",
            Self::Drift { .. } => "vth-drift",
            Self::StuckColumn => "stuck-column",
            Self::BrokenStage => "broken-stage",
            Self::TdcMiscount => "tdc-miscount",
            Self::SlGlitch => "sl-glitch",
        }
    }

    /// Whether the fault persists between searches (and is therefore
    /// visible to detection and repair).
    pub fn is_persistent(&self) -> bool {
        !matches!(self, Self::TdcMiscount | Self::SlGlitch)
    }
}

/// Configuration of a fault campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Geometry of the *data* array (rows = logical data rows).
    pub array: ArrayConfig,
    /// Resilience machinery wrapped around it.
    pub resilience: ResilienceConfig,
    /// Fault kinds to sweep.
    pub kinds: Vec<CampaignFault>,
    /// Fault rates to sweep (per cell / column / row-site / search,
    /// depending on the kind).
    pub fault_rates: Vec<f64>,
    /// Monte Carlo trials per grid point.
    pub trials: usize,
    /// Exact-match queries per trial.
    pub queries: usize,
    /// Whether to run detection + repair before querying.
    pub repair: bool,
    /// Campaign seed; trials derive independent streams from it.
    pub seed: u64,
}

impl CampaignConfig {
    /// The default campaign: the paper's 32-stage 2-bit chains, 16 data
    /// rows, 8 spares, 2 reference rows.
    pub fn paper_default() -> Self {
        Self {
            array: ArrayConfig::paper_default().with_stages(32).with_rows(16),
            resilience: ResilienceConfig {
                spare_rows: 8,
                ..ResilienceConfig::default()
            },
            kinds: vec![
                CampaignFault::StuckMismatch,
                CampaignFault::StuckMix,
                CampaignFault::Drift {
                    window_fraction: 0.25,
                },
            ],
            fault_rates: vec![0.001, 0.005, 0.01, 0.02],
            trials: 16,
            queries: 32,
            repair: true,
            seed: 0xD47E_2024,
        }
    }
}

/// One `(kind, rate)` grid point of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignPoint {
    /// The swept fault kind.
    pub kind: CampaignFault,
    /// The swept fault rate.
    pub rate: f64,
    /// Fraction of queries whose best row was the true nearest row.
    pub retrieval_accuracy: f64,
    /// Fraction of queries whose target row decoded its exact distance.
    pub decode_accuracy: f64,
    /// Mean rows repaired in place per trial.
    pub avg_repaired: f64,
    /// Mean rows remapped to spares per trial.
    pub avg_remapped: f64,
    /// Mean dead rows per trial.
    pub avg_dead: f64,
    /// Mean masked columns per trial.
    pub avg_masked: f64,
}

/// A full campaign result grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// One point per `(kind, rate)` pair, kinds outer, rates inner.
    pub points: Vec<CampaignPoint>,
    /// Trials per point.
    pub trials: usize,
    /// Queries per trial.
    pub queries: usize,
}

/// Integer per-trial statistics (integer so that merging in trial order
/// is exactly deterministic regardless of thread scheduling).
#[derive(Debug, Clone, Copy, Default)]
struct TrialStats {
    retrieval_hits: u64,
    decode_hits: u64,
    repaired: u64,
    remapped: u64,
    dead: u64,
    masked: u64,
}

/// SplitMix64 over the campaign seed and grid coordinates: every trial
/// gets an independent, reproducible stream.
fn trial_seed(seed: u64, kind_idx: usize, rate_idx: usize, trial: usize) -> u64 {
    let mut x = seed ^ ((kind_idx as u64) << 48) ^ ((rate_idx as u64) << 32) ^ (trial as u64);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs one seeded trial at a `(kind, rate)` grid point.
fn run_trial(
    cfg: &CampaignConfig,
    kind: CampaignFault,
    rate: f64,
    seed: u64,
) -> Result<TrialStats, TdamError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ra = ResilientArray::new(cfg.array, cfg.resilience)?;
    let data_rows = ra.data_rows();
    let stages = cfg.array.stages;
    let levels = cfg.array.encoding.levels();

    let mut data = Vec::with_capacity(data_rows);
    for row in 0..data_rows {
        let values: Vec<u8> = (0..stages).map(|_| rng.gen_range(0..levels)).collect();
        ra.store(row, &values)?;
        data.push(values);
    }

    let mut transients = TransientFaults::none();
    match kind {
        CampaignFault::StuckMix
        | CampaignFault::StuckMismatch
        | CampaignFault::StuckMatch
        | CampaignFault::Drift { .. } => {
            for row in 0..ra.data_rows() + cfg.resilience.spare_rows + cfg.resilience.reference_rows
            {
                for stage in 0..stages {
                    if !rng.gen_bool(rate) {
                        continue;
                    }
                    let concrete = match kind {
                        CampaignFault::StuckMix => {
                            if rng.gen_bool(0.5) {
                                FaultKind::StuckMismatch
                            } else {
                                FaultKind::StuckMatch
                            }
                        }
                        CampaignFault::StuckMismatch => FaultKind::StuckMismatch,
                        CampaignFault::StuckMatch => FaultKind::StuckMatch,
                        CampaignFault::Drift { window_fraction } => {
                            FaultKind::VthDrift { window_fraction }
                        }
                        _ => unreachable!(),
                    };
                    ra.inject(row, stage, concrete)?;
                }
            }
        }
        CampaignFault::StuckColumn => {
            for stage in 0..stages {
                if rng.gen_bool(rate) {
                    ra.stuck_column(stage)?;
                }
            }
        }
        CampaignFault::BrokenStage => {
            let rows = ra.data_rows() + cfg.resilience.spare_rows + cfg.resilience.reference_rows;
            for row in 0..rows {
                for stage in 0..stages {
                    if rng.gen_bool(rate) {
                        ra.break_stage(row, stage)?;
                    }
                }
            }
        }
        CampaignFault::TdcMiscount => transients.tdc_miscount_rate = rate,
        CampaignFault::SlGlitch => transients.sl_glitch_rate = rate,
    }

    if cfg.repair && kind.is_persistent() {
        let detection = ra.check()?;
        if !detection.all_clear() {
            ra.repair(&detection)?;
        }
    }

    let mut stats = TrialStats::default();
    let degradation = ra.degradation();
    stats.repaired = degradation.repaired_rows as u64;
    stats.remapped = degradation.remapped_rows as u64;
    stats.dead = degradation.dead_rows as u64;
    stats.masked = degradation.masked_stages as u64;

    for _ in 0..cfg.queries {
        let target = rng.gen_range(0..data_rows);
        let query = &data[target];
        let outcome = if kind.is_persistent() {
            ra.search(query)?
        } else {
            ra.search_with_transients(query, &transients, &mut rng)?
        };
        if outcome.best_row() == Some(target) {
            stats.retrieval_hits += 1;
        }
        if outcome.rows[target].decoded == 0 {
            stats.decode_hits += 1;
        }
    }
    Ok(stats)
}

/// Runs the full campaign grid, parallelizing trials across threads
/// through [`crate::parallel::run_chunked`]. Bit-identical for a fixed
/// seed: every trial is independently seeded from its grid coordinates
/// and integer statistics are merged in trial order.
///
/// # Errors
///
/// Propagates configuration/search errors from any trial, and
/// [`TdamError::Worker`] if a worker thread is lost.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignResult, TdamError> {
    let trials = cfg.trials.max(1);
    let queries = cfg.queries.max(1);
    let mut points = Vec::with_capacity(cfg.kinds.len() * cfg.fault_rates.len());

    for (kind_idx, &kind) in cfg.kinds.iter().enumerate() {
        for (rate_idx, &rate) in cfg.fault_rates.iter().enumerate() {
            let per_trial = crate::parallel::run_chunked(trials, None, |trial| {
                let seed = trial_seed(cfg.seed, kind_idx, rate_idx, trial);
                run_trial(cfg, kind, rate, seed)
            })?;

            let mut total = TrialStats::default();
            for stats in per_trial {
                total.retrieval_hits += stats.retrieval_hits;
                total.decode_hits += stats.decode_hits;
                total.repaired += stats.repaired;
                total.remapped += stats.remapped;
                total.dead += stats.dead;
                total.masked += stats.masked;
            }
            let samples = (trials * queries) as f64;
            points.push(CampaignPoint {
                kind,
                rate,
                retrieval_accuracy: total.retrieval_hits as f64 / samples,
                decode_accuracy: total.decode_hits as f64 / samples,
                avg_repaired: total.repaired as f64 / trials as f64,
                avg_remapped: total.remapped as f64 / trials as f64,
                avg_dead: total.dead as f64 / trials as f64,
                avg_masked: total.masked as f64 / trials as f64,
            });
        }
    }
    Ok(CampaignResult {
        points,
        trials,
        queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(data_rows: usize, stages: usize, cfg: ResilienceConfig) -> ResilientArray {
        let array = ArrayConfig::paper_default()
            .with_rows(data_rows)
            .with_stages(stages);
        ResilientArray::new(array, cfg).unwrap()
    }

    fn ramp(stages: usize, phase: usize) -> Vec<u8> {
        (0..stages).map(|j| ((j + phase) % 4) as u8).collect()
    }

    #[test]
    fn healthy_array_checks_clean_and_reports_nominal() {
        let mut ra = small(4, 16, ResilienceConfig::default());
        for r in 0..4 {
            ra.store(r, &ramp(16, r)).unwrap();
        }
        let report = ra.check().unwrap();
        assert!(report.all_clear(), "{report:?}");
        let out = ra.search(&ramp(16, 2)).unwrap();
        assert_eq!(out.best_row(), Some(2));
        assert_eq!(out.degradation.level, DegradationLevel::Nominal);
    }

    #[test]
    fn drifted_row_is_detected_and_repaired_in_place() {
        let mut ra = small(4, 16, ResilienceConfig::default());
        for r in 0..4 {
            ra.store(r, &ramp(16, r)).unwrap();
        }
        for stage in 0..16 {
            ra.inject(
                1,
                stage,
                FaultKind::VthDrift {
                    window_fraction: 0.05,
                },
            )
            .unwrap();
        }
        let report = ra.check().unwrap();
        assert!(report.suspect_rows.contains(&1), "{report:?}");
        assert!(report.suspect_stages.is_empty(), "{report:?}");

        let repair = ra.repair(&report).unwrap();
        assert!(repair.reprogrammed.contains(&1), "{repair:?}");
        assert!(repair.remapped.is_empty());
        assert_eq!(ra.health()[1], RowHealth::Repaired);
        assert!(ra.check().unwrap().all_clear());

        let out = ra.search(&ramp(16, 1)).unwrap();
        assert_eq!(out.best_row(), Some(1));
        assert_eq!(out.rows[1].decoded, 0);
        assert_eq!(out.degradation.level, DegradationLevel::Repaired);
    }

    #[test]
    fn stuck_mismatch_row_remaps_to_a_spare() {
        let mut ra = small(3, 16, ResilienceConfig::default());
        for r in 0..3 {
            ra.store(r, &ramp(16, r)).unwrap();
        }
        ra.inject(0, 5, FaultKind::StuckMismatch).unwrap();

        let report = ra.check().unwrap();
        assert_eq!(report.suspect_rows, vec![0]);
        let repair = ra.repair(&report).unwrap();
        assert_eq!(repair.remapped.len(), 1, "{repair:?}");
        let (logical, phys) = repair.remapped[0];
        assert_eq!(logical, 0);
        assert!(phys >= 3, "remapped to a spare, got {phys}");
        assert_eq!(ra.health()[0], RowHealth::Remapped);
        assert_eq!(ra.physical_row(0).unwrap(), phys);

        let out = ra.search(&ramp(16, 0)).unwrap();
        assert_eq!(out.best_row(), Some(0));
        assert_eq!(out.rows[0].decoded, 0);
        assert_eq!(out.degradation.level, DegradationLevel::Remapped);
        assert!(ra.check().unwrap().all_clear());
    }

    #[test]
    fn stuck_column_is_localized_and_masked_not_remapped() {
        let mut ra = small(4, 16, ResilienceConfig::default());
        for r in 0..4 {
            ra.store(r, &ramp(16, r)).unwrap();
        }
        ra.stuck_column(7).unwrap();

        let report = ra.check().unwrap();
        assert!(!report.reference_ok);
        assert_eq!(report.suspect_stages, vec![7], "{report:?}");

        let repair = ra.repair(&report).unwrap();
        assert_eq!(repair.newly_masked, vec![7]);
        assert!(
            repair.remapped.is_empty(),
            "a column fault must not burn spares: {repair:?}"
        );
        assert_eq!(ra.masked_stages(), vec![7]);

        // Masking restores exact decodes (the constant bias is removed).
        let out = ra.search(&ramp(16, 2)).unwrap();
        assert_eq!(out.best_row(), Some(2));
        assert_eq!(out.rows[2].decoded, 0);
        assert_eq!(out.degradation.level, DegradationLevel::Degraded);
        assert_eq!(out.degradation.masked_stages, 1);
        assert!(ra.check().unwrap().all_clear());
    }

    #[test]
    fn broken_row_reads_max_distance_and_remaps() {
        let mut ra = small(3, 16, ResilienceConfig::default());
        for r in 0..3 {
            ra.store(r, &ramp(16, r)).unwrap();
        }
        ra.break_stage(2, 9).unwrap();
        let out = ra.search(&ramp(16, 2)).unwrap();
        assert_eq!(out.rows[2].decoded, 16, "severed chain counts to the cap");
        assert_ne!(out.best_row(), Some(2));

        let report = ra.check().unwrap();
        assert!(report.suspect_rows.contains(&2));
        ra.repair(&report).unwrap();
        assert_eq!(ra.health()[2], RowHealth::Remapped);
        let out = ra.search(&ramp(16, 2)).unwrap();
        assert_eq!(out.best_row(), Some(2));
        assert_eq!(out.rows[2].decoded, 0);
    }

    #[test]
    fn spare_exhaustion_degrades_gracefully_to_dead_rows() {
        let cfg = ResilienceConfig {
            spare_rows: 1,
            ..ResilienceConfig::default()
        };
        let mut ra = small(3, 16, cfg);
        for r in 0..3 {
            ra.store(r, &ramp(16, r)).unwrap();
        }
        ra.inject(0, 3, FaultKind::StuckMismatch).unwrap();
        ra.inject(1, 4, FaultKind::StuckMismatch).unwrap();

        let report = ra.check().unwrap();
        let repair = ra.repair(&report).unwrap();
        assert_eq!(repair.remapped.len(), 1, "{repair:?}");
        assert_eq!(repair.dead.len(), 1, "{repair:?}");

        let dead = repair.dead[0];
        let out = ra.search(&ramp(16, dead)).unwrap();
        assert_eq!(out.rows[dead].decoded, 16);
        assert_ne!(out.best_row(), Some(dead), "dead rows never rank");
        assert_eq!(out.degradation.level, DegradationLevel::Degraded);
        assert_eq!(out.degradation.dead_rows, 1);

        // The surviving rows still answer exactly.
        let alive = repair.remapped[0].0;
        let out = ra.search(&ramp(16, alive)).unwrap();
        assert_eq!(out.best_row(), Some(alive));
        assert_eq!(out.rows[alive].decoded, 0);
    }

    #[test]
    fn stuck_match_row_is_tolerated_without_burning_spares() {
        let cfg = ResilienceConfig {
            spare_rows: 1,
            ..ResilienceConfig::default()
        };
        let mut ra = small(2, 16, cfg);
        for r in 0..2 {
            ra.store(r, &ramp(16, r)).unwrap();
        }
        ra.inject(0, 2, FaultKind::StuckMatch).unwrap();
        let report = ra.check().unwrap();
        assert!(report.suspect_rows.contains(&0));
        let repair = ra.repair(&report).unwrap();
        assert_eq!(repair.tolerated, vec![0], "{repair:?}");
        assert!(repair.remapped.is_empty(), "{repair:?}");
        assert_eq!(ra.health()[0], RowHealth::Degraded);

        // Exact retrieval still works; distances may under-count.
        let out = ra.search(&ramp(16, 0)).unwrap();
        assert_eq!(out.best_row(), Some(0));
        assert_eq!(out.rows[0].decoded, 0);
    }

    #[test]
    fn transient_faults_perturb_by_at_most_one_count_each() {
        let mut ra = small(2, 16, ResilienceConfig::default());
        for r in 0..2 {
            ra.store(r, &ramp(16, r)).unwrap();
        }
        let t = TransientFaults {
            tdc_miscount_rate: 1.0,
            sl_glitch_rate: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let clean = ra.search(&ramp(16, 0)).unwrap();
        for _ in 0..32 {
            let noisy = ra
                .search_with_transients(&ramp(16, 0), &t, &mut rng)
                .unwrap();
            for (c, n) in clean.rows.iter().zip(&noisy.rows) {
                let diff = (c.decoded as i64 - n.decoded as i64).abs();
                assert!(diff <= 2, "glitch + miscount move at most 2: {diff}");
            }
        }
    }

    #[test]
    fn engine_trait_hides_dead_rows_from_distances() {
        let cfg = ResilienceConfig {
            spare_rows: 0,
            ..ResilienceConfig::default()
        };
        let mut ra = small(2, 16, cfg);
        for r in 0..2 {
            ra.store(r, &ramp(16, r)).unwrap();
        }
        ra.inject(0, 1, FaultKind::StuckMismatch).unwrap();
        let report = ra.check().unwrap();
        ra.repair(&report).unwrap();
        assert_eq!(ra.health()[0], RowHealth::Dead);

        let metrics = SimilarityEngine::search(&mut ra, &ramp(16, 0)).unwrap();
        assert_eq!(metrics.distances[0], None);
        assert_eq!(metrics.best_row, Some(1));
    }

    #[test]
    fn default_wear_policy_is_inert() {
        let mut ra = small(2, 16, ResilienceConfig::default());
        assert!(ResilienceConfig::default().wear.is_disturb_free());
        for round in 0..20 {
            let report = ra.store(0, &ramp(16, round % 4)).unwrap();
            assert!(!report.rotated);
            assert!(report.refreshed.is_empty());
            assert_eq!(report.physical_writes(), 1);
        }
        assert_eq!(ra.physical_row(0).unwrap(), 0, "no rotation by default");
        assert_eq!(ra.row_wear(0).unwrap(), 20);
        assert_eq!(ra.search(&ramp(16, 3)).unwrap().best_row(), Some(0));
    }

    #[test]
    fn hot_rows_rotate_onto_spares_and_keep_answering() {
        let cfg = ResilienceConfig {
            spare_rows: 4,
            wear: WearPolicy {
                rotate_after_writes: 3,
                ..WearPolicy::aggressive()
            },
            ..ResilienceConfig::default()
        };
        let mut ra = small(2, 16, cfg);
        ra.store(1, &ramp(16, 1)).unwrap();
        let mut rotations = 0;
        for round in 0..4 {
            let report = ra.store(0, &ramp(16, round % 4)).unwrap();
            rotations += report.rotated as usize;
        }
        assert_eq!(rotations, 1, "4th write crosses the 3-write budget");
        let phys = ra.physical_row(0).unwrap();
        assert!(phys >= 2, "rotated onto a spare, got {phys}");
        assert_eq!(ra.health()[0], RowHealth::Healthy, "rotation is not damage");
        assert_eq!(ra.degradation().level, DegradationLevel::Nominal);
        // The rotated row serves its latest contents exactly.
        let out = ra.search(&ramp(16, 3)).unwrap();
        assert_eq!(out.best_row(), Some(0));
        assert_eq!(out.rows[0].decoded, 0);
        assert_eq!(ra.search(&ramp(16, 1)).unwrap().best_row(), Some(1));
    }

    #[test]
    fn rotation_reserves_the_last_spare_for_repair() {
        let cfg = ResilienceConfig {
            spare_rows: 1,
            wear: WearPolicy {
                rotate_after_writes: 1,
                ..WearPolicy::aggressive()
            },
            ..ResilienceConfig::default()
        };
        let mut ra = small(1, 16, cfg);
        for round in 0..5 {
            let report = ra.store(0, &ramp(16, round % 4)).unwrap();
            assert!(!report.rotated, "a lone spare is reserved for repair");
        }
        assert_eq!(ra.physical_row(0).unwrap(), 0);
    }

    #[test]
    fn disturb_budget_triggers_refresh_rewrites() {
        let wear = WearPolicy {
            rotate_after_writes: 0,
            refresh_after_disturbs: 4,
            ..WearPolicy::aggressive()
        };
        assert!(!wear.is_disturb_free(), "V/2 at 5 V must charge siblings");
        let cfg = ResilienceConfig {
            spare_rows: 0,
            wear,
            ..ResilienceConfig::default()
        };
        let mut ra = small(2, 16, cfg);
        ra.store(1, &ramp(16, 1)).unwrap();
        // Hammer row 0: after 4 exposures every sibling row (row 1 and
        // the references) refresh-rewrites in the same call.
        let mut refreshes = 0;
        for round in 0..4 {
            let report = ra.store(0, &ramp(16, round % 4)).unwrap();
            refreshes += report.refreshed.len();
            if round == 3 {
                assert!(report.refreshed.contains(&1), "{report:?}");
                assert_eq!(report.physical_writes(), 1 + report.refreshed.len());
            }
        }
        assert_eq!(refreshes, 3, "row 1 plus two reference rows");
        // Refreshed rows keep serving exactly, and the health machinery
        // still sees a clean array.
        assert_eq!(ra.search(&ramp(16, 1)).unwrap().best_row(), Some(1));
        assert!(ra.check().unwrap().all_clear());
    }

    #[test]
    fn campaign_is_bit_identical_under_a_fixed_seed() {
        let cfg = CampaignConfig {
            array: ArrayConfig::paper_default().with_stages(16).with_rows(4),
            resilience: ResilienceConfig {
                spare_rows: 2,
                ..ResilienceConfig::default()
            },
            kinds: vec![CampaignFault::StuckMix, CampaignFault::TdcMiscount],
            fault_rates: vec![0.01, 0.05],
            trials: 4,
            queries: 8,
            repair: true,
            seed: 42,
        };
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a, b, "campaigns must be reproducible");
        assert_eq!(a.points.len(), 4);
    }

    #[test]
    fn campaign_repair_restores_decode_accuracy_at_one_percent_hard_faults() {
        let base = CampaignConfig {
            array: ArrayConfig::paper_default().with_stages(32).with_rows(8),
            resilience: ResilienceConfig {
                spare_rows: 8,
                ..ResilienceConfig::default()
            },
            kinds: vec![CampaignFault::StuckMismatch],
            fault_rates: vec![0.01],
            trials: 4,
            queries: 16,
            repair: true,
            seed: 1234,
        };
        let repaired = run_campaign(&base).unwrap().points[0];
        let unrepaired = run_campaign(&CampaignConfig {
            repair: false,
            ..base
        })
        .unwrap()
        .points[0];

        assert!(
            unrepaired.decode_accuracy < 0.95,
            "1% stuck-mismatch must measurably degrade: {:.3}",
            unrepaired.decode_accuracy
        );
        assert!(
            repaired.decode_accuracy >= 0.99,
            "repair must restore decode accuracy: {:.3}",
            repaired.decode_accuracy
        );
        assert!(repaired.avg_remapped > 0.0 || repaired.avg_repaired > 0.0);
    }
}
