//! The 2-FeFET multi-bit IMC cell (paper Fig. 2).
//!
//! Two FeFETs `F_A`, `F_B` sit in parallel between the match node (MN) and
//! ground, with a PMOS precharging MN to `V_DD`. `F_A` is programmed to
//! `V_TH[d]` for stored value `d` and driven by `V_SL[q]` for query `q`;
//! `F_B` stores and is driven with *reversed* indices. The geometry of the
//! two ladders makes the cell a three-way comparator:
//!
//! - `q == d` — both FeFETs stay below threshold, MN holds `V_DD` (match);
//! - `q > d`  — `F_A` conducts and discharges MN;
//! - `q < d`  — `F_B` conducts and discharges MN.
//!
//! With the paper's 2-bit values (`V_TH` = 0.2/0.6/1.0/1.4 V, `V_SL` =
//! 0/0.4/0.8/1.2 V) a one-level mismatch leaves 0.2 V of overdrive on the
//! conducting device.

use crate::config::TechParams;
use crate::encoding::Encoding;
use crate::TdamError;
use serde::{Deserialize, Serialize};
use tdam_ckt::netlist::{Netlist, NodeId};
use tdam_ckt::waveform::Waveform;
use tdam_fefet::mosfet::{ids, MosParams};

/// Which of the two FeFETs conducts on a mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConductingFefet {
    /// `F_A` conducts: the query value is larger than the stored value.
    A,
    /// `F_B` conducts: the query value is smaller than the stored value.
    B,
}

/// The threshold/search-line voltage ladders for a given element encoding.
///
/// The ladder spans the FeFET programming window (0.2–1.4 V); search-line
/// levels sit half a step below the matching thresholds so a matching cell
/// has negative overdrive on both devices and any mismatch has at least
/// half a step of positive overdrive on exactly one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltageLadder {
    vth: Vec<f64>,
    vsl: Vec<f64>,
}

impl VoltageLadder {
    /// Builds the ladder for `encoding`.
    ///
    /// For the paper's 2-bit encoding this reproduces exactly
    /// `V_TH0..V_TH3` = 0.2/0.6/1.0/1.4 V and `V_SL0..V_SL3` =
    /// 0/0.4/0.8/1.2 V.
    pub fn for_encoding(encoding: Encoding) -> Self {
        let levels = encoding.levels() as usize;
        let (lo, hi) = (
            tdam_fefet::PAPER_VTH[0],
            tdam_fefet::PAPER_VTH[tdam_fefet::PAPER_STATES - 1],
        );
        let step = if levels > 1 {
            (hi - lo) / (levels - 1) as f64
        } else {
            hi - lo
        };
        let vth: Vec<f64> = (0..levels).map(|i| lo + step * i as f64).collect();
        let vsl: Vec<f64> = vth.iter().map(|v| v - step / 2.0).collect();
        Self { vth, vsl }
    }

    /// Threshold voltage programmed for level `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the ladder.
    pub fn vth(&self, i: u8) -> f64 {
        self.vth[i as usize]
    }

    /// Search-line voltage applied for level `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the ladder.
    pub fn vsl(&self, i: u8) -> f64 {
        self.vsl[i as usize]
    }

    /// Number of levels.
    pub fn levels(&self) -> u8 {
        self.vth.len() as u8
    }

    /// The step between adjacent ladder levels, volts.
    pub fn step(&self) -> f64 {
        if self.vth.len() > 1 {
            self.vth[1] - self.vth[0]
        } else {
            0.0
        }
    }
}

/// Result of evaluating a cell against a query value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Which FeFET conducts, or `None` on a match.
    pub conducting: Option<ConductingFefet>,
    /// Gate overdrive (`V_SL − V_TH`) of `F_A`, volts.
    pub overdrive_a: f64,
    /// Gate overdrive of `F_B`, volts.
    pub overdrive_b: f64,
}

impl CellOutcome {
    /// Whether the cell reports a match (MN stays at `V_DD`).
    pub fn is_match(&self) -> bool {
        self.conducting.is_none()
    }

    /// Overdrive of the conducting FeFET (`None` on a match).
    pub fn conducting_overdrive(&self) -> Option<f64> {
        self.conducting.map(|w| match w {
            ConductingFefet::A => self.overdrive_a,
            ConductingFefet::B => self.overdrive_b,
        })
    }
}

/// A 2-FeFET multi-bit IMC cell holding one stored element.
///
/// # Examples
///
/// ```
/// use tdam::cell::Cell;
/// use tdam::Encoding;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cell = Cell::new(1, Encoding::paper_default())?;
/// assert!(cell.evaluate(1)?.is_match());
/// assert!(!cell.evaluate(0)?.is_match());
/// assert!(!cell.evaluate(2)?.is_match());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    stored: u8,
    encoding: Encoding,
    ladder: VoltageLadder,
    /// Actual programmed thresholds (may deviate from nominal under
    /// variation): `(F_A, F_B)`.
    vth_actual: (f64, f64),
}

impl Cell {
    /// Creates a cell storing `value` with nominal (variation-free)
    /// thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::ValueOutOfRange`] if `value` does not fit the
    /// encoding.
    pub fn new(value: u8, encoding: Encoding) -> Result<Self, TdamError> {
        encoding.validate(&[value])?;
        let ladder = VoltageLadder::for_encoding(encoding);
        let rev = encoding.levels() - 1 - value;
        let vth_actual = (ladder.vth(value), ladder.vth(rev));
        Ok(Self {
            stored: value,
            encoding,
            ladder,
            vth_actual,
        })
    }

    /// Creates a cell with explicitly perturbed thresholds (Monte Carlo).
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::ValueOutOfRange`] if `value` does not fit the
    /// encoding.
    pub fn with_vth(
        value: u8,
        encoding: Encoding,
        vth_a: f64,
        vth_b: f64,
    ) -> Result<Self, TdamError> {
        let mut cell = Self::new(value, encoding)?;
        cell.vth_actual = (vth_a, vth_b);
        Ok(cell)
    }

    /// The stored element value.
    pub fn stored(&self) -> u8 {
        self.stored
    }

    /// The element encoding.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// The nominal voltage ladder in use.
    pub fn ladder(&self) -> &VoltageLadder {
        &self.ladder
    }

    /// The actual `(F_A, F_B)` threshold voltages.
    pub fn vth_actual(&self) -> (f64, f64) {
        self.vth_actual
    }

    /// Whether the cell's thresholds sit exactly on the nominal ladder
    /// (no variation). Nominal cells take a fast evaluation path in
    /// [`crate::chain::DelayChain::evaluate`].
    pub fn is_nominal(&self) -> bool {
        let rev = self.reversed(self.stored);
        self.vth_actual.0 == self.ladder.vth(self.stored)
            && self.vth_actual.1 == self.ladder.vth(rev)
    }

    /// The reversed index `F_B` is programmed/driven with for level `v`.
    fn reversed(&self, v: u8) -> u8 {
        self.encoding.levels() - 1 - v
    }

    /// Evaluates the cell against query value `q` using the actual
    /// (possibly perturbed) thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::ValueOutOfRange`] if `q` does not fit the
    /// encoding.
    pub fn evaluate(&self, q: u8) -> Result<CellOutcome, TdamError> {
        self.encoding.validate(&[q])?;
        let v_sl_a = self.ladder.vsl(q);
        let v_sl_b = self.ladder.vsl(self.reversed(q));
        let overdrive_a = v_sl_a - self.vth_actual.0;
        let overdrive_b = v_sl_b - self.vth_actual.1;
        let conducting = if overdrive_a > 0.0 && overdrive_a >= overdrive_b {
            Some(ConductingFefet::A)
        } else if overdrive_b > 0.0 {
            Some(ConductingFefet::B)
        } else {
            None
        };
        Ok(CellOutcome {
            conducting,
            overdrive_a,
            overdrive_b,
        })
    }

    /// Match-node discharge current for query `q` at the given MN voltage,
    /// amperes (sum of both FeFETs, including subthreshold leakage).
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::ValueOutOfRange`] if `q` does not fit the
    /// encoding.
    pub fn discharge_current(&self, q: u8, v_mn: f64, mos: &MosParams) -> Result<f64, TdamError> {
        self.encoding.validate(&[q])?;
        let v_sl_a = self.ladder.vsl(q);
        let v_sl_b = self.ladder.vsl(self.reversed(q));
        let i_a = ids(&mos.with_vth(self.vth_actual.0), v_sl_a, v_mn).id;
        let i_b = ids(&mos.with_vth(self.vth_actual.1), v_sl_b, v_mn).id;
        Ok(i_a + i_b)
    }

    /// Builds a standalone cell test circuit: precharge PMOS (active-low
    /// pulse on `pre`), both FeFETs as threshold-shifted MOSFETs, MN node
    /// capacitance, and search-line sources asserting the query after
    /// precharge. Returns the netlist; interesting nodes are named
    /// `"mn"`, `"sla"`, `"slb"`, `"pre"`.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::ValueOutOfRange`] if `q` does not fit the
    /// encoding.
    pub fn build_netlist(&self, q: u8, tech: &TechParams) -> Result<Netlist, TdamError> {
        self.encoding.validate(&[q])?;
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let mn = nl.node("mn");
        let sla = nl.node("sla");
        let slb = nl.node("slb");
        let pre = nl.node("pre");

        nl.vsource("VDD", vdd, Netlist::GND, Waveform::dc(tech.vdd));
        // Precharge: active-low pulse 0..1 ns.
        nl.vsource(
            "VPRE",
            pre,
            Netlist::GND,
            Waveform::Pwl(vec![(0.0, 0.0), (1.0e-9, 0.0), (1.05e-9, tech.vdd)]),
        );
        // Search lines assert at 1.2 ns (after precharge releases).
        let v_sl_a = self.ladder.vsl(q);
        let v_sl_b = self.ladder.vsl(self.reversed(q));
        nl.vsource(
            "VSLA",
            sla,
            Netlist::GND,
            Waveform::Pwl(vec![(0.0, 0.0), (1.2e-9, 0.0), (1.25e-9, v_sl_a)]),
        );
        nl.vsource(
            "VSLB",
            slb,
            Netlist::GND,
            Waveform::Pwl(vec![(0.0, 0.0), (1.2e-9, 0.0), (1.25e-9, v_sl_b)]),
        );

        // Precharge PMOS: source at VDD, drain at MN, gate at PRE.
        nl.mosfet("MPRE", mn, pre, vdd, tech.pmos);
        // The two FeFETs (read mode = MOSFET with programmed vth).
        let fefet_mos: NodeId = mn;
        nl.mosfet(
            "FA",
            fefet_mos,
            sla,
            Netlist::GND,
            tech.nmos.with_vth(self.vth_actual.0),
        );
        nl.mosfet(
            "FB",
            fefet_mos,
            slb,
            Netlist::GND,
            tech.nmos.with_vth(self.vth_actual.1),
        );
        nl.capacitor("CMN", mn, Netlist::GND, tech.c_mn)
            .map_err(TdamError::from)?;
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tdam_ckt::analysis::{TranConfig, Transient};

    fn enc2() -> Encoding {
        Encoding::paper_default()
    }

    #[test]
    fn ladder_matches_paper_voltages() {
        let ladder = VoltageLadder::for_encoding(enc2());
        for (i, (&vth, &vsl)) in tdam_fefet::PAPER_VTH
            .iter()
            .zip(tdam_fefet::PAPER_VSL.iter())
            .enumerate()
        {
            assert!((ladder.vth(i as u8) - vth).abs() < 1e-12);
            assert!((ladder.vsl(i as u8) - vsl).abs() < 1e-12);
        }
        assert!((ladder.step() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ladder_scales_to_other_precisions() {
        for bits in 1..=4u8 {
            let enc = Encoding::new(bits).unwrap();
            let ladder = VoltageLadder::for_encoding(enc);
            assert_eq!(ladder.levels(), enc.levels());
            // Full window is always spanned.
            assert!((ladder.vth(0) - 0.2).abs() < 1e-12);
            assert!((ladder.vth(enc.levels() - 1) - 1.4).abs() < 1e-12);
        }
    }

    #[test]
    fn truth_table_2bit() {
        // Full 4x4 truth table: match iff q == d; F_A iff q > d; F_B iff
        // q < d. This is Fig. 2(d-f) exhaustively.
        for d in 0..4u8 {
            let cell = Cell::new(d, enc2()).unwrap();
            for q in 0..4u8 {
                let out = cell.evaluate(q).unwrap();
                match q.cmp(&d) {
                    std::cmp::Ordering::Equal => {
                        assert!(out.is_match(), "d={d} q={q} should match")
                    }
                    std::cmp::Ordering::Greater => {
                        assert_eq!(out.conducting, Some(ConductingFefet::A), "d={d} q={q}")
                    }
                    std::cmp::Ordering::Less => {
                        assert_eq!(out.conducting, Some(ConductingFefet::B), "d={d} q={q}")
                    }
                }
            }
        }
    }

    #[test]
    fn match_has_negative_overdrive_margin() {
        for d in 0..4u8 {
            let cell = Cell::new(d, enc2()).unwrap();
            let out = cell.evaluate(d).unwrap();
            assert!(out.overdrive_a <= -0.19, "margin A {}", out.overdrive_a);
            assert!(out.overdrive_b <= -0.19, "margin B {}", out.overdrive_b);
        }
    }

    #[test]
    fn adjacent_mismatch_overdrive_is_half_step() {
        let cell = Cell::new(1, enc2()).unwrap();
        let out = cell.evaluate(2).unwrap();
        assert!((out.conducting_overdrive().unwrap() - 0.2).abs() < 1e-12);
        // Larger mismatch distance → more overdrive.
        let out3 = cell.evaluate(3).unwrap();
        assert!(out3.conducting_overdrive().unwrap() > out.conducting_overdrive().unwrap());
    }

    #[test]
    fn variation_can_flip_marginal_match() {
        // Shift F_A's vth down by more than the margin: a nominal match
        // becomes a (false) mismatch.
        let cell = Cell::with_vth(1, enc2(), 0.6 - 0.25, 1.0 - 0.25).unwrap();
        let out = cell.evaluate(1).unwrap();
        assert!(!out.is_match(), "excess vth shift must break the match");
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Cell::new(4, enc2()).is_err());
        let cell = Cell::new(0, enc2()).unwrap();
        assert!(cell.evaluate(4).is_err());
    }

    #[test]
    fn discharge_current_match_vs_mismatch() {
        let tech = TechParams::nominal_40nm();
        let cell = Cell::new(1, enc2()).unwrap();
        let i_match = cell.discharge_current(1, tech.vdd, &tech.nmos).unwrap();
        let i_mis = cell.discharge_current(2, tech.vdd, &tech.nmos).unwrap();
        assert!(
            i_mis / i_match > 100.0,
            "mismatch current {i_mis} should dwarf match leakage {i_match}"
        );
    }

    #[test]
    fn circuit_match_holds_mn_mismatch_discharges() {
        // The Fig. 2(d-f) experiment, in the circuit simulator: store '1',
        // query 0/1/2; MN must hold VDD only for query 1.
        let tech = TechParams::nominal_40nm();
        let cell = Cell::new(1, enc2()).unwrap();
        for q in [0u8, 1, 2] {
            let nl = cell.build_netlist(q, &tech).unwrap();
            let res = Transient::new(&nl, TranConfig::until(6e-9).with_max_step(20e-12))
                .run()
                .unwrap();
            let v_mn_end = res.trace("mn").unwrap().last_value();
            if q == 1 {
                assert!(
                    v_mn_end > tech.vdd * 0.9,
                    "match must hold MN at VDD, got {v_mn_end}"
                );
            } else {
                assert!(
                    v_mn_end < tech.vdd * 0.1,
                    "mismatch (q={q}) must discharge MN, got {v_mn_end}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn behavioral_matches_hamming(d in 0u8..4, q in 0u8..4) {
            let cell = Cell::new(d, enc2()).unwrap();
            let out = cell.evaluate(q).unwrap();
            prop_assert_eq!(out.is_match(), d == q);
        }

        #[test]
        fn higher_precision_truth_table(bits in 1u8..=4, ds in 0u8..16, qs in 0u8..16) {
            let enc = Encoding::new(bits).unwrap();
            let levels = enc.levels();
            let (d, q) = (ds % levels, qs % levels);
            let cell = Cell::new(d, enc).unwrap();
            let out = cell.evaluate(q).unwrap();
            prop_assert_eq!(out.is_match(), d == q, "bits={} d={} q={}", bits, d, q);
            match d.cmp(&q) {
                std::cmp::Ordering::Less => prop_assert_eq!(out.conducting, Some(ConductingFefet::A)),
                std::cmp::Ordering::Greater => prop_assert_eq!(out.conducting, Some(ConductingFefet::B)),
                std::cmp::Ordering::Equal => prop_assert_eq!(out.conducting, None),
            }
        }
    }
}
