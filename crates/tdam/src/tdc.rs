//! Time-to-digital conversion: the counter-based sensing model.
//!
//! One of time-domain computing's core selling points (Sec. I of the
//! paper) is that the output — a time interval — converts to digital with
//! a plain counter instead of an ADC. The counter runs on a reference
//! clock while the delayed pulse is in flight; the final count *is* the
//! similarity result. Resolution is the reference period; to distinguish
//! adjacent mismatch counts it must not exceed `d_C`.

use crate::timing::StageTiming;
use crate::TdamError;
use serde::{Deserialize, Serialize};

/// A counter-based time-to-digital converter.
///
/// # Examples
///
/// ```
/// use tdam::tdc::CounterTdc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tdc = CounterTdc::new(10e-12, 0.5e-15, 2.0e-15)?;
/// assert_eq!(tdc.convert(95e-12), 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterTdc {
    /// Reference clock period = one LSB of the conversion, seconds.
    pub resolution: f64,
    /// Counter energy per clock tick, joules.
    pub e_per_count: f64,
    /// Fixed per-conversion energy (latch + reset), joules.
    pub e_static: f64,
}

impl CounterTdc {
    /// Creates a TDC.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::InvalidConfig`] for a non-positive resolution
    /// or negative energies.
    pub fn new(resolution: f64, e_per_count: f64, e_static: f64) -> Result<Self, TdamError> {
        if !resolution.is_finite() || resolution <= 0.0 {
            return Err(TdamError::InvalidConfig {
                what: "TDC resolution must be positive and finite",
            });
        }
        if e_per_count < 0.0 || e_static < 0.0 {
            return Err(TdamError::InvalidConfig {
                what: "TDC energies must be nonnegative",
            });
        }
        Ok(Self {
            resolution,
            e_per_count,
            e_static,
        })
    }

    /// A TDC matched to a stage calibration: resolution = `d_C` (one count
    /// per mismatch), ripple-counter tick energy scaled as a small digital
    /// block at the same supply.
    ///
    /// # Errors
    ///
    /// As [`CounterTdc::new`].
    pub fn matched(timing: &StageTiming) -> Result<Self, TdamError> {
        // A ~6-bit ripple counter: the LSB flop toggles every tick, bit k
        // every 2^k ticks, so ~2 flop toggles per count ≈ 1 fF effective.
        let c_eff = 1e-15;
        Self::new(
            timing.d_c,
            c_eff * timing.vdd * timing.vdd,
            2.0 * c_eff * timing.vdd * timing.vdd,
        )
    }

    /// Converts a time interval to a count (floor of interval/LSB).
    pub fn convert(&self, interval: f64) -> u64 {
        if interval <= 0.0 {
            0
        } else {
            (interval / self.resolution) as u64
        }
    }

    /// Energy of one conversion over `interval`, joules.
    pub fn conversion_energy(&self, interval: f64) -> f64 {
        self.e_static + self.convert(interval) as f64 * self.e_per_count
    }

    /// Decodes a mismatch count from a measured total delay for a chain of
    /// `stages` with the given `timing` (counter referenced to the
    /// zero-mismatch baseline).
    pub fn decode_mismatches(&self, timing: &StageTiming, stages: usize, delay: f64) -> usize {
        let base = 2.0 * stages as f64 * timing.d_inv;
        let excess = (delay - base).max(0.0);
        (((excess / timing.d_c) + 0.5) as usize).min(stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TechParams;

    fn timing() -> StageTiming {
        StageTiming::analytic(&TechParams::nominal_40nm(), 6e-15).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(CounterTdc::new(0.0, 0.0, 0.0).is_err());
        assert!(CounterTdc::new(-1.0, 0.0, 0.0).is_err());
        assert!(CounterTdc::new(1e-12, -1.0, 0.0).is_err());
        assert!(CounterTdc::new(1e-12, 0.0, -1.0).is_err());
        assert!(CounterTdc::new(1e-12, 0.0, 0.0).is_ok());
    }

    #[test]
    fn convert_floors() {
        let tdc = CounterTdc::new(10e-12, 0.0, 0.0).unwrap();
        assert_eq!(tdc.convert(0.0), 0);
        assert_eq!(tdc.convert(-1.0), 0);
        assert_eq!(tdc.convert(9.9e-12), 0);
        assert_eq!(tdc.convert(10.1e-12), 1);
        assert_eq!(tdc.convert(105e-12), 10);
    }

    #[test]
    fn matched_resolution_equals_dc() {
        let t = timing();
        let tdc = CounterTdc::matched(&t).unwrap();
        assert_eq!(tdc.resolution, t.d_c);
    }

    #[test]
    fn decode_recovers_counts() {
        let t = timing();
        let tdc = CounterTdc::matched(&t).unwrap();
        for n_mis in [0usize, 1, 5, 31] {
            let delay = t.chain_delay(32, n_mis);
            assert_eq!(tdc.decode_mismatches(&t, 32, delay), n_mis);
        }
    }

    #[test]
    fn decode_tolerates_margin_error() {
        let t = timing();
        let tdc = CounterTdc::matched(&t).unwrap();
        let delay = t.chain_delay(32, 7) + 0.45 * t.d_c;
        assert_eq!(tdc.decode_mismatches(&t, 32, delay), 7);
        let delay = t.chain_delay(32, 7) - 0.45 * t.d_c;
        assert_eq!(tdc.decode_mismatches(&t, 32, delay), 7);
    }

    #[test]
    fn conversion_energy_scales_with_interval() {
        let tdc = CounterTdc::new(10e-12, 1e-15, 5e-15).unwrap();
        let e1 = tdc.conversion_energy(100e-12);
        let e2 = tdc.conversion_energy(200e-12);
        assert!((e1 - (5e-15 + 10.0 * 1e-15)).abs() < 1e-24);
        assert!(e2 > e1);
    }
}
