//! The [`SimilarityEngine`] abstraction shared by the TD-AM and the
//! baseline designs of Table I.
//!
//! Every engine stores a set of multi-bit vectors and answers queries with
//! per-row similarity information plus energy and latency figures, so the
//! Table I comparison and the Fig. 8 application benchmarks can drive all
//! designs through one interface.

use crate::TdamError;
use serde::{Deserialize, Serialize};

/// Outcome of one associative search on a [`SimilarityEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchMetrics {
    /// Index of the best-matching row, if the engine can identify one.
    pub best_row: Option<usize>,
    /// Per-row distance as reported by the engine. Quantitative engines
    /// report exact Hamming distances; match-only engines (plain CAMs)
    /// report `None` for rows they can only classify as "mismatch".
    pub distances: Vec<Option<usize>>,
    /// Total search energy, joules.
    pub energy: f64,
    /// Search latency, seconds.
    pub latency: f64,
}

impl SearchMetrics {
    /// Energy per searched bit, joules.
    pub fn energy_per_bit(&self, total_bits: usize) -> f64 {
        if total_bits == 0 {
            0.0
        } else {
            self.energy / total_bits as f64
        }
    }
}

/// A similarity-computation engine: content-addressable storage plus an
/// associative search operation.
pub trait SimilarityEngine {
    /// Human-readable design name (matches the Table I row labels).
    fn name(&self) -> &str;

    /// Whether the engine reports exact distances (quantitative SC) or
    /// only match/mismatch.
    fn is_quantitative(&self) -> bool;

    /// Number of rows (stored vectors).
    fn rows(&self) -> usize;

    /// Elements per stored vector.
    fn width(&self) -> usize;

    /// Bits per element.
    fn bits_per_element(&self) -> u8;

    /// Stores a vector at `row`.
    ///
    /// # Errors
    ///
    /// Implementations reject out-of-range rows, wrong lengths, and
    /// out-of-range element values with the corresponding [`TdamError`].
    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError>;

    /// Searches `query` against every stored row.
    ///
    /// # Errors
    ///
    /// Implementations reject malformed queries with [`TdamError`].
    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError>;

    /// Total bits held by the engine (`rows × width × bits_per_element`).
    fn total_bits(&self) -> usize {
        self.rows() * self.width() * self.bits_per_element() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_per_bit_division() {
        let m = SearchMetrics {
            best_row: Some(0),
            distances: vec![Some(0)],
            energy: 64e-15,
            latency: 1e-9,
        };
        assert!((m.energy_per_bit(64) - 1e-15).abs() < 1e-24);
        assert_eq!(m.energy_per_bit(0), 0.0);
    }
}
