//! The [`SimilarityEngine`] abstraction shared by the TD-AM and the
//! baseline designs of Table I.
//!
//! Every engine stores a set of multi-bit vectors and answers queries with
//! per-row similarity information plus energy and latency figures, so the
//! Table I comparison and the Fig. 8 application benchmarks can drive all
//! designs through one interface.

use crate::TdamError;
use serde::{Deserialize, Serialize};

/// Outcome of one associative search on a [`SimilarityEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchMetrics {
    /// Index of the best-matching row, if the engine can identify one.
    pub best_row: Option<usize>,
    /// Per-row distance as reported by the engine. Quantitative engines
    /// report exact Hamming distances; match-only engines (plain CAMs)
    /// report `None` for rows they can only classify as "mismatch".
    pub distances: Vec<Option<usize>>,
    /// Total search energy, joules.
    pub energy: f64,
    /// Search latency, seconds.
    pub latency: f64,
}

impl SearchMetrics {
    /// Energy per searched bit, joules, or `None` for an engine holding
    /// zero bits — an empty engine does not search for free, it has
    /// nothing to normalize against.
    pub fn energy_per_bit(&self, total_bits: usize) -> Option<f64> {
        if total_bits == 0 {
            None
        } else {
            Some(self.energy / total_bits as f64)
        }
    }
}

/// A batch of equally-sized queries, stored contiguously so engines can
/// fan the batch out to worker threads without chasing pointers.
///
/// # Examples
///
/// ```
/// use tdam::engine::BatchQuery;
///
/// let mut batch = BatchQuery::new(4);
/// batch.push(&[0, 1, 2, 3]).unwrap();
/// batch.push(&[3, 2, 1, 0]).unwrap();
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.get(1), &[3, 2, 1, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchQuery {
    width: usize,
    data: Vec<u8>,
}

impl BatchQuery {
    /// Creates an empty batch of queries with `width` elements each.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero — a query with no elements is a shape
    /// bug at the call site, not a runtime condition.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "batch query width must be positive");
        Self {
            width,
            data: Vec::new(),
        }
    }

    /// Builds a batch from `rows` equally-sized query vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] if any row's length differs
    /// from the first row's, or [`TdamError::InvalidConfig`] for an empty
    /// first row.
    pub fn from_rows(rows: &[Vec<u8>]) -> Result<Self, TdamError> {
        let width = rows.first().map(Vec::len).unwrap_or(1);
        if width == 0 {
            return Err(TdamError::InvalidConfig {
                what: "batch queries must have at least one element",
            });
        }
        let mut batch = Self::new(width);
        for row in rows {
            batch.push(row)?;
        }
        Ok(batch)
    }

    /// Appends one query to the batch.
    ///
    /// # Errors
    ///
    /// Returns [`TdamError::LengthMismatch`] if `query.len()` differs
    /// from the batch width.
    pub fn push(&mut self, query: &[u8]) -> Result<(), TdamError> {
        if query.len() != self.width {
            return Err(TdamError::LengthMismatch {
                got: query.len(),
                expected: self.width,
            });
        }
        self.data.extend_from_slice(query);
        Ok(())
    }

    /// Elements per query.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.data.len() / self.width
    }

    /// Whether the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `i`-th query.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> &[u8] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Iterates over the queries in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.data.chunks_exact(self.width)
    }

    /// The whole batch as one contiguous element slice (`len × width`
    /// elements in query order). Lets engines validate every query in a
    /// single pass before fanning the batch out, instead of re-validating
    /// per query inside the worker loop.
    pub fn elements(&self) -> &[u8] {
        &self.data
    }
}

/// Per-query results of a batched search, in batch order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchResult {
    /// One [`SearchMetrics`] per query, in the order they were pushed.
    pub queries: Vec<SearchMetrics>,
}

impl BatchResult {
    /// Number of queries answered.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch produced no results.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Best-matching row per query.
    pub fn best_rows(&self) -> Vec<Option<usize>> {
        self.queries.iter().map(|m| m.best_row).collect()
    }

    /// Total energy across the batch, joules.
    pub fn total_energy(&self) -> f64 {
        self.queries.iter().map(|m| m.energy).sum()
    }

    /// Worst single-query latency in the batch, seconds. This is the
    /// array-occupancy figure; wall-clock serving latency additionally
    /// depends on pipelining (see [`crate::throughput`]).
    pub fn worst_latency(&self) -> f64 {
        self.queries.iter().map(|m| m.latency).fold(0.0, f64::max)
    }
}

/// A similarity-computation engine: content-addressable storage plus an
/// associative search operation.
pub trait SimilarityEngine {
    /// Human-readable design name (matches the Table I row labels).
    fn name(&self) -> &str;

    /// Whether the engine reports exact distances (quantitative SC) or
    /// only match/mismatch.
    fn is_quantitative(&self) -> bool;

    /// Number of rows (stored vectors).
    fn rows(&self) -> usize;

    /// Elements per stored vector.
    fn width(&self) -> usize;

    /// Bits per element.
    fn bits_per_element(&self) -> u8;

    /// Stores a vector at `row`.
    ///
    /// # Errors
    ///
    /// Implementations reject out-of-range rows, wrong lengths, and
    /// out-of-range element values with the corresponding [`TdamError`].
    fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError>;

    /// Searches `query` against every stored row.
    ///
    /// # Errors
    ///
    /// Implementations reject malformed queries with [`TdamError`].
    fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError>;

    /// Answers every query in `batch`, returning per-query metrics in
    /// batch order.
    ///
    /// The default implementation loops over [`SimilarityEngine::search`];
    /// engines whose search path is read-only override it to fan the batch
    /// out across worker threads (see [`crate::parallel`]). Overrides must
    /// preserve the *decision* exactly — identical `best_row` and
    /// `distances` for every query — and be deterministic for any thread
    /// count. Analog figures (energy, latency) are required to be
    /// bit-identical to the override's own single-query serving path;
    /// engines whose batch path uses a different (equivalence-tested)
    /// delay accumulation than the behavioral model document the bound
    /// (see [`crate::packed`]).
    ///
    /// # Errors
    ///
    /// Propagates the first per-query error in batch order, plus
    /// [`TdamError::LengthMismatch`] if the batch width differs from the
    /// engine width.
    fn search_batch(&mut self, batch: &BatchQuery) -> Result<BatchResult, TdamError> {
        if batch.width() != self.width() {
            return Err(TdamError::LengthMismatch {
                got: batch.width(),
                expected: self.width(),
            });
        }
        let queries = batch
            .iter()
            .map(|q| self.search(q))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BatchResult { queries })
    }

    /// Total bits held by the engine (`rows × width × bits_per_element`).
    fn total_bits(&self) -> usize {
        self.rows() * self.width() * self.bits_per_element() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_per_bit_division() {
        let m = SearchMetrics {
            best_row: Some(0),
            distances: vec![Some(0)],
            energy: 64e-15,
            latency: 1e-9,
        };
        assert!((m.energy_per_bit(64).unwrap() - 1e-15).abs() < 1e-24);
        assert_eq!(m.energy_per_bit(0), None, "zero bits is not free energy");
    }

    #[test]
    fn batch_query_shapes() {
        let mut b = BatchQuery::new(3);
        assert!(b.is_empty());
        b.push(&[0, 1, 2]).unwrap();
        b.push(&[2, 1, 0]).unwrap();
        assert!(b.push(&[1, 2]).is_err());
        assert_eq!(b.len(), 2);
        assert_eq!(b.width(), 3);
        assert_eq!(b.get(0), &[0, 1, 2]);
        assert_eq!(b.iter().count(), 2);

        let rows = vec![vec![1u8, 2], vec![3, 0]];
        let b = BatchQuery::from_rows(&rows).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(1), &[3, 0]);
        assert!(BatchQuery::from_rows(&[vec![]]).is_err());
        assert!(BatchQuery::from_rows(&[vec![1], vec![1, 2]]).is_err());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_batch_panics() {
        let _ = BatchQuery::new(0);
    }

    #[test]
    fn batch_result_aggregates() {
        let m = |row, e, l| SearchMetrics {
            best_row: Some(row),
            distances: vec![Some(0)],
            energy: e,
            latency: l,
        };
        let r = BatchResult {
            queries: vec![m(0, 1e-15, 2e-9), m(3, 2e-15, 1e-9)],
        };
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.best_rows(), vec![Some(0), Some(3)]);
        assert!((r.total_energy() - 3e-15).abs() < 1e-27);
        assert!((r.worst_latency() - 2e-9).abs() < 1e-20);
    }

    /// A minimal engine relying entirely on the default `search_batch`.
    struct Toy {
        rows: Vec<Vec<u8>>,
    }

    impl SimilarityEngine for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn is_quantitative(&self) -> bool {
            true
        }
        fn rows(&self) -> usize {
            self.rows.len()
        }
        fn width(&self) -> usize {
            2
        }
        fn bits_per_element(&self) -> u8 {
            2
        }
        fn store(&mut self, row: usize, values: &[u8]) -> Result<(), TdamError> {
            self.rows[row] = values.to_vec();
            Ok(())
        }
        fn search(&mut self, query: &[u8]) -> Result<SearchMetrics, TdamError> {
            let distances: Vec<Option<usize>> = self
                .rows
                .iter()
                .map(|r| Some(r.iter().zip(query).filter(|(a, b)| a != b).count()))
                .collect();
            let best_row = distances
                .iter()
                .enumerate()
                .min_by_key(|(_, d)| d.unwrap())
                .map(|(i, _)| i);
            Ok(SearchMetrics {
                best_row,
                distances,
                energy: 1e-15,
                latency: 1e-9,
            })
        }
    }

    #[test]
    fn default_batch_loops_over_search() {
        let mut toy = Toy {
            rows: vec![vec![0, 0], vec![1, 2]],
        };
        let batch = BatchQuery::from_rows(&[vec![1, 2], vec![0, 0], vec![0, 2]]).unwrap();
        let result = toy.search_batch(&batch).unwrap();
        assert_eq!(result.best_rows(), vec![Some(1), Some(0), Some(0)]);
        for (i, q) in batch.iter().enumerate() {
            assert_eq!(result.queries[i], toy.search(q).unwrap());
        }
        let wrong = BatchQuery::new(5);
        assert!(toy.search_batch(&wrong).is_err());
    }
}
