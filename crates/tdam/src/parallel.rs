//! Reusable scoped-thread worker pool with deterministic work splitting.
//!
//! The Monte Carlo runner ([`crate::monte_carlo`]), the fault-campaign
//! driver ([`crate::resilience`]), and the batched query engine
//! ([`crate::engine::SimilarityEngine::search_batch`]) all need the same
//! shape of parallelism: a fixed set of independent work items, fanned out
//! over `std::thread::scope` workers, with results collected **in item
//! order** so the outcome is identical no matter how many threads ran or
//! how the scheduler interleaved them. This module is that shape, written
//! once.
//!
//! Determinism has two halves:
//!
//! 1. **Ordering** — [`run_chunked`] writes each item's result into a
//!    pre-allocated slot indexed by the item, so the returned `Vec` is in
//!    item order regardless of scheduling.
//! 2. **Seeding** — randomized workloads derive each item's RNG seed from
//!    the item index via [`mix_seed`], never from the worker-thread index,
//!    so changing the thread count cannot change the sampled streams.
//!
//! # Examples
//!
//! ```
//! use tdam::parallel::run_chunked;
//! use tdam::TdamError;
//!
//! let squares: Vec<usize> =
//!     run_chunked::<_, TdamError, _>(8, Some(3), |i| Ok(i * i)).unwrap();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use crate::TdamError;

/// Marker error: a worker thread panicked or its result slot was never
/// filled. Convert it into the caller's error type via `From`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLost;

impl core::fmt::Display for WorkerLost {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "a parallel worker thread was lost")
    }
}

impl std::error::Error for WorkerLost {}

impl From<WorkerLost> for TdamError {
    fn from(_: WorkerLost) -> Self {
        TdamError::Worker
    }
}

/// Resolves a requested worker count: `None` means all available cores,
/// and the result is always clamped to `1..=items.max(1)` so callers never
/// spawn idle threads.
pub fn resolve_threads(items: usize, threads: Option<usize>) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    threads.unwrap_or(available).max(1).min(items.max(1))
}

/// Mixes an item index into a base seed (SplitMix64-style finalizer), so
/// every item owns an independent RNG stream derived only from
/// `(base, index)` — never from which worker thread picked the item up.
pub fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `f(item)` for every item in `0..items` across scoped worker
/// threads and returns **every** slot's outcome in item order.
///
/// This is the panic-isolating primitive behind [`run_chunked`] and the
/// serving runtime ([`crate::runtime`]): each item's call is wrapped in
/// [`std::panic::catch_unwind`], so a panicking item poisons only its own
/// slot (`Err(E::from(WorkerLost))`) while every sibling item — including
/// the rest of the panicking worker's chunk — still completes. Work is
/// split into contiguous chunks, one per worker; each worker writes into
/// its own slice of the pre-allocated slot vector, so no locks are needed
/// and the output order is independent of scheduling. `threads: None`
/// uses all available cores (see [`resolve_threads`]).
pub fn run_chunked_partial<R, E, F>(items: usize, threads: Option<usize>, f: F) -> Vec<Result<R, E>>
where
    R: Send,
    E: Send + From<WorkerLost>,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // One item's panic must not skip its siblings, so the per-item call is
    // caught here rather than surfacing at `join`. `AssertUnwindSafe` is
    // sound because a poisoned item's only observable state is its own
    // slot, which is overwritten with the error.
    let guarded = |i: usize| -> Result<R, E> {
        catch_unwind(AssertUnwindSafe(|| f(i))).unwrap_or_else(|_| Err(E::from(WorkerLost)))
    };

    if items == 0 {
        return Vec::new();
    }
    let n_threads = resolve_threads(items, threads);
    if n_threads == 1 {
        return (0..items).map(guarded).collect();
    }
    let chunk_size = items.div_ceil(n_threads);
    let mut slots: Vec<Option<Result<R, E>>> = Vec::with_capacity(items);
    slots.resize_with(items, || None);
    let guarded = &guarded;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, chunk) in slots.chunks_mut(chunk_size).enumerate() {
            let base = c * chunk_size;
            handles.push(scope.spawn(move || {
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(guarded(base + offset));
                }
            }));
        }
        // Workers cannot panic past `guarded`; joining still collects the
        // (impossible) residue rather than propagating it.
        for h in handles {
            let _ = h.join();
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.unwrap_or(Err(E::from(WorkerLost))))
        .collect()
}

/// Runs `f(item)` for every item in `0..items` across scoped worker
/// threads and returns the results **in item order**.
///
/// All-or-nothing view of [`run_chunked_partial`]: every item still runs
/// (a panicking item no longer aborts its worker's remaining chunk), but
/// only the first failure in item order is reported.
///
/// # Errors
///
/// Returns the first per-item error in item order; an item whose call
/// panicked contributes `E::from(WorkerLost)` at its slot.
pub fn run_chunked<R, E, F>(items: usize, threads: Option<usize>, f: F) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send + From<WorkerLost>,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    run_chunked_partial(items, threads, f).into_iter().collect()
}

/// [`run_chunked`] with one reusable scratch value per worker: `init()`
/// runs once per worker thread, and `f(&mut scratch, item)` serves every
/// item in that worker's chunk against the same scratch — the batch
/// serving path's way of hoisting per-item heap allocation (query bit
/// planes, result buffers) out of the hot loop.
///
/// The scratch contract: `f` must fully reinitialize any scratch state it
/// reads, because after a panicking item the same scratch (in whatever
/// state the panic left it) is handed to the worker's next item. The
/// packed kernel obeys this by construction — query expansion overwrites
/// every scratch word before the kernel reads any.
///
/// # Errors
///
/// As [`run_chunked`]: the first per-item error in item order, with a
/// panicking item contributing `E::from(WorkerLost)` at its slot.
pub fn run_chunked_scratch<S, R, E, I, F>(
    items: usize,
    threads: Option<usize>,
    init: I,
    f: F,
) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send + From<WorkerLost>,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> Result<R, E> + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // Same per-item panic isolation as `run_chunked_partial`:
    // `AssertUnwindSafe` is sound because a poisoned item's slot is
    // overwritten with the error, and the scratch contract above makes a
    // torn scratch unobservable to the next item.
    let guarded = |scratch: &mut S, i: usize| -> Result<R, E> {
        catch_unwind(AssertUnwindSafe(|| f(scratch, i)))
            .unwrap_or_else(|_| Err(E::from(WorkerLost)))
    };

    if items == 0 {
        return Ok(Vec::new());
    }
    let n_threads = resolve_threads(items, threads);
    if n_threads == 1 {
        let mut scratch = init();
        return (0..items).map(|i| guarded(&mut scratch, i)).collect();
    }
    let chunk_size = items.div_ceil(n_threads);
    let mut slots: Vec<Option<Result<R, E>>> = Vec::with_capacity(items);
    slots.resize_with(items, || None);
    let guarded = &guarded;
    let init = &init;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, chunk) in slots.chunks_mut(chunk_size).enumerate() {
            let base = c * chunk_size;
            handles.push(scope.spawn(move || {
                let mut scratch = init();
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(guarded(&mut scratch, base + offset));
                }
            }));
        }
        for h in handles {
            let _ = h.join();
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.unwrap_or(Err(E::from(WorkerLost))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_item_order_for_any_thread_count() {
        for threads in [Some(1), Some(2), Some(3), Some(7), Some(64), None] {
            let out: Vec<usize> =
                run_chunked::<_, TdamError, _>(23, threads, |i| Ok(i * 3)).unwrap();
            assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<u8> = run_chunked::<_, TdamError, _>(0, None, |_| Ok(0)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn first_error_in_item_order_wins() {
        let err = run_chunked::<usize, TdamError, _>(16, Some(4), |i| {
            if i >= 5 {
                Err(TdamError::RowOutOfBounds { row: i, rows: 5 })
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert_eq!(err, TdamError::RowOutOfBounds { row: 5, rows: 5 });
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(4, Some(100)), 4);
        assert_eq!(resolve_threads(4, Some(0)), 1);
        assert_eq!(resolve_threads(0, Some(8)), 1);
        assert!(resolve_threads(1000, None) >= 1);
    }

    #[test]
    fn mix_seed_decorrelates_indices() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable: pure function of (base, index).
        assert_eq!(a, mix_seed(42, 0));
    }

    #[test]
    fn worker_panic_is_reported_not_propagated() {
        let err = run_chunked::<usize, TdamError, _>(8, Some(4), |i| {
            if i == 6 {
                panic!("boom");
            }
            Ok(i)
        })
        .unwrap_err();
        assert_eq!(err, TdamError::Worker);
    }

    #[test]
    fn panic_poisons_only_its_own_slot() {
        // Item 5 panics; with 2 workers its chunk is items 4..8, so the
        // old join-based capture lost items 6 and 7 too. Per-slot capture
        // must complete every sibling, including the panicking worker's
        // remaining chunk, for any thread count.
        for threads in [Some(1), Some(2), Some(4), None] {
            let slots = run_chunked_partial::<usize, TdamError, _>(8, threads, |i| {
                if i == 5 {
                    panic!("poisoned query");
                }
                Ok(i * 2)
            });
            assert_eq!(slots.len(), 8);
            for (i, slot) in slots.iter().enumerate() {
                if i == 5 {
                    assert_eq!(slot, &Err(TdamError::Worker));
                } else {
                    assert_eq!(slot, &Ok(i * 2));
                }
            }
        }
    }

    #[test]
    fn scratch_results_in_item_order_for_any_thread_count() {
        for threads in [Some(1), Some(2), Some(3), Some(7), Some(64), None] {
            let out: Vec<usize> = run_chunked_scratch::<_, _, TdamError, _, _>(
                23,
                threads,
                || vec![0usize; 4],
                |scratch, i| {
                    scratch[0] = i * 3;
                    Ok(scratch[0])
                },
            )
            .unwrap();
            assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scratch_survives_a_panicking_item() {
        // Item 5 panics mid-chunk; its worker's scratch must keep serving
        // the rest of the chunk (items fully reinitialize their state).
        for threads in [Some(1), Some(2), None] {
            let err = run_chunked_scratch::<_, usize, TdamError, _, _>(
                8,
                threads,
                || 0usize,
                |scratch, i| {
                    if i == 5 {
                        panic!("torn scratch");
                    }
                    *scratch = i;
                    Ok(*scratch)
                },
            )
            .unwrap_err();
            assert_eq!(err, TdamError::Worker);
        }
    }

    #[test]
    fn partial_keeps_every_error_in_place() {
        let slots = run_chunked_partial::<usize, TdamError, _>(6, Some(3), |i| {
            if i % 2 == 1 {
                Err(TdamError::RowOutOfBounds { row: i, rows: 3 })
            } else {
                Ok(i)
            }
        });
        assert_eq!(
            slots,
            vec![
                Ok(0),
                Err(TdamError::RowOutOfBounds { row: 1, rows: 3 }),
                Ok(2),
                Err(TdamError::RowOutOfBounds { row: 3, rows: 3 }),
                Ok(4),
                Err(TdamError::RowOutOfBounds { row: 5, rows: 3 }),
            ]
        );
    }
}
