//! Reusable scoped-thread worker pool with deterministic work splitting.
//!
//! The Monte Carlo runner ([`crate::monte_carlo`]), the fault-campaign
//! driver ([`crate::resilience`]), and the batched query engine
//! ([`crate::engine::SimilarityEngine::search_batch`]) all need the same
//! shape of parallelism: a fixed set of independent work items, fanned out
//! over `std::thread::scope` workers, with results collected **in item
//! order** so the outcome is identical no matter how many threads ran or
//! how the scheduler interleaved them. This module is that shape, written
//! once.
//!
//! Determinism has two halves:
//!
//! 1. **Ordering** — [`run_chunked`] writes each item's result into a
//!    pre-allocated slot indexed by the item, so the returned `Vec` is in
//!    item order regardless of scheduling.
//! 2. **Seeding** — randomized workloads derive each item's RNG seed from
//!    the item index via [`mix_seed`], never from the worker-thread index,
//!    so changing the thread count cannot change the sampled streams.
//!
//! # Examples
//!
//! ```
//! use tdam::parallel::run_chunked;
//! use tdam::TdamError;
//!
//! let squares: Vec<usize> =
//!     run_chunked::<_, TdamError, _>(8, Some(3), |i| Ok(i * i)).unwrap();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use crate::TdamError;

/// Marker error: a worker thread panicked or its result slot was never
/// filled. Convert it into the caller's error type via `From`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLost;

impl core::fmt::Display for WorkerLost {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "a parallel worker thread was lost")
    }
}

impl std::error::Error for WorkerLost {}

impl From<WorkerLost> for TdamError {
    fn from(_: WorkerLost) -> Self {
        TdamError::Worker
    }
}

/// Resolves a requested worker count: `None` means all available cores,
/// and the result is always clamped to `1..=items.max(1)` so callers never
/// spawn idle threads.
pub fn resolve_threads(items: usize, threads: Option<usize>) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    threads.unwrap_or(available).max(1).min(items.max(1))
}

/// Mixes an item index into a base seed (SplitMix64-style finalizer), so
/// every item owns an independent RNG stream derived only from
/// `(base, index)` — never from which worker thread picked the item up.
pub fn mix_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `f(item)` for every item in `0..items` across scoped worker
/// threads and returns the results **in item order**.
///
/// Work is split into contiguous chunks, one per worker; each worker
/// writes into its own slice of the pre-allocated slot vector, so no
/// locks are needed and the output order is independent of scheduling.
/// `threads: None` uses all available cores (see [`resolve_threads`]).
///
/// # Errors
///
/// Returns `E::from(WorkerLost)` if any worker panicked, otherwise the
/// first per-item error in item order, otherwise the collected results.
pub fn run_chunked<R, E, F>(items: usize, threads: Option<usize>, f: F) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send + From<WorkerLost>,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    if items == 0 {
        return Ok(Vec::new());
    }
    let n_threads = resolve_threads(items, threads);
    if n_threads == 1 {
        return (0..items).map(&f).collect();
    }
    let chunk_size = items.div_ceil(n_threads);
    let mut slots: Vec<Option<Result<R, E>>> = Vec::with_capacity(items);
    slots.resize_with(items, || None);
    let f = &f;
    let lost_worker = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, chunk) in slots.chunks_mut(chunk_size).enumerate() {
            let base = c * chunk_size;
            handles.push(scope.spawn(move || {
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(base + offset));
                }
            }));
        }
        handles.into_iter().any(|h| h.join().is_err())
    });
    if lost_worker {
        return Err(E::from(WorkerLost));
    }
    slots
        .into_iter()
        .map(|slot| slot.ok_or(WorkerLost).map_err(E::from).and_then(|r| r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_item_order_for_any_thread_count() {
        for threads in [Some(1), Some(2), Some(3), Some(7), Some(64), None] {
            let out: Vec<usize> =
                run_chunked::<_, TdamError, _>(23, threads, |i| Ok(i * 3)).unwrap();
            assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<u8> = run_chunked::<_, TdamError, _>(0, None, |_| Ok(0)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn first_error_in_item_order_wins() {
        let err = run_chunked::<usize, TdamError, _>(16, Some(4), |i| {
            if i >= 5 {
                Err(TdamError::RowOutOfBounds { row: i, rows: 5 })
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert_eq!(err, TdamError::RowOutOfBounds { row: 5, rows: 5 });
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(4, Some(100)), 4);
        assert_eq!(resolve_threads(4, Some(0)), 1);
        assert_eq!(resolve_threads(0, Some(8)), 1);
        assert!(resolve_threads(1000, None) >= 1);
    }

    #[test]
    fn mix_seed_decorrelates_indices() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable: pure function of (base, index).
        assert_eq!(a, mix_seed(42, 0));
    }

    #[test]
    fn worker_panic_is_reported_not_propagated() {
        let err = run_chunked::<usize, TdamError, _>(8, Some(4), |i| {
            if i == 6 {
                panic!("boom");
            }
            Ok(i)
        })
        .unwrap_err();
        assert_eq!(err, TdamError::Worker);
    }
}
