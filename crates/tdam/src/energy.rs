//! Search-energy accounting.
//!
//! Energy is tallied as switched capacitance (`C·V_DD²`) per event, the
//! same methodology the TD-IMC literature reports:
//!
//! - every stage's inverter toggles through one full cycle per search
//!   (rising edge in step I, falling in step II) — one `C_stage·V_DD²`,
//! - every (partially) attached load capacitor swings once,
//! - every discharged match node must be re-precharged for the next search,
//! - every cell's two search lines are driven to their query levels,
//! - the time-to-digital converter adds its conversion cost (accounted at
//!   the array level, see [`crate::tdc`]).

use serde::{Deserialize, Serialize};

/// Per-component energy tally for one search, joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Inverter (stage intrinsic) switching energy.
    pub inverters: f64,
    /// Load-capacitor energy on mismatching stages.
    pub load_caps: f64,
    /// Match-node precharge energy.
    pub match_nodes: f64,
    /// Search-line driver energy.
    pub search_lines: f64,
    /// Time-to-digital conversion energy.
    pub tdc: f64,
}

impl EnergyBreakdown {
    /// Total energy, joules.
    pub fn total(&self) -> f64 {
        self.inverters + self.load_caps + self.match_nodes + self.search_lines + self.tdc
    }

    /// Energy per searched bit, joules (`total / bits`); `0.0` when
    /// `bits == 0`.
    pub fn per_bit(&self, bits: usize) -> f64 {
        if bits == 0 {
            0.0
        } else {
            self.total() / bits as f64
        }
    }

    /// Component-wise sum.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.inverters += other.inverters;
        self.load_caps += other.load_caps;
        self.match_nodes += other.match_nodes;
        self.search_lines += other.search_lines;
        self.tdc += other.tdc;
    }
}

impl core::fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "total {:.4e} J (inv {:.2e}, caps {:.2e}, MN {:.2e}, SL {:.2e}, TDC {:.2e})",
            self.total(),
            self.inverters,
            self.load_caps,
            self.match_nodes,
            self.search_lines,
            self.tdc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let e = EnergyBreakdown {
            inverters: 1.0,
            load_caps: 2.0,
            match_nodes: 3.0,
            search_lines: 4.0,
            tdc: 5.0,
        };
        assert_eq!(e.total(), 15.0);
        assert_eq!(e.per_bit(15), 1.0);
        assert_eq!(e.per_bit(0), 0.0);
    }

    #[test]
    fn accumulate_componentwise() {
        let mut a = EnergyBreakdown {
            inverters: 1.0,
            ..Default::default()
        };
        let b = EnergyBreakdown {
            inverters: 2.0,
            tdc: 1.0,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.inverters, 3.0);
        assert_eq!(a.tdc, 1.0);
        assert_eq!(a.total(), 4.0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(EnergyBreakdown::default().total(), 0.0);
    }
}
